// Flash crowd: the paper's introduction motivates CDNs with news sites
// whose load spikes suddenly.  Replica placement is computed from
// *yesterday's* demand and is expensive to change ("placement decisions
// should remain fairly static ... replica creation and migration incurs a
// high transfer cost"); caching adapts per request.  This example makes
// that concrete:
//
//   1. compute placements (replication-only vs hybrid) on baseline demand;
//   2. overnight, one previously quiet site becomes 50x hotter;
//   3. replay the spiked traffic against the stale placements.
//
// The hybrid's caches absorb the flash crowd, while pure replication pays
// full redirection for the now-hot site.

#include <iostream>
#include <vector>

#include "src/core/hybridcdn.h"

int main() {
  using namespace cdn;

  core::ScenarioConfig cfg;
  cfg.server_count = 16;
  cfg.classes = {{12, 1.0, "low"}, {24, 4.0, "medium"}, {12, 16.0, "high"}};
  cfg.surge.objects_per_site = 400;
  cfg.storage_fraction = 0.05;
  core::Scenario scenario(cfg);
  const auto& base = scenario.system();

  // Yesterday's placements.
  const auto replication = placement::greedy_global(base);
  const auto hybrid = placement::hybrid_greedy(base);

  // Overnight: the first low-popularity site goes viral (50x volume).
  const workload::SiteId viral = 0;
  std::vector<double> spiked;
  spiked.reserve(base.server_count() * base.site_count());
  for (std::size_t i = 0; i < base.server_count(); ++i) {
    const auto row = base.demand().row(static_cast<sys::ServerIndex>(i));
    for (std::size_t j = 0; j < row.size(); ++j) {
      spiked.push_back(j == viral ? row[j] * 50.0 : row[j]);
    }
  }
  const auto spiked_demand = workload::DemandMatrix::from_values(
      base.server_count(), base.site_count(), spiked);
  const sys::CdnSystem spiked_system(scenario.catalog(), spiked_demand,
                                     scenario.distances(),
                                     cfg.storage_fraction);

  sim::SimulationConfig sim;
  sim.total_requests = 1'500'000;

  std::cout << "Flash crowd on site " << viral << " (50x demand) with "
               "placements computed from stale demand\n\n";
  util::TextTable table({"placement", "traffic", "mean_ms", "p99_ms",
                         "local%", "hops/req"});
  for (const auto& [name, system] :
       std::vector<std::pair<const char*, const sys::CdnSystem*>>{
           {"baseline", &base}, {"flash-crowd", &spiked_system}}) {
    for (const auto& [mech, placement] :
         std::vector<std::pair<const char*,
                               const placement::PlacementResult*>>{
             {"replication", &replication}, {"hybrid", &hybrid}}) {
      const auto report = sim::simulate(*system, *placement, sim);
      table.add_row({mech, name,
                     util::format_double(report.mean_latency_ms, 2),
                     util::format_double(report.latency_cdf.quantile(0.99), 2),
                     util::format_double(100.0 * report.local_ratio, 1),
                     util::format_double(report.mean_cost_hops, 3)});
    }
  }
  std::cout << table.str()
            << "\nThe hybrid's caches pull the viral site's hot objects to "
               "the first hop within the warm-up window;\nthe stale "
               "replication placement keeps paying redirection for every "
               "request.\n";
  return 0;
}
