// Capacity planning: how much storage does a CDN operator need, and how
// should it be split between replicas and cache?
//
// Sweeps the per-server storage budget from 2% to 30% of the hosted bytes
// and reports, for each point, the hybrid algorithm's chosen replica/cache
// split and the resulting user-perceived latency — the kind of table an
// operator would use to size a deployment against a latency SLO.
//
//   ./capacity_planning [sla_ms=18]

#include <cstdlib>
#include <iostream>

#include "src/core/hybridcdn.h"

int main(int argc, char** argv) {
  const double sla_ms = argc > 1 ? std::atof(argv[1]) : 18.0;

  std::cout << "Capacity planning sweep (hybrid placement, lambda = 0)\n"
            << "Latency SLO: p90 <= " << sla_ms << " ms\n\n";

  cdn::util::TextTable table({"storage%", "replicas", "cache_share%",
                              "mean_ms", "p90_ms", "p99_ms", "local%",
                              "meets_slo"});

  bool recommended = false;
  double recommended_pct = 0.0;
  for (double storage : {0.02, 0.05, 0.10, 0.20, 0.30}) {
    cdn::core::ScenarioConfig cfg;
    cfg.server_count = 16;
    cfg.classes = {{12, 1.0, "low"}, {24, 4.0, "medium"}, {12, 16.0, "high"}};
    cfg.surge.objects_per_site = 400;
    cfg.storage_fraction = storage;
    cdn::core::Scenario scenario(cfg);

    const auto placement =
        cdn::placement::hybrid_greedy(scenario.system());
    cdn::sim::SimulationConfig sim;
    sim.total_requests = 1'000'000;
    const auto report =
        cdn::sim::simulate(scenario.system(), placement, sim);

    std::uint64_t cache = 0, total = 0;
    for (std::size_t i = 0; i < scenario.system().server_count(); ++i) {
      const auto server = static_cast<cdn::sys::ServerIndex>(i);
      cache += placement.cache_bytes(server);
      total += scenario.system().server_storage(server);
    }
    const double p90 = report.latency_cdf.quantile(0.90);
    const bool ok = p90 <= sla_ms;
    if (ok && !recommended) {
      recommended = true;
      recommended_pct = storage * 100.0;
    }
    table.add_row(
        {cdn::util::format_double(storage * 100, 0),
         std::to_string(placement.replicas_created),
         cdn::util::format_double(
             100.0 * static_cast<double>(cache) / static_cast<double>(total),
             1),
         cdn::util::format_double(report.mean_latency_ms, 2),
         cdn::util::format_double(p90, 2),
         cdn::util::format_double(report.latency_cdf.quantile(0.99), 2),
         cdn::util::format_double(100.0 * report.local_ratio, 1),
         ok ? "yes" : "no"});
  }

  std::cout << table.str() << '\n';
  if (recommended) {
    std::cout << "Smallest storage meeting the SLO: " << recommended_pct
              << "% of hosted bytes per server.\n";
  } else {
    std::cout << "No swept capacity meets the SLO; relax it or add "
                 "servers closer to clients.\n";
  }
  return 0;
}
