// Quickstart: build the paper's scenario, run the three content-delivery
// mechanisms (pure replication, pure caching, hybrid), and print the
// response-time comparison.
//
//   ./quickstart [storage_fraction=0.05] [lambda=0.0]

#include <cstdlib>
#include <iostream>

#include "src/core/hybridcdn.h"

int main(int argc, char** argv) {
  const double storage = argc > 1 ? std::atof(argv[1]) : 0.05;
  const double lambda = argc > 2 ? std::atof(argv[2]) : 0.0;

  cdn::core::ScenarioConfig cfg;  // paper defaults: N=50 servers, M=200 sites
  cfg.storage_fraction = storage;
  cfg.uncacheable_fraction = lambda;
  // Scaled down from the paper's full run so the quickstart finishes in
  // seconds; bench_fig3 runs the full configuration.
  cfg.server_count = 16;
  cfg.classes = {{12, 1.0, "low"}, {24, 4.0, "medium"}, {12, 16.0, "high"}};
  cfg.surge.objects_per_site = 400;

  std::cout << "Building scenario (storage=" << storage * 100.0
            << "%, lambda=" << lambda << ") ...\n";
  cdn::core::Scenario scenario(cfg);

  cdn::sim::SimulationConfig sim;
  sim.total_requests = 1'000'000;

  const auto runs = cdn::core::run_mechanisms(
      scenario,
      {cdn::core::replication_mechanism(), cdn::core::caching_mechanism(),
       cdn::core::hybrid_mechanism()},
      sim);

  std::cout << '\n' << cdn::core::summary_table(runs).str() << '\n';
  std::cout << "Response-time CDF (fraction of requests answered within x ms):\n"
            << cdn::core::cdf_table(runs) << '\n';
  std::cout << "hybrid vs replication: "
            << cdn::core::mean_latency_gain_percent(runs[0], runs[2])
            << "% lower mean latency\n";
  std::cout << "hybrid vs caching:     "
            << cdn::core::mean_latency_gain_percent(runs[1], runs[2])
            << "% lower mean latency\n";
  return 0;
}
