// Load-aware redirection: what happens when the fleet runs hot.
//
// The paper's redirection rule always picks the nearest copy; related work
// [9, 24, 29] balances server load instead.  This example provisions a
// deliberately tight fleet, then compares nearest-copy vs load-aware
// assignment of the miss traffic for both pure replication and the hybrid
// placement — showing the classic trade: a few extra network hops buy a
// much lower peak utilisation (and therefore bounded queueing delay).
//
//   ./load_balancing [capacity_headroom=1.2]

#include <cstdlib>
#include <iostream>

#include "src/core/hybridcdn.h"

int main(int argc, char** argv) {
  using namespace cdn;
  const double headroom = argc > 1 ? std::atof(argv[1]) : 1.2;

  core::ScenarioConfig cfg;
  cfg.server_count = 16;
  cfg.classes = {{12, 1.0, "low"}, {24, 4.0, "medium"}, {12, 16.0, "high"}};
  cfg.surge.objects_per_site = 400;
  cfg.storage_fraction = 0.05;
  cfg.demand_model = core::DemandModel::kClientPopulation;
  core::Scenario scenario(cfg);

  std::cout << "Fleet provisioned at " << headroom
            << "x the mean per-server miss load (client-population demand)\n\n";

  util::TextTable table({"placement", "selection", "net_hops", "resp_cost",
                         "max_util%", "mean_util%"});

  for (const auto& [name, placement] :
       std::vector<std::pair<const char*, placement::PlacementResult>>{
           {"replication", placement::greedy_global(scenario.system())},
           {"hybrid", placement::hybrid_greedy(scenario.system())}}) {
    // Capacity relative to this placement's own nearest-rule mean load.
    redirect::SelectionParams probe;
    probe.policy = redirect::SelectionPolicy::kNearest;
    const auto baseline =
        redirect::assign_miss_traffic(scenario.system(), placement, probe);
    double total = 0.0;
    for (double f : baseline.server_flow) total += f;
    const double capacity =
        headroom * total / static_cast<double>(scenario.system().server_count());

    for (const auto policy : {redirect::SelectionPolicy::kNearest,
                              redirect::SelectionPolicy::kLoadAware}) {
      redirect::SelectionParams params;
      params.policy = policy;
      params.server_capacity = capacity;
      params.primary_capacity = 4.0 * capacity;
      const auto sel = redirect::assign_miss_traffic(scenario.system(),
                                                     placement, params);
      table.add_row(
          {name,
           policy == redirect::SelectionPolicy::kNearest ? "nearest"
                                                         : "load-aware",
           util::format_double(sel.mean_network_hops, 3),
           util::format_double(sel.mean_response_cost, 3),
           util::format_double(100.0 * sel.max_server_utilization, 1),
           util::format_double(100.0 * sel.mean_server_utilization, 1)});
    }
  }
  std::cout << table.str()
            << "\nThe hybrid also redirects far less traffic in the first "
               "place (its caches absorb misses locally),\nso its fleet "
               "runs cooler at the same capacity.\n";
  return 0;
}
