// Stand-alone use of the analytical LRU model (the paper notes the model
// "can be used independently ... whenever such estimations are required").
//
// Given a cache size, a catalogue shape (L, theta), and a set of site
// popularities, prints the characteristic time K and the predicted per-site
// and overall hit ratios — then cross-checks the prediction with a quick
// Monte-Carlo LRU simulation.
//
//   ./lru_model_explorer [cache_objects=500] [L=1000] [theta=1.0]

#include <cstdlib>
#include <iostream>
#include <vector>

#include "src/cache/lru_cache.h"
#include "src/model/characteristic_time.h"
#include "src/model/hit_ratio_curve.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/util/zipf.h"

int main(int argc, char** argv) {
  using namespace cdn;
  const std::uint64_t slots =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500;
  const std::size_t objects =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1000;
  const double theta = argc > 3 ? std::atof(argv[3]) : 1.0;

  // A skewed 8-site mix, like one CDN server's view of its sites.
  const std::vector<double> weights{0.30, 0.20, 0.15, 0.12,
                                    0.10, 0.06, 0.04, 0.03};

  const util::ZipfDistribution zipf(objects, theta);
  const double pb =
      model::top_b_cumulative_probability(weights, zipf, slots);
  const double k = model::characteristic_time_closed_form(
      slots, pb >= 1.0 ? 1.0 - 1e-12 : pb);

  std::cout << "LRU model (Eqs. 1-2): B = " << slots << " objects, L = "
            << objects << ", theta = " << theta << "\n"
            << "top-B cumulative probability p_B = "
            << util::format_double(pb, 4) << "\n"
            << "characteristic time K = " << util::format_double(k, 1)
            << " request slots\n\n";

  // Monte-Carlo cross-check.
  util::Rng rng(7);
  const util::AliasSampler site_sampler(weights);
  cache::LruCache cache(slots);
  const std::uint64_t total = 2'000'000, warmup = total / 4;
  std::vector<std::uint64_t> hits(weights.size(), 0), reqs(weights.size(), 0);
  for (std::uint64_t t = 0; t < total; ++t) {
    const std::size_t site = site_sampler.sample(rng);
    const std::uint64_t key = site * objects + zipf.sample(rng);
    const bool hit = cache.access(key, 1);
    if (t >= warmup) {
      ++reqs[site];
      hits[site] += hit;
    }
  }

  util::TextTable table({"site", "popularity", "predicted_hit",
                         "simulated_hit"});
  double pred_overall = 0.0, sim_overall = 0.0;
  for (std::size_t j = 0; j < weights.size(); ++j) {
    const double predicted = model::lru_hit_ratio_exact(zipf, weights[j], k);
    const double simulated =
        reqs[j] ? static_cast<double>(hits[j]) / static_cast<double>(reqs[j])
                : 0.0;
    pred_overall += weights[j] * predicted;
    sim_overall += weights[j] * simulated;
    table.add_row({std::to_string(j), util::format_double(weights[j], 3),
                   util::format_double(predicted, 4),
                   util::format_double(simulated, 4)});
  }
  std::cout << table.str() << "\noverall: predicted "
            << util::format_double(pred_overall, 4) << " vs simulated "
            << util::format_double(sim_overall, 4) << "  (error "
            << util::format_double(
                   100.0 * (pred_overall - sim_overall) /
                       (sim_overall > 0 ? sim_overall : 1.0), 2)
            << "%, paper reports < 7%)\n";
  return 0;
}
