// Outage drill: a scripted regional failure, hybrid vs pure caching.
//
// A quarter of the fleet — servers 0..3, think "one region's PoPs" — goes
// dark for the middle third of the run, then comes back with cold caches.
// Both mechanisms route around the hole via the nearest LIVE copy with a
// retry penalty, but they differ in what is left to route to:
//
//   * hybrid keeps replicas on the surviving servers, so most spilled
//     traffic still finds a nearby copy and availability barely moves;
//   * pure caching holds every copy in the caches of whichever server
//     attracted the traffic — the dead region's copies vanish with it,
//     leaving only the (possibly also struck) origin.
//
// The drill also takes each affected site's origin down for the core of
// the outage window, the correlated-failure case (regional power/fiber
// events rarely respect the replica/origin distinction).
//
// Run it:  ./build/examples/outage_drill

#include <iostream>
#include <vector>

#include "src/core/hybridcdn.h"

int main() {
  using namespace cdn;

  core::ScenarioConfig cfg;
  cfg.server_count = 16;
  cfg.classes = {{12, 1.0, "low"}, {24, 4.0, "medium"}, {12, 16.0, "high"}};
  cfg.surge.objects_per_site = 400;
  cfg.storage_fraction = 0.05;
  core::Scenario scenario(cfg);
  const auto& system = scenario.system();

  sim::SimulationConfig sim;
  sim.total_requests = 1'500'000;
  sim.slo_ms = 100.0;

  // The drill script: servers 0-3 down for the middle third; the origins
  // of the 8 hottest (high-popularity) sites down for the core of it —
  // exactly the content replicas exist for, so the drill separates "extra
  // live copies" (hybrid) from "copies that died with their server"
  // (caching).
  const std::uint64_t t0 = sim.total_requests / 3;
  const std::uint64_t t1 = 2 * sim.total_requests / 3;
  fault::FaultSchedule drill;
  for (std::uint32_t s = 0; s < 4; ++s) {
    drill.add_server_outage(s, t0, t1);
  }
  const std::uint64_t core0 = t0 + (t1 - t0) / 4;
  const std::uint64_t core1 = t1 - (t1 - t0) / 4;
  const auto sites = static_cast<std::uint32_t>(system.site_count());
  for (std::uint32_t j = sites - 8; j < sites; ++j) {
    drill.add_origin_outage(j, core0, core1);
  }
  drill.validate(system.server_count(), system.site_count());
  sim.faults = &drill;

  std::cout << "Outage drill: servers 0-3 down for requests [" << t0 << ", "
            << t1 << "), origins of sites " << sites - 8 << "-" << sites - 1
            << " down for [" << core0 << ", " << core1 << ")\n\n";

  const std::vector<std::pair<const char*, placement::PlacementResult>>
      mechanisms = {{"hybrid", placement::hybrid_greedy(system)},
                    {"caching", placement::pure_caching(system)}};

  util::TextTable table({"mechanism", "availability", "failed", "failover",
                         "mean_ms", "p99_ms", "slo_violation",
                         "cold_restarts"});
  for (const auto& [name, result] : mechanisms) {
    const auto report = sim::simulate(system, result, sim);
    table.add_row({name, util::format_double(report.availability, 6),
                   std::to_string(report.failed_requests),
                   std::to_string(report.failover_requests),
                   util::format_double(report.mean_latency_ms, 2),
                   util::format_double(report.latency_cdf.quantile(0.99), 2),
                   util::format_double(report.slo_violation_fraction, 4),
                   std::to_string(report.cold_restarts)});
  }
  std::cout << table.str()
            << "\nReplicas on the surviving servers keep the hybrid's "
               "availability near 1; pure caching loses the dead region's "
               "copies and eats the origin outage head-on.\n";
  return 0;
}
