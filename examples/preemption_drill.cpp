// Preemption drill: a long campaign survives being killed mid-run.
//
// Spot/preemptible instances can take a SIGTERM at any moment, including
// in the middle of an outage window when the simulation state is at its
// most tangled (failover routing, cold caches, half-filled metric
// windows).  This drill runs the same faulted scenario three ways:
//
//   1. uninterrupted — the reference report;
//   2. preempted     — the stop flag fires mid-outage, the engine flushes
//                      a checkpoint and throws recover::Interrupted;
//   3. resumed       — a fresh process-equivalent run picks the
//                      checkpoint up with --resume semantics and finishes.
//
// The acceptance bar is the tentpole invariant from docs/RECOVERY.md: the
// resumed report is byte-identical to the uninterrupted one — same
// digest, not just similar numbers.
//
// Run it:  ./build/examples/preemption_drill

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "src/core/hybridcdn.h"
#include "src/recover/checkpoint.h"
#include "src/sim/sim_checkpoint.h"

int main() {
  using namespace cdn;

  core::ScenarioConfig cfg;
  cfg.server_count = 16;
  cfg.classes = {{12, 1.0, "low"}, {24, 4.0, "medium"}, {12, 16.0, "high"}};
  cfg.surge.objects_per_site = 400;
  cfg.storage_fraction = 0.05;
  core::Scenario scenario(cfg);
  const auto& system = scenario.system();
  const auto placement = placement::hybrid_greedy(system);

  sim::SimulationConfig sim;
  sim.total_requests = 1'200'000;
  sim.slo_ms = 100.0;

  // Same regional-outage script as the outage drill: the preemption lands
  // while servers 0-3 are dark, so the checkpoint has to carry failover
  // state, not just counters.
  const std::uint64_t t0 = sim.total_requests / 3;
  const std::uint64_t t1 = 2 * sim.total_requests / 3;
  fault::FaultSchedule drill;
  for (std::uint32_t s = 0; s < 4; ++s) {
    drill.add_server_outage(s, t0, t1);
  }
  drill.validate(system.server_count(), system.site_count());
  sim.faults = &drill;

  const auto ckpt = std::filesystem::temp_directory_path() /
                    "hybridcdn_preemption_drill.ckpt";

  // 1. The uninterrupted reference.
  const auto reference = sim::simulate(system, placement, sim);

  // 2. The preempted run.  Pre-setting the stop flag with the request
  //    cadence at the kill point makes the preemption deterministic: the
  //    engine writes the checkpoint at exactly `kill_at` and throws.
  const std::uint64_t kill_at = t0 + (t1 - t0) / 2;  // mid-outage
  std::atomic<bool> stop{true};
  sim::SimulationConfig preempted = sim;
  preempted.checkpoint_path = ckpt.string();
  preempted.checkpoint_every_requests = kill_at;
  preempted.stop = &stop;
  std::uint64_t preempted_at = 0;
  try {
    (void)sim::simulate(system, placement, preempted);
    std::cerr << "drill failed: the preemption never fired\n";
    return 1;
  } catch (const recover::Interrupted& e) {
    preempted_at = e.request_index();
  }

  // 3. The resumed run.
  sim::SimulationConfig resumed = sim;
  resumed.resume_path = ckpt.string();
  const auto report = sim::simulate(system, placement, resumed);
  std::remove(ckpt.string().c_str());

  const auto want = sim::report_digest(reference);
  const auto got = sim::report_digest(report);
  std::cout << "Preemption drill: killed at request " << preempted_at
            << " (mid-outage), resumed from " << ckpt.string() << "\n\n";
  util::TextTable table({"run", "mean_ms", "p99_ms", "availability",
                         "failover", "digest"});
  const auto row = [&](const char* name, const sim::SimulationReport& r) {
    char digest[17];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(sim::report_digest(r)));
    table.add_row({name, util::format_double(r.mean_latency_ms, 2),
                   util::format_double(r.latency_cdf.quantile(0.99), 2),
                   util::format_double(r.availability, 6),
                   std::to_string(r.failover_requests), digest});
  };
  row("uninterrupted", reference);
  row("resumed", report);
  std::cout << table.str() << '\n';

  if (want != got) {
    std::cerr << "drill failed: resumed digest differs from the reference\n";
    return 1;
  }
  std::cout << "Byte-identical: the kill point is invisible in the report.\n";
  return 0;
}
