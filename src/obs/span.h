// Span tracing with Chrome trace-event export (Perfetto-compatible).
//
// `SpanTracer` records timeline events — duration spans, instant markers,
// and counter samples — into per-thread ring buffers, then exports them as
// Chrome trace-event JSON that loads directly in https://ui.perfetto.dev
// or chrome://tracing.  It follows the registry contract from
// docs/OBSERVABILITY.md: instrumented code holds a nullable
// `obs::SpanTracer*`, and a null tracer costs one pointer compare — the
// disabled path never reads the clock and never allocates.
//
//   obs::SpanTracer tracer;
//   {
//     obs::ScopedSpan span(&tracer, "sim/run", "sim");
//     ...
//     tracer.instant("fault/transition", "fault", "request", 1234.0);
//     tracer.counter("heap/size", 87.0);
//   }                      // span closes here
//   tracer.write_json_file("run.trace.json");
//
// Concurrency model: each thread writes to its own ring buffer (acquired
// once and cached in a thread_local), so the hot path is lock-free; a
// mutex guards only buffer registration and string interning.  Export
// (`events()`, `to_chrome_json()`) must run after worker threads have
// finished recording — the engines in this repo join their pools before
// returning, so exporting after `simulate()`/`hybrid_greedy_place()` is
// always safe.
//
// Event names and categories are `const char*` pointing at storage that
// outlives the tracer — string literals in practice.  For dynamic names
// (mechanism names, per-run prefixes) call `intern()` once outside the
// loop, mirroring the resolve-metrics-once idiom.
//
// Ring overflow keeps the *newest* events: when a thread's buffer is full
// the oldest event is overwritten and `dropped()` counts the loss, so a
// long run still shows its tail (the part you are usually debugging)
// instead of silently truncating at minute one.

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cdn::obs {

class SpanTracer {
 public:
  /// Event phases, mapped to trace-event "ph" values on export:
  /// kComplete -> "X", kInstant -> "i", kCounter -> "C".
  enum class Phase : std::uint8_t { kComplete, kInstant, kCounter };

  /// One recorded event.  Timestamps are nanoseconds since the tracer's
  /// construction (steady clock).  `arg_name == nullptr` means no arg.
  struct Event {
    const char* name = nullptr;
    const char* category = nullptr;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    Phase phase = Phase::kInstant;
    std::uint32_t tid = 0;
    const char* arg_name = nullptr;
    double arg_value = 0.0;
  };

  /// `events_per_thread` bounds each thread's ring buffer; the default
  /// (64k events, ~3.5 MiB/thread) comfortably holds phase-granularity
  /// instrumentation for multi-million-request runs.
  explicit SpanTracer(std::size_t events_per_thread = std::size_t{1} << 16);
  ~SpanTracer();

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Nanoseconds since tracer construction (steady clock).
  std::uint64_t now_ns() const noexcept;

  /// Records a duration span [start_ns, end_ns] on the calling thread.
  /// Usually emitted through ScopedSpan rather than called directly.
  void complete(const char* name, const char* category,
                std::uint64_t start_ns, std::uint64_t end_ns,
                const char* arg_name = nullptr, double arg_value = 0.0);

  /// Records a zero-duration marker at the current time.
  void instant(const char* name, const char* category,
               const char* arg_name = nullptr, double arg_value = 0.0);

  /// Records a counter sample; Perfetto renders one track per name.
  void counter(const char* name, double value);

  /// Names the calling thread's track in the exported trace.
  void set_thread_name(const std::string& name);

  /// Copies `text` into tracer-owned storage and returns a pointer stable
  /// for the tracer's lifetime.  Repeated calls with equal text return the
  /// same pointer.  Takes a lock — call once at setup, not per event.
  const char* intern(const std::string& text);

  /// Events currently retained across all buffers (post-overflow).
  std::uint64_t recorded() const;
  /// Events lost to ring overflow across all buffers.
  std::uint64_t dropped() const;

  /// Snapshot of retained events, sorted by (ts, tid).  Export-time only.
  std::vector<Event> events() const;

  /// The full trace-event JSON document
  /// (`{"traceEvents":[...],"displayTimeUnit":"ms",...}`).
  std::string to_chrome_json() const;

  /// Writes `to_chrome_json()` atomically-ish to `path` (truncate+write).
  /// Throws PreconditionError on I/O failure.
  void write_json_file(const std::string& path) const;

 private:
  struct ThreadBuffer {
    explicit ThreadBuffer(std::size_t capacity, std::uint32_t tid_arg)
        : ring(capacity), tid(tid_arg) {}
    std::vector<Event> ring;
    std::size_t head = 0;       // next write slot
    std::size_t size = 0;       // valid events (<= ring.size())
    std::uint64_t dropped = 0;  // overwritten events
    std::uint32_t tid = 0;
    std::string thread_name;
    std::thread::id owner;
  };

  ThreadBuffer& local_buffer();
  void push(const Event& event);

  const std::size_t capacity_;
  const std::uint64_t tracer_id_;  // process-unique, guards tls cache reuse
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;  // buffers_ vector, interned_, thread names
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::deque<std::string> interned_;  // deque: stable addresses on growth
};

/// RAII duration span.  Null tracer makes construction/destruction no-ops
/// without reading the clock, so call sites instrument unconditionally:
///
///   obs::ScopedSpan span(config.spans, "sim/run", "sim");
///   span.arg("requests", static_cast<double>(total));
///   ...                                   // records on scope exit
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer* tracer, const char* name,
             const char* category = "phase") noexcept
      : tracer_(tracer), name_(name), category_(category) {
    if (tracer_ != nullptr) start_ns_ = tracer_->now_ns();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { stop(); }

  /// Attaches one numeric argument, shown in Perfetto's detail pane.
  /// Last call wins; must precede stop().
  void arg(const char* name, double value) noexcept {
    arg_name_ = name;
    arg_value_ = value;
  }

  /// Records the span now instead of at scope exit.  Idempotent.
  void stop() noexcept {
    if (tracer_ == nullptr) return;
    tracer_->complete(name_, category_, start_ns_, tracer_->now_ns(),
                      arg_name_, arg_value_);
    tracer_ = nullptr;
  }

 private:
  SpanTracer* tracer_;
  const char* name_;
  const char* category_;
  const char* arg_name_ = nullptr;
  double arg_value_ = 0.0;
  std::uint64_t start_ns_ = 0;
};

}  // namespace cdn::obs
