// Sampled structured event trace of the simulator's per-request decisions.
//
// Each recorded event captures one request's full path: which first-hop
// server received it, what it asked for, why it was served where it was
// (replica / cache hit / cache miss / stale refresh / uncacheable bypass),
// which server ultimately served it, and what it cost.  Sampling is
// deterministic given the seed — the same run always traces the same
// requests — and the sink is bounded, so a 0.01 sample of a 5M-request run
// cannot exhaust memory.
//
// The CSV export is the debugging surface for model-vs-simulation drift
// (Figure 6): group events by server and window, compare observed hit
// ratios against the model's h_j^(i) (see docs/OBSERVABILITY.md).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/serial.h"

namespace cdn::obs {

/// Why a request was served where it was.
enum class EventCause : std::uint8_t {
  kReplica,       // first-hop server replicates the site
  kCacheHit,      // served from the first-hop proxy cache
  kCacheMiss,     // redirected to the nearest copy, object admitted
  kStaleRefresh,  // lambda-flagged under kRefresh: forced remote refresh
  kUncacheable,   // lambda-flagged under kUncacheable: cache bypassed
  kFailover,      // a dead first-hop or holder forced a re-route (faults)
  kFailed,        // every copy holder was down; the request was lost
};

/// Number of EventCause values (sizes the simulator's counter arrays).
inline constexpr std::size_t kEventCauseCount = 7;

const char* to_string(EventCause cause) noexcept;

/// One sampled request.
struct TraceEvent {
  std::uint64_t t = 0;        // request index within the run
  std::uint32_t server = 0;   // first-hop server
  std::uint32_t site = 0;
  std::uint32_t rank = 0;     // within-site popularity rank (1-based)
  EventCause cause = EventCause::kCacheMiss;
  /// Serving server; -1 = the site's primary origin, -2 = nobody (the
  /// request failed because every holder was down).
  std::int32_t served_by = -1;
  bool measured = false;        // false while inside the warm-up window
  double hops = 0.0;            // redirection cost paid
  double latency_ms = 0.0;
};

/// Bounded, sampled event sink.
class TraceSink {
 public:
  /// `sample_rate` in [0, 1]; `max_events` caps retained events (further
  /// sampled events are counted as dropped, not stored).
  explicit TraceSink(double sample_rate, std::uint64_t seed = 0x0b5e9u,
                     std::size_t max_events = 1'000'000);

  /// One Bernoulli draw per request; true => the caller should build the
  /// event and call record().  Must be called exactly once per request to
  /// keep the sampled set deterministic.
  bool should_sample() noexcept {
    if (sample_rate_ >= 1.0) return true;
    if (sample_rate_ <= 0.0) return false;
    return rng_.bernoulli(sample_rate_);
  }

  void record(const TraceEvent& event);

  /// Labels subsequently recorded events (e.g. the mechanism name when one
  /// sink spans several simulation runs).  Returns the context id.
  std::uint16_t begin_context(const std::string& name);

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::uint64_t recorded() const noexcept { return events_.size(); }
  /// Events sampled but not retained because max_events was reached.
  std::uint64_t dropped() const noexcept { return dropped_; }
  double sample_rate() const noexcept { return sample_rate_; }

  /// CSV rendering: header +
  /// context,t,server,site,rank,cause,served_by,measured,hops,latency_ms.
  std::string csv() const;

  /// Writes csv() to `path` (truncating).  Throws on I/O error.
  void write_csv(const std::string& path) const;

  /// Checkpointing: sampler RNG position, contexts, retained events and the
  /// dropped count, so a resumed run traces the exact same requests and
  /// exports the exact same CSV as an uninterrupted one.
  void save_state(util::ByteWriter& w) const;
  void restore_state(util::ByteReader& r);

 private:
  double sample_rate_;
  std::size_t max_events_;
  util::Rng rng_;
  std::vector<std::string> contexts_;
  std::vector<std::uint16_t> event_context_;  // parallel to events_
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace cdn::obs
