#include "src/obs/metrics.h"

#include <algorithm>

#include "src/util/error.h"

namespace cdn::obs {

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      buckets_(boundaries_.size() + 1, 0) {
  CDN_EXPECT(!boundaries_.empty(), "histogram needs at least one boundary");
  CDN_EXPECT(std::is_sorted(boundaries_.begin(), boundaries_.end()) &&
                 std::adjacent_find(boundaries_.begin(), boundaries_.end()) ==
                     boundaries_.end(),
             "histogram boundaries must be strictly ascending");
}

void Histogram::observe(double v) noexcept {
  // First boundary >= v: bucket i covers (b_{i-1}, b_i].
  const auto it = std::lower_bound(boundaries_.begin(), boundaries_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - boundaries_.begin())];
  moments_.add(v);
}

void Histogram::merge(const Histogram& other) {
  CDN_EXPECT(boundaries_ == other.boundaries_,
             "cannot merge histograms with different boundaries");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  moments_.merge(other.moments_);
}

double Series::sum() const noexcept {
  double acc = 0.0;
  for (const double v : values_) acc += v;
  return acc;
}

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  CDN_EXPECT(!columns_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<double> row) {
  CDN_EXPECT(row.size() == columns_.size(),
             "table row width must match the column count");
  rows_.push_back(std::move(row));
}

void Table::merge(const Table& other) {
  CDN_EXPECT(columns_ == other.columns_,
             "cannot merge tables with different columns");
  rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
}

std::vector<double> default_latency_bounds_ms() {
  return {2.0, 4.0, 6.0, 8.0, 10.0, 14.0, 20.0, 30.0, 45.0, 65.0, 100.0};
}

}  // namespace cdn::obs
