// Run provenance manifests.
//
// A RunManifest records everything needed to interpret (and trust) an
// exported artifact after the fact: what binary produced it (compiler,
// build type, sanitizer/assertion flags), what inputs it ran on
// (fingerprint hashes reusing the src/recover checkpoint sections, the
// seed, thread/shard shape), and what it cost (wall time, CPU time, peak
// RSS).  It is embedded under a top-level "manifest" key in metrics JSON
// exports and in every BENCH_*.json artifact, so a baseline committed to
// the repo carries its own provenance.
//
//   obs::RunManifest manifest = obs::make_run_manifest("hybridcdn_cli");
//   manifest.seed = sim.seed;
//   manifest.add_fingerprints(sim::detail::checkpoint_fingerprint(...));
//   ... the run ...
//   manifest.finalize();                      // samples wall/cpu/RSS
//   obs::write_json_file(registry, path, &manifest);

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cdn::obs {

class JsonWriter;

struct RunManifest {
  /// Manifest JSON layout version; bump on any field change.
  static constexpr std::uint32_t kSchemaVersion = 1;

  std::string tool;           // producing binary, e.g. "hybridcdn_cli"
  std::uint64_t seed = 0;
  std::uint64_t threads = 0;  // resolved worker threads (0 = not a sim run)
  std::uint64_t shards = 0;   // resolved shard count (0 = sequential/none)

  /// Named 64-bit input hashes; the names match the src/recover checkpoint
  /// fingerprint sections ("config", "system", "placement", ...).  Exported
  /// sorted by name as zero-padded hex.
  std::vector<std::pair<std::string, std::uint64_t>> fingerprints;

  std::string compiler;    // __VERSION__ of the producing build
  std::string build_type;  // CMake config (Release, Debug, ...)
  std::string build_flags; // "ndebug" / "assertions" [+ ",asan"/",tsan"/...]

  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;        // user+system, whole process
  std::uint64_t peak_rss_bytes = 0;

  void add_fingerprint(const std::string& name, std::uint64_t hash);
  /// Appends checkpoint fingerprint sections (recover::FingerprintSection
  /// is exactly this pair type); duplicate names are skipped.
  void add_fingerprints(
      const std::vector<std::pair<std::string, std::uint64_t>>& sections);

  /// Samples wall time (since make_run_manifest), process CPU time, and
  /// peak RSS into the corresponding fields.  Call once at end of run.
  void finalize();

  /// Writes the manifest object as the next JSON value on `w`.
  void write_value(JsonWriter& w) const;
  /// The manifest as a standalone JSON document.
  std::string to_json() const;
  /// Writes `to_json()` to `path` (truncating).  Throws on I/O error.
  void write_json_file(const std::string& path) const;

  /// Steady-clock ns at capture time; set by make_run_manifest and read by
  /// finalize().  Not exported.
  std::uint64_t start_steady_ns = 0;
};

/// A manifest pre-filled with build provenance (compiler, build type,
/// flags) and the wall-clock start mark.
RunManifest make_run_manifest(std::string tool);

}  // namespace cdn::obs
