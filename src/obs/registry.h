// The metric registry: named metrics + JSON snapshot export.
//
// A Registry is the single handle instrumented code receives (always as a
// nullable pointer: `obs::Registry* metrics`).  The contract that keeps the
// hot paths free:
//
//   * a null registry disables everything — instrumented code guards its
//     entire metric block behind one `if (metrics)` pointer check;
//   * metric lookup (`counter("x")`) is a map access and may allocate, so
//     callers resolve their metrics ONCE before a loop and keep pointers;
//   * recording on a resolved metric is a few arithmetic ops, no locks.
//
// The registry is not thread-safe.  Parallel runs give each shard its own
// Registry and combine them afterwards with merge() (histograms, moments
// and counters merge exactly; see obs/metrics.h).
//
// Naming convention: '/'-separated paths, subsystem first —
// "sim/window/hit_ratio", "placement/hybrid/iterations",
// "cache/evictions".  The JSON snapshot groups metrics by kind and sorts
// by name, so snapshots diff cleanly across runs.

#pragma once

#include <map>
#include <string>

#include "src/obs/metrics.h"

namespace cdn::obs {

struct RunManifest;

/// Natural metric-name ordering: digit runs compare numerically, so
/// "server/2/..." sorts before "server/10/...".  Equal-valued runs with
/// different zero padding fall back to plain lexicographic order, keeping
/// the ordering strict and deterministic across platforms.
bool natural_metric_name_less(const std::string& a,
                              const std::string& b) noexcept;

/// Comparator form of natural_metric_name_less for ordered containers.
struct MetricNameLess {
  bool operator()(const std::string& a, const std::string& b) const noexcept {
    return natural_metric_name_less(a, b);
  }
};

class Registry {
 public:
  /// Finds or creates the named metric.  References stay valid for the
  /// registry's lifetime (node-based storage).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `boundaries` is used on first creation only; a later call with
  /// different boundaries throws.
  Histogram& histogram(const std::string& name,
                       std::vector<double> boundaries);
  Series& series(const std::string& name);
  /// `columns` is used on first creation only; a later call with different
  /// columns throws.
  Table& table(const std::string& name, std::vector<std::string> columns);
  TimerStat& timer(const std::string& name);

  /// Lookup without creation; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;
  const Series* find_series(const std::string& name) const;
  const Table* find_table(const std::string& name) const;
  const TimerStat* find_timer(const std::string& name) const;

  /// Combines `other` into this registry: same-named counters add,
  /// histograms/series/tables/timers merge per their own rules, gauges
  /// take `other`'s value (last write wins).
  void merge(const Registry& other);

  std::size_t metric_count() const noexcept;

  /// Serialises every metric into one JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{...},
  ///    "series":{...},"tables":{...},"timers":{...}}
  /// Histograms carry boundaries, bucket counts and moments; tables carry
  /// their column names and rows.  When `manifest` is non-null the run
  /// provenance is embedded first under a "manifest" key.
  std::string to_json(const RunManifest* manifest = nullptr) const;

 private:
  // Ordered map: deterministic export order (natural-numeric, so snapshots
  // diff cleanly across runs and platforms) + stable references.
  template <typename T>
  using MetricMap = std::map<std::string, T, MetricNameLess>;
  MetricMap<Counter> counters_;
  MetricMap<Gauge> gauges_;
  MetricMap<Histogram> histograms_;
  MetricMap<Series> series_;
  MetricMap<Table> tables_;
  MetricMap<TimerStat> timers_;
};

/// Writes `registry.to_json(manifest)` to `path` (truncating).  Throws on
/// I/O error.
void write_json_file(const Registry& registry, const std::string& path,
                     const RunManifest* manifest = nullptr);

}  // namespace cdn::obs
