#include "src/obs/span.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <thread>

#include "src/obs/json_writer.h"
#include "src/util/error.h"

namespace cdn::obs {

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

// Per-thread cache of the last (tracer, buffer) pairing.  Keyed by the
// process-unique tracer id, not the pointer: a destroyed tracer's address
// can be reused by a new one, and an id can't.
struct TlsCache {
  std::uint64_t tracer_id = 0;
  void* buffer = nullptr;
};
thread_local TlsCache tls_cache;

}  // namespace

SpanTracer::SpanTracer(std::size_t events_per_thread)
    : capacity_(std::max<std::size_t>(events_per_thread, 1)),
      tracer_id_(next_tracer_id()),
      epoch_(std::chrono::steady_clock::now()) {}

SpanTracer::~SpanTracer() {
  // Invalidate the calling thread's cache if it points into this tracer.
  // Other threads' caches stay stale but harmless: their ids never match a
  // future tracer (ids are never reused).
  if (tls_cache.tracer_id == tracer_id_) tls_cache = TlsCache{};
}

std::uint64_t SpanTracer::now_ns() const noexcept {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

SpanTracer::ThreadBuffer& SpanTracer::local_buffer() {
  if (tls_cache.tracer_id == tracer_id_) {
    return *static_cast<ThreadBuffer*>(tls_cache.buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  // A cache miss can still be a re-visit (this thread alternated between
  // two live tracers); reuse its buffer so one thread keeps one tid.
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& existing : buffers_) {
    if (existing->owner == self) {
      tls_cache = TlsCache{tracer_id_, existing.get()};
      return *existing;
    }
  }
  auto buffer = std::make_unique<ThreadBuffer>(
      capacity_, static_cast<std::uint32_t>(buffers_.size()));
  buffer->owner = self;
  ThreadBuffer& ref = *buffer;
  buffers_.push_back(std::move(buffer));
  tls_cache = TlsCache{tracer_id_, &ref};
  return ref;
}

void SpanTracer::push(const Event& event) {
  ThreadBuffer& buf = local_buffer();
  Event stamped = event;
  stamped.tid = buf.tid;
  if (buf.size == buf.ring.size()) ++buf.dropped;  // overwriting the oldest
  buf.ring[buf.head] = stamped;
  buf.head = (buf.head + 1) % buf.ring.size();
  buf.size = std::min(buf.size + 1, buf.ring.size());
}

void SpanTracer::complete(const char* name, const char* category,
                          std::uint64_t start_ns, std::uint64_t end_ns,
                          const char* arg_name, double arg_value) {
  Event e;
  e.name = name;
  e.category = category;
  e.ts_ns = start_ns;
  e.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  e.phase = Phase::kComplete;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  push(e);
}

void SpanTracer::instant(const char* name, const char* category,
                         const char* arg_name, double arg_value) {
  Event e;
  e.name = name;
  e.category = category;
  e.ts_ns = now_ns();
  e.phase = Phase::kInstant;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  push(e);
}

void SpanTracer::counter(const char* name, double value) {
  Event e;
  e.name = name;
  e.category = "counter";
  e.ts_ns = now_ns();
  e.phase = Phase::kCounter;
  e.arg_name = "value";
  e.arg_value = value;
  push(e);
}

void SpanTracer::set_thread_name(const std::string& name) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(mu_);
  buf.thread_name = name;
}

const char* SpanTracer::intern(const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& existing : interned_) {
    if (existing == text) return existing.c_str();
  }
  interned_.push_back(text);
  return interned_.back().c_str();
}

std::uint64_t SpanTracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) total += buf->size;
  return total;
}

std::uint64_t SpanTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) total += buf->dropped;
  return total;
}

std::vector<SpanTracer::Event> SpanTracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  for (const auto& buf : buffers_) {
    // Oldest-first: the ring holds `size` events ending just before `head`.
    const std::size_t cap = buf->ring.size();
    const std::size_t start = (buf->head + cap - buf->size) % cap;
    for (std::size_t k = 0; k < buf->size; ++k) {
      out.push_back(buf->ring[(start + k) % cap]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     return a.tid < b.tid;
                   });
  return out;
}

std::string SpanTracer::to_chrome_json() const {
  const std::vector<Event> sorted = events();

  std::vector<std::pair<std::uint32_t, std::string>> thread_names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      if (!buf->thread_name.empty()) {
        thread_names.emplace_back(buf->tid, buf->thread_name);
      }
    }
  }

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  // Thread-name metadata events first; viewers apply them to whole tracks.
  for (const auto& [tid, name] : thread_names) {
    w.begin_object();
    w.key("name");
    w.value("thread_name");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(static_cast<std::uint64_t>(tid));
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value(name);
    w.end_object();
    w.end_object();
  }

  for (const Event& e : sorted) {
    w.begin_object();
    w.key("name");
    w.value(e.name != nullptr ? e.name : "");
    w.key("cat");
    w.value(e.category != nullptr ? e.category : "");
    w.key("ph");
    switch (e.phase) {
      case Phase::kComplete:
        w.value("X");
        break;
      case Phase::kInstant:
        w.value("i");
        break;
      case Phase::kCounter:
        w.value("C");
        break;
    }
    // Trace-event timestamps are microseconds; fractional µs keep ns detail.
    w.key("ts");
    w.value(static_cast<double>(e.ts_ns) / 1000.0);
    if (e.phase == Phase::kComplete) {
      w.key("dur");
      w.value(static_cast<double>(e.dur_ns) / 1000.0);
    }
    if (e.phase == Phase::kInstant) {
      w.key("s");
      w.value("t");  // thread-scoped marker
    }
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(static_cast<std::uint64_t>(e.tid));
    if (e.arg_name != nullptr) {
      w.key("args");
      w.begin_object();
      w.key(e.arg_name);
      w.value(e.arg_value);
      w.end_object();
    }
    w.end_object();
  }

  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("otherData");
  w.begin_object();
  w.key("dropped_events");
  w.value(dropped());
  w.end_object();
  w.end_object();
  return w.str();
}

void SpanTracer::write_json_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  CDN_EXPECT(out.good(), "cannot open spans output file: " + path);
  out << to_chrome_json() << '\n';
  CDN_EXPECT(out.good(), "failed writing spans output file: " + path);
}

}  // namespace cdn::obs
