#include "src/obs/json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/util/error.h"

namespace cdn::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  // %.17g round-trips every double; trim to the shortest form that still
  // re-parses exactly so snapshots stay human-readable.
  char buf[32];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    CDN_EXPECT(out_.empty(), "only one top-level JSON value is allowed");
    return;
  }
  if (stack_.back() == Frame::kObject) {
    CDN_EXPECT(key_pending_, "object members need a key() first");
    key_pending_ = false;
    return;
  }
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  CDN_EXPECT(!stack_.empty() && stack_.back() == Frame::kObject,
             "end_object without matching begin_object");
  CDN_EXPECT(!key_pending_, "dangling key at end_object");
  out_ += '}';
  stack_.pop_back();
  needs_comma_.pop_back();
}

void JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  CDN_EXPECT(!stack_.empty() && stack_.back() == Frame::kArray,
             "end_array without matching begin_array");
  out_ += ']';
  stack_.pop_back();
  needs_comma_.pop_back();
}

void JsonWriter::key(const std::string& name) {
  CDN_EXPECT(!stack_.empty() && stack_.back() == Frame::kObject,
             "key() is only valid inside an object");
  CDN_EXPECT(!key_pending_, "two keys in a row");
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  key_pending_ = true;
}

void JsonWriter::value(const std::string& s) {
  before_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
}

void JsonWriter::value(const char* s) { value(std::string(s)); }

void JsonWriter::value(double v) {
  before_value();
  out_ += json_double(v);
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
}

void JsonWriter::null() {
  before_value();
  out_ += "null";
}

const std::string& JsonWriter::str() const {
  CDN_EXPECT(stack_.empty(), "unterminated JSON container");
  return out_;
}

}  // namespace cdn::obs
