// RAII wall-clock probe for profiling hot phases.
//
//   obs::TimerStat* t = metrics ? &metrics->timer("sim/phase/run") : nullptr;
//   {
//     obs::ScopedTimer probe(t);
//     ... the measured region ...
//   }                                  // elapsed time lands in `t`
//
// A null target makes construction and destruction no-ops (the disabled
// path never reads the clock), so instrumented code can create the probe
// unconditionally.

#pragma once

#include <chrono>

#include "src/obs/metrics.h"

namespace cdn::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(TimerStat* target) noexcept : target_(target) {
    if (target_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Records the elapsed time now instead of at scope exit.  Idempotent:
  /// later calls (and the destructor) do nothing.
  void stop() noexcept {
    if (target_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    target_->record_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
    target_ = nullptr;
  }

 private:
  TimerStat* target_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cdn::obs
