// Minimal streaming JSON writer for metric snapshots.
//
// The exporters only ever *write* JSON (there is nothing to parse back in
// this codebase), so a small push-style writer beats a dependency: nesting
// is tracked on a stack, commas are inserted automatically, doubles are
// printed round-trippably, and NaN/Inf — which JSON cannot represent — are
// emitted as null.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cdn::obs {

/// Escapes `s` for use inside a JSON string literal (quotes not included).
std::string json_escape(const std::string& s);

/// Round-trippable JSON number rendering; NaN/Inf become "null".
std::string json_double(double v);

/// Push-style JSON document builder.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("hits"); w.value(std::uint64_t{3});
///   w.key("ratio"); w.value(0.75);
///   w.end_object();
///   w.str();   // {"hits":3,"ratio":0.75}
///
/// Misuse (e.g. a key outside an object, unbalanced end_*) throws
/// PreconditionError rather than emitting malformed output.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits `"name":` — must be inside an object, directly before a value.
  void key(const std::string& name);

  void value(const std::string& s);
  void value(const char* s);
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(bool b);
  void null();

  /// The finished document.  Throws if containers are still open.
  const std::string& str() const;

 private:
  enum class Frame : std::uint8_t { kObject, kArray };
  void before_value();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> needs_comma_;
  bool key_pending_ = false;
};

}  // namespace cdn::obs
