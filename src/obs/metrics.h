// Metric primitives of the observability layer.
//
// Five shapes cover everything the simulator, the placement engines, and
// the cache policies need to report:
//
//   Counter    monotonic event count (requests served, evictions, ...)
//   Gauge      last-written scalar (final hit ratio, replicas created, ...)
//   Histogram  fixed-boundary distribution + streaming moments (latency)
//   Series     append-only numeric time series (per-window hit ratio,
//              cost after each greedy iteration, ...)
//   Table      named columns x rows of doubles — structured iteration logs
//              (one row per committed replica with its benefit breakdown)
//
// plus TimerStat, the accumulation target of obs::ScopedTimer.  Histograms
// and the streaming moments merge exactly (RunningStats-style parallel
// reduction), so per-shard metric sets can be combined after a parallel
// run.  None of the types lock: a metric instance belongs to one thread;
// cross-thread aggregation goes through merge().

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/serial.h"
#include "src/util/stats.h"

namespace cdn::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }
  void merge(const Counter& other) noexcept { value_ += other.value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written scalar.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-boundary histogram with exact streaming moments.
///
/// Ascending boundaries b_0 < ... < b_{K-1} define K+1 buckets:
/// (-inf, b_0], (b_0, b_1], ..., (b_{K-1}, +inf).  Bucket counts answer
/// "how many observations were <= b_i"; the embedded RunningStats keeps
/// exact mean / variance / min / max regardless of bucket resolution.
class Histogram {
 public:
  /// Boundaries must be strictly ascending and non-empty.
  explicit Histogram(std::vector<double> boundaries);

  void observe(double v) noexcept;

  /// Exact merge; both histograms must share identical boundaries.
  void merge(const Histogram& other);

  const std::vector<double>& boundaries() const noexcept {
    return boundaries_;
  }
  /// boundaries().size() + 1 entries; last bucket is the overflow.
  const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }
  std::uint64_t count() const noexcept { return moments_.count(); }
  const util::RunningStats& moments() const noexcept { return moments_; }

  /// Checkpointing.  Boundaries travel with the state so restore works on
  /// a histogram constructed with any (matching-length or not) boundaries.
  void save_state(util::ByteWriter& w) const {
    w.u64(boundaries_.size());
    for (double b : boundaries_) w.f64(b);
    for (std::uint64_t c : buckets_) w.u64(c);
    w.u64(moments_.count());
    w.f64(moments_.mean());
    w.f64(moments_.m2());
    w.f64(moments_.min());
    w.f64(moments_.max());
  }
  void restore_state(util::ByteReader& r) {
    const std::uint64_t k = r.u64();
    r.need(k * 16 + 8, "histogram buckets");
    boundaries_.clear();
    boundaries_.reserve(static_cast<std::size_t>(k));
    for (std::uint64_t i = 0; i < k; ++i) boundaries_.push_back(r.f64());
    buckets_.assign(static_cast<std::size_t>(k) + 1, 0);
    for (auto& c : buckets_) c = r.u64();
    const std::uint64_t n = r.u64();
    const double mean = r.f64();
    const double m2 = r.f64();
    const double mn = r.f64();
    const double mx = r.f64();
    moments_.restore(n, mean, m2, mn, mx);
  }

 private:
  std::vector<double> boundaries_;
  std::vector<std::uint64_t> buckets_;
  util::RunningStats moments_;
};

/// Append-only numeric time series.
class Series {
 public:
  void push(double v) { values_.push_back(v); }
  const std::vector<double>& values() const noexcept { return values_; }
  std::size_t size() const noexcept { return values_.size(); }
  double sum() const noexcept;

  /// Appends `other`'s values (shard concatenation).
  void merge(const Series& other) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  }

 private:
  std::vector<double> values_;
};

/// Structured numeric log: fixed columns, one row per event.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Row length must match the column count.
  void add_row(std::vector<double> row);

  const std::vector<std::string>& columns() const noexcept { return columns_; }
  const std::vector<std::vector<double>>& rows() const noexcept {
    return rows_;
  }
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Appends `other`'s rows; columns must match exactly.
  void merge(const Table& other);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

/// Accumulated wall-clock of one named code region (see obs::ScopedTimer).
class TimerStat {
 public:
  void record_ns(std::uint64_t ns) noexcept {
    total_ns_ += ns;
    per_call_ms_.add(static_cast<double>(ns) * 1e-6);
  }

  std::uint64_t count() const noexcept { return per_call_ms_.count(); }
  std::uint64_t total_ns() const noexcept { return total_ns_; }
  double total_seconds() const noexcept {
    return static_cast<double>(total_ns_) * 1e-9;
  }
  /// Per-invocation latency moments in milliseconds.
  const util::RunningStats& per_call_ms() const noexcept {
    return per_call_ms_;
  }

  void merge(const TimerStat& other) noexcept {
    total_ns_ += other.total_ns_;
    per_call_ms_.merge(other.per_call_ms_);
  }

 private:
  std::uint64_t total_ns_ = 0;
  util::RunningStats per_call_ms_;
};

/// Default latency-histogram boundaries (ms) matching the simulator's
/// 2 ms/hop model: first-hop hits land in the leftmost bucket, long
/// redirects in the tail.
std::vector<double> default_latency_bounds_ms();

}  // namespace cdn::obs
