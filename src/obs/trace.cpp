#include "src/obs/trace.h"

#include <fstream>
#include <sstream>

#include "src/obs/json_writer.h"
#include "src/util/error.h"

namespace cdn::obs {

const char* to_string(EventCause cause) noexcept {
  switch (cause) {
    case EventCause::kReplica: return "replica";
    case EventCause::kCacheHit: return "cache-hit";
    case EventCause::kCacheMiss: return "cache-miss";
    case EventCause::kStaleRefresh: return "stale-refresh";
    case EventCause::kUncacheable: return "uncacheable";
    case EventCause::kFailover: return "failover";
    case EventCause::kFailed: return "failed";
  }
  return "unknown";
}

TraceSink::TraceSink(double sample_rate, std::uint64_t seed,
                     std::size_t max_events)
    : sample_rate_(sample_rate), max_events_(max_events), rng_(seed) {
  CDN_EXPECT(sample_rate >= 0.0 && sample_rate <= 1.0,
             "trace sample rate must be in [0, 1]");
  CDN_EXPECT(max_events >= 1, "trace sink needs room for at least one event");
  contexts_.push_back("");  // default context
}

void TraceSink::record(const TraceEvent& event) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
  event_context_.push_back(
      static_cast<std::uint16_t>(contexts_.size() - 1));
}

std::uint16_t TraceSink::begin_context(const std::string& name) {
  CDN_EXPECT(contexts_.size() < 0xffff, "too many trace contexts");
  contexts_.push_back(name);
  return static_cast<std::uint16_t>(contexts_.size() - 1);
}

std::string TraceSink::csv() const {
  std::ostringstream out;
  out << "context,t,server,site,rank,cause,served_by,measured,hops,"
         "latency_ms\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out << contexts_[event_context_[i]] << ',' << e.t << ',' << e.server
        << ',' << e.site << ',' << e.rank << ',' << to_string(e.cause) << ','
        << e.served_by << ',' << (e.measured ? 1 : 0) << ','
        << json_double(e.hops) << ',' << json_double(e.latency_ms) << '\n';
  }
  return out.str();
}

void TraceSink::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  CDN_EXPECT(out.good(), "cannot open trace output file: " + path);
  out << csv();
  CDN_EXPECT(out.good(), "failed writing trace output file: " + path);
}

}  // namespace cdn::obs
