#include "src/obs/trace.h"

#include <fstream>
#include <sstream>

#include "src/obs/json_writer.h"
#include "src/util/error.h"

namespace cdn::obs {

const char* to_string(EventCause cause) noexcept {
  switch (cause) {
    case EventCause::kReplica: return "replica";
    case EventCause::kCacheHit: return "cache-hit";
    case EventCause::kCacheMiss: return "cache-miss";
    case EventCause::kStaleRefresh: return "stale-refresh";
    case EventCause::kUncacheable: return "uncacheable";
    case EventCause::kFailover: return "failover";
    case EventCause::kFailed: return "failed";
  }
  return "unknown";
}

TraceSink::TraceSink(double sample_rate, std::uint64_t seed,
                     std::size_t max_events)
    : sample_rate_(sample_rate), max_events_(max_events), rng_(seed) {
  CDN_EXPECT(sample_rate >= 0.0 && sample_rate <= 1.0,
             "trace sample rate must be in [0, 1]");
  CDN_EXPECT(max_events >= 1, "trace sink needs room for at least one event");
  contexts_.push_back("");  // default context
}

void TraceSink::record(const TraceEvent& event) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
  event_context_.push_back(
      static_cast<std::uint16_t>(contexts_.size() - 1));
}

std::uint16_t TraceSink::begin_context(const std::string& name) {
  CDN_EXPECT(contexts_.size() < 0xffff, "too many trace contexts");
  contexts_.push_back(name);
  return static_cast<std::uint16_t>(contexts_.size() - 1);
}

std::string TraceSink::csv() const {
  std::ostringstream out;
  out << "context,t,server,site,rank,cause,served_by,measured,hops,"
         "latency_ms\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out << contexts_[event_context_[i]] << ',' << e.t << ',' << e.server
        << ',' << e.site << ',' << e.rank << ',' << to_string(e.cause) << ','
        << e.served_by << ',' << (e.measured ? 1 : 0) << ','
        << json_double(e.hops) << ',' << json_double(e.latency_ms) << '\n';
  }
  return out.str();
}

void TraceSink::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  CDN_EXPECT(out.good(), "cannot open trace output file: " + path);
  out << csv();
  CDN_EXPECT(out.good(), "failed writing trace output file: " + path);
}

void TraceSink::save_state(util::ByteWriter& w) const {
  w.f64(sample_rate_);
  w.u64(max_events_);
  for (const std::uint64_t word : rng_.state()) w.u64(word);
  w.u64(contexts_.size());
  for (const std::string& c : contexts_) w.str(c);
  w.u64(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    w.u64(e.t);
    w.u32(e.server);
    w.u32(e.site);
    w.u32(e.rank);
    w.u8(static_cast<std::uint8_t>(e.cause));
    w.u32(static_cast<std::uint32_t>(e.served_by));
    w.u8(e.measured ? 1 : 0);
    w.f64(e.hops);
    w.f64(e.latency_ms);
    w.u32(event_context_[i]);
  }
  w.u64(dropped_);
}

void TraceSink::restore_state(util::ByteReader& r) {
  sample_rate_ = r.f64();
  CDN_EXPECT(sample_rate_ >= 0.0 && sample_rate_ <= 1.0,
             "trace sample rate must be in [0, 1]");
  max_events_ = static_cast<std::size_t>(r.u64());
  CDN_EXPECT(max_events_ >= 1, "trace sink needs room for at least one event");
  std::array<std::uint64_t, 4> state;
  for (auto& word : state) word = r.u64();
  rng_.set_state(state);
  const std::uint64_t context_count = r.u64();
  CDN_EXPECT(context_count >= 1 && context_count <= 0xffff,
             "trace context count out of range");
  contexts_.clear();
  for (std::uint64_t i = 0; i < context_count; ++i) contexts_.push_back(r.str());
  const std::uint64_t n = r.u64();
  r.need(n * 42, "trace events");
  events_.clear();
  event_context_.clear();
  events_.reserve(static_cast<std::size_t>(n));
  event_context_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    TraceEvent e;
    e.t = r.u64();
    e.server = r.u32();
    e.site = r.u32();
    e.rank = r.u32();
    const std::uint8_t cause = r.u8();
    CDN_EXPECT(cause < kEventCauseCount, "trace event cause out of range");
    e.cause = static_cast<EventCause>(cause);
    e.served_by = static_cast<std::int32_t>(r.u32());
    e.measured = r.u8() != 0;
    e.hops = r.f64();
    e.latency_ms = r.f64();
    events_.push_back(e);
    const std::uint32_t ctx = r.u32();
    CDN_EXPECT(ctx < context_count, "trace event context out of range");
    event_context_.push_back(static_cast<std::uint16_t>(ctx));
  }
  dropped_ = r.u64();
}

}  // namespace cdn::obs
