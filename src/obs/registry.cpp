#include "src/obs/registry.h"

#include <fstream>

#include "src/obs/json_writer.h"
#include "src/obs/run_manifest.h"
#include "src/util/error.h"

namespace cdn::obs {

bool natural_metric_name_less(const std::string& a,
                              const std::string& b) noexcept {
  const auto is_digit = [](char c) { return c >= '0' && c <= '9'; };
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (is_digit(a[i]) && is_digit(b[j])) {
      // Compare the two digit runs numerically: strip leading zeros, then
      // a longer run is larger, then lexicographic on equal lengths.
      std::size_t ea = i;
      std::size_t eb = j;
      while (ea < a.size() && is_digit(a[ea])) ++ea;
      while (eb < b.size() && is_digit(b[eb])) ++eb;
      std::size_t sa = i;
      std::size_t sb = j;
      while (sa + 1 < ea && a[sa] == '0') ++sa;
      while (sb + 1 < eb && b[sb] == '0') ++sb;
      const std::size_t la = ea - sa;
      const std::size_t lb = eb - sb;
      if (la != lb) return la < lb;
      for (std::size_t k = 0; k < la; ++k) {
        if (a[sa + k] != b[sb + k]) return a[sa + k] < b[sb + k];
      }
      i = ea;
      j = eb;
      continue;
    }
    if (a[i] != b[j]) return a[i] < b[j];
    ++i;
    ++j;
  }
  const bool a_done = i >= a.size();
  const bool b_done = j >= b.size();
  if (a_done != b_done) return a_done;  // the exhausted prefix sorts first
  // Token-equal strings (e.g. "x01" vs "x1"): plain lexicographic
  // tie-break keeps the ordering strict.
  return a < b;
}

Counter& Registry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> boundaries) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    CDN_EXPECT(it->second.boundaries() == boundaries,
               "histogram re-registered with different boundaries: " + name);
    return it->second;
  }
  return histograms_.emplace(name, Histogram(std::move(boundaries)))
      .first->second;
}

Series& Registry::series(const std::string& name) { return series_[name]; }

Table& Registry::table(const std::string& name,
                       std::vector<std::string> columns) {
  const auto it = tables_.find(name);
  if (it != tables_.end()) {
    CDN_EXPECT(it->second.columns() == columns,
               "table re-registered with different columns: " + name);
    return it->second;
  }
  return tables_.emplace(name, Table(std::move(columns))).first->second;
}

TimerStat& Registry::timer(const std::string& name) { return timers_[name]; }

const Counter* Registry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const Series* Registry::find_series(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

const Table* Registry::find_table(const std::string& name) const {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const TimerStat* Registry::find_timer(const std::string& name) const {
  const auto it = timers_.find(name);
  return it == timers_.end() ? nullptr : &it->second;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (const auto& [name, g] : other.gauges_) gauges_[name].set(g.value());
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
  for (const auto& [name, s] : other.series_) series_[name].merge(s);
  for (const auto& [name, t] : other.tables_) {
    const auto it = tables_.find(name);
    if (it == tables_.end()) {
      tables_.emplace(name, t);
    } else {
      it->second.merge(t);
    }
  }
  for (const auto& [name, t] : other.timers_) timers_[name].merge(t);
}

std::size_t Registry::metric_count() const noexcept {
  return counters_.size() + gauges_.size() + histograms_.size() +
         series_.size() + tables_.size() + timers_.size();
}

namespace {

void write_moments(JsonWriter& w, const util::RunningStats& m) {
  w.begin_object();
  w.key("count");
  w.value(m.count());
  w.key("mean");
  w.value(m.mean());
  w.key("stddev");
  w.value(m.stddev());
  w.key("min");
  w.value(m.min());
  w.key("max");
  w.value(m.max());
  w.end_object();
}

}  // namespace

std::string Registry::to_json(const RunManifest* manifest) const {
  JsonWriter w;
  w.begin_object();

  if (manifest != nullptr) {
    w.key("manifest");
    manifest->write_value(w);
  }

  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) {
    w.key(name);
    w.value(c.value());
  }
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name);
    w.value(g.value());
  }
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.key("boundaries");
    w.begin_array();
    for (const double b : h.boundaries()) w.value(b);
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (const std::uint64_t c : h.buckets()) w.value(c);
    w.end_array();
    w.key("moments");
    write_moments(w, h.moments());
    w.end_object();
  }
  w.end_object();

  w.key("series");
  w.begin_object();
  for (const auto& [name, s] : series_) {
    w.key(name);
    w.begin_array();
    for (const double v : s.values()) w.value(v);
    w.end_array();
  }
  w.end_object();

  w.key("tables");
  w.begin_object();
  for (const auto& [name, t] : tables_) {
    w.key(name);
    w.begin_object();
    w.key("columns");
    w.begin_array();
    for (const auto& c : t.columns()) w.value(c);
    w.end_array();
    w.key("rows");
    w.begin_array();
    for (const auto& row : t.rows()) {
      w.begin_array();
      for (const double v : row) w.value(v);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("timers");
  w.begin_object();
  for (const auto& [name, t] : timers_) {
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(t.count());
    w.key("total_seconds");
    w.value(t.total_seconds());
    w.key("per_call_ms");
    write_moments(w, t.per_call_ms());
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.str();
}

void write_json_file(const Registry& registry, const std::string& path,
                     const RunManifest* manifest) {
  std::ofstream out(path, std::ios::trunc);
  CDN_EXPECT(out.good(), "cannot open metrics output file: " + path);
  out << registry.to_json(manifest) << '\n';
  CDN_EXPECT(out.good(), "failed writing metrics output file: " + path);
}

}  // namespace cdn::obs
