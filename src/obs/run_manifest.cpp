#include "src/obs/run_manifest.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>

#include "src/obs/json_writer.h"
#include "src/util/error.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

// Sanitizer detection: GCC defines __SANITIZE_*__, Clang exposes
// __has_feature.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CDN_BUILD_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define CDN_BUILD_TSAN 1
#endif
#if __has_feature(undefined_behavior_sanitizer)
#define CDN_BUILD_UBSAN 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define CDN_BUILD_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__)
#define CDN_BUILD_TSAN 1
#endif

namespace cdn::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string detect_build_flags() {
#ifdef NDEBUG
  std::string flags = "ndebug";
#else
  std::string flags = "assertions";
#endif
#ifdef CDN_BUILD_ASAN
  flags += ",asan";
#endif
#ifdef CDN_BUILD_TSAN
  flags += ",tsan";
#endif
#ifdef CDN_BUILD_UBSAN
  flags += ",ubsan";
#endif
  return flags;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

void RunManifest::add_fingerprint(const std::string& name,
                                  std::uint64_t hash) {
  for (const auto& existing : fingerprints) {
    if (existing.first == name) {
      CDN_EXPECT(existing.second == hash,
                 "manifest fingerprint re-added with different hash: " + name);
      return;
    }
  }
  fingerprints.emplace_back(name, hash);
}

void RunManifest::add_fingerprints(
    const std::vector<std::pair<std::string, std::uint64_t>>& sections) {
  for (const auto& section : sections) {
    bool present = false;
    for (const auto& existing : fingerprints) {
      if (existing.first == section.first) {
        present = true;
        break;
      }
    }
    if (!present) fingerprints.push_back(section);
  }
}

void RunManifest::finalize() {
  if (start_steady_ns != 0) {
    wall_seconds =
        static_cast<double>(steady_now_ns() - start_steady_ns) / 1e9;
  }
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    const auto tv_seconds = [](const timeval& tv) {
      return static_cast<double>(tv.tv_sec) +
             static_cast<double>(tv.tv_usec) / 1e6;
    };
    cpu_seconds = tv_seconds(usage.ru_utime) + tv_seconds(usage.ru_stime);
#if defined(__APPLE__)
    peak_rss_bytes = static_cast<std::uint64_t>(usage.ru_maxrss);
#else
    peak_rss_bytes =
        static_cast<std::uint64_t>(usage.ru_maxrss) * std::uint64_t{1024};
#endif
  }
#endif
}

void RunManifest::write_value(JsonWriter& w) const {
  w.begin_object();
  w.key("schema_version");
  w.value(static_cast<std::uint64_t>(kSchemaVersion));
  w.key("tool");
  w.value(tool);
  w.key("seed");
  w.value(seed);
  w.key("threads");
  w.value(threads);
  w.key("shards");
  w.value(shards);

  w.key("fingerprints");
  w.begin_object();
  {
    std::map<std::string, std::uint64_t> sorted(fingerprints.begin(),
                                                fingerprints.end());
    for (const auto& [name, hash] : sorted) {
      w.key(name);
      w.value(hex64(hash));
    }
  }
  w.end_object();

  w.key("build");
  w.begin_object();
  w.key("compiler");
  w.value(compiler);
  w.key("type");
  w.value(build_type);
  w.key("flags");
  w.value(build_flags);
  w.end_object();

  w.key("resources");
  w.begin_object();
  w.key("wall_seconds");
  w.value(wall_seconds);
  w.key("cpu_seconds");
  w.value(cpu_seconds);
  w.key("peak_rss_bytes");
  w.value(peak_rss_bytes);
  w.end_object();

  w.end_object();
}

std::string RunManifest::to_json() const {
  JsonWriter w;
  write_value(w);
  return w.str();
}

void RunManifest::write_json_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  CDN_EXPECT(out.good(), "cannot open manifest output file: " + path);
  out << to_json() << '\n';
  CDN_EXPECT(out.good(), "failed writing manifest output file: " + path);
}

RunManifest make_run_manifest(std::string tool) {
  RunManifest manifest;
  manifest.tool = std::move(tool);
#ifdef __VERSION__
  manifest.compiler = __VERSION__;
#else
  manifest.compiler = "unknown";
#endif
#ifdef HYBRIDCDN_BUILD_TYPE
  manifest.build_type = HYBRIDCDN_BUILD_TYPE;
#else
  manifest.build_type = "unknown";
#endif
  manifest.build_flags = detect_build_flags();
  manifest.start_steady_ns = steady_now_ns();
  return manifest;
}

}  // namespace cdn::obs
