// Communication costs C(i, j) between CDN servers and to primary sites.
//
// Section 3: "the communication cost between two servers S(i) and S(j),
// denoted by C(i, j), is the cumulative cost of the shortest path (e.g. the
// total number of hops)", known a priori and symmetric.  Each site also has
// a primary copy at an origin node; C(i, SP_j) is the cost from server i to
// site j's primary.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/topology/shortest_paths.h"

namespace cdn::sys {

using ServerIndex = std::uint32_t;
using SiteIndex = std::uint32_t;

/// Dense hop-cost tables: server-to-server (N x N) and server-to-primary
/// (N x M).  Immutable after construction.
class DistanceOracle {
 public:
  /// Builds from explicit tables (row-major).  server_server must be
  /// N x N with zero diagonal; server_primary N x M.  All costs >= 0.
  DistanceOracle(std::size_t servers, std::size_t sites,
                 std::vector<double> server_server,
                 std::vector<double> server_primary);

  /// Extracts the tables from a HopMatrix whose sources are the server
  /// nodes.  `primary_nodes[j]` is the graph node hosting site j's primary.
  static DistanceOracle from_topology(
      const topology::HopMatrix& hops,
      std::span<const topology::NodeId> primary_nodes);

  std::size_t server_count() const noexcept { return servers_; }
  std::size_t site_count() const noexcept { return sites_; }

  /// C(i, k) between two servers; 0 when i == k.
  double server_to_server(ServerIndex i, ServerIndex k) const;

  /// C(i, SP_j) from server i to site j's primary origin.
  double server_to_primary(ServerIndex i, SiteIndex j) const;

  /// Largest finite entry across both tables (report scaling helper).
  double max_cost() const noexcept { return max_cost_; }

 private:
  std::size_t servers_;
  std::size_t sites_;
  std::vector<double> server_server_;   // N x N
  std::vector<double> server_primary_;  // N x M
  double max_cost_ = 0.0;
};

}  // namespace cdn::sys
