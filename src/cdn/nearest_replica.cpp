#include "src/cdn/nearest_replica.h"

#include <algorithm>

#include "src/util/error.h"

namespace cdn::sys {

NearestReplicaIndex::NearestReplicaIndex(const DistanceOracle& distances,
                                         const ReplicaPlacement& placement)
    : distances_(&distances),
      servers_(distances.server_count()),
      sites_(distances.site_count()) {
  CDN_EXPECT(placement.server_count() == servers_ &&
                 placement.site_count() == sites_,
             "placement and distances disagree on dimensions");
  rebuild(placement);
}

void NearestReplicaIndex::rebuild(const ReplicaPlacement& placement) {
  CDN_EXPECT(placement.server_count() == servers_ &&
                 placement.site_count() == sites_,
             "placement and distances disagree on dimensions");
  table_.assign(servers_ * sites_, NearestCopy{});
  for (std::size_t j = 0; j < sites_; ++j) {
    const auto holders = placement.replicators(static_cast<SiteIndex>(j));
    for (std::size_t i = 0; i < servers_; ++i) {
      NearestCopy best;
      best.at_primary = true;
      best.cost = distances_->server_to_primary(static_cast<ServerIndex>(i),
                                                static_cast<SiteIndex>(j));
      for (ServerIndex holder : holders) {
        const double c =
            distances_->server_to_server(static_cast<ServerIndex>(i), holder);
        if (c < best.cost) {
          best = {false, holder, c};
        }
      }
      table_[i * sites_ + j] = best;
    }
  }
}

double NearestReplicaIndex::cost(ServerIndex server, SiteIndex site) const {
  return nearest(server, site).cost;
}

const NearestCopy& NearestReplicaIndex::nearest(ServerIndex server,
                                                SiteIndex site) const {
  CDN_EXPECT(server < servers_ && site < sites_, "index out of range");
  return table_[static_cast<std::size_t>(server) * sites_ + site];
}

std::optional<NearestCopy> NearestReplicaIndex::nearest_live(
    ServerIndex server, SiteIndex site, std::span<const ServerIndex> holders,
    const std::vector<std::uint8_t>& server_up, bool origin_up) const {
  CDN_EXPECT(server < servers_ && site < sites_, "index out of range");
  CDN_EXPECT(server_up.size() == servers_,
             "health mask length must equal the server count");
  std::optional<NearestCopy> best;
  if (origin_up) {
    best = NearestCopy{true, 0, distances_->server_to_primary(server, site)};
  }
  for (const ServerIndex holder : holders) {
    // A holder outside the mask would be an out-of-bounds read — with all
    // copies down that garbage could fabricate a live answer, so a corrupt
    // holder list must fail loudly instead of non-deterministically.
    CDN_EXPECT(holder < servers_,
               "holder list references an out-of-range server");
    if (!server_up[holder]) continue;
    const double c = distances_->server_to_server(server, holder);
    if (!best || c < best->cost) {
      best = NearestCopy{false, holder, c};
    }
  }
  return best;
}

std::vector<NearestCopy> NearestReplicaIndex::nearest_live_candidates(
    ServerIndex server, SiteIndex site, std::span<const ServerIndex> holders,
    const std::vector<std::uint8_t>& server_up, bool origin_up,
    std::size_t max_candidates) const {
  CDN_EXPECT(server < servers_ && site < sites_, "index out of range");
  CDN_EXPECT(server_up.size() == servers_,
             "health mask length must equal the server count");
  std::vector<NearestCopy> live;
  if (max_candidates == 0) return live;
  live.reserve(holders.size() + 1);
  for (const ServerIndex holder : holders) {
    CDN_EXPECT(holder < servers_,
               "holder list references an out-of-range server");
    if (!server_up[holder]) continue;
    live.push_back(
        {false, holder, distances_->server_to_server(server, holder)});
  }
  if (origin_up) {
    live.push_back(
        {true, 0, distances_->server_to_primary(server, site)});
  }
  // Ascending cost; at equal cost prefer replicas over the primary (a
  // replica win spares the origin), then the lowest server index — a total
  // order, so the ranking is identical on every call and platform.
  std::sort(live.begin(), live.end(),
            [](const NearestCopy& a, const NearestCopy& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              if (a.at_primary != b.at_primary) return !a.at_primary;
              return a.server < b.server;
            });
  if (live.size() > max_candidates) live.resize(max_candidates);
  return live;
}

std::vector<ServerIndex> NearestReplicaIndex::on_replica_added(
    ServerIndex holder, SiteIndex site) {
  CDN_EXPECT(holder < servers_ && site < sites_, "index out of range");
  std::vector<ServerIndex> changed;
  for (std::size_t i = 0; i < servers_; ++i) {
    const double c =
        distances_->server_to_server(static_cast<ServerIndex>(i), holder);
    NearestCopy& cell = table_[i * sites_ + site];
    if (c < cell.cost || (i == holder && c <= cell.cost)) {
      cell = {false, holder, c};
      changed.push_back(static_cast<ServerIndex>(i));
    }
  }
  return changed;
}

}  // namespace cdn::sys
