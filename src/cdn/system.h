// Aggregate view of one CDN instance: the hosted sites, the demand they
// attract, the distance tables, and the per-server storage budgets.  This is
// the input contract shared by every placement algorithm and the simulator.

#pragma once

#include <cstdint>
#include <vector>

#include "src/cdn/distance_oracle.h"
#include "src/workload/demand.h"
#include "src/workload/site_catalog.h"

namespace cdn::sys {

/// Non-owning bundle; all referenced components must outlive it.
class CdnSystem {
 public:
  /// `storage_fraction` sets every server's capacity to that fraction of
  /// the cumulative site bytes (the paper's homogeneous-server setting).
  CdnSystem(const workload::SiteCatalog& catalog,
            const workload::DemandMatrix& demand,
            const DistanceOracle& distances, double storage_fraction);

  /// Heterogeneous variant with explicit per-server budgets.
  CdnSystem(const workload::SiteCatalog& catalog,
            const workload::DemandMatrix& demand,
            const DistanceOracle& distances,
            std::vector<std::uint64_t> server_storage);

  const workload::SiteCatalog& catalog() const noexcept { return *catalog_; }
  const workload::DemandMatrix& demand() const noexcept { return *demand_; }
  const DistanceOracle& distances() const noexcept { return *distances_; }

  std::size_t server_count() const noexcept {
    return distances_->server_count();
  }
  std::size_t site_count() const noexcept { return catalog_->site_count(); }

  /// s(i) in bytes.
  std::uint64_t server_storage(ServerIndex server) const;

  /// All budgets (length N).
  const std::vector<std::uint64_t>& server_storage() const noexcept {
    return storage_;
  }

  /// o_j for every site (length M), cached for placement algorithms.
  const std::vector<std::uint64_t>& site_bytes() const noexcept {
    return site_bytes_;
  }

  /// lambda_j for every site (length M).
  std::vector<double> uncacheable_fractions() const;

 private:
  void validate() const;

  const workload::SiteCatalog* catalog_;
  const workload::DemandMatrix* demand_;
  const DistanceOracle* distances_;
  std::vector<std::uint64_t> storage_;
  std::vector<std::uint64_t> site_bytes_;
};

}  // namespace cdn::sys
