#include "src/cdn/replication.h"

#include "src/util/error.h"

namespace cdn::sys {

ReplicaPlacement::ReplicaPlacement(
    std::span<const std::uint64_t> server_storage,
    std::span<const std::uint64_t> site_bytes)
    : storage_(server_storage.begin(), server_storage.end()),
      used_(server_storage.size(), 0),
      site_bytes_(site_bytes.begin(), site_bytes.end()),
      x_(server_storage.size() * site_bytes.size(), 0),
      site_replica_counts_(site_bytes.size(), 0) {
  CDN_EXPECT(!storage_.empty(), "need at least one server");
  CDN_EXPECT(!site_bytes_.empty(), "need at least one site");
  for (std::uint64_t b : site_bytes_) {
    CDN_EXPECT(b > 0, "site sizes must be positive");
  }
}

void ReplicaPlacement::check(ServerIndex server, SiteIndex site) const {
  CDN_EXPECT(server < storage_.size(), "server index out of range");
  CDN_EXPECT(site < site_bytes_.size(), "site index out of range");
}

bool ReplicaPlacement::is_replicated(ServerIndex server,
                                     SiteIndex site) const {
  check(server, site);
  return x_[static_cast<std::size_t>(server) * site_bytes_.size() + site] != 0;
}

bool ReplicaPlacement::can_add(ServerIndex server, SiteIndex site) const {
  check(server, site);
  return !is_replicated(server, site) &&
         used_[server] + site_bytes_[site] <= storage_[server];
}

void ReplicaPlacement::add(ServerIndex server, SiteIndex site) {
  CDN_EXPECT(can_add(server, site),
             "replica does not fit or already exists");
  x_[static_cast<std::size_t>(server) * site_bytes_.size() + site] = 1;
  used_[server] += site_bytes_[site];
  ++site_replica_counts_[site];
  ++replica_count_;
}

void ReplicaPlacement::remove(ServerIndex server, SiteIndex site) {
  CDN_EXPECT(is_replicated(server, site), "replica does not exist");
  x_[static_cast<std::size_t>(server) * site_bytes_.size() + site] = 0;
  used_[server] -= site_bytes_[site];
  --site_replica_counts_[site];
  --replica_count_;
}

std::uint64_t ReplicaPlacement::storage_bytes(ServerIndex server) const {
  CDN_EXPECT(server < storage_.size(), "server index out of range");
  return storage_[server];
}

std::uint64_t ReplicaPlacement::used_bytes(ServerIndex server) const {
  CDN_EXPECT(server < storage_.size(), "server index out of range");
  return used_[server];
}

std::uint64_t ReplicaPlacement::free_bytes(ServerIndex server) const {
  CDN_EXPECT(server < storage_.size(), "server index out of range");
  return storage_[server] - used_[server];
}

std::size_t ReplicaPlacement::replicas_of_site(SiteIndex site) const {
  CDN_EXPECT(site < site_bytes_.size(), "site index out of range");
  return site_replica_counts_[site];
}

std::vector<ServerIndex> ReplicaPlacement::replicators(SiteIndex site) const {
  CDN_EXPECT(site < site_bytes_.size(), "site index out of range");
  std::vector<ServerIndex> out;
  for (std::size_t i = 0; i < storage_.size(); ++i) {
    if (x_[i * site_bytes_.size() + site]) {
      out.push_back(static_cast<ServerIndex>(i));
    }
  }
  return out;
}

std::uint64_t ReplicaPlacement::site_bytes(SiteIndex site) const {
  CDN_EXPECT(site < site_bytes_.size(), "site index out of range");
  return site_bytes_[site];
}

}  // namespace cdn::sys
