// The replication matrix X of Section 3.1 with storage-capacity accounting.
//
// X[i][j] = 1 iff site O_j is replicated at server S(i), subject to
// sum_j X[i][j] * o_j <= s(i) for every server.  Primary copies live on
// origin nodes outside the server set and are not part of X.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/cdn/distance_oracle.h"

namespace cdn::sys {

/// Mutable replica placement with per-server byte budgets.
class ReplicaPlacement {
 public:
  /// `server_storage[i]` = s(i) in bytes; `site_bytes[j]` = o_j.
  ReplicaPlacement(std::span<const std::uint64_t> server_storage,
                   std::span<const std::uint64_t> site_bytes);

  std::size_t server_count() const noexcept { return storage_.size(); }
  std::size_t site_count() const noexcept { return site_bytes_.size(); }

  bool is_replicated(ServerIndex server, SiteIndex site) const;

  /// True if site j's replica fits in server i's remaining storage and is
  /// not already there.
  bool can_add(ServerIndex server, SiteIndex site) const;

  /// Creates the replica.  Requires can_add().
  void add(ServerIndex server, SiteIndex site);

  /// Removes a replica (used by migration-style what-ifs).  Requires the
  /// replica to exist.
  void remove(ServerIndex server, SiteIndex site);

  std::uint64_t storage_bytes(ServerIndex server) const;
  std::uint64_t used_bytes(ServerIndex server) const;
  std::uint64_t free_bytes(ServerIndex server) const;

  /// Total number of replicas across all servers (the R of the paper's
  /// complexity analysis).
  std::size_t replica_count() const noexcept { return replica_count_; }

  /// Number of servers holding site j.
  std::size_t replicas_of_site(SiteIndex site) const;

  /// Servers holding site j, ascending.
  std::vector<ServerIndex> replicators(SiteIndex site) const;

  std::uint64_t site_bytes(SiteIndex site) const;

 private:
  void check(ServerIndex server, SiteIndex site) const;

  std::vector<std::uint64_t> storage_;
  std::vector<std::uint64_t> used_;
  std::vector<std::uint64_t> site_bytes_;
  std::vector<std::uint8_t> x_;  // N x M, row-major
  std::vector<std::uint32_t> site_replica_counts_;
  std::size_t replica_count_ = 0;
};

}  // namespace cdn::sys
