// The aggregate transfer cost D of Section 3.1:
//
//   D = sum_i sum_j R_j^(i),  R_j^(i) = [r_j^(i) - l_j^(i)] * C(i, SN_j^(i)),
//
// where l_j^(i) is the locally satisfied share — all of r when the site is
// replicated at i, or the modelled cache hits h_j^(i) * r_j^(i) otherwise.

#pragma once

#include <functional>

#include "src/cdn/nearest_replica.h"
#include "src/workload/demand.h"

namespace cdn::sys {

/// Provider of the modelled cache hit ratio h_j^(i) (0 for a pure
/// replication scheme).
using HitRatioFn = std::function<double(ServerIndex, SiteIndex)>;

/// Total predicted cost D.  `hit_ratio` may be empty (treated as all-zero).
double total_remote_cost(const workload::DemandMatrix& demand,
                         const NearestReplicaIndex& nearest,
                         const HitRatioFn& hit_ratio = {});

/// D normalised by the total number of requests — the "average cost per
/// request (hops)" metric of Figure 6.
double cost_per_request(const workload::DemandMatrix& demand,
                        const NearestReplicaIndex& nearest,
                        const HitRatioFn& hit_ratio = {});

}  // namespace cdn::sys
