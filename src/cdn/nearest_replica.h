// The nearest-replica index SN_j^(i) of Section 3.
//
// For every (server, site) pair this tracks the cheapest holder of a copy —
// the server itself if it replicates the site, another replicator, or the
// primary origin — and the corresponding redirection cost C(i, SN_j^(i)).

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/cdn/distance_oracle.h"
#include "src/cdn/replication.h"

namespace cdn::sys {

/// Where a request is redirected on a local miss.
struct NearestCopy {
  /// True when the nearest copy is the site's primary origin node.
  bool at_primary = true;
  /// Holder server index (valid when !at_primary).
  ServerIndex server = 0;
  /// C(i, SN_j^(i)); 0 when the local server replicates the site.
  double cost = 0.0;
};

/// Incrementally maintained SN matrix.  Construction assumes the placement's
/// current replicas; on_replica_added() keeps it consistent as a greedy
/// algorithm grows the placement (O(N) per replica).
class NearestReplicaIndex {
 public:
  NearestReplicaIndex(const DistanceOracle& distances,
                      const ReplicaPlacement& placement);

  /// Redirection cost C(i, SN_j^(i)) (0 if replicated locally).
  double cost(ServerIndex server, SiteIndex site) const;

  /// Full nearest-copy record.
  const NearestCopy& nearest(ServerIndex server, SiteIndex site) const;

  /// Health-masked lookup: the cheapest LIVE holder of `site` as seen from
  /// `server`.  `holders` is the site's replicator list (ascending, as
  /// returned by ReplicaPlacement::replicators); holders with
  /// server_up[h] == 0 are skipped, and the primary origin only counts when
  /// `origin_up`.  Returns nullopt when every copy is unreachable — the
  /// request cannot be served at all.  Unlike nearest(), this scans the
  /// holder list (O(|holders|)); it is the failover path, not the hot path.
  std::optional<NearestCopy> nearest_live(
      ServerIndex server, SiteIndex site,
      std::span<const ServerIndex> holders,
      const std::vector<std::uint8_t>& server_up, bool origin_up) const;

  /// Ranked variant of nearest_live() for the live redirector: the up-to-
  /// `max_candidates` cheapest LIVE copies (holders + the primary origin),
  /// ascending by cost with deterministic tie-breaks (replicas before the
  /// primary at equal cost, then lowest server index).  The daemon races
  /// connections across this list in rank order.  Returns an empty vector
  /// — never a partial guess — when every holder and the origin are down.
  std::vector<NearestCopy> nearest_live_candidates(
      ServerIndex server, SiteIndex site,
      std::span<const ServerIndex> holders,
      const std::vector<std::uint8_t>& server_up, bool origin_up,
      std::size_t max_candidates) const;

  /// Updates column `site` after `holder` gained a replica of it.  Returns
  /// the ascending list of servers whose (server, site) cell was modified —
  /// i.e. the servers for which the new replica is now the nearest copy
  /// (always including `holder` itself).  Incremental placement engines use
  /// this to invalidate exactly the candidates whose redirection costs
  /// changed; callers that maintain no caches may ignore the result.
  std::vector<ServerIndex> on_replica_added(ServerIndex holder,
                                            SiteIndex site);

  /// Rebuilds everything from `placement` (validation / after removals).
  void rebuild(const ReplicaPlacement& placement);

  std::size_t server_count() const noexcept { return servers_; }
  std::size_t site_count() const noexcept { return sites_; }

 private:
  const DistanceOracle* distances_;
  std::size_t servers_;
  std::size_t sites_;
  std::vector<NearestCopy> table_;  // N x M row-major
};

}  // namespace cdn::sys
