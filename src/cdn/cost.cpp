#include "src/cdn/cost.h"

#include "src/util/error.h"

namespace cdn::sys {

double total_remote_cost(const workload::DemandMatrix& demand,
                         const NearestReplicaIndex& nearest,
                         const HitRatioFn& hit_ratio) {
  CDN_EXPECT(demand.server_count() == nearest.server_count() &&
                 demand.site_count() == nearest.site_count(),
             "demand and nearest-replica index disagree on dimensions");
  double d = 0.0;
  for (std::size_t i = 0; i < demand.server_count(); ++i) {
    for (std::size_t j = 0; j < demand.site_count(); ++j) {
      const auto server = static_cast<ServerIndex>(i);
      const auto site = static_cast<SiteIndex>(j);
      const double c = nearest.cost(server, site);
      if (c == 0.0) continue;  // replicated locally
      const double h = hit_ratio ? hit_ratio(server, site) : 0.0;
      d += (1.0 - h) * demand.requests(server, site) * c;
    }
  }
  return d;
}

double cost_per_request(const workload::DemandMatrix& demand,
                        const NearestReplicaIndex& nearest,
                        const HitRatioFn& hit_ratio) {
  const double total = demand.total();
  CDN_EXPECT(total > 0.0, "demand matrix has no requests");
  return total_remote_cost(demand, nearest, hit_ratio) / total;
}

}  // namespace cdn::sys
