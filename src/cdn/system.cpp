#include "src/cdn/system.h"

#include <cmath>

#include "src/util/error.h"

namespace cdn::sys {

CdnSystem::CdnSystem(const workload::SiteCatalog& catalog,
                     const workload::DemandMatrix& demand,
                     const DistanceOracle& distances, double storage_fraction)
    : catalog_(&catalog), demand_(&demand), distances_(&distances) {
  CDN_EXPECT(storage_fraction > 0.0 && storage_fraction <= 1.0,
             "storage fraction must be in (0, 1]");
  const auto bytes = static_cast<std::uint64_t>(
      storage_fraction * static_cast<double>(catalog.total_bytes()));
  storage_.assign(distances.server_count(), bytes);
  site_bytes_.resize(catalog.site_count());
  for (std::size_t j = 0; j < site_bytes_.size(); ++j) {
    site_bytes_[j] = catalog.site_bytes(static_cast<workload::SiteId>(j));
  }
  validate();
}

CdnSystem::CdnSystem(const workload::SiteCatalog& catalog,
                     const workload::DemandMatrix& demand,
                     const DistanceOracle& distances,
                     std::vector<std::uint64_t> server_storage)
    : catalog_(&catalog),
      demand_(&demand),
      distances_(&distances),
      storage_(std::move(server_storage)) {
  CDN_EXPECT(storage_.size() == distances.server_count(),
             "one storage budget per server is required");
  site_bytes_.resize(catalog.site_count());
  for (std::size_t j = 0; j < site_bytes_.size(); ++j) {
    site_bytes_[j] = catalog.site_bytes(static_cast<workload::SiteId>(j));
  }
  validate();
}

void CdnSystem::validate() const {
  CDN_EXPECT(demand_->server_count() == distances_->server_count(),
             "demand and distances disagree on server count");
  CDN_EXPECT(demand_->site_count() == catalog_->site_count(),
             "demand and catalog disagree on site count");
  CDN_EXPECT(distances_->site_count() == catalog_->site_count(),
             "distances and catalog disagree on site count");
}

std::uint64_t CdnSystem::server_storage(ServerIndex server) const {
  CDN_EXPECT(server < storage_.size(), "server index out of range");
  return storage_[server];
}

std::vector<double> CdnSystem::uncacheable_fractions() const {
  std::vector<double> out(catalog_->site_count());
  for (std::size_t j = 0; j < out.size(); ++j) {
    out[j] =
        catalog_->uncacheable_fraction(static_cast<workload::SiteId>(j));
  }
  return out;
}

}  // namespace cdn::sys
