#include "src/cdn/distance_oracle.h"

#include <algorithm>

#include "src/util/error.h"

namespace cdn::sys {

DistanceOracle::DistanceOracle(std::size_t servers, std::size_t sites,
                               std::vector<double> server_server,
                               std::vector<double> server_primary)
    : servers_(servers),
      sites_(sites),
      server_server_(std::move(server_server)),
      server_primary_(std::move(server_primary)) {
  CDN_EXPECT(servers_ >= 1 && sites_ >= 1, "need servers and sites");
  CDN_EXPECT(server_server_.size() == servers_ * servers_,
             "server-server table must be N x N");
  CDN_EXPECT(server_primary_.size() == servers_ * sites_,
             "server-primary table must be N x M");
  for (std::size_t i = 0; i < servers_; ++i) {
    CDN_EXPECT(server_server_[i * servers_ + i] == 0.0,
               "self-distance must be zero");
    for (std::size_t k = 0; k < servers_; ++k) {
      CDN_EXPECT(server_server_[i * servers_ + k] >= 0.0,
                 "costs must be non-negative");
      max_cost_ = std::max(max_cost_, server_server_[i * servers_ + k]);
    }
  }
  for (double c : server_primary_) {
    CDN_EXPECT(c >= 0.0, "costs must be non-negative");
    max_cost_ = std::max(max_cost_, c);
  }
}

DistanceOracle DistanceOracle::from_topology(
    const topology::HopMatrix& hops,
    std::span<const topology::NodeId> primary_nodes) {
  const std::size_t n = hops.source_count();
  const std::size_t m = primary_nodes.size();
  CDN_EXPECT(n >= 1 && m >= 1, "need servers and primaries");
  std::vector<double> ss(n * n);
  std::vector<double> sp(n * m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const double c = hops.cost(i, hops.source_node(k));
      CDN_EXPECT(c != topology::kUnreachableDistance,
                 "servers must be mutually reachable");
      ss[i * n + k] = c;
    }
    for (std::size_t j = 0; j < m; ++j) {
      const double c = hops.cost(i, primary_nodes[j]);
      CDN_EXPECT(c != topology::kUnreachableDistance,
                 "primaries must be reachable from every server");
      sp[i * m + j] = c;
    }
  }
  return DistanceOracle(n, m, std::move(ss), std::move(sp));
}

double DistanceOracle::server_to_server(ServerIndex i, ServerIndex k) const {
  CDN_EXPECT(i < servers_ && k < servers_, "server index out of range");
  return server_server_[static_cast<std::size_t>(i) * servers_ + k];
}

double DistanceOracle::server_to_primary(ServerIndex i, SiteIndex j) const {
  CDN_EXPECT(i < servers_ && j < sites_, "index out of range");
  return server_primary_[static_cast<std::size_t>(i) * sites_ + j];
}

}  // namespace cdn::sys
