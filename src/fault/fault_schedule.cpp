#include "src/fault/fault_schedule.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/text_parse.h"

namespace cdn::fault {

namespace {

void check_interval(std::uint64_t begin, std::uint64_t end) {
  CDN_EXPECT(begin < end, "fault interval must satisfy begin < end");
}

}  // namespace

void FaultSchedule::add_server_outage(std::uint32_t server,
                                      std::uint64_t begin, std::uint64_t end) {
  check_interval(begin, end);
  server_outages_.push_back({server, begin, end});
}

void FaultSchedule::add_origin_outage(std::uint32_t site, std::uint64_t begin,
                                      std::uint64_t end) {
  check_interval(begin, end);
  origin_outages_.push_back({site, begin, end});
}

void FaultSchedule::add_link_degradation(std::uint32_t server,
                                         std::uint64_t begin,
                                         std::uint64_t end,
                                         double latency_multiplier) {
  check_interval(begin, end);
  CDN_EXPECT(std::isfinite(latency_multiplier) && latency_multiplier >= 1.0,
             "link degradation multiplier must be finite and >= 1");
  link_degradations_.push_back({server, begin, end, latency_multiplier});
}

void FaultSchedule::add_demand_surge(std::uint32_t site, std::uint64_t begin,
                                     std::uint64_t end, double multiplier) {
  check_interval(begin, end);
  CDN_EXPECT(std::isfinite(multiplier) && multiplier >= 1.0,
             "demand surge multiplier must be finite and >= 1");
  demand_surges_.push_back({site, begin, end, multiplier});
}

void FaultSchedule::validate(std::size_t server_count,
                             std::size_t site_count) const {
  for (const auto& o : server_outages_) {
    CDN_EXPECT(o.target < server_count,
               "server outage references an out-of-range server");
  }
  for (const auto& o : origin_outages_) {
    CDN_EXPECT(o.target < site_count,
               "origin outage references an out-of-range site");
  }
  for (const auto& d : link_degradations_) {
    CDN_EXPECT(d.server < server_count,
               "link degradation references an out-of-range server");
  }
  for (const auto& s : demand_surges_) {
    CDN_EXPECT(s.site < site_count,
               "demand surge references an out-of-range site");
  }
}

FaultSchedule FaultSchedule::random(std::size_t server_count,
                                    std::size_t site_count,
                                    std::uint64_t horizon,
                                    const RandomFaultParams& params) {
  CDN_EXPECT(params.mtbf_requests > 0.0, "MTBF must be positive");
  CDN_EXPECT(params.mttr_requests > 0.0, "MTTR must be positive");
  CDN_EXPECT(params.origin_mtbf_scale >= 0.0,
             "origin MTBF scale must be non-negative");
  FaultSchedule schedule;
  util::Rng base(params.seed);

  const auto exponential = [](util::Rng& rng, double mean) {
    // Inverse CDF; uniform() < 1 keeps the log argument positive.
    return -mean * std::log(1.0 - rng.uniform());
  };
  const auto renewal = [&](util::Rng rng, double mtbf, double mttr,
                           auto&& emit) {
    double t = exponential(rng, mtbf);  // first failure after an up phase
    while (t < static_cast<double>(horizon)) {
      const double down = exponential(rng, mttr);
      const auto begin = static_cast<std::uint64_t>(t);
      auto end = static_cast<std::uint64_t>(t + down);
      if (end <= begin) end = begin + 1;  // sub-request outages still count
      emit(begin, std::min<std::uint64_t>(end, horizon));
      t = static_cast<double>(end) + exponential(rng, mtbf);
    }
  };

  for (std::size_t i = 0; i < server_count; ++i) {
    renewal(base.fork(i), params.mtbf_requests, params.mttr_requests,
            [&](std::uint64_t b, std::uint64_t e) {
              schedule.add_server_outage(static_cast<std::uint32_t>(i), b, e);
            });
  }
  if (params.origin_mtbf_scale > 0.0) {
    for (std::size_t j = 0; j < site_count; ++j) {
      renewal(base.fork(server_count + j),
              params.mtbf_requests * params.origin_mtbf_scale,
              params.mttr_requests, [&](std::uint64_t b, std::uint64_t e) {
                schedule.add_origin_outage(static_cast<std::uint32_t>(j), b,
                                           e);
              });
    }
  }
  return schedule;
}

namespace {

/// Whitespace tokenizer over one schedule line with 1-based column
/// tracking, so every parse error can say exactly where it happened.
class LineTokens {
 public:
  LineTokens(const std::string& line, std::size_t line_no)
      : line_(line), line_no_(line_no) {}

  /// Location prefix of the NEXT token (or of end-of-line).
  std::string where() const {
    return "fault schedule line " + std::to_string(line_no_) + ", col " +
           std::to_string(util::text_column(
               std::min(next_start(), line_.size())));
  }

  bool at_end() const { return next_start() >= line_.size(); }

  std::string expect(const char* what) {
    const std::size_t start = next_start();
    CDN_EXPECT(start < line_.size(),
               where() + ": expected " + what + ", but the line ended");
    std::size_t end = start;
    while (end < line_.size() && !is_space(line_[end])) ++end;
    token_where_ = "fault schedule line " + std::to_string(line_no_) +
                   ", col " + std::to_string(util::text_column(start));
    pos_ = end;
    return line_.substr(start, end - start);
  }

  std::uint32_t u32(const char* what) {
    const std::string tok = expect(what);
    return util::parse_u32_token(tok, token_where_);
  }
  std::uint64_t u64(const char* what) {
    const std::string tok = expect(what);
    return util::parse_u64_token(tok, token_where_);
  }
  double finite(const char* what) {
    const std::string tok = expect(what);
    return util::parse_finite_double_token(tok, token_where_);
  }
  void literal(const char* word) {
    const std::string tok = expect(word);
    CDN_EXPECT(tok == word, token_where_ + ": expected '" +
                                std::string(word) + "' (got '" + tok + "')");
  }
  void done() {
    CDN_EXPECT(at_end(), where() + ": unexpected trailing token '" +
                             line_.substr(next_start(),
                                          line_.find_first_of(" \t",
                                                              next_start()) -
                                              next_start()) +
                             "'");
  }

  /// Location prefix of the most recently consumed token.
  const std::string& last_where() const { return token_where_; }

 private:
  static bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }
  std::size_t next_start() const {
    std::size_t p = pos_;
    while (p < line_.size() && is_space(line_[p])) ++p;
    return p;
  }

  const std::string& line_;
  std::size_t line_no_;
  std::size_t pos_ = 0;
  std::string token_where_;
};

}  // namespace

FaultSchedule FaultSchedule::parse(const std::string& text) {
  FaultSchedule schedule;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    LineTokens tokens(line, line_no);
    if (tokens.at_end()) continue;  // blank / comment-only line
    const std::string kind = tokens.expect("a fault directive");
    // Interval/multiplier violations from the add_* helpers gain the line
    // location on the way out.
    const auto located = [&](const auto& add) {
      try {
        add();
      } catch (const PreconditionError& e) {
        CDN_EXPECT(false, "fault schedule line " + std::to_string(line_no) +
                              ": " + e.what());
      }
    };
    if (kind == "server" || kind == "origin") {
      const std::uint32_t target = tokens.u32("a target index");
      tokens.literal("down");
      const std::uint64_t begin = tokens.u64("the outage begin");
      const std::uint64_t end = tokens.u64("the outage end");
      tokens.done();
      located([&] {
        if (kind == "server") {
          schedule.add_server_outage(target, begin, end);
        } else {
          schedule.add_origin_outage(target, begin, end);
        }
      });
    } else if (kind == "link") {
      const std::uint32_t server = tokens.u32("a server index");
      tokens.literal("degrade");
      const std::uint64_t begin = tokens.u64("the degradation begin");
      const std::uint64_t end = tokens.u64("the degradation end");
      const double mult = tokens.finite("a latency multiplier");
      tokens.done();
      located([&] { schedule.add_link_degradation(server, begin, end, mult); });
    } else if (kind == "surge") {
      const std::uint32_t site = tokens.u32("a site index");
      const std::uint64_t begin = tokens.u64("the surge begin");
      const std::uint64_t end = tokens.u64("the surge end");
      const double mult = tokens.finite("a demand multiplier");
      tokens.done();
      located([&] { schedule.add_demand_surge(site, begin, end, mult); });
    } else {
      CDN_EXPECT(false, tokens.last_where() + ": unknown fault directive '" +
                            kind + "' (expected server, origin, link or "
                            "surge)");
    }
  }
  return schedule;
}

FaultSchedule FaultSchedule::load(const std::string& path) {
  std::ifstream in(path);
  CDN_EXPECT(in.good(), "cannot open fault schedule file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::string FaultSchedule::serialize() const {
  std::ostringstream out;
  for (const auto& o : server_outages_) {
    out << "server " << o.target << " down " << o.begin << ' ' << o.end
        << '\n';
  }
  for (const auto& o : origin_outages_) {
    out << "origin " << o.target << " down " << o.begin << ' ' << o.end
        << '\n';
  }
  for (const auto& d : link_degradations_) {
    out << "link " << d.server << " degrade " << d.begin << ' ' << d.end
        << ' ' << d.latency_multiplier << '\n';
  }
  for (const auto& s : demand_surges_) {
    out << "surge " << s.site << ' ' << s.begin << ' ' << s.end << ' '
        << s.multiplier << '\n';
  }
  return out.str();
}

FaultTimeline::FaultTimeline(const FaultSchedule& schedule,
                             std::size_t server_count, std::size_t site_count)
    : server_up_mask_(server_count, 1),
      server_down_depth_(server_count, 0),
      origin_down_depth_(site_count, 0),
      link_multiplier_(server_count, 1.0),
      surge_multiplier_(site_count, 1.0),
      surge_depth_(site_count, 0) {
  schedule.validate(server_count, site_count);
  using Kind = Transition::Kind;
  for (const auto& o : schedule.server_outages()) {
    transitions_sorted_.push_back({o.begin, Kind::kServerDown, o.target, 1.0});
    transitions_sorted_.push_back({o.end, Kind::kServerUp, o.target, 1.0});
  }
  for (const auto& o : schedule.origin_outages()) {
    transitions_sorted_.push_back({o.begin, Kind::kOriginDown, o.target, 1.0});
    transitions_sorted_.push_back({o.end, Kind::kOriginUp, o.target, 1.0});
  }
  for (const auto& d : schedule.link_degradations()) {
    transitions_sorted_.push_back(
        {d.begin, Kind::kLinkBegin, d.server, d.latency_multiplier});
    transitions_sorted_.push_back(
        {d.end, Kind::kLinkEnd, d.server, d.latency_multiplier});
  }
  for (const auto& s : schedule.demand_surges()) {
    transitions_sorted_.push_back(
        {s.begin, Kind::kSurgeBegin, s.site, s.multiplier});
    transitions_sorted_.push_back(
        {s.end, Kind::kSurgeEnd, s.site, s.multiplier});
  }
  // Stable ordering: by time, ends before begins at the same instant (a
  // [0,5) outage followed by [5,9) means the server is down throughout),
  // then by kind/target so equal schedules replay identically.
  std::sort(transitions_sorted_.begin(), transitions_sorted_.end(),
            [](const Transition& a, const Transition& b) {
              if (a.time != b.time) return a.time < b.time;
              const bool a_end = a.kind == Kind::kServerUp ||
                                 a.kind == Kind::kOriginUp ||
                                 a.kind == Kind::kLinkEnd ||
                                 a.kind == Kind::kSurgeEnd;
              const bool b_end = b.kind == Kind::kServerUp ||
                                 b.kind == Kind::kOriginUp ||
                                 b.kind == Kind::kLinkEnd ||
                                 b.kind == Kind::kSurgeEnd;
              if (a_end != b_end) return a_end;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.target < b.target;
            });
}

void FaultTimeline::apply(const Transition& tr) {
  using Kind = Transition::Kind;
  switch (tr.kind) {
    case Kind::kServerDown:
      if (server_down_depth_[tr.target]++ == 0) {
        ++servers_down_;
        server_up_mask_[tr.target] = 0;
      }
      break;
    case Kind::kServerUp:
      CDN_CHECK(server_down_depth_[tr.target] > 0,
                "server recovery without a matching outage");
      if (--server_down_depth_[tr.target] == 0) {
        --servers_down_;
        server_up_mask_[tr.target] = 1;
        just_recovered_.push_back(tr.target);
      }
      break;
    case Kind::kOriginDown:
      ++origin_down_depth_[tr.target];
      break;
    case Kind::kOriginUp:
      CDN_CHECK(origin_down_depth_[tr.target] > 0,
                "origin recovery without a matching outage");
      --origin_down_depth_[tr.target];
      break;
    case Kind::kLinkBegin:
      link_multiplier_[tr.target] *= tr.value;
      break;
    case Kind::kLinkEnd:
      link_multiplier_[tr.target] /= tr.value;
      break;
    case Kind::kSurgeBegin:
      if (surge_depth_[tr.target]++ == 0) ++surge_active_;
      surge_multiplier_[tr.target] *= tr.value;
      if (surge_multiplier_[tr.target] > surge_max_) {
        surge_max_ = surge_multiplier_[tr.target];
      }
      break;
    case Kind::kSurgeEnd:
      CDN_CHECK(surge_depth_[tr.target] > 0,
                "surge end without a matching begin");
      if (--surge_depth_[tr.target] == 0) --surge_active_;
      surge_multiplier_[tr.target] /= tr.value;
      recompute_surge_max();
      break;
  }
}

void FaultTimeline::recompute_surge_max() {
  surge_max_ = 1.0;
  if (surge_active_ == 0) return;
  for (const double m : surge_multiplier_) {
    if (m > surge_max_) surge_max_ = m;
  }
}

bool FaultTimeline::advance(std::uint64_t t) {
  just_recovered_.clear();
  bool changed = false;
  while (next_ < transitions_sorted_.size() &&
         transitions_sorted_[next_].time <= t) {
    apply(transitions_sorted_[next_]);
    ++next_;
    ++transitions_;
    changed = true;
  }
  // A back-to-back outage (one ends exactly when the next begins) is a
  // server that never actually came up — no recovery, no cold restart.
  if (!just_recovered_.empty()) {
    std::erase_if(just_recovered_,
                  [&](std::uint32_t s) { return !server_up(s); });
  }
  return changed;
}

}  // namespace cdn::fault
