// Wall-clock driver for the request-time fault timeline.
//
// FaultSchedule expresses every fault on the simulator's clock (the
// request index t).  A live service has no request index — it has a
// monotonic wall clock — so this adapter replays the same schedule at a
// configured rate of `requests_per_second`: wall time w seconds after the
// epoch corresponds to request time t = floor(w * rate).  The redirector
// daemon advances it on every request (and on a periodic tick while idle),
// which keeps the health masks it serves consistent with what a simulator
// running the same schedule at the same rate would see.
//
// advance_to() must be called with non-decreasing time points, exactly
// like FaultTimeline::advance; the epoch is captured at construction (or
// passed explicitly, which is what the tests do — the mapping is a pure
// function of (epoch, rate, now), no hidden clock reads).

#pragma once

#include <chrono>
#include <cstdint>

#include "src/fault/fault_schedule.h"

namespace cdn::fault {

class WallClockTimeline {
 public:
  using Clock = std::chrono::steady_clock;

  /// `requests_per_second` > 0 scales wall time to request time.
  WallClockTimeline(const FaultSchedule& schedule, std::size_t server_count,
                    std::size_t site_count, double requests_per_second,
                    Clock::time_point epoch = Clock::now());

  /// Request-time index corresponding to `now` (0 before the epoch).
  std::uint64_t request_time(Clock::time_point now) const;

  /// Advances the underlying timeline to request_time(now).  Returns true
  /// when any fault state changed.
  bool advance_to(Clock::time_point now);

  const FaultTimeline& timeline() const noexcept { return timeline_; }
  bool server_up(std::uint32_t server) const {
    return timeline_.server_up(server);
  }
  const std::vector<std::uint8_t>& server_up_mask() const noexcept {
    return timeline_.server_up_mask();
  }
  bool origin_up(std::uint32_t site) const {
    return timeline_.origin_up(site);
  }
  double requests_per_second() const noexcept { return rate_; }
  Clock::time_point epoch() const noexcept { return epoch_; }

 private:
  FaultTimeline timeline_;
  double rate_;
  Clock::time_point epoch_;
};

}  // namespace cdn::fault
