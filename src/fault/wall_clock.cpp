#include "src/fault/wall_clock.h"

#include "src/util/error.h"

namespace cdn::fault {

WallClockTimeline::WallClockTimeline(const FaultSchedule& schedule,
                                     std::size_t server_count,
                                     std::size_t site_count,
                                     double requests_per_second,
                                     Clock::time_point epoch)
    : timeline_(schedule, server_count, site_count),
      rate_(requests_per_second),
      epoch_(epoch) {
  CDN_EXPECT(rate_ > 0.0, "requests_per_second must be positive");
}

std::uint64_t WallClockTimeline::request_time(Clock::time_point now) const {
  if (now <= epoch_) return 0;
  const double seconds =
      std::chrono::duration<double>(now - epoch_).count();
  return static_cast<std::uint64_t>(seconds * rate_);
}

bool WallClockTimeline::advance_to(Clock::time_point now) {
  return timeline_.advance(request_time(now));
}

}  // namespace cdn::fault
