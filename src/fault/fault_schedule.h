// Deterministic fault-injection schedule for degraded-mode simulation.
//
// The paper's evaluation (Section 5) assumes a perfectly healthy fleet;
// this module supplies the stress regimes a production CDN must survive:
// server crash/recover intervals, origin (primary) outages, per-server
// link degradation, and flash-crowd demand surges composable with the
// SURGE workload of workload/surge.h.  All faults are expressed on the
// simulator's clock — the request index t — so a schedule plus a seed
// fully determines a run: no wall-clock, no hidden randomness.
//
// Two layers:
//   * FaultSchedule — the declarative interval set.  Built by hand, parsed
//     from a small text format (--fault-schedule), or generated from
//     MTBF/MTTR parameters (random()).
//   * FaultTimeline — the O(1)-per-request stepper the simulator drives:
//     advance(t) applies every transition with time <= t and exposes the
//     current health mask, link multipliers, surge multipliers, and the
//     servers that just recovered (which restart with a cold cache).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/cdn/distance_oracle.h"

namespace cdn::fault {

/// One half-open outage interval [begin, end) in request-time units.
struct OutageInterval {
  std::uint32_t target = 0;  // server or site index, per schedule section
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Multiplies the hop latency of traffic leaving `server` while active
/// (congested or lossy uplink; retransmissions stretch the transfer).
struct LinkDegradation {
  std::uint32_t server = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  double latency_multiplier = 1.0;
};

/// Multiplies `site`'s share of the request mix while active — the
/// flash-crowd regime of the adaptive-replication experiments, now
/// composable with outages.
struct DemandSurge {
  std::uint32_t site = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  double multiplier = 1.0;
};

/// Parameters of random() — independent alternating-renewal up/down
/// processes per server, exponential with the given means.
struct RandomFaultParams {
  /// Mean up-time between failures, in requests.
  double mtbf_requests = 0.0;
  /// Mean time to repair, in requests.
  double mttr_requests = 0.0;
  std::uint64_t seed = 1;
  /// Optional: also take each site's origin down with the same process
  /// scaled by this factor on MTBF (0 disables origin faults).
  double origin_mtbf_scale = 0.0;
};

/// Declarative, order-independent set of fault intervals.
class FaultSchedule {
 public:
  void add_server_outage(std::uint32_t server, std::uint64_t begin,
                         std::uint64_t end);
  void add_origin_outage(std::uint32_t site, std::uint64_t begin,
                         std::uint64_t end);
  void add_link_degradation(std::uint32_t server, std::uint64_t begin,
                            std::uint64_t end, double latency_multiplier);
  void add_demand_surge(std::uint32_t site, std::uint64_t begin,
                        std::uint64_t end, double multiplier);

  bool empty() const noexcept {
    return server_outages_.empty() && origin_outages_.empty() &&
           link_degradations_.empty() && demand_surges_.empty();
  }

  const std::vector<OutageInterval>& server_outages() const noexcept {
    return server_outages_;
  }
  const std::vector<OutageInterval>& origin_outages() const noexcept {
    return origin_outages_;
  }
  const std::vector<LinkDegradation>& link_degradations() const noexcept {
    return link_degradations_;
  }
  const std::vector<DemandSurge>& demand_surges() const noexcept {
    return demand_surges_;
  }

  /// Throws PreconditionError when any interval references a server >= n
  /// or a site >= m.
  void validate(std::size_t server_count, std::size_t site_count) const;

  /// Seed-driven schedule: every server alternates exponential up
  /// (mean mtbf) and down (mean mttr) phases over [0, horizon).  The same
  /// (params, horizon) always yields the same schedule.
  static FaultSchedule random(std::size_t server_count,
                              std::size_t site_count, std::uint64_t horizon,
                              const RandomFaultParams& params);

  /// Text format, one directive per line ('#' starts a comment):
  ///   server <i> down <begin> <end>
  ///   origin <j> down <begin> <end>
  ///   link <i> degrade <begin> <end> <multiplier>
  ///   surge <j> <begin> <end> <multiplier>
  static FaultSchedule parse(const std::string& text);
  static FaultSchedule load(const std::string& path);
  std::string serialize() const;

 private:
  std::vector<OutageInterval> server_outages_;
  std::vector<OutageInterval> origin_outages_;
  std::vector<LinkDegradation> link_degradations_;
  std::vector<DemandSurge> demand_surges_;
};

/// The simulator-facing stepper.  advance(t) must be called with
/// non-decreasing t; it applies every transition scheduled at or before t
/// and is O(transitions) over the whole run, O(1) amortised per request.
class FaultTimeline {
 public:
  FaultTimeline(const FaultSchedule& schedule, std::size_t server_count,
                std::size_t site_count);

  /// Applies all transitions with time <= t.  Returns true when any state
  /// changed; just_recovered() is refreshed on every call.
  bool advance(std::uint64_t t);

  bool server_up(std::uint32_t server) const {
    return server_down_depth_[server] == 0;
  }
  /// Byte mask (1 = up) over all servers, for health-masked lookups.
  const std::vector<std::uint8_t>& server_up_mask() const noexcept {
    return server_up_mask_;
  }
  bool origin_up(std::uint32_t site) const {
    return origin_down_depth_[site] == 0;
  }
  /// Current hop-latency multiplier of traffic leaving `server` (>= 1;
  /// overlapping degradations multiply).
  double latency_multiplier(std::uint32_t server) const {
    return link_multiplier_[server];
  }
  /// Current demand multiplier of `site` (1 when no surge is active).
  double demand_multiplier(std::uint32_t site) const {
    return surge_multiplier_[site];
  }
  /// Max over sites of demand_multiplier() — the rejection-sampling bound.
  double max_demand_multiplier() const noexcept { return surge_max_; }
  bool any_surge_active() const noexcept { return surge_active_ > 0; }
  bool any_server_down() const noexcept { return servers_down_ > 0; }

  /// Servers whose last outage ended at the most recent advance() — they
  /// restart with a cold cache.
  const std::vector<std::uint32_t>& just_recovered() const noexcept {
    return just_recovered_;
  }

  /// Transitions applied so far.
  std::uint64_t transitions() const noexcept { return transitions_; }

 private:
  struct Transition {
    std::uint64_t time = 0;
    enum class Kind : std::uint8_t {
      kServerDown,
      kServerUp,
      kOriginDown,
      kOriginUp,
      kLinkBegin,
      kLinkEnd,
      kSurgeBegin,
      kSurgeEnd,
    } kind = Kind::kServerDown;
    std::uint32_t target = 0;
    double value = 1.0;  // link / surge multiplier
  };

  void apply(const Transition& tr);
  void recompute_surge_max();

  std::vector<Transition> transitions_sorted_;
  std::size_t next_ = 0;
  std::uint64_t transitions_ = 0;

  // Depth counters tolerate overlapping intervals on the same target.
  std::vector<std::uint8_t> server_up_mask_;
  std::vector<std::uint32_t> server_down_depth_;
  std::vector<std::uint32_t> origin_down_depth_;
  std::vector<double> link_multiplier_;
  std::vector<double> surge_multiplier_;
  std::vector<std::uint32_t> surge_depth_;
  std::size_t surge_active_ = 0;
  std::size_t servers_down_ = 0;
  double surge_max_ = 1.0;
  std::vector<std::uint32_t> just_recovered_;
};

}  // namespace cdn::fault
