// Least-Recently-Used byte-capacity cache — the policy modelled analytically
// in Section 3.2 and simulated throughout the paper's evaluation.

#pragma once

#include <cstdint>

#include "src/cache/cache_policy.h"
#include "src/cache/probe_table.h"
#include "src/cache/slot_list.h"

namespace cdn::cache {

/// Classic LRU: open-addressed probe table + arena-backed recency list.
/// All operations O(1) amortised, with the hit path (probe + relink) free
/// of node allocation and bucket-chain pointer chasing.  The recency
/// list's head is the most-recent end (the "rear" of the buffer in the
/// paper's Figure 1); eviction pops the tail.
class LruCache final : public CachePolicy {
 public:
  explicit LruCache(std::uint64_t capacity_bytes);

  bool lookup(ObjectKey key) override;
  void admit(ObjectKey key, std::uint64_t bytes) override;
  bool erase(ObjectKey key) override;
  bool contains(ObjectKey key) const override;
  void set_capacity(std::uint64_t bytes) override;
  void clear() override;

  std::uint64_t capacity_bytes() const override { return capacity_; }
  std::uint64_t used_bytes() const override { return used_; }
  std::size_t object_count() const override { return index_.size(); }

  /// Key that would be evicted next (the least recently used).
  /// Requires a non-empty cache.
  ObjectKey lru_key() const;

  /// Key at the most-recent position.  Requires a non-empty cache.
  ObjectKey mru_key() const;

  void save_state(util::ByteWriter& w) const override;
  void restore_state(util::ByteReader& r) override;

 private:
  struct Node {
    ObjectKey key;
    std::uint64_t bytes;
    std::uint32_t prev;
    std::uint32_t next;
  };

  void evict_one();

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  SlotList<Node> recency_;  // head = most recent
  ProbeTable index_;        // key -> recency_ slot
};

}  // namespace cdn::cache
