#include "src/cache/cache_factory.h"

#include "src/cache/clock_cache.h"
#include "src/cache/delayed_lru_cache.h"
#include "src/cache/fifo_cache.h"
#include "src/cache/lfu_cache.h"
#include "src/cache/lru_cache.h"
#include "src/util/error.h"

namespace cdn::cache {

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru:
      return "lru";
    case PolicyKind::kFifo:
      return "fifo";
    case PolicyKind::kLfu:
      return "lfu";
    case PolicyKind::kClock:
      return "clock";
    case PolicyKind::kDelayedLru:
      return "delayed-lru";
  }
  return "unknown";
}

PolicyKind parse_policy(const std::string& name) {
  if (name == "lru") return PolicyKind::kLru;
  if (name == "fifo") return PolicyKind::kFifo;
  if (name == "lfu") return PolicyKind::kLfu;
  if (name == "clock") return PolicyKind::kClock;
  if (name == "delayed-lru") return PolicyKind::kDelayedLru;
  CDN_EXPECT(false, "unknown cache policy name: " + name);
  return PolicyKind::kLru;  // unreachable
}

std::unique_ptr<CachePolicy> make_cache(PolicyKind kind,
                                        std::uint64_t capacity_bytes) {
  switch (kind) {
    case PolicyKind::kLru:
      return std::make_unique<LruCache>(capacity_bytes);
    case PolicyKind::kFifo:
      return std::make_unique<FifoCache>(capacity_bytes);
    case PolicyKind::kLfu:
      return std::make_unique<LfuCache>(capacity_bytes);
    case PolicyKind::kClock:
      return std::make_unique<ClockCache>(capacity_bytes);
    case PolicyKind::kDelayedLru:
      return std::make_unique<DelayedLruCache>(capacity_bytes);
  }
  CDN_CHECK(false, "unhandled policy kind");
  return nullptr;  // unreachable
}

}  // namespace cdn::cache
