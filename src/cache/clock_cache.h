// CLOCK (second-chance) byte-capacity cache: an LRU approximation with
// cheaper hit handling.  Extension baseline beyond the paper.

#pragma once

#include <cstdint>

#include "src/cache/cache_policy.h"
#include "src/cache/probe_table.h"
#include "src/cache/slot_list.h"

namespace cdn::cache {

/// CLOCK keeps entries on a circular order with a reference bit; the hand
/// clears bits until it finds an unreferenced victim.  The order lives in
/// an arena-backed slot list (the hand wraps tail -> head), so a hit is a
/// probe-table lookup plus one bit set — no list surgery at all.
class ClockCache final : public CachePolicy {
 public:
  explicit ClockCache(std::uint64_t capacity_bytes);

  bool lookup(ObjectKey key) override;
  void admit(ObjectKey key, std::uint64_t bytes) override;
  bool erase(ObjectKey key) override;
  bool contains(ObjectKey key) const override;
  void set_capacity(std::uint64_t bytes) override;
  void clear() override;

  std::uint64_t capacity_bytes() const override { return capacity_; }
  std::uint64_t used_bytes() const override { return used_; }
  std::size_t object_count() const override { return index_.size(); }

  void save_state(util::ByteWriter& w) const override;
  void restore_state(util::ByteReader& r) override;

 private:
  struct Node {
    ObjectKey key;
    std::uint64_t bytes;
    std::uint32_t prev;
    std::uint32_t next;
    bool referenced;
  };

  void evict_one();
  void advance_hand();

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  SlotList<Node> ring_;
  std::uint32_t hand_ = SlotList<Node>::kNil;  // kNil only when empty
  ProbeTable index_;                           // key -> ring_ slot
};

}  // namespace cdn::cache
