// CLOCK (second-chance) byte-capacity cache: an LRU approximation with
// cheaper hit handling.  Extension baseline beyond the paper.

#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/cache/cache_policy.h"

namespace cdn::cache {

/// CLOCK keeps entries on a circular list with a reference bit; the hand
/// clears bits until it finds an unreferenced victim.
class ClockCache final : public CachePolicy {
 public:
  explicit ClockCache(std::uint64_t capacity_bytes);

  bool lookup(ObjectKey key) override;
  void admit(ObjectKey key, std::uint64_t bytes) override;
  bool erase(ObjectKey key) override;
  bool contains(ObjectKey key) const override;
  void set_capacity(std::uint64_t bytes) override;
  void clear() override;

  std::uint64_t capacity_bytes() const override { return capacity_; }
  std::uint64_t used_bytes() const override { return used_; }
  std::size_t object_count() const override { return index_.size(); }

  void save_state(util::ByteWriter& w) const override;
  void restore_state(util::ByteReader& r) override;

 private:
  struct Entry {
    ObjectKey key;
    std::uint64_t bytes;
    bool referenced;
  };
  using Ring = std::list<Entry>;

  void evict_one();
  void advance_hand();

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  Ring ring_;
  Ring::iterator hand_ = ring_.end();
  std::unordered_map<ObjectKey, Ring::iterator> index_;
};

}  // namespace cdn::cache
