#include "src/cache/delayed_lru_cache.h"

#include "src/util/error.h"

namespace cdn::cache {

DelayedLruCache::DelayedLruCache(std::uint64_t capacity_bytes,
                                 std::uint32_t admission_threshold,
                                 std::size_t ghost_entries)
    : inner_(capacity_bytes),
      threshold_(admission_threshold),
      ghost_capacity_(ghost_entries) {
  CDN_EXPECT(admission_threshold >= 1, "admission threshold must be >= 1");
  CDN_EXPECT(ghost_entries >= 1, "ghost directory must hold >= 1 entry");
}

bool DelayedLruCache::lookup(ObjectKey key) { return inner_.lookup(key); }

void DelayedLruCache::note_miss(ObjectKey key) {
  auto it = ghost_index_.find(key);
  if (it != ghost_index_.end()) {
    ++it->second.count;
    ghost_order_.splice(ghost_order_.begin(), ghost_order_, it->second.pos);
    return;
  }
  if (ghost_index_.size() >= ghost_capacity_) {
    ghost_index_.erase(ghost_order_.back());
    ghost_order_.pop_back();
  }
  ghost_order_.push_front(key);
  ghost_index_.emplace(key, GhostEntry{1, ghost_order_.begin()});
}

bool DelayedLruCache::ready_to_admit(ObjectKey key) const {
  const auto it = ghost_index_.find(key);
  return it != ghost_index_.end() && it->second.count >= threshold_;
}

void DelayedLruCache::admit(ObjectKey key, std::uint64_t bytes) {
  if (threshold_ == 1) {
    inner_.admit(key, bytes);
    return;
  }
  note_miss(key);
  if (ready_to_admit(key)) {
    inner_.admit(key, bytes);
    if (inner_.contains(key)) {
      auto it = ghost_index_.find(key);
      if (it != ghost_index_.end()) {
        ghost_order_.erase(it->second.pos);
        ghost_index_.erase(it);
      }
    }
  }
}

bool DelayedLruCache::erase(ObjectKey key) { return inner_.erase(key); }

bool DelayedLruCache::contains(ObjectKey key) const {
  return inner_.contains(key);
}

void DelayedLruCache::set_capacity(std::uint64_t bytes) {
  inner_.set_capacity(bytes);
}

void DelayedLruCache::clear() {
  inner_.clear();
  ghost_order_.clear();
  ghost_index_.clear();
}

}  // namespace cdn::cache
