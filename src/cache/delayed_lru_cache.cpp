#include "src/cache/delayed_lru_cache.h"

#include "src/util/error.h"

namespace cdn::cache {

DelayedLruCache::DelayedLruCache(std::uint64_t capacity_bytes,
                                 std::uint32_t admission_threshold,
                                 std::size_t ghost_entries)
    : inner_(capacity_bytes),
      threshold_(admission_threshold),
      ghost_capacity_(ghost_entries) {
  CDN_EXPECT(admission_threshold >= 1, "admission threshold must be >= 1");
  CDN_EXPECT(ghost_entries >= 1, "ghost directory must hold >= 1 entry");
}

bool DelayedLruCache::lookup(ObjectKey key) { return inner_.lookup(key); }

void DelayedLruCache::note_miss(ObjectKey key) {
  auto it = ghost_index_.find(key);
  if (it != ghost_index_.end()) {
    ++it->second.count;
    ghost_order_.splice(ghost_order_.begin(), ghost_order_, it->second.pos);
    return;
  }
  if (ghost_index_.size() >= ghost_capacity_) {
    ghost_index_.erase(ghost_order_.back());
    ghost_order_.pop_back();
  }
  ghost_order_.push_front(key);
  ghost_index_.emplace(key, GhostEntry{1, ghost_order_.begin()});
}

bool DelayedLruCache::ready_to_admit(ObjectKey key) const {
  const auto it = ghost_index_.find(key);
  return it != ghost_index_.end() && it->second.count >= threshold_;
}

void DelayedLruCache::admit(ObjectKey key, std::uint64_t bytes) {
  if (threshold_ == 1) {
    inner_.admit(key, bytes);
    return;
  }
  note_miss(key);
  if (ready_to_admit(key)) {
    inner_.admit(key, bytes);
    if (inner_.contains(key)) {
      auto it = ghost_index_.find(key);
      if (it != ghost_index_.end()) {
        ghost_order_.erase(it->second.pos);
        ghost_index_.erase(it);
      }
    }
  }
}

bool DelayedLruCache::erase(ObjectKey key) { return inner_.erase(key); }

bool DelayedLruCache::contains(ObjectKey key) const {
  return inner_.contains(key);
}

void DelayedLruCache::set_capacity(std::uint64_t bytes) {
  inner_.set_capacity(bytes);
}

void DelayedLruCache::clear() {
  inner_.clear();
  ghost_order_.clear();
  ghost_index_.clear();
}

void DelayedLruCache::save_state(util::ByteWriter& w) const {
  inner_.save_state(w);
  stats_.save_state(w);
  w.u32(threshold_);
  w.u64(ghost_capacity_);
  w.u64(ghost_order_.size());
  for (const ObjectKey key : ghost_order_) {  // most recent first
    w.u64(key);
    const auto it = ghost_index_.find(key);
    CDN_CHECK(it != ghost_index_.end(), "ghost order/index out of sync");
    w.u32(it->second.count);
  }
}

void DelayedLruCache::restore_state(util::ByteReader& r) {
  clear();
  inner_.restore_state(r);
  stats_.restore_state(r);
  threshold_ = r.u32();
  CDN_EXPECT(threshold_ >= 1, "admission threshold must be >= 1");
  ghost_capacity_ = static_cast<std::size_t>(r.u64());
  CDN_EXPECT(ghost_capacity_ >= 1, "ghost directory must hold >= 1 entry");
  const std::uint64_t n = r.u64();
  r.need(n * 12, "ghost entries");
  CDN_EXPECT(n <= ghost_capacity_, "ghost directory exceeds its capacity");
  for (std::uint64_t i = 0; i < n; ++i) {
    const ObjectKey key = r.u64();
    const std::uint32_t count = r.u32();
    ghost_order_.push_back(key);
    ghost_index_.emplace(key, GhostEntry{count, std::prev(ghost_order_.end())});
  }
}

}  // namespace cdn::cache
