// Open-addressed ObjectKey -> arena-slot index, the fast probe behind the
// LRU/FIFO/CLOCK caches' hit path (docs/PERFORMANCE.md).
//
// Compared to the std::unordered_map the caches used before, a lookup is
// one hash, one cache line of keys probed linearly, and no pointer chase
// through buckets/nodes — the dominant cost of the simulator's per-request
// path.  Values are 32-bit arena slots (node storage lives in the caches'
// flat vectors), deletion is backward-shift (no tombstones, so probe
// distances never degrade), and growth doubles at ~3/4 load.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cdn::cache {

/// Linear-probing hash table from 64-bit keys to 32-bit slot indices.
/// Any key value is valid (emptiness is tracked on the value side).
class ProbeTable {
 public:
  /// Sentinel "no slot": returned by find() on a miss; never a valid value.
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Slot of `key`, or kNil.
  std::uint32_t find(std::uint64_t key) const noexcept {
    if (vals_.empty()) return kNil;
    std::size_t j = bucket(key);
    while (true) {
      const std::uint32_t v = vals_[j];
      if (v == kNil) return kNil;
      if (keys_[j] == key) return v;
      j = (j + 1) & mask_;
    }
  }

  bool contains(std::uint64_t key) const noexcept {
    return find(key) != kNil;
  }

  /// Inserts `key -> slot`.  `key` must not be present; `slot` != kNil.
  void insert(std::uint64_t key, std::uint32_t slot) {
    if ((size_ + 1) * 4 > capacity() * 3) grow();
    std::size_t j = bucket(key);
    while (vals_[j] != kNil) j = (j + 1) & mask_;
    keys_[j] = key;
    vals_[j] = slot;
    ++size_;
  }

  /// Removes `key`; returns false when absent.  Backward-shift deletion:
  /// every displaced follower of the probe chain moves one hole closer to
  /// its ideal bucket, so the table never accumulates tombstones.
  bool erase(std::uint64_t key) noexcept {
    if (vals_.empty()) return false;
    std::size_t j = bucket(key);
    while (true) {
      if (vals_[j] == kNil) return false;
      if (keys_[j] == key) break;
      j = (j + 1) & mask_;
    }
    std::size_t hole = j;
    std::size_t k = (hole + 1) & mask_;
    while (vals_[k] != kNil) {
      const std::size_t ideal = bucket(keys_[k]);
      // Move k into the hole iff the hole lies between k's ideal bucket
      // and k (cyclically) — i.e. k is displaced at least past the hole.
      if (((k - ideal) & mask_) >= ((k - hole) & mask_)) {
        keys_[hole] = keys_[k];
        vals_[hole] = vals_[k];
        hole = k;
      }
      k = (k + 1) & mask_;
    }
    vals_[hole] = kNil;
    --size_;
    return true;
  }

  void clear() noexcept {
    std::fill(vals_.begin(), vals_.end(), kNil);
    size_ = 0;
  }

  /// Pre-sizes the table for `n` keys without rehashing on the way.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 < (n + 1) * 4) cap *= 2;
    if (cap > capacity()) rehash(cap);
  }

  std::size_t size() const noexcept { return size_; }

 private:
  static constexpr std::size_t kMinCapacity = 16;  // power of two

  // splitmix64 finalizer: full-avalanche spread of the (sequential-ish)
  // object ids over the bucket space.
  static std::uint64_t mix(std::uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  std::size_t bucket(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(mix(key)) & mask_;
  }

  std::size_t capacity() const noexcept { return vals_.size(); }

  void grow() { rehash(vals_.empty() ? kMinCapacity : capacity() * 2); }

  void rehash(std::size_t new_capacity) {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_vals = std::move(vals_);
    keys_.assign(new_capacity, 0);
    vals_.assign(new_capacity, kNil);
    mask_ = new_capacity - 1;
    for (std::size_t j = 0; j < old_vals.size(); ++j) {
      if (old_vals[j] == kNil) continue;
      std::size_t k = bucket(old_keys[j]);
      while (vals_[k] != kNil) k = (k + 1) & mask_;
      keys_[k] = old_keys[j];
      vals_[k] = old_vals[j];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> vals_;  // kNil = empty bucket
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace cdn::cache
