// Delayed-LRU: an LRU cache that only admits an object after it has been
// requested `admission_threshold` times — the scheme Karlsson & Mahalingam
// [15] found competitive with replica placement algorithms, cited by the
// paper as supporting evidence.  Reference counts for non-resident objects
// live in a bounded LRU "ghost" directory.

#pragma once

#include <cstdint>

#include "src/cache/cache_policy.h"
#include "src/cache/lru_cache.h"

#include <list>
#include <unordered_map>

namespace cdn::cache {

/// LRU with delayed admission.  threshold = 1 degenerates to plain LRU.
class DelayedLruCache final : public CachePolicy {
 public:
  /// `ghost_entries` bounds the miss-counting directory (per-object
  /// metadata only, no bytes).
  DelayedLruCache(std::uint64_t capacity_bytes,
                  std::uint32_t admission_threshold = 2,
                  std::size_t ghost_entries = 1 << 16);

  bool lookup(ObjectKey key) override;
  void admit(ObjectKey key, std::uint64_t bytes) override;
  bool erase(ObjectKey key) override;
  bool contains(ObjectKey key) const override;
  void set_capacity(std::uint64_t bytes) override;
  void clear() override;

  std::uint64_t capacity_bytes() const override {
    return inner_.capacity_bytes();
  }
  std::uint64_t used_bytes() const override { return inner_.used_bytes(); }
  std::size_t object_count() const override { return inner_.object_count(); }

  std::uint32_t admission_threshold() const noexcept { return threshold_; }
  std::size_t ghost_size() const noexcept { return ghost_index_.size(); }

  /// Hits/misses are recorded at this level (CachePolicy::access), but the
  /// churn — admissions past the threshold, evictions — happens inside the
  /// wrapped LRU, which records it into its own stats.  The override folds
  /// both together so callers see one complete view.
  const CacheStats& stats() const noexcept override {
    merged_stats_ = stats_;
    merged_stats_.merge(inner_.stats());
    return merged_stats_;
  }
  void reset_stats() noexcept override {
    stats_.reset();
    inner_.reset_stats();
  }

  void save_state(util::ByteWriter& w) const override;
  void restore_state(util::ByteReader& r) override;

 private:
  void note_miss(ObjectKey key);
  bool ready_to_admit(ObjectKey key) const;

  LruCache inner_;
  mutable CacheStats merged_stats_;  // scratch for the stats() override
  std::uint32_t threshold_;
  std::size_t ghost_capacity_;
  // Ghost directory: key -> seen-count, LRU-bounded.
  std::list<ObjectKey> ghost_order_;  // front = most recent
  struct GhostEntry {
    std::uint32_t count;
    std::list<ObjectKey>::iterator pos;
  };
  std::unordered_map<ObjectKey, GhostEntry> ghost_index_;
};

}  // namespace cdn::cache
