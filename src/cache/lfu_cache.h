// Least-Frequently-Used byte-capacity cache with O(1) operations via
// frequency buckets (Ketan Shah et al. style).  Ties within a frequency
// bucket break LRU.  Extension baseline beyond the paper.

#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>

#include "src/cache/cache_policy.h"

namespace cdn::cache {

/// In-cache LFU (frequency state is lost on eviction, i.e. "perfect LFU"
/// within a residency period).
class LfuCache final : public CachePolicy {
 public:
  explicit LfuCache(std::uint64_t capacity_bytes);

  bool lookup(ObjectKey key) override;
  void admit(ObjectKey key, std::uint64_t bytes) override;
  bool erase(ObjectKey key) override;
  bool contains(ObjectKey key) const override;
  void set_capacity(std::uint64_t bytes) override;
  void clear() override;

  std::uint64_t capacity_bytes() const override { return capacity_; }
  std::uint64_t used_bytes() const override { return used_; }
  std::size_t object_count() const override { return index_.size(); }

  /// Current reference count of a resident key; 0 if absent.
  std::uint64_t frequency(ObjectKey key) const;

  void save_state(util::ByteWriter& w) const override;
  void restore_state(util::ByteReader& r) override;

 private:
  struct Entry {
    ObjectKey key;
    std::uint64_t bytes;
    std::uint64_t freq;
  };
  // Bucket per frequency; within a bucket, front = most recently touched.
  using Bucket = std::list<Entry>;

  struct Locator {
    std::map<std::uint64_t, Bucket>::iterator bucket;
    Bucket::iterator entry;
  };

  void evict_one();
  void bump(const std::unordered_map<ObjectKey, Locator>::iterator& it);

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::map<std::uint64_t, Bucket> buckets_;  // ordered by frequency
  std::unordered_map<ObjectKey, Locator> index_;
};

}  // namespace cdn::cache
