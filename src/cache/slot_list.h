// Intrusive doubly-linked list whose nodes live in one flat slot arena.
//
// Replaces the std::list each cache policy used for its recency/ring order:
// nodes are 32-bit slots into a contiguous vector instead of heap-allocated
// list nodes, so walking neighbours touches a dense array (no per-node
// allocation, no pointer-sized links) and freed slots recycle through an
// internal free list.  Pairs with ProbeTable, whose values are these slots.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cdn::cache {

/// Arena-backed doubly-linked list.  `Node` must expose `std::uint32_t
/// prev, next;` members, which the list owns; all other fields are the
/// caller's payload.  Slot values stay valid until remove()/clear().
template <typename Node>
class SlotList {
 public:
  /// "No slot": list end in prev/next chains and head()/tail() of an
  /// empty list.
  static constexpr std::uint32_t kNil = 0xffffffffu;

  Node& operator[](std::uint32_t slot) noexcept { return nodes_[slot]; }
  const Node& operator[](std::uint32_t slot) const noexcept {
    return nodes_[slot];
  }

  std::uint32_t head() const noexcept { return head_; }
  std::uint32_t tail() const noexcept { return tail_; }
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  void reserve(std::size_t n) { nodes_.reserve(n); }

  /// Claims a slot (recycling freed ones) holding `node`; the slot is not
  /// linked into the list yet — follow with push_front/push_back/
  /// insert_before.
  std::uint32_t alloc(Node node) {
    node.prev = kNil;
    node.next = kNil;
    if (free_ != kNil) {
      const std::uint32_t slot = free_;
      free_ = nodes_[slot].next;
      nodes_[slot] = node;
      return slot;
    }
    nodes_.push_back(node);
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  void push_front(std::uint32_t slot) { insert_before(slot, head_); }

  void push_back(std::uint32_t slot) { insert_before(slot, kNil); }

  /// Links `slot` immediately before `pos`; pos == kNil appends at the end
  /// (the std::list insert-before-end convention).
  void insert_before(std::uint32_t slot, std::uint32_t pos) {
    const std::uint32_t before = pos == kNil ? tail_ : nodes_[pos].prev;
    nodes_[slot].prev = before;
    nodes_[slot].next = pos;
    if (before == kNil) {
      head_ = slot;
    } else {
      nodes_[before].next = slot;
    }
    if (pos == kNil) {
      tail_ = slot;
    } else {
      nodes_[pos].prev = slot;
    }
    ++count_;
  }

  /// Unlinks `slot` and returns it to the free list.  The payload stays
  /// readable until the slot is re-allocated, but callers should copy what
  /// they need first.
  void remove(std::uint32_t slot) {
    unlink(slot);
    nodes_[slot].next = free_;
    free_ = slot;
  }

  /// Re-links `slot` at the head; no-op when it is already there.
  void move_to_front(std::uint32_t slot) {
    if (slot == head_) return;
    unlink(slot);
    insert_before(slot, head_);
  }

  void clear() noexcept {
    nodes_.clear();
    head_ = kNil;
    tail_ = kNil;
    free_ = kNil;
    count_ = 0;
  }

 private:
  void unlink(std::uint32_t slot) noexcept {
    const std::uint32_t p = nodes_[slot].prev;
    const std::uint32_t n = nodes_[slot].next;
    if (p == kNil) {
      head_ = n;
    } else {
      nodes_[p].next = n;
    }
    if (n == kNil) {
      tail_ = p;
    } else {
      nodes_[n].prev = p;
    }
    --count_;
  }

  std::vector<Node> nodes_;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::uint32_t free_ = kNil;  // singly linked through Node::next
  std::size_t count_ = 0;
};

}  // namespace cdn::cache
