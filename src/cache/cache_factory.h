// Factory for cache policies, used by the simulator and ablation benches.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/cache/cache_policy.h"

namespace cdn::cache {

/// Replacement policies available to the simulator.
enum class PolicyKind {
  kLru,         // the paper's policy
  kFifo,
  kLfu,
  kClock,
  kDelayedLru,  // Karlsson & Mahalingam [15] comparator
};

/// Human-readable policy name ("lru", "fifo", ...).
const char* policy_name(PolicyKind kind);

/// Parses a policy name; throws PreconditionError on unknown names.
PolicyKind parse_policy(const std::string& name);

/// Creates a cache of the given kind and byte capacity.
std::unique_ptr<CachePolicy> make_cache(PolicyKind kind,
                                        std::uint64_t capacity_bytes);

}  // namespace cdn::cache
