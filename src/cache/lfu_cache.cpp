#include "src/cache/lfu_cache.h"

#include "src/util/error.h"

namespace cdn::cache {

LfuCache::LfuCache(std::uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

bool LfuCache::lookup(ObjectKey key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  bump(it);
  return true;
}

void LfuCache::bump(
    const std::unordered_map<ObjectKey, Locator>::iterator& it) {
  Locator& loc = it->second;
  Entry entry = *loc.entry;
  loc.bucket->second.erase(loc.entry);
  const bool bucket_empty = loc.bucket->second.empty();
  auto bucket_it = loc.bucket;
  ++entry.freq;
  auto next = buckets_.find(entry.freq);
  if (next == buckets_.end()) {
    next = buckets_.emplace(entry.freq, Bucket{}).first;
  }
  if (bucket_empty) buckets_.erase(bucket_it);
  next->second.push_front(entry);
  loc.bucket = next;
  loc.entry = next->second.begin();
}

void LfuCache::admit(ObjectKey key, std::uint64_t bytes) {
  if (bytes > capacity_) return;
  if (index_.contains(key)) return;
  while (used_ + bytes > capacity_) evict_one();
  auto bucket = buckets_.find(1);
  if (bucket == buckets_.end()) bucket = buckets_.emplace(1, Bucket{}).first;
  bucket->second.push_front({key, bytes, 1});
  index_.emplace(key, Locator{bucket, bucket->second.begin()});
  used_ += bytes;
  stats_.record_admission(bytes);
}

bool LfuCache::erase(ObjectKey key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  Locator& loc = it->second;
  used_ -= loc.entry->bytes;
  loc.bucket->second.erase(loc.entry);
  if (loc.bucket->second.empty()) buckets_.erase(loc.bucket);
  index_.erase(it);
  return true;
}

bool LfuCache::contains(ObjectKey key) const { return index_.contains(key); }

void LfuCache::set_capacity(std::uint64_t bytes) {
  capacity_ = bytes;
  while (used_ > capacity_) evict_one();
}

void LfuCache::clear() {
  buckets_.clear();
  index_.clear();
  used_ = 0;
}

std::uint64_t LfuCache::frequency(ObjectKey key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second.entry->freq;
}

void LfuCache::save_state(util::ByteWriter& w) const {
  w.u64(capacity_);
  stats_.save_state(w);
  w.u64(buckets_.size());
  for (const auto& [freq, bucket] : buckets_) {  // ascending frequency
    w.u64(freq);
    w.u64(bucket.size());
    for (const Entry& e : bucket) {  // most recently touched first
      w.u64(e.key);
      w.u64(e.bytes);
    }
  }
}

void LfuCache::restore_state(util::ByteReader& r) {
  clear();
  capacity_ = r.u64();
  stats_.restore_state(r);
  const std::uint64_t bucket_count = r.u64();
  for (std::uint64_t b = 0; b < bucket_count; ++b) {
    const std::uint64_t freq = r.u64();
    const std::uint64_t n = r.u64();
    r.need(n * 16, "lfu bucket entries");
    const auto bucket = buckets_.emplace(freq, Bucket{}).first;
    for (std::uint64_t i = 0; i < n; ++i) {
      const ObjectKey key = r.u64();
      const std::uint64_t bytes = r.u64();
      bucket->second.push_back({key, bytes, freq});
      index_.emplace(key,
                     Locator{bucket, std::prev(bucket->second.end())});
      used_ += bytes;
    }
  }
  CDN_EXPECT(used_ <= capacity_, "restored cache exceeds its capacity");
}

void LfuCache::evict_one() {
  CDN_DCHECK(!buckets_.empty(), "eviction from empty cache");
  auto lowest = buckets_.begin();
  Bucket& bucket = lowest->second;
  // Back of the bucket = least recently touched at this frequency.
  const Entry& victim = bucket.back();
  used_ -= victim.bytes;
  index_.erase(victim.key);
  stats_.record_eviction(victim.bytes);
  bucket.pop_back();
  if (bucket.empty()) buckets_.erase(lowest);
}

}  // namespace cdn::cache
