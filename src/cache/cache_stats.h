// Hit/miss/byte counters shared by every cache policy.

#pragma once

#include <cstdint>

namespace cdn::cache {

/// Streaming cache statistics.  Byte counters use the requested object's
/// size, so byte_hit_ratio() weights large objects proportionally.
class CacheStats {
 public:
  void record_hit(std::uint64_t bytes) noexcept {
    ++hits_;
    hit_bytes_ += bytes;
  }
  void record_miss(std::uint64_t bytes) noexcept {
    ++misses_;
    miss_bytes_ += bytes;
  }
  void record_eviction() noexcept { ++evictions_; }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t accesses() const noexcept { return hits_ + misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

  /// Request hit ratio — the h of the paper's model.  0 when no accesses.
  double hit_ratio() const noexcept {
    const std::uint64_t n = accesses();
    return n ? static_cast<double>(hits_) / static_cast<double>(n) : 0.0;
  }

  /// Byte-weighted hit ratio.  0 when no bytes requested.
  double byte_hit_ratio() const noexcept {
    const std::uint64_t total = hit_bytes_ + miss_bytes_;
    return total ? static_cast<double>(hit_bytes_) /
                       static_cast<double>(total)
                 : 0.0;
  }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t hit_bytes_ = 0;
  std::uint64_t miss_bytes_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace cdn::cache
