// Hit/miss/churn counters shared by every cache policy.

#pragma once

#include <cstdint>

#include "src/util/serial.h"

namespace cdn::cache {

/// Streaming cache statistics.  Byte counters use the requested object's
/// size, so byte_hit_ratio() weights large objects proportionally.  Churn
/// counters (admissions, evictions and the bytes they moved) quantify how
/// hard the replacement policy is working — the write traffic a real proxy
/// would pay, invisible in the hit ratio alone.
class CacheStats {
 public:
  void record_hit(std::uint64_t bytes) noexcept {
    ++hits_;
    hit_bytes_ += bytes;
  }
  void record_miss(std::uint64_t bytes) noexcept {
    ++misses_;
    miss_bytes_ += bytes;
  }
  void record_admission(std::uint64_t bytes) noexcept {
    ++admissions_;
    admitted_bytes_ += bytes;
  }
  void record_eviction(std::uint64_t bytes) noexcept {
    ++evictions_;
    evicted_bytes_ += bytes;
  }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t accesses() const noexcept { return hits_ + misses_; }
  std::uint64_t admissions() const noexcept { return admissions_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t admitted_bytes() const noexcept { return admitted_bytes_; }
  std::uint64_t evicted_bytes() const noexcept { return evicted_bytes_; }
  /// Total bytes the policy moved in and out of the cache.
  std::uint64_t bytes_churned() const noexcept {
    return admitted_bytes_ + evicted_bytes_;
  }

  /// Request hit ratio — the h of the paper's model.  0 when no accesses.
  double hit_ratio() const noexcept {
    const std::uint64_t n = accesses();
    return n ? static_cast<double>(hits_) / static_cast<double>(n) : 0.0;
  }

  /// Byte-weighted hit ratio.  0 when no bytes requested.
  double byte_hit_ratio() const noexcept {
    const std::uint64_t total = hit_bytes_ + miss_bytes_;
    return total ? static_cast<double>(hit_bytes_) /
                       static_cast<double>(total)
                 : 0.0;
  }

  /// Adds `other`'s counts (fleet-wide aggregation of per-server stats).
  void merge(const CacheStats& other) noexcept {
    hits_ += other.hits_;
    misses_ += other.misses_;
    hit_bytes_ += other.hit_bytes_;
    miss_bytes_ += other.miss_bytes_;
    admissions_ += other.admissions_;
    evictions_ += other.evictions_;
    admitted_bytes_ += other.admitted_bytes_;
    evicted_bytes_ += other.evicted_bytes_;
  }

  void reset() noexcept { *this = CacheStats{}; }

  /// Checkpointing.
  void save_state(util::ByteWriter& w) const {
    w.u64(hits_);
    w.u64(misses_);
    w.u64(hit_bytes_);
    w.u64(miss_bytes_);
    w.u64(admissions_);
    w.u64(evictions_);
    w.u64(admitted_bytes_);
    w.u64(evicted_bytes_);
  }
  void restore_state(util::ByteReader& r) {
    hits_ = r.u64();
    misses_ = r.u64();
    hit_bytes_ = r.u64();
    miss_bytes_ = r.u64();
    admissions_ = r.u64();
    evictions_ = r.u64();
    admitted_bytes_ = r.u64();
    evicted_bytes_ = r.u64();
  }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t hit_bytes_ = 0;
  std::uint64_t miss_bytes_ = 0;
  std::uint64_t admissions_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t admitted_bytes_ = 0;
  std::uint64_t evicted_bytes_ = 0;
};

}  // namespace cdn::cache
