#include "src/cache/lru_cache.h"

#include "src/util/error.h"

namespace cdn::cache {

LruCache::LruCache(std::uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

bool LruCache::lookup(ObjectKey key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  recency_.splice(recency_.begin(), recency_, it->second);
  return true;
}

void LruCache::admit(ObjectKey key, std::uint64_t bytes) {
  if (bytes > capacity_) return;
  if (index_.contains(key)) return;
  while (used_ + bytes > capacity_) evict_one();
  recency_.push_front({key, bytes});
  index_.emplace(key, recency_.begin());
  used_ += bytes;
  stats_.record_admission(bytes);
}

bool LruCache::erase(ObjectKey key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  used_ -= it->second->bytes;
  recency_.erase(it->second);
  index_.erase(it);
  return true;
}

bool LruCache::contains(ObjectKey key) const { return index_.contains(key); }

void LruCache::set_capacity(std::uint64_t bytes) {
  capacity_ = bytes;
  while (used_ > capacity_) evict_one();
}

void LruCache::clear() {
  recency_.clear();
  index_.clear();
  used_ = 0;
}

ObjectKey LruCache::lru_key() const {
  CDN_EXPECT(!recency_.empty(), "lru_key of empty cache");
  return recency_.back().key;
}

ObjectKey LruCache::mru_key() const {
  CDN_EXPECT(!recency_.empty(), "mru_key of empty cache");
  return recency_.front().key;
}

void LruCache::save_state(util::ByteWriter& w) const {
  w.u64(capacity_);
  stats_.save_state(w);
  w.u64(recency_.size());
  for (const Entry& e : recency_) {  // MRU -> LRU
    w.u64(e.key);
    w.u64(e.bytes);
  }
}

void LruCache::restore_state(util::ByteReader& r) {
  clear();
  capacity_ = r.u64();
  stats_.restore_state(r);
  const std::uint64_t n = r.u64();
  r.need(n * 16, "lru entries");
  for (std::uint64_t i = 0; i < n; ++i) {
    const ObjectKey key = r.u64();
    const std::uint64_t bytes = r.u64();
    recency_.push_back({key, bytes});
    index_.emplace(key, std::prev(recency_.end()));
    used_ += bytes;
  }
  CDN_EXPECT(used_ <= capacity_, "restored cache exceeds its capacity");
}

void LruCache::evict_one() {
  CDN_DCHECK(!recency_.empty(), "eviction from empty cache");
  const Entry& victim = recency_.back();
  used_ -= victim.bytes;
  index_.erase(victim.key);
  stats_.record_eviction(victim.bytes);
  recency_.pop_back();
}

}  // namespace cdn::cache
