#include "src/cache/lru_cache.h"

#include "src/util/error.h"

namespace cdn::cache {

namespace {
constexpr std::uint32_t kNil = ProbeTable::kNil;
}  // namespace

LruCache::LruCache(std::uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

bool LruCache::lookup(ObjectKey key) {
  const std::uint32_t slot = index_.find(key);
  if (slot == kNil) return false;
  recency_.move_to_front(slot);
  return true;
}

void LruCache::admit(ObjectKey key, std::uint64_t bytes) {
  if (bytes > capacity_) return;
  if (index_.contains(key)) return;
  while (used_ + bytes > capacity_) evict_one();
  const std::uint32_t slot = recency_.alloc({key, bytes, kNil, kNil});
  recency_.push_front(slot);
  index_.insert(key, slot);
  used_ += bytes;
  stats_.record_admission(bytes);
}

bool LruCache::erase(ObjectKey key) {
  const std::uint32_t slot = index_.find(key);
  if (slot == kNil) return false;
  used_ -= recency_[slot].bytes;
  recency_.remove(slot);
  index_.erase(key);
  return true;
}

bool LruCache::contains(ObjectKey key) const { return index_.contains(key); }

void LruCache::set_capacity(std::uint64_t bytes) {
  capacity_ = bytes;
  while (used_ > capacity_) evict_one();
}

void LruCache::clear() {
  recency_.clear();
  index_.clear();
  used_ = 0;
}

ObjectKey LruCache::lru_key() const {
  CDN_EXPECT(!recency_.empty(), "lru_key of empty cache");
  return recency_[recency_.tail()].key;
}

ObjectKey LruCache::mru_key() const {
  CDN_EXPECT(!recency_.empty(), "mru_key of empty cache");
  return recency_[recency_.head()].key;
}

void LruCache::save_state(util::ByteWriter& w) const {
  w.u64(capacity_);
  stats_.save_state(w);
  w.u64(recency_.size());
  for (std::uint32_t s = recency_.head(); s != kNil; s = recency_[s].next) {
    w.u64(recency_[s].key);  // MRU -> LRU
    w.u64(recency_[s].bytes);
  }
}

void LruCache::restore_state(util::ByteReader& r) {
  clear();
  capacity_ = r.u64();
  stats_.restore_state(r);
  const std::uint64_t n = r.u64();
  r.need(n * 16, "lru entries");
  recency_.reserve(n);
  index_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const ObjectKey key = r.u64();
    const std::uint64_t bytes = r.u64();
    const std::uint32_t slot = recency_.alloc({key, bytes, kNil, kNil});
    recency_.push_back(slot);
    index_.insert(key, slot);
    used_ += bytes;
  }
  CDN_EXPECT(used_ <= capacity_, "restored cache exceeds its capacity");
}

void LruCache::evict_one() {
  CDN_DCHECK(!recency_.empty(), "eviction from empty cache");
  const std::uint32_t victim = recency_.tail();
  used_ -= recency_[victim].bytes;
  index_.erase(recency_[victim].key);
  stats_.record_eviction(recency_[victim].bytes);
  recency_.remove(victim);
}

}  // namespace cdn::cache
