#include "src/cache/clock_cache.h"

#include "src/util/error.h"

namespace cdn::cache {

namespace {
constexpr std::uint32_t kNil = ProbeTable::kNil;
}  // namespace

ClockCache::ClockCache(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

bool ClockCache::lookup(ObjectKey key) {
  const std::uint32_t slot = index_.find(key);
  if (slot == kNil) return false;
  ring_[slot].referenced = true;
  return true;
}

void ClockCache::advance_hand() {
  if (ring_.empty()) {
    hand_ = kNil;
    return;
  }
  hand_ = ring_[hand_].next;
  if (hand_ == kNil) hand_ = ring_.head();  // wrap: the list is a ring
}

void ClockCache::admit(ObjectKey key, std::uint64_t bytes) {
  if (bytes > capacity_) return;
  if (index_.contains(key)) return;
  while (used_ + bytes > capacity_) evict_one();
  // Insert just behind the hand so a full sweep passes everything else first.
  const std::uint32_t pos = ring_.empty() ? kNil : hand_;
  const std::uint32_t slot = ring_.alloc({key, bytes, kNil, kNil, false});
  ring_.insert_before(slot, pos);
  if (ring_.size() == 1) hand_ = slot;
  index_.insert(key, slot);
  used_ += bytes;
  stats_.record_admission(bytes);
}

bool ClockCache::erase(ObjectKey key) {
  const std::uint32_t slot = index_.find(key);
  if (slot == kNil) return false;
  if (hand_ == slot) advance_hand();
  used_ -= ring_[slot].bytes;
  ring_.remove(slot);
  if (ring_.empty()) hand_ = kNil;  // the hand had wrapped onto the victim
  index_.erase(key);
  return true;
}

bool ClockCache::contains(ObjectKey key) const { return index_.contains(key); }

void ClockCache::set_capacity(std::uint64_t bytes) {
  capacity_ = bytes;
  while (used_ > capacity_) evict_one();
}

void ClockCache::clear() {
  ring_.clear();
  index_.clear();
  hand_ = kNil;
  used_ = 0;
}

void ClockCache::save_state(util::ByteWriter& w) const {
  w.u64(capacity_);
  stats_.save_state(w);
  w.u64(ring_.size());
  std::uint64_t hand_offset = static_cast<std::uint64_t>(-1);
  std::uint64_t pos = 0;
  for (std::uint32_t s = ring_.head(); s != kNil; s = ring_[s].next, ++pos) {
    w.u64(ring_[s].key);
    w.u64(ring_[s].bytes);
    w.u8(ring_[s].referenced ? 1 : 0);
    if (s == hand_) hand_offset = pos;
  }
  w.u64(hand_offset);
}

void ClockCache::restore_state(util::ByteReader& r) {
  clear();
  capacity_ = r.u64();
  stats_.restore_state(r);
  const std::uint64_t n = r.u64();
  r.need(n * 17, "clock entries");
  ring_.reserve(n);
  index_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const ObjectKey key = r.u64();
    const std::uint64_t bytes = r.u64();
    const bool referenced = r.u8() != 0;
    const std::uint32_t slot = ring_.alloc({key, bytes, kNil, kNil, referenced});
    ring_.push_back(slot);
    index_.insert(key, slot);
    used_ += bytes;
  }
  const std::uint64_t hand_offset = r.u64();
  if (hand_offset == static_cast<std::uint64_t>(-1)) {
    hand_ = kNil;
  } else {
    CDN_EXPECT(hand_offset < n, "clock hand offset out of range");
    hand_ = ring_.head();
    for (std::uint64_t i = 0; i < hand_offset; ++i) hand_ = ring_[hand_].next;
  }
  CDN_EXPECT(used_ <= capacity_, "restored cache exceeds its capacity");
}

void ClockCache::evict_one() {
  CDN_DCHECK(!ring_.empty(), "eviction from empty cache");
  if (hand_ == kNil) hand_ = ring_.head();
  while (ring_[hand_].referenced) {
    ring_[hand_].referenced = false;
    advance_hand();
  }
  const std::uint32_t victim = hand_;
  advance_hand();
  if (hand_ == victim) hand_ = kNil;  // last element is going away
  used_ -= ring_[victim].bytes;
  index_.erase(ring_[victim].key);
  stats_.record_eviction(ring_[victim].bytes);
  ring_.remove(victim);
  if (hand_ == kNil && !ring_.empty()) hand_ = ring_.head();
}

}  // namespace cdn::cache
