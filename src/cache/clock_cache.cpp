#include "src/cache/clock_cache.h"

#include "src/util/error.h"

namespace cdn::cache {

ClockCache::ClockCache(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

bool ClockCache::lookup(ObjectKey key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  it->second->referenced = true;
  return true;
}

void ClockCache::advance_hand() {
  if (ring_.empty()) {
    hand_ = ring_.end();
    return;
  }
  ++hand_;
  if (hand_ == ring_.end()) hand_ = ring_.begin();
}

void ClockCache::admit(ObjectKey key, std::uint64_t bytes) {
  if (bytes > capacity_) return;
  if (index_.contains(key)) return;
  while (used_ + bytes > capacity_) evict_one();
  // Insert just behind the hand so a full sweep passes everything else first.
  const auto pos = ring_.empty() ? ring_.end() : hand_;
  const auto it = ring_.insert(pos, {key, bytes, false});
  if (ring_.size() == 1) hand_ = it;
  index_.emplace(key, it);
  used_ += bytes;
  stats_.record_admission(bytes);
}

bool ClockCache::erase(ObjectKey key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  if (hand_ == it->second) advance_hand();
  used_ -= it->second->bytes;
  if (ring_.size() == 1) {
    ring_.clear();
    hand_ = ring_.end();
  } else {
    ring_.erase(it->second);
  }
  index_.erase(it);
  return true;
}

bool ClockCache::contains(ObjectKey key) const { return index_.contains(key); }

void ClockCache::set_capacity(std::uint64_t bytes) {
  capacity_ = bytes;
  while (used_ > capacity_) evict_one();
}

void ClockCache::clear() {
  ring_.clear();
  index_.clear();
  hand_ = ring_.end();
  used_ = 0;
}

void ClockCache::evict_one() {
  CDN_DCHECK(!ring_.empty(), "eviction from empty cache");
  while (hand_->referenced) {
    hand_->referenced = false;
    advance_hand();
  }
  const auto victim = hand_;
  advance_hand();
  if (hand_ == victim) hand_ = ring_.end();  // last element is going away
  used_ -= victim->bytes;
  index_.erase(victim->key);
  stats_.record_eviction(victim->bytes);
  ring_.erase(victim);
  if (hand_ == ring_.end() && !ring_.empty()) hand_ = ring_.begin();
}

}  // namespace cdn::cache
