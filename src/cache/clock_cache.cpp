#include "src/cache/clock_cache.h"

#include "src/util/error.h"

namespace cdn::cache {

ClockCache::ClockCache(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

bool ClockCache::lookup(ObjectKey key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  it->second->referenced = true;
  return true;
}

void ClockCache::advance_hand() {
  if (ring_.empty()) {
    hand_ = ring_.end();
    return;
  }
  ++hand_;
  if (hand_ == ring_.end()) hand_ = ring_.begin();
}

void ClockCache::admit(ObjectKey key, std::uint64_t bytes) {
  if (bytes > capacity_) return;
  if (index_.contains(key)) return;
  while (used_ + bytes > capacity_) evict_one();
  // Insert just behind the hand so a full sweep passes everything else first.
  const auto pos = ring_.empty() ? ring_.end() : hand_;
  const auto it = ring_.insert(pos, {key, bytes, false});
  if (ring_.size() == 1) hand_ = it;
  index_.emplace(key, it);
  used_ += bytes;
  stats_.record_admission(bytes);
}

bool ClockCache::erase(ObjectKey key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  if (hand_ == it->second) advance_hand();
  used_ -= it->second->bytes;
  if (ring_.size() == 1) {
    ring_.clear();
    hand_ = ring_.end();
  } else {
    ring_.erase(it->second);
  }
  index_.erase(it);
  return true;
}

bool ClockCache::contains(ObjectKey key) const { return index_.contains(key); }

void ClockCache::set_capacity(std::uint64_t bytes) {
  capacity_ = bytes;
  while (used_ > capacity_) evict_one();
}

void ClockCache::clear() {
  ring_.clear();
  index_.clear();
  hand_ = ring_.end();
  used_ = 0;
}

void ClockCache::save_state(util::ByteWriter& w) const {
  w.u64(capacity_);
  stats_.save_state(w);
  w.u64(ring_.size());
  std::uint64_t hand_offset = 0;
  bool hand_found = false;
  std::uint64_t pos = 0;
  for (auto it = ring_.begin(); it != ring_.end(); ++it, ++pos) {
    w.u64(it->key);
    w.u64(it->bytes);
    w.u8(it->referenced ? 1 : 0);
    if (it == hand_) {
      hand_offset = pos;
      hand_found = true;
    }
  }
  w.u64(hand_found ? hand_offset : static_cast<std::uint64_t>(-1));
}

void ClockCache::restore_state(util::ByteReader& r) {
  clear();
  capacity_ = r.u64();
  stats_.restore_state(r);
  const std::uint64_t n = r.u64();
  r.need(n * 17, "clock entries");
  for (std::uint64_t i = 0; i < n; ++i) {
    const ObjectKey key = r.u64();
    const std::uint64_t bytes = r.u64();
    const bool referenced = r.u8() != 0;
    ring_.push_back({key, bytes, referenced});
    index_.emplace(key, std::prev(ring_.end()));
    used_ += bytes;
  }
  const std::uint64_t hand_offset = r.u64();
  if (hand_offset == static_cast<std::uint64_t>(-1)) {
    hand_ = ring_.end();
  } else {
    CDN_EXPECT(hand_offset < n, "clock hand offset out of range");
    hand_ = ring_.begin();
    std::advance(hand_, static_cast<std::ptrdiff_t>(hand_offset));
  }
  CDN_EXPECT(used_ <= capacity_, "restored cache exceeds its capacity");
}

void ClockCache::evict_one() {
  CDN_DCHECK(!ring_.empty(), "eviction from empty cache");
  while (hand_->referenced) {
    hand_->referenced = false;
    advance_hand();
  }
  const auto victim = hand_;
  advance_hand();
  if (hand_ == victim) hand_ = ring_.end();  // last element is going away
  used_ -= victim->bytes;
  index_.erase(victim->key);
  stats_.record_eviction(victim->bytes);
  ring_.erase(victim);
  if (hand_ == ring_.end() && !ring_.empty()) hand_ = ring_.begin();
}

}  // namespace cdn::cache
