// Byte-capacity object cache interface.
//
// Every CDN server in the simulator runs one cache over the portion of its
// storage not used by replicas.  The paper evaluates plain LRU; FIFO, LFU,
// CLOCK and delayed-LRU (the comparator of Karlsson & Mahalingam [15]) are
// provided for ablations and extensions.

#pragma once

#include <cstdint>

#include "src/cache/cache_stats.h"

namespace cdn::cache {

using ObjectKey = std::uint64_t;

/// Common interface of all byte-capacity replacement policies.
///
/// Invariants every implementation maintains:
///   * used_bytes() <= capacity_bytes() at all times;
///   * an object larger than the capacity is never admitted;
///   * admit() of a resident object is a no-op (sizes are immutable).
class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  /// Looks up `key`; on a hit applies the policy's reference semantics
  /// (e.g. LRU moves the entry to the most-recent position).
  virtual bool lookup(ObjectKey key) = 0;

  /// Inserts `key` of `bytes` size, evicting per policy until it fits.
  /// No-op if already resident or if bytes > capacity.
  virtual void admit(ObjectKey key, std::uint64_t bytes) = 0;

  /// Removes `key` if resident; returns whether it was.
  virtual bool erase(ObjectKey key) = 0;

  /// Residency test without touching recency/frequency state.
  virtual bool contains(ObjectKey key) const = 0;

  /// Shrinks or grows the capacity, evicting per policy when shrinking.
  virtual void set_capacity(std::uint64_t bytes) = 0;

  virtual void clear() = 0;

  virtual std::uint64_t capacity_bytes() const = 0;
  virtual std::uint64_t used_bytes() const = 0;
  /// Number of resident objects.
  virtual std::size_t object_count() const = 0;

  /// Full access path: lookup, and on a miss admit the object.
  /// Returns true on hit.  Updates the embedded statistics either way.
  bool access(ObjectKey key, std::uint64_t bytes) {
    if (lookup(key)) {
      stats_.record_hit(bytes);
      return true;
    }
    stats_.record_miss(bytes);
    admit(key, bytes);
    return false;
  }

  /// access() without the miss-side admission, for when the object cannot
  /// be fetched (every remote copy is down): a hit still serves and both
  /// outcomes still count in the statistics, but nothing enters the cache.
  bool access_no_admit(ObjectKey key, std::uint64_t bytes) {
    if (lookup(key)) {
      stats_.record_hit(bytes);
      return true;
    }
    stats_.record_miss(bytes);
    return false;
  }

  /// Statistics of all accesses since construction or reset_stats().
  /// Virtual so wrapper policies (delayed-LRU) can fold in the churn their
  /// inner cache recorded.
  virtual const CacheStats& stats() const noexcept { return stats_; }
  virtual void reset_stats() noexcept { stats_.reset(); }

  /// Checkpointing: serialises the full replacement state (residency,
  /// recency/frequency order, reference bits, ghost directories) plus the
  /// embedded statistics, so a restored cache behaves byte-identically to
  /// one that lived through every access.  restore_state() expects a cache
  /// constructed with the same policy; capacity travels with the state.
  virtual void save_state(util::ByteWriter& w) const = 0;
  virtual void restore_state(util::ByteReader& r) = 0;

 protected:
  CacheStats stats_;
};

}  // namespace cdn::cache
