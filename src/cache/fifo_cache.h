// First-In-First-Out byte-capacity cache: like LRU but hits do not refresh
// an object's position.  Ablation baseline for the LRU model's sensitivity
// to recency updates.

#pragma once

#include <cstdint>

#include "src/cache/cache_policy.h"
#include "src/cache/probe_table.h"
#include "src/cache/slot_list.h"

namespace cdn::cache {

/// FIFO eviction: objects leave in admission order regardless of hits.
/// Same probe-table + slot-arena layout as LruCache; a hit is a single
/// table probe with no list update at all.
class FifoCache final : public CachePolicy {
 public:
  explicit FifoCache(std::uint64_t capacity_bytes);

  bool lookup(ObjectKey key) override;
  void admit(ObjectKey key, std::uint64_t bytes) override;
  bool erase(ObjectKey key) override;
  bool contains(ObjectKey key) const override;
  void set_capacity(std::uint64_t bytes) override;
  void clear() override;

  std::uint64_t capacity_bytes() const override { return capacity_; }
  std::uint64_t used_bytes() const override { return used_; }
  std::size_t object_count() const override { return index_.size(); }

  void save_state(util::ByteWriter& w) const override;
  void restore_state(util::ByteReader& r) override;

 private:
  struct Node {
    ObjectKey key;
    std::uint64_t bytes;
    std::uint32_t prev;
    std::uint32_t next;
  };

  void evict_one();

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  SlotList<Node> queue_;  // head = newest admission
  ProbeTable index_;      // key -> queue_ slot
};

}  // namespace cdn::cache
