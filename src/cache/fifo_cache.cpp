#include "src/cache/fifo_cache.h"

#include "src/util/error.h"

namespace cdn::cache {

namespace {
constexpr std::uint32_t kNil = ProbeTable::kNil;
}  // namespace

FifoCache::FifoCache(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

bool FifoCache::lookup(ObjectKey key) { return index_.contains(key); }

void FifoCache::admit(ObjectKey key, std::uint64_t bytes) {
  if (bytes > capacity_) return;
  if (index_.contains(key)) return;
  while (used_ + bytes > capacity_) evict_one();
  const std::uint32_t slot = queue_.alloc({key, bytes, kNil, kNil});
  queue_.push_front(slot);
  index_.insert(key, slot);
  used_ += bytes;
  stats_.record_admission(bytes);
}

bool FifoCache::erase(ObjectKey key) {
  const std::uint32_t slot = index_.find(key);
  if (slot == kNil) return false;
  used_ -= queue_[slot].bytes;
  queue_.remove(slot);
  index_.erase(key);
  return true;
}

bool FifoCache::contains(ObjectKey key) const { return index_.contains(key); }

void FifoCache::set_capacity(std::uint64_t bytes) {
  capacity_ = bytes;
  while (used_ > capacity_) evict_one();
}

void FifoCache::clear() {
  queue_.clear();
  index_.clear();
  used_ = 0;
}

void FifoCache::save_state(util::ByteWriter& w) const {
  w.u64(capacity_);
  stats_.save_state(w);
  w.u64(queue_.size());
  for (std::uint32_t s = queue_.head(); s != kNil; s = queue_[s].next) {
    w.u64(queue_[s].key);  // newest -> oldest admission
    w.u64(queue_[s].bytes);
  }
}

void FifoCache::restore_state(util::ByteReader& r) {
  clear();
  capacity_ = r.u64();
  stats_.restore_state(r);
  const std::uint64_t n = r.u64();
  r.need(n * 16, "fifo entries");
  queue_.reserve(n);
  index_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const ObjectKey key = r.u64();
    const std::uint64_t bytes = r.u64();
    const std::uint32_t slot = queue_.alloc({key, bytes, kNil, kNil});
    queue_.push_back(slot);
    index_.insert(key, slot);
    used_ += bytes;
  }
  CDN_EXPECT(used_ <= capacity_, "restored cache exceeds its capacity");
}

void FifoCache::evict_one() {
  CDN_DCHECK(!queue_.empty(), "eviction from empty cache");
  const std::uint32_t victim = queue_.tail();
  used_ -= queue_[victim].bytes;
  index_.erase(queue_[victim].key);
  stats_.record_eviction(queue_[victim].bytes);
  queue_.remove(victim);
}

}  // namespace cdn::cache
