#include "src/cache/fifo_cache.h"

#include "src/util/error.h"

namespace cdn::cache {

FifoCache::FifoCache(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

bool FifoCache::lookup(ObjectKey key) { return index_.contains(key); }

void FifoCache::admit(ObjectKey key, std::uint64_t bytes) {
  if (bytes > capacity_) return;
  if (index_.contains(key)) return;
  while (used_ + bytes > capacity_) evict_one();
  queue_.push_front({key, bytes});
  index_.emplace(key, queue_.begin());
  used_ += bytes;
  stats_.record_admission(bytes);
}

bool FifoCache::erase(ObjectKey key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  used_ -= it->second->bytes;
  queue_.erase(it->second);
  index_.erase(it);
  return true;
}

bool FifoCache::contains(ObjectKey key) const { return index_.contains(key); }

void FifoCache::set_capacity(std::uint64_t bytes) {
  capacity_ = bytes;
  while (used_ > capacity_) evict_one();
}

void FifoCache::clear() {
  queue_.clear();
  index_.clear();
  used_ = 0;
}

void FifoCache::save_state(util::ByteWriter& w) const {
  w.u64(capacity_);
  stats_.save_state(w);
  w.u64(queue_.size());
  for (const Entry& e : queue_) {  // newest -> oldest admission
    w.u64(e.key);
    w.u64(e.bytes);
  }
}

void FifoCache::restore_state(util::ByteReader& r) {
  clear();
  capacity_ = r.u64();
  stats_.restore_state(r);
  const std::uint64_t n = r.u64();
  r.need(n * 16, "fifo entries");
  for (std::uint64_t i = 0; i < n; ++i) {
    const ObjectKey key = r.u64();
    const std::uint64_t bytes = r.u64();
    queue_.push_back({key, bytes});
    index_.emplace(key, std::prev(queue_.end()));
    used_ += bytes;
  }
  CDN_EXPECT(used_ <= capacity_, "restored cache exceeds its capacity");
}

void FifoCache::evict_one() {
  CDN_DCHECK(!queue_.empty(), "eviction from empty cache");
  const Entry& victim = queue_.back();
  used_ -= victim.bytes;
  index_.erase(victim.key);
  stats_.record_eviction(victim.bytes);
  queue_.pop_back();
}

}  // namespace cdn::cache
