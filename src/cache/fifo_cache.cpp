#include "src/cache/fifo_cache.h"

#include "src/util/error.h"

namespace cdn::cache {

FifoCache::FifoCache(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

bool FifoCache::lookup(ObjectKey key) { return index_.contains(key); }

void FifoCache::admit(ObjectKey key, std::uint64_t bytes) {
  if (bytes > capacity_) return;
  if (index_.contains(key)) return;
  while (used_ + bytes > capacity_) evict_one();
  queue_.push_front({key, bytes});
  index_.emplace(key, queue_.begin());
  used_ += bytes;
  stats_.record_admission(bytes);
}

bool FifoCache::erase(ObjectKey key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  used_ -= it->second->bytes;
  queue_.erase(it->second);
  index_.erase(it);
  return true;
}

bool FifoCache::contains(ObjectKey key) const { return index_.contains(key); }

void FifoCache::set_capacity(std::uint64_t bytes) {
  capacity_ = bytes;
  while (used_ > capacity_) evict_one();
}

void FifoCache::clear() {
  queue_.clear();
  index_.clear();
  used_ = 0;
}

void FifoCache::evict_one() {
  CDN_DCHECK(!queue_.empty(), "eviction from empty cache");
  const Entry& victim = queue_.back();
  used_ -= victim.bytes;
  index_.erase(victim.key);
  stats_.record_eviction(victim.bytes);
  queue_.pop_back();
}

}  // namespace cdn::cache
