#include "src/model/hit_ratio_curve.h"

#include <cmath>

#include "src/util/error.h"

namespace cdn::model {

double lru_hit_ratio_exact(const util::ZipfDistribution& zipf, double p,
                           double K) {
  CDN_EXPECT(p >= 0.0 && p <= 1.0, "site popularity must be in [0, 1]");
  CDN_EXPECT(K >= 0.0, "characteristic time must be non-negative");
  if (p == 0.0 || K == 0.0) return 0.0;
  const auto q = zipf.probabilities();
  double h = 0.0;
  for (double qk : q) {
    const double x = p * qk;
    // (1 - x)^K = exp(K * log1p(-x)); x < 1 always since p, qk <= 1 and the
    // degenerate x == 1 case (single object, p == 1) yields survival 0.
    const double survival = x >= 1.0 ? 0.0 : std::exp(K * std::log1p(-x));
    h += qk * (1.0 - survival);
  }
  return h;
}

double lru_hit_ratio_exponential(const util::ZipfDistribution& zipf,
                                 double z) {
  CDN_EXPECT(z >= 0.0, "z must be non-negative");
  const auto q = zipf.probabilities();
  double h = 0.0;
  for (double qk : q) {
    h += qk * (1.0 - std::exp(-z * qk));
  }
  return h;
}

HitRatioCurve::HitRatioCurve(const util::ZipfDistribution& zipf,
                             std::size_t grid_points, double z_min,
                             double z_max)
    : z_min_(z_min), z_max_(z_max) {
  CDN_EXPECT(grid_points >= 2, "grid needs at least 2 points");
  CDN_EXPECT(z_min > 0.0 && z_min < z_max, "need 0 < z_min < z_max");
  values_.resize(grid_points);
  log_z_min_ = std::log(z_min);
  const double log_step =
      (std::log(z_max) - log_z_min_) / static_cast<double>(grid_points - 1);
  inv_log_step_ = 1.0 / log_step;
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double z = std::exp(log_z_min_ + log_step * static_cast<double>(i));
    values_[i] = lru_hit_ratio_exponential(zipf, z);
  }
}

HitRatioCurve::HitRatioCurve(const HitRatioCurve& other)
    : z_min_(other.z_min_),
      z_max_(other.z_max_),
      log_z_min_(other.log_z_min_),
      inv_log_step_(other.inv_log_step_),
      values_(other.values_) {}

HitRatioCurve& HitRatioCurve::operator=(const HitRatioCurve& other) {
  if (this != &other) {
    z_min_ = other.z_min_;
    z_max_ = other.z_max_;
    log_z_min_ = other.log_z_min_;
    inv_log_step_ = other.inv_log_step_;
    values_ = other.values_;
    clamped_.store(0, std::memory_order_relaxed);
  }
  return *this;
}

double HitRatioCurve::evaluate_z(double z) const {
  CDN_DCHECK(z >= 0.0, "z must be non-negative");
  if (z <= 0.0) return 0.0;
  if (z <= z_min_) {
    // H is ~linear in z near 0 (H(z) ~ z * sum q_k^2); interpolate through
    // the origin.
    return values_.front() * (z / z_min_);
  }
  if (z >= z_max_) {
    clamped_.fetch_add(1, std::memory_order_relaxed);
    return values_.back();
  }
  const double pos = (std::log(z) - log_z_min_) * inv_log_step_;
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = lo + 1 < values_.size() ? lo + 1 : lo;
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] + frac * (values_[hi] - values_[lo]);
}

}  // namespace cdn::model
