// Per-server analytical cache state for the hybrid greedy algorithm.
//
// Wraps Eqs. 1 and 2 for one CDN server: which sites are replicated locally,
// how many bytes remain for caching, the resulting LRU slot count B, the
// characteristic time K, and the modelled per-site hit ratios — including
// the "what if site j were replicated here" evaluation at the core of
// Figure 2's benefit computation (lines 10–13).
//
// The LRU cache only serves requests for *non-replicated* sites, so site
// popularities are renormalised by the unreplicated probability mass, and
// creating a replica both shrinks B (cache loses o_j bytes) and boosts the
// renormalised popularity of the remaining sites.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/model/characteristic_time.h"
#include "src/model/hit_ratio_curve.h"
#include "src/util/zipf.h"

namespace cdn::model {

/// When the top-B cumulative probability p_B feeding Eq. 2 is recomputed.
/// The paper computes it once at initialisation and reports that per-
/// iteration recomputation "produced the same result" — both are available
/// (ablation bench A1).
enum class PbMode {
  kAtInit,        // paper default: p_B frozen after construction
  kPerIteration,  // refreshed by refresh_pb() after every replica creation
};

class ServerCacheState {
 public:
  /// `site_rates[j]`   — r_j^(i), this server's request counts per site;
  /// `site_bytes[j]`   — o_j;
  /// `lambdas[j]`      — uncacheable fraction per site;
  /// `storage_bytes`   — s^(i), all of which is initially cache space;
  /// `mean_object_bytes` — o-bar, converting bytes to LRU slots B;
  /// `zipf` / `curve`  — shared within-site popularity law and H(z) table.
  ServerCacheState(std::span<const double> site_rates,
                   std::span<const std::uint64_t> site_bytes,
                   std::span<const double> lambdas,
                   std::uint64_t storage_bytes, double mean_object_bytes,
                   const util::ZipfDistribution& zipf,
                   const HitRatioCurve& curve, PbMode pb_mode = PbMode::kAtInit);

  /// Modelled LRU hit ratio of site j at this server, already scaled by
  /// (1 - lambda_j).  0 for replicated sites (their requests bypass the
  /// cache) and when the cache has no slots.
  double hit_ratio(std::uint32_t site) const;

  bool is_replicated(std::uint32_t site) const;

  /// True if a replica of site j fits in the remaining cache space.
  bool can_fit(std::uint32_t site) const;

  /// Bytes currently available to the LRU cache.
  std::uint64_t cache_bytes() const noexcept { return cache_bytes_; }

  /// LRU slot count B = cache_bytes / o-bar.
  std::uint64_t buffer_slots() const noexcept { return slots_; }

  /// Characteristic time K currently in effect (Eq. 2 closed form).
  double characteristic_time() const noexcept { return k_; }

  /// The p_B currently feeding Eq. 2.
  double top_b_probability() const noexcept { return p_b_; }

  /// Renormalised popularity of site j among cacheable requests.
  double renormalized_popularity(std::uint32_t site) const;

  std::size_t site_count() const noexcept { return rates_.size(); }

  /// Flat SoA views over the per-site model inputs, for bulk consumers
  /// (the placement tier evaluator builds its shared tables from these
  /// without M virtual-ish accessor calls per rebuild).
  std::span<const double> popularities() const noexcept { return popularity_; }
  std::span<const double> site_lambdas() const noexcept { return lambdas_; }
  std::span<const std::uint8_t> replicated_flags() const noexcept {
    return replicated_;
  }

  /// Unreplicated popularity mass w (popularities renormalise as p/w).
  double unreplicated_mass() const noexcept { return w_; }

  /// o-bar, the bytes-per-LRU-slot conversion factor.
  double mean_object_bytes() const noexcept { return mean_object_bytes_; }

  /// Lightweight view answering "what would site k's hit ratio be if site
  /// `replicating` were given a replica here".  Valid until the parent
  /// mutates.
  class WhatIf {
   public:
    /// Hit ratio of site k after the hypothetical replication (k must not
    /// be the replicating site).
    double hit_ratio(std::uint32_t site) const;

    double characteristic_time() const noexcept { return k_new_; }

   private:
    friend class ServerCacheState;
    const ServerCacheState* parent_;
    std::uint32_t replicating_;
    double w_new_;  // unreplicated mass after removal
    double k_new_;
  };

  /// Requires !is_replicated(site) and can_fit(site).
  ///
  /// The characteristic-time solve behind each WhatIf is memoized in a
  /// per-state scratch arena keyed on the replicated-set signature (an
  /// epoch bumped by replicate()/refresh_pb()), so re-evaluating the same
  /// candidate between commits that did not touch this server is a table
  /// lookup instead of a digamma solve.  The memo makes this method
  /// non-reentrant across threads for the SAME state object; the placement
  /// engines honour that by partitioning candidate batches by server
  /// (states of different servers are independent).
  WhatIf what_if_replicate(std::uint32_t site) const;

  /// Monotone counter identifying the current replicated set (bumped by
  /// every mutation); WhatIf memo entries from older epochs are dead.
  std::uint64_t mutation_epoch() const noexcept { return epoch_; }

  /// Materialises the replica: shrinks the cache by o_j, removes site j
  /// from the cacheable set, updates B and K (and p_B in kPerIteration).
  void replicate(std::uint32_t site);

  /// Recomputes p_B from the current cacheable set; no-op in kAtInit mode.
  void refresh_pb();

 private:
  double popularity_mass() const noexcept { return w_; }
  void recompute_k();
  double hit_ratio_internal(std::uint32_t site, double w, double k) const;

  std::vector<double> rates_;           // r_j^(i)
  std::vector<std::uint64_t> bytes_;    // o_j
  std::vector<double> lambdas_;
  // One byte per site (not vector<bool>): the flat array is shared with the
  // placement tier evaluator and steady_state_hit_ratios as a span.
  std::vector<std::uint8_t> replicated_;
  std::vector<double> popularity_;      // p_j over ALL requests at server
  const util::ZipfDistribution* zipf_;
  const HitRatioCurve* curve_;
  PbMode pb_mode_;
  double mean_object_bytes_;
  std::uint64_t cache_bytes_;
  std::uint64_t slots_ = 0;
  double w_ = 1.0;   // unreplicated popularity mass
  double p_b_ = 0.0;
  double k_ = 0.0;

  // WhatIf scratch arena: per-site memo of the hypothetical K, valid while
  // memo_epoch_[site] == epoch_.  Mutable because what_if_replicate() is
  // logically const; see its thread-safety note.
  std::uint64_t epoch_ = 1;
  mutable std::vector<double> whatif_k_memo_;
  mutable std::vector<std::uint64_t> whatif_memo_epoch_;
};

}  // namespace cdn::model
