// Steady-state hit-ratio model tiers for the flow-level engine.
//
// The flow engine replaces the per-request simulation loop with
// demand x placement x hit-ratio arithmetic, so the only modelling choice
// left is WHERE the per-(server, site) hit ratios come from:
//
//   * kEmpirical   — reuse the hit matrix the placement algorithm already
//     computed (PlacementResult::modeled_hit).  Zero extra work; p_B was
//     frozen at placement initialisation (the paper's default, PbMode::
//     kAtInit).
//   * kClosedForm  — recompute per server from the FINAL placement using the
//     paper's Eq. 1/Eq. 2 pipeline (Laoutaris closed-form characteristic
//     time via digamma, tabulated H(z)), with p_B refreshed over the final
//     cacheable set.
//   * kChe         — the Che/TTL approximation (Jiang/Nain/Towsley prove
//     its convergence): solve the occupancy fixed point
//     sum_j N(K * p_j) = B for the characteristic time K, where
//     N(z) = sum_k (1 - e^{-z q_k}) is a site's expected number of resident
//     objects, then read hit ratios off the same H(z) table.
//
// All tiers mirror ServerCacheState's semantics exactly: popularities are
// renormalised by the unreplicated mass, results are scaled by
// (1 - lambda_j), and replicated sites contribute 0.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/model/hit_ratio_curve.h"
#include "src/util/zipf.h"

namespace cdn::model {

/// Which steady-state model produces the per-(server, site) hit ratios.
enum class SteadyStateModel {
  kEmpirical,
  kClosedForm,
  kChe,
};

/// Tabulated expected per-site cache occupancy under the Che approximation:
///   N(z) = sum_{k=1..L} (1 - exp(-z * q_k)),   z = K * p,
/// i.e. the expected number of site objects resident in an LRU cache with
/// characteristic time K when the site's renormalised popularity is p.
/// Same log-grid / interpolation / clamp-diagnostic design as HitRatioCurve;
/// N ranges over [0, L] instead of [0, 1].
class OccupancyCurve {
 public:
  explicit OccupancyCurve(const util::ZipfDistribution& zipf,
                          std::size_t grid_points = 512, double z_min = 1e-4,
                          double z_max = 1e8);

  // Copies share the table but reset the clamp counter (diagnostic state).
  OccupancyCurve(const OccupancyCurve& other);
  OccupancyCurve& operator=(const OccupancyCurve& other);

  /// N(K * p): expected resident objects of a site with popularity p.
  double evaluate(double p, double K) const { return evaluate_z(p * K); }

  /// N(z) by log-linear interpolation.
  double evaluate_z(double z) const;

  std::size_t grid_points() const noexcept { return values_.size(); }
  double z_min() const noexcept { return z_min_; }
  double z_max() const noexcept { return z_max_; }
  /// Objects per site L = lim_{z->inf} N(z).
  double objects_per_site() const noexcept { return objects_; }

  /// evaluate_z() calls clamped above z_max (flat extrapolation at ~L);
  /// exported as "model/curve_clamped" next to HitRatioCurve's counter.
  std::uint64_t clamped_evaluations() const noexcept {
    return clamped_.load(std::memory_order_relaxed);
  }

 private:
  double z_min_, z_max_;
  double log_z_min_, inv_log_step_;
  double objects_ = 0.0;
  std::vector<double> values_;
  mutable std::atomic<std::uint64_t> clamped_{0};
};

/// Exact (untabulated) occupancy sum — the reference for OccupancyCurve.
double lru_occupancy_exponential(const util::ZipfDistribution& zipf, double z);

/// Solves the Che fixed point sum_j N(K * w_j) = min(slots, cacheable
/// objects) for the characteristic time K by bracketing + bisection (the
/// left side is strictly increasing in K).  `site_weights[j]` is the
/// renormalised probability that a cacheable request targets site j; zero
/// weights are skipped.  Returns 0 when the cache has no slots or no site
/// has positive weight; returns occupancy.z_max() (the saturated regime —
/// every object resident) when the cache fits the whole cacheable set.
double che_characteristic_time(std::span<const double> site_weights,
                               const OccupancyCurve& occupancy,
                               std::uint64_t slots);

/// Result of a warm-started Che solve: the characteristic time plus the
/// number of occupancy-sum evaluations the bracket + bisection spent
/// (exported as "model/che/fixed_point_iterations" by the placement tiers).
struct CheSolveResult {
  double k = 0.0;
  std::uint64_t iterations = 0;
};

/// che_characteristic_time with a warm-start bracket: when `warm_start_k`
/// is a solution of a NEARBY fixed point (the previous commit's K), the
/// bracket opens at [warm/2, warm*2] instead of [0, doubling-from-1], which
/// converges in a fraction of the cold iteration count when the target
/// moved a little (one replica's worth of slots/mass).  `warm_start_k <= 0`
/// degrades to the cold bracket.  Edge cases (no slots, no cacheable
/// weight, cache fits everything) mirror che_characteristic_time exactly.
CheSolveResult che_characteristic_time_warm(
    std::span<const double> site_weights, const OccupancyCurve& occupancy,
    std::uint64_t slots, double warm_start_k);

/// Per-site steady-state hit ratios of one server's cache under the chosen
/// model tier (kClosedForm or kChe; kEmpirical has no computation — callers
/// read PlacementResult::modeled_hit directly).
///
/// `popularity[j]`  — p_j^(i) over ALL requests at the server (sums to 1);
/// `replicated[j]`  — nonzero when site j is replicated at the server
///                    (its requests bypass the cache: hit ratio 0);
/// `lambdas[j]`     — uncacheable fraction; results are (1-lambda)-scaled;
/// `slots`          — LRU buffer slot count B = cache_bytes / o-bar;
/// `curve`          — shared H(z) table;
/// `occupancy`      — shared N(z) table, required for kChe (may be null
///                    for kClosedForm).
std::vector<double> steady_state_hit_ratios(
    SteadyStateModel tier, std::span<const double> popularity,
    std::span<const std::uint8_t> replicated, std::span<const double> lambdas,
    const util::ZipfDistribution& zipf, const HitRatioCurve& curve,
    const OccupancyCurve* occupancy, std::uint64_t slots);

}  // namespace cdn::model
