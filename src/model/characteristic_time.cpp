#include "src/model/characteristic_time.h"

#include <cmath>
#include <queue>
#include <vector>

#include "src/util/error.h"

namespace cdn::model {

double characteristic_time_exact(std::uint64_t slots,
                                 double top_b_probability) {
  CDN_EXPECT(top_b_probability >= 0.0 && top_b_probability < 1.0,
             "p_B must be in [0, 1)");
  if (slots == 0) return 0.0;
  if (slots == 1) return 1.0;
  const double b = static_cast<double>(slots);
  const double c = top_b_probability / (b - 1.0);
  double k = 0.0;
  for (std::uint64_t i = 1; i <= slots; ++i) {
    k += 1.0 / (1.0 - static_cast<double>(i - 1) * c);
  }
  return k;
}

double digamma(double x) {
  CDN_EXPECT(x > 0.0, "digamma requires a positive argument");
  double result = 0.0;
  // Shift into the asymptotic region with psi(x) = psi(x+1) - 1/x.
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic series: ln x - 1/(2x) - 1/(12x^2) + 1/(120x^4) - 1/(252x^6).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

double characteristic_time_closed_form(std::uint64_t slots,
                                       double top_b_probability) {
  CDN_EXPECT(top_b_probability >= 0.0 && top_b_probability < 1.0,
             "p_B must be in [0, 1)");
  if (slots == 0) return 0.0;
  if (slots == 1) return 1.0;
  const double b = static_cast<double>(slots);
  const double p = top_b_probability;
  if (p < 1e-12) return b;  // limit of the sum as p_B -> 0
  // sum_{m=0..B-1} 1/(1 - m*c) = a * [psi(a+1) - psi(a+1-B)], a = 1/c.
  const double a = (b - 1.0) / p;
  return a * (digamma(a + 1.0) - digamma(a + 1.0 - b));
}

double top_b_cumulative_probability(std::span<const double> site_weights,
                                    const util::ZipfDistribution& zipf,
                                    std::uint64_t slots) {
  if (slots == 0) return 0.0;
  const std::size_t ranks = zipf.size();

  // Count available objects across sites with positive weight.
  std::size_t available_sites = 0;
  for (double w : site_weights) {
    CDN_EXPECT(w >= 0.0, "site weights must be non-negative");
    if (w > 0.0) ++available_sites;
  }
  if (available_sites == 0) return 0.0;
  if (slots >= static_cast<std::uint64_t>(available_sites) * ranks) {
    return 1.0;  // everything fits
  }

  // K-way merge over per-site descending popularity sequences.
  struct Head {
    double prob;
    std::uint32_t site;
    std::uint32_t rank;  // 1-based
    bool operator<(const Head& o) const { return prob < o.prob; }
  };
  std::priority_queue<Head> heap;
  for (std::size_t j = 0; j < site_weights.size(); ++j) {
    if (site_weights[j] > 0.0) {
      heap.push({site_weights[j] * zipf.pmf(1), static_cast<std::uint32_t>(j),
                 1});
    }
  }
  double cumulative = 0.0;
  for (std::uint64_t taken = 0; taken < slots && !heap.empty(); ++taken) {
    const Head top = heap.top();
    heap.pop();
    cumulative += top.prob;
    if (top.rank < ranks) {
      heap.push({site_weights[top.site] * zipf.pmf(top.rank + 1), top.site,
                 top.rank + 1});
    }
  }
  // Guard against floating accumulation pushing past 1.
  return cumulative < 1.0 ? cumulative : 1.0 - 1e-12;
}

}  // namespace cdn::model
