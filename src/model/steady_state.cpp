#include "src/model/steady_state.h"

#include <algorithm>
#include <cmath>

#include "src/model/characteristic_time.h"
#include "src/util/error.h"

namespace cdn::model {

double lru_occupancy_exponential(const util::ZipfDistribution& zipf,
                                 double z) {
  CDN_EXPECT(z >= 0.0, "z must be non-negative");
  double n = 0.0;
  for (const double qk : zipf.probabilities()) {
    n += 1.0 - std::exp(-z * qk);
  }
  return n;
}

OccupancyCurve::OccupancyCurve(const util::ZipfDistribution& zipf,
                               std::size_t grid_points, double z_min,
                               double z_max)
    : z_min_(z_min),
      z_max_(z_max),
      objects_(static_cast<double>(zipf.size())) {
  CDN_EXPECT(grid_points >= 2, "grid needs at least 2 points");
  CDN_EXPECT(z_min > 0.0 && z_min < z_max, "need 0 < z_min < z_max");
  values_.resize(grid_points);
  log_z_min_ = std::log(z_min);
  const double log_step =
      (std::log(z_max) - log_z_min_) / static_cast<double>(grid_points - 1);
  inv_log_step_ = 1.0 / log_step;
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double z = std::exp(log_z_min_ + log_step * static_cast<double>(i));
    values_[i] = lru_occupancy_exponential(zipf, z);
  }
}

OccupancyCurve::OccupancyCurve(const OccupancyCurve& other)
    : z_min_(other.z_min_),
      z_max_(other.z_max_),
      log_z_min_(other.log_z_min_),
      inv_log_step_(other.inv_log_step_),
      objects_(other.objects_),
      values_(other.values_) {}

OccupancyCurve& OccupancyCurve::operator=(const OccupancyCurve& other) {
  if (this != &other) {
    z_min_ = other.z_min_;
    z_max_ = other.z_max_;
    log_z_min_ = other.log_z_min_;
    inv_log_step_ = other.inv_log_step_;
    objects_ = other.objects_;
    values_ = other.values_;
    clamped_.store(0, std::memory_order_relaxed);
  }
  return *this;
}

double OccupancyCurve::evaluate_z(double z) const {
  CDN_DCHECK(z >= 0.0, "z must be non-negative");
  if (z <= 0.0) return 0.0;
  if (z <= z_min_) {
    // N(z) ~ z * L near 0; interpolate through the origin.
    return values_.front() * (z / z_min_);
  }
  if (z >= z_max_) {
    clamped_.fetch_add(1, std::memory_order_relaxed);
    return values_.back();
  }
  const double pos = (std::log(z) - log_z_min_) * inv_log_step_;
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = lo + 1 < values_.size() ? lo + 1 : lo;
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] + frac * (values_[hi] - values_[lo]);
}

double che_characteristic_time(std::span<const double> site_weights,
                               const OccupancyCurve& occupancy,
                               std::uint64_t slots) {
  if (slots == 0) return 0.0;
  double max_w = 0.0;
  std::size_t cacheable_sites = 0;
  for (const double w : site_weights) {
    CDN_EXPECT(w >= 0.0, "site weights must be non-negative");
    if (w > 0.0) {
      ++cacheable_sites;
      max_w = std::max(max_w, w);
    }
  }
  if (cacheable_sites == 0) return 0.0;
  const double cacheable_objects =
      static_cast<double>(cacheable_sites) * occupancy.objects_per_site();
  const double target =
      std::min(static_cast<double>(slots), cacheable_objects);
  if (static_cast<double>(slots) >= cacheable_objects) {
    // The cache fits every cacheable object: no eviction pressure, K is
    // unbounded.  Return a K that pushes every site into the table's
    // saturated tail (evaluations there clamp and bump the diagnostic
    // counter, which is exactly what "the grid cannot represent this
    // regime" should look like).
    double min_w = max_w;
    for (const double w : site_weights) {
      if (w > 0.0) min_w = std::min(min_w, w);
    }
    return occupancy.z_max() / min_w;
  }
  const auto occupied = [&](double k) {
    double n = 0.0;
    for (const double w : site_weights) {
      if (w > 0.0) n += occupancy.evaluate(w, k);
    }
    return n;
  };
  // The total occupancy is strictly increasing in K: bracket by doubling
  // (capped where the most popular site reaches the table's edge), then
  // bisect.  ~60 halvings take the bracket below double precision.
  const double k_cap = occupancy.z_max() / max_w;
  double hi = 1.0;
  while (hi < k_cap && occupied(hi) < target) hi *= 2.0;
  hi = std::min(hi, k_cap);
  if (occupied(hi) < target) return hi;  // table saturated below the target
  double lo = 0.0;
  for (int iter = 0; iter < 64; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (occupied(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

CheSolveResult che_characteristic_time_warm(
    std::span<const double> site_weights, const OccupancyCurve& occupancy,
    std::uint64_t slots, double warm_start_k) {
  CheSolveResult out;
  if (slots == 0) return out;
  double max_w = 0.0;
  std::size_t cacheable_sites = 0;
  for (const double w : site_weights) {
    CDN_EXPECT(w >= 0.0, "site weights must be non-negative");
    if (w > 0.0) {
      ++cacheable_sites;
      max_w = std::max(max_w, w);
    }
  }
  if (cacheable_sites == 0) return out;
  const double cacheable_objects =
      static_cast<double>(cacheable_sites) * occupancy.objects_per_site();
  const double target =
      std::min(static_cast<double>(slots), cacheable_objects);
  if (static_cast<double>(slots) >= cacheable_objects) {
    double min_w = max_w;
    for (const double w : site_weights) {
      if (w > 0.0) min_w = std::min(min_w, w);
    }
    out.k = occupancy.z_max() / min_w;
    return out;
  }
  const auto occupied = [&](double k) {
    ++out.iterations;
    double n = 0.0;
    for (const double w : site_weights) {
      if (w > 0.0) n += occupancy.evaluate(w, k);
    }
    return n;
  };
  const double k_cap = occupancy.z_max() / max_w;
  double lo = 0.0;
  double hi;
  if (warm_start_k > 0.0) {
    // The previous solution brackets the new one tightly unless the target
    // jumped; expand geometrically from it in whichever direction the
    // occupancy sum says the root moved.
    const double warm = std::min(warm_start_k, k_cap);
    if (occupied(warm) < target) {
      lo = warm;
      hi = std::min(warm * 2.0, k_cap);
      while (hi < k_cap && occupied(hi) < target) {
        lo = hi;
        hi = std::min(hi * 2.0, k_cap);
      }
    } else {
      hi = warm;
      lo = warm * 0.5;
      while (lo > 0.0 && occupied(lo) >= target) {
        hi = lo;
        lo = lo > 1e-300 ? lo * 0.5 : 0.0;
      }
    }
  } else {
    hi = 1.0;
    while (hi < k_cap && occupied(hi) < target) hi *= 2.0;
    hi = std::min(hi, k_cap);
  }
  if (occupied(hi) < target) {
    out.k = hi;  // table saturated below the target
    return out;
  }
  for (int iter = 0; iter < 64 && hi - lo > 1e-12 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (occupied(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  out.k = 0.5 * (lo + hi);
  return out;
}

std::vector<double> steady_state_hit_ratios(
    SteadyStateModel tier, std::span<const double> popularity,
    std::span<const std::uint8_t> replicated, std::span<const double> lambdas,
    const util::ZipfDistribution& zipf, const HitRatioCurve& curve,
    const OccupancyCurve* occupancy, std::uint64_t slots) {
  CDN_EXPECT(tier != SteadyStateModel::kEmpirical,
             "the empirical tier reads PlacementResult::modeled_hit; nothing "
             "to compute here");
  CDN_EXPECT(replicated.size() == popularity.size() &&
                 lambdas.size() == popularity.size(),
             "site arrays must have equal length");
  std::vector<double> h(popularity.size(), 0.0);
  double w = 0.0;
  for (std::size_t j = 0; j < popularity.size(); ++j) {
    if (replicated[j] == 0) w += popularity[j];
  }
  if (w <= 0.0 || slots == 0) return h;
  // Renormalise by the unreplicated mass — the cache only ever serves
  // requests for sites without a local replica (ServerCacheState's w_).
  std::vector<double> weights(popularity.size(), 0.0);
  for (std::size_t j = 0; j < popularity.size(); ++j) {
    if (replicated[j] == 0) weights[j] = popularity[j] / w;
  }
  double k = 0.0;
  if (tier == SteadyStateModel::kClosedForm) {
    double p_b = top_b_cumulative_probability(weights, zipf, slots);
    if (p_b >= 1.0) p_b = 1.0 - 1e-12;
    k = characteristic_time_closed_form(slots, p_b);
  } else {
    CDN_EXPECT(occupancy != nullptr,
               "the Che tier needs an OccupancyCurve");
    k = che_characteristic_time(weights, *occupancy, slots);
  }
  if (k <= 0.0) return h;
  for (std::size_t j = 0; j < popularity.size(); ++j) {
    if (replicated[j] != 0 || weights[j] <= 0.0) continue;
    h[j] = (1.0 - lambdas[j]) * curve.evaluate(std::min(weights[j], 1.0), k);
  }
  return h;
}

}  // namespace cdn::model
