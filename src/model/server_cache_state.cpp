#include "src/model/server_cache_state.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/error.h"

namespace cdn::model {

ServerCacheState::ServerCacheState(std::span<const double> site_rates,
                                   std::span<const std::uint64_t> site_bytes,
                                   std::span<const double> lambdas,
                                   std::uint64_t storage_bytes,
                                   double mean_object_bytes,
                                   const util::ZipfDistribution& zipf,
                                   const HitRatioCurve& curve, PbMode pb_mode)
    : rates_(site_rates.begin(), site_rates.end()),
      bytes_(site_bytes.begin(), site_bytes.end()),
      lambdas_(lambdas.begin(), lambdas.end()),
      replicated_(site_rates.size(), 0),
      zipf_(&zipf),
      curve_(&curve),
      pb_mode_(pb_mode),
      mean_object_bytes_(mean_object_bytes),
      cache_bytes_(storage_bytes) {
  CDN_EXPECT(!rates_.empty(), "need at least one site");
  CDN_EXPECT(bytes_.size() == rates_.size() && lambdas_.size() == rates_.size(),
             "site arrays must have equal length");
  CDN_EXPECT(mean_object_bytes > 0.0, "mean object size must be positive");
  double total = 0.0;
  for (double r : rates_) {
    CDN_EXPECT(r >= 0.0, "request rates must be non-negative");
    total += r;
  }
  for (double l : lambdas_) {
    CDN_EXPECT(l >= 0.0 && l <= 1.0, "lambda must be in [0, 1]");
  }
  popularity_.resize(rates_.size());
  for (std::size_t j = 0; j < rates_.size(); ++j) {
    popularity_[j] = total > 0.0 ? rates_[j] / total : 0.0;
  }
  w_ = total > 0.0 ? 1.0 : 0.0;
  whatif_k_memo_.assign(rates_.size(), 0.0);
  whatif_memo_epoch_.assign(rates_.size(), 0);

  slots_ = static_cast<std::uint64_t>(static_cast<double>(cache_bytes_) /
                                      mean_object_bytes_);
  // Initial p_B over the full (nothing replicated) cacheable set.
  std::vector<double> weights(popularity_);
  p_b_ = top_b_cumulative_probability(weights, *zipf_, slots_);
  if (p_b_ >= 1.0) p_b_ = 1.0 - 1e-12;
  recompute_k();
}

void ServerCacheState::recompute_k() {
  slots_ = static_cast<std::uint64_t>(static_cast<double>(cache_bytes_) /
                                      mean_object_bytes_);
  k_ = characteristic_time_closed_form(slots_, p_b_);
}

double ServerCacheState::hit_ratio_internal(std::uint32_t site, double w,
                                            double k) const {
  if (w <= 0.0 || k <= 0.0) return 0.0;
  const double p = popularity_[site] / w;
  const double h = curve_->evaluate(std::min(p, 1.0), k);
  return (1.0 - lambdas_[site]) * h;
}

double ServerCacheState::hit_ratio(std::uint32_t site) const {
  CDN_EXPECT(site < rates_.size(), "site out of range");
  if (replicated_[site]) return 0.0;
  return hit_ratio_internal(site, w_, k_);
}

bool ServerCacheState::is_replicated(std::uint32_t site) const {
  CDN_EXPECT(site < rates_.size(), "site out of range");
  return replicated_[site] != 0;
}

bool ServerCacheState::can_fit(std::uint32_t site) const {
  CDN_EXPECT(site < rates_.size(), "site out of range");
  return bytes_[site] <= cache_bytes_;
}

double ServerCacheState::renormalized_popularity(std::uint32_t site) const {
  CDN_EXPECT(site < rates_.size(), "site out of range");
  if (replicated_[site] || w_ <= 0.0) return 0.0;
  return popularity_[site] / w_;
}

ServerCacheState::WhatIf ServerCacheState::what_if_replicate(
    std::uint32_t site) const {
  CDN_EXPECT(site < rates_.size(), "site out of range");
  CDN_EXPECT(!replicated_[site], "site already replicated");
  CDN_EXPECT(can_fit(site), "replica does not fit in remaining space");
  WhatIf w;
  w.parent_ = this;
  w.replicating_ = site;
  w.w_new_ = std::max(0.0, w_ - popularity_[site]);
  if (whatif_memo_epoch_[site] == epoch_) {
    w.k_new_ = whatif_k_memo_[site];
    return w;
  }
  const std::uint64_t cache_new = cache_bytes_ - bytes_[site];
  const auto slots_new = static_cast<std::uint64_t>(
      static_cast<double>(cache_new) / mean_object_bytes_);
  w.k_new_ = characteristic_time_closed_form(slots_new, p_b_);
  whatif_k_memo_[site] = w.k_new_;
  whatif_memo_epoch_[site] = epoch_;
  return w;
}

double ServerCacheState::WhatIf::hit_ratio(std::uint32_t site) const {
  CDN_DCHECK(site != replicating_,
             "hit ratio of the site being replicated is undefined");
  if (parent_->replicated_[site]) return 0.0;
  return parent_->hit_ratio_internal(site, w_new_, k_new_);
}

void ServerCacheState::replicate(std::uint32_t site) {
  CDN_EXPECT(site < rates_.size(), "site out of range");
  CDN_EXPECT(!replicated_[site], "site already replicated");
  CDN_EXPECT(can_fit(site), "replica does not fit in remaining space");
  replicated_[site] = 1;
  cache_bytes_ -= bytes_[site];
  w_ = std::max(0.0, w_ - popularity_[site]);
  ++epoch_;
  if (pb_mode_ == PbMode::kPerIteration) {
    refresh_pb();
  } else {
    recompute_k();
  }
}

void ServerCacheState::refresh_pb() {
  if (pb_mode_ != PbMode::kPerIteration) return;
  ++epoch_;  // p_B feeds the memoized WhatIf solves
  slots_ = static_cast<std::uint64_t>(static_cast<double>(cache_bytes_) /
                                      mean_object_bytes_);
  if (w_ <= 0.0 || slots_ == 0) {
    p_b_ = 0.0;
    k_ = characteristic_time_closed_form(slots_, p_b_);
    return;
  }
  std::vector<double> weights(popularity_.size(), 0.0);
  for (std::size_t j = 0; j < popularity_.size(); ++j) {
    if (!replicated_[j]) weights[j] = popularity_[j] / w_;
  }
  p_b_ = top_b_cumulative_probability(weights, *zipf_, slots_);
  if (p_b_ >= 1.0) p_b_ = 1.0 - 1e-12;
  recompute_k();
}

}  // namespace cdn::model
