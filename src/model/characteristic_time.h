// The characteristic time K of the paper's LRU model (Section 3.2, Eq. 2).
//
// An object inserted at the rear of a B-slot LRU buffer and never requested
// again is evicted after K request slots.  With the paper's simplifying
// assumption — positions in front of the object hold the B most popular
// objects, whose cumulative request probability is p_B — the expected time
// at position i is t_i = 1 / (1 - p_i) with p_i = (i-1) * p_B / (B-1), and
//
//     K = sum_{i=1..B} 1 / (1 - (i-1) * p_B / (B-1)).          (Eq. 2)
//
// Both the exact O(B) sum and a closed-form O(1) approximation (trapezoid-
// corrected integral) are provided; the greedy algorithm uses the closed
// form, tests bound the difference.

#pragma once

#include <cstdint>
#include <span>

#include "src/util/zipf.h"

namespace cdn::model {

/// Exact Eq. 2 sum.  Requires slots >= 0 and top_b_probability in [0, 1).
/// Returns 0 for an empty buffer.
double characteristic_time_exact(std::uint64_t slots,
                                 double top_b_probability);

/// Closed form via the digamma function:
///   sum_{m=0..B-1} 1/(1 - m*c) = (1/c) * [psi(a+1) - psi(a+1-B)],
/// with c = p_B/(B-1) and a = 1/c.  Exact up to digamma precision (~1e-12),
/// O(1) regardless of B — this is what the greedy algorithm evaluates per
/// candidate.
double characteristic_time_closed_form(std::uint64_t slots,
                                       double top_b_probability);

/// Digamma psi(x) for x > 0 (recurrence into the asymptotic region).
/// Exposed for testing.
double digamma(double x);

/// Cumulative request probability of the B most popular *cacheable* objects
/// at a server (the p_B of Eq. 2).
///
/// `site_weights[j]` is the (renormalised) probability that a cacheable
/// request targets site j; within a site, object ranks follow `zipf`.  The
/// object universe is the multiset { site_weights[j] * zipf.pmf(k) }, and
/// the function sums the `slots` largest values via a k-way merge in
/// O(B log M).  Returns 1 if `slots` >= the number of available objects.
double top_b_cumulative_probability(std::span<const double> site_weights,
                                    const util::ZipfDistribution& zipf,
                                    std::uint64_t slots);

}  // namespace cdn::model
