// The per-site LRU hit ratio of Eq. 1 and its fast tabulated evaluator.
//
// Eq. 1:  h(p, K) = sum_{k=1..L} [1 - (1 - p * q_k)^K] * q_k,
// where q_k = alpha / k^theta is the within-site Zipf pmf and p is the
// site's (renormalised) popularity at the server.
//
// Inside the hybrid greedy this is evaluated O(M^2 N) times per iteration,
// so the paper tabulates it off-line.  We exploit the structure
// (1 - p q)^K = exp(K ln(1 - p q)) ~ exp(-K p q) for the small p*q_k values
// that occur in practice, making h a function of the single variable
// z = K * p:
//
//     H(z) = sum_k q_k * (1 - exp(-z * q_k)),
//
// tabulated once per (theta, L) on a logarithmic z grid.  Tests bound the
// table-vs-exact error; Figure 6 validates model-vs-simulation end to end.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/zipf.h"

namespace cdn::model {

/// Exact Eq. 1 evaluation, O(L) pow calls.  Requires p in [0, 1], K >= 0.
double lru_hit_ratio_exact(const util::ZipfDistribution& zipf, double p,
                           double K);

/// Exponential-approximation of Eq. 1 without tabulation (reference for the
/// table; same z = K*p dependence).
double lru_hit_ratio_exponential(const util::ZipfDistribution& zipf,
                                 double z);

/// Tabulated H(z) with linear interpolation on a log-spaced grid.
/// Immutable after construction; cheap to share across servers.
class HitRatioCurve {
 public:
  /// Builds the table for the given within-site popularity law.
  /// `grid_points` >= 2; the grid spans [z_min, z_max] logarithmically,
  /// H(0) = 0 and H(z > z_max) clamps to H(z_max) (which is ~1 for any
  /// realistic grid).
  explicit HitRatioCurve(const util::ZipfDistribution& zipf,
                         std::size_t grid_points = 2048, double z_min = 1e-4,
                         double z_max = 1e8);

  // Copies share the table but each gets a fresh clamp counter (the counter
  // is diagnostic state, not part of the curve's value).
  HitRatioCurve(const HitRatioCurve& other);
  HitRatioCurve& operator=(const HitRatioCurve& other);

  /// H(K * p): the modelled LRU hit ratio for a site with popularity p at a
  /// server whose characteristic time is K.
  double evaluate(double p, double K) const { return evaluate_z(p * K); }

  /// H(z) by interpolation.
  double evaluate_z(double z) const;

  std::size_t grid_points() const noexcept { return values_.size(); }
  double z_min() const noexcept { return z_min_; }
  double z_max() const noexcept { return z_max_; }

  /// How many evaluate_z() calls clamped above z_max_ (flat extrapolation
  /// at values_.back()).  A non-zero count means the grid is silently
  /// saturated and the table should be rebuilt with a larger z_max; the
  /// placement engines export it as the obs counter "model/curve_clamped".
  /// Thread-safe (relaxed atomic — callers only need an eventual count).
  std::uint64_t clamped_evaluations() const noexcept {
    return clamped_.load(std::memory_order_relaxed);
  }

 private:
  double z_min_, z_max_;
  double log_z_min_, inv_log_step_;
  std::vector<double> values_;
  mutable std::atomic<std::uint64_t> clamped_{0};
};

}  // namespace cdn::model
