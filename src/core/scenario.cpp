#include "src/core/scenario.h"

#include <unordered_set>

#include "src/redirect/client_population.h"

#include "src/util/error.h"
#include "src/util/rng.h"

namespace cdn::core {

Scenario::Scenario(ScenarioConfig config) : config_(std::move(config)) {
  CDN_EXPECT(config_.server_count >= 1, "need at least one server");

  util::Rng rng(config_.seed);
  std::size_t num_sites = 0;
  for (const auto& c : config_.classes) num_sites += c.site_count;

  // 1 + 2. Network substrate, then server and primary placement.  With the
  //    transit-stub model both go inside random stub domains (the paper's
  //    rule); Waxman graphs have no stub structure, so placements are
  //    uniform over distinct nodes.  Servers get distinct nodes; a single
  //    draw covers both sets so servers and primaries stay distinct.
  util::Rng topo_rng = rng.fork(1);
  util::Rng place_rng = rng.fork(2);
  std::vector<topology::NodeId> nodes;
  if (config_.topology_model == TopologyModel::kWaxman) {
    waxman_topo_ = std::make_unique<topology::WaxmanTopology>(
        topology::generate_waxman(config_.waxman, topo_rng));
    graph_ = &waxman_topo_->graph;
    const std::size_t wanted = config_.server_count + num_sites;
    CDN_EXPECT(wanted <= graph_->node_count(),
               "more placements requested than graph nodes exist");
    std::unordered_set<topology::NodeId> used;
    while (nodes.size() < wanted) {
      const auto v = static_cast<topology::NodeId>(
          place_rng.uniform_index(graph_->node_count()));
      if (used.insert(v).second) nodes.push_back(v);
    }
  } else {
    topo_ = std::make_unique<topology::TransitStubTopology>(
        topology::generate_transit_stub(config_.topology, topo_rng));
    graph_ = &topo_->graph;
    nodes = topology::place_in_stub_domains(
        *topo_, config_.server_count + num_sites, place_rng,
        /*distinct_nodes=*/true);
  }
  server_nodes_.assign(nodes.begin(),
                       nodes.begin() + static_cast<std::ptrdiff_t>(
                                           config_.server_count));
  primary_nodes_.assign(
      nodes.begin() + static_cast<std::ptrdiff_t>(config_.server_count),
      nodes.end());

  // 3. Hop costs from every server to all nodes (BFS, parallel).
  hops_ = std::make_unique<topology::HopMatrix>(*graph_, server_nodes_);
  distances_ = std::make_unique<sys::DistanceOracle>(
      sys::DistanceOracle::from_topology(*hops_, primary_nodes_));

  // 4. Sites and demand.
  util::Rng workload_rng = rng.fork(3);
  catalog_ = std::make_unique<workload::SiteCatalog>(
      workload::SiteCatalog::generate(config_.surge, config_.classes,
                                      workload_rng));
  catalog_->set_uncacheable_fraction(config_.uncacheable_fraction);

  util::Rng demand_rng = rng.fork(4);
  if (config_.demand_model == DemandModel::kClientPopulation) {
    const redirect::ClientPopulation clients(*hops_);
    demand_ = std::make_unique<workload::DemandMatrix>(clients.derive_demand(
        *catalog_, config_.demand_total, demand_rng,
        config_.client_demand_jitter));
  } else {
    demand_ = std::make_unique<workload::DemandMatrix>(
        workload::DemandMatrix::generate(*catalog_, config_.server_count,
                                         config_.demand_total, demand_rng));
  }

  // 5. The assembled system.
  system_ = std::make_unique<sys::CdnSystem>(
      *catalog_, *demand_, *distances_, config_.storage_fraction);
}

const topology::TransitStubTopology& Scenario::topology() const {
  CDN_EXPECT(topo_ != nullptr,
             "scenario was built with a non-transit-stub topology");
  return *topo_;
}

const topology::WaxmanTopology& Scenario::waxman_topology() const {
  CDN_EXPECT(waxman_topo_ != nullptr,
             "scenario was built with a non-Waxman topology");
  return *waxman_topo_;
}

}  // namespace cdn::core
