#include "src/core/experiment.h"

#include <algorithm>

#include "src/obs/scoped_timer.h"
#include "src/placement/baselines.h"
#include "src/placement/fixed_split.h"
#include "src/placement/greedy_global.h"
#include "src/placement/hybrid_greedy.h"
#include "src/util/error.h"

namespace cdn::core {

MechanismSpec replication_mechanism(obs::Registry* metrics,
                                    obs::SpanTracer* spans,
                                    placement::PlacementModel placement_model) {
  return {"replication",
          [metrics, spans, placement_model](const sys::CdnSystem& s) {
            placement::GreedyGlobalOptions options;
            options.placement_model = placement_model;
            options.metrics = metrics;
            options.metrics_prefix = "placement/replication/";
            options.spans = spans;
            return placement::greedy_global(s, options);
          }};
}

MechanismSpec caching_mechanism() {
  return {"caching",
          [](const sys::CdnSystem& s) { return placement::pure_caching(s); }};
}

MechanismSpec hybrid_mechanism(obs::Registry* metrics, obs::SpanTracer* spans,
                               placement::PlacementModel placement_model) {
  return {"hybrid",
          [metrics, spans, placement_model](const sys::CdnSystem& s) {
            placement::HybridGreedyOptions options;
            options.placement_model = placement_model;
            options.metrics = metrics;
            options.metrics_prefix = "placement/hybrid/";
            options.spans = spans;
            return placement::hybrid_greedy(s, options);
          }};
}

std::string model_tier_mismatch_note(const std::string& hit_model,
                                     const std::string& placement_model) {
  const std::string coherent_placement =
      hit_model == "closed-form" ? "closed-form"
      : hit_model == "che"       ? "che"
                                 : "exact";
  if (placement_model == coherent_placement) return "";
  return "note: --hit-model=" + hit_model + " simulates hit ratios with a "
         "different model tier than --placement-model=" + placement_model +
         " uses to rank placement candidates; results are well-defined but "
         "the predicted-vs-measured comparison mixes tiers";
}

MechanismSpec fixed_split_mechanism(double cache_fraction) {
  return {"cache" + util::format_double(100.0 * cache_fraction, 0) + "%",
          [cache_fraction](const sys::CdnSystem& s) {
            return placement::fixed_split(s, cache_fraction);
          }};
}

MechanismSpec random_mechanism(std::uint64_t seed) {
  return {"random", [seed](const sys::CdnSystem& s) {
            util::Rng rng(seed);
            return placement::random_placement(s, rng);
          }};
}

MechanismSpec popularity_mechanism() {
  return {"popularity", [](const sys::CdnSystem& s) {
            return placement::popularity_placement(s);
          }};
}

std::vector<MechanismRun> run_mechanisms(
    const Scenario& scenario, const std::vector<MechanismSpec>& mechanisms,
    const sim::SimulationConfig& sim_config, obs::Registry* metrics,
    obs::TraceSink* trace, obs::SpanTracer* spans) {
  CDN_EXPECT(!mechanisms.empty(), "no mechanisms to run");
  std::vector<MechanismRun> runs;
  runs.reserve(mechanisms.size());
  for (const auto& spec : mechanisms) {
    sim::SimulationConfig cfg = sim_config;
    obs::TimerStat* t_build = nullptr;
    obs::TimerStat* t_simulate = nullptr;
    if (metrics != nullptr) {
      cfg.metrics = metrics;
      cfg.metrics_prefix = "sim/" + spec.name + "/";
      t_build = &metrics->timer("experiment/" + spec.name + "/build");
      t_simulate = &metrics->timer("experiment/" + spec.name + "/simulate");
    }
    const char* sp_build = nullptr;
    const char* sp_simulate = nullptr;
    if (spans != nullptr) {
      cfg.spans = spans;
      sp_build = spans->intern("experiment/" + spec.name + "/build");
      sp_simulate = spans->intern("experiment/" + spec.name + "/simulate");
    }
    if (trace != nullptr) {
      cfg.trace_sink = trace;
      trace->begin_context(spec.name);
    }
    obs::ScopedTimer build_timer(t_build);
    obs::ScopedSpan build_span(spans, sp_build, "experiment");
    MechanismRun run{.name = spec.name,
                     .placement = spec.build(scenario.system()),
                     .report = {}};
    build_span.stop();
    build_timer.stop();
    obs::ScopedTimer simulate_timer(t_simulate);
    obs::ScopedSpan simulate_span(spans, sp_simulate, "experiment");
    run.report = sim::simulate(scenario.system(), run.placement, cfg);
    simulate_span.stop();
    simulate_timer.stop();
    runs.push_back(std::move(run));
  }
  return runs;
}

util::TextTable summary_table(const std::vector<MechanismRun>& runs) {
  util::TextTable table({"mechanism", "mean_ms", "p50_ms", "p90_ms", "p99_ms",
                         "local%", "hops/req", "pred_hops/req", "replicas"});
  for (const auto& run : runs) {
    const auto& cdf = run.report.latency_cdf;
    table.add_row({run.name, util::format_double(run.report.mean_latency_ms, 2),
                   util::format_double(cdf.quantile(0.50), 2),
                   util::format_double(cdf.quantile(0.90), 2),
                   util::format_double(cdf.quantile(0.99), 2),
                   util::format_double(100.0 * run.report.local_ratio, 1),
                   util::format_double(run.report.mean_cost_hops, 3),
                   util::format_double(
                       run.placement.predicted_cost_per_request, 3),
                   std::to_string(run.placement.replicas_created)});
  }
  return table;
}

std::string cdf_table(const std::vector<MechanismRun>& runs,
                      std::size_t grid_points) {
  CDN_EXPECT(!runs.empty(), "no runs to tabulate");
  // Shared grid spanning the union of all latency ranges.
  double lo = runs.front().report.latency_cdf.min();
  double hi = runs.front().report.latency_cdf.max();
  for (const auto& run : runs) {
    lo = std::min(lo, run.report.latency_cdf.min());
    hi = std::max(hi, run.report.latency_cdf.max());
  }
  std::vector<double> grid(grid_points);
  for (std::size_t g = 0; g < grid_points; ++g) {
    grid[g] = lo + (hi - lo) * static_cast<double>(g) /
                       static_cast<double>(grid_points - 1);
  }
  std::vector<std::string> names;
  std::vector<std::vector<util::CdfPoint>> curves;
  for (const auto& run : runs) {
    names.push_back(run.name);
    curves.push_back(run.report.latency_cdf.at(grid));
  }
  return util::format_cdf_table(names, curves);
}

double mean_latency_gain_percent(const MechanismRun& baseline,
                                 const MechanismRun& candidate) {
  CDN_EXPECT(baseline.report.mean_latency_ms > 0.0,
             "baseline latency must be positive");
  return 100.0 *
         (baseline.report.mean_latency_ms - candidate.report.mean_latency_ms) /
         baseline.report.mean_latency_ms;
}

}  // namespace cdn::core
