// Umbrella header: the full public API of the hybridcdn library.
//
// Quick start:
//
//   #include "src/core/hybridcdn.h"
//
//   cdn::core::ScenarioConfig cfg;          // paper defaults (N=50, M=200)
//   cfg.storage_fraction = 0.05;            // 5% capacity
//   cdn::core::Scenario scenario(cfg);
//
//   auto runs = cdn::core::run_mechanisms(
//       scenario,
//       {cdn::core::replication_mechanism(), cdn::core::caching_mechanism(),
//        cdn::core::hybrid_mechanism()},
//       cdn::sim::SimulationConfig{});
//   std::cout << cdn::core::summary_table(runs).str();

#pragma once

#include "src/cache/cache_factory.h"
#include "src/cache/clock_cache.h"
#include "src/cache/delayed_lru_cache.h"
#include "src/cache/fifo_cache.h"
#include "src/cache/lfu_cache.h"
#include "src/cache/lru_cache.h"
#include "src/cdn/cost.h"
#include "src/cdn/distance_oracle.h"
#include "src/cdn/nearest_replica.h"
#include "src/cdn/replication.h"
#include "src/cdn/system.h"
#include "src/cluster/cluster_replication.h"
#include "src/cluster/cluster_scheme.h"
#include "src/cluster/cluster_sim.h"
#include "src/core/experiment.h"
#include "src/core/scenario.h"
#include "src/fault/fault_schedule.h"
#include "src/model/characteristic_time.h"
#include "src/model/hit_ratio_curve.h"
#include "src/model/server_cache_state.h"
#include "src/placement/adaptive.h"
#include "src/placement/baselines.h"
#include "src/placement/fixed_split.h"
#include "src/placement/greedy_global.h"
#include "src/placement/hybrid_greedy.h"
#include "src/placement/local_search.h"
#include "src/placement/update_aware.h"
#include "src/redirect/client_population.h"
#include "src/redirect/server_selection.h"
#include "src/sim/consistency.h"
#include "src/sim/consistency_sim.h"
#include "src/sim/simulator.h"
#include "src/topology/transit_stub.h"
#include "src/topology/waxman.h"
#include "src/util/cdf.h"
#include "src/util/cli.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workload/demand.h"
#include "src/workload/request_stream.h"
#include "src/workload/site_catalog.h"
#include "src/workload/trace_io.h"
