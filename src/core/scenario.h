// End-to-end scenario construction: topology + placement of servers and
// primaries + workload + demand, bundled into a sys::CdnSystem.  This is the
// programmatic equivalent of the paper's Section 5.1 simulation setup.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cdn/system.h"
#include "src/topology/shortest_paths.h"
#include "src/topology/transit_stub.h"
#include "src/topology/waxman.h"
#include "src/workload/demand.h"
#include "src/workload/site_catalog.h"
#include "src/workload/surge.h"

namespace cdn::core {

/// Which random-graph model generates the network substrate.
enum class TopologyModel {
  kTransitStub,  // the paper's GT-ITM setting
  kWaxman,       // alternative model for topology-sensitivity studies
};

/// How the demand matrix r_j^(i) is produced.
enum class DemandModel {
  /// The paper's model: each site's volume splits over servers by a
  /// truncated normal N(1/N, 1/4N) on mu +/- 3 sigma.
  kTruncatedNormal,
  /// Topological model: client mass at stub nodes, DNS-mapped to nearest
  /// servers; per-server shares emerge from where servers sit.
  kClientPopulation,
};

/// Every knob of one experimental scenario.  Defaults reconstruct the
/// paper's setup: 1560-node transit-stub graph, N = 50 servers, M = 200
/// sites in three popularity classes, theta = 1.0, homogeneous capacity as
/// a fraction of the total site bytes.
struct ScenarioConfig {
  TopologyModel topology_model = TopologyModel::kTransitStub;
  topology::TransitStubParams topology{};
  /// Used when topology_model == kWaxman.  With kWaxman, servers and
  /// primaries are placed on uniformly random distinct nodes (Waxman graphs
  /// have no stub-domain structure).
  topology::WaxmanParams waxman{};
  std::size_t server_count = 50;
  DemandModel demand_model = DemandModel::kTruncatedNormal;
  /// Per-(server, site) relative jitter for kClientPopulation demand.
  double client_demand_jitter = 0.25;
  workload::SurgeParams surge{};
  std::vector<workload::PopularityClass> classes =
      workload::default_popularity_classes();
  /// s(i) as a fraction of sum_j o_j (the paper sweeps 5%–20%).
  double storage_fraction = 0.05;
  /// lambda applied to every site (the paper uses 0 and 0.1).
  double uncacheable_fraction = 0.0;
  /// Total expected requests distributed by the demand matrix.  This only
  /// sets the scale of r_j^(i); the simulator draws its own stream length.
  double demand_total = 1e7;
  std::uint64_t seed = 1;
};

/// Owns all scenario components; the contained CdnSystem points into them,
/// so a Scenario is immovable once constructed.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  const ScenarioConfig& config() const noexcept { return config_; }

  /// The generated network graph, independent of the topology model.
  const topology::Graph& graph() const noexcept { return *graph_; }

  /// Transit-stub details; requires topology_model == kTransitStub.
  const topology::TransitStubTopology& topology() const;

  /// Waxman details; requires topology_model == kWaxman.
  const topology::WaxmanTopology& waxman_topology() const;
  const workload::SiteCatalog& catalog() const noexcept { return *catalog_; }
  const workload::DemandMatrix& demand() const noexcept { return *demand_; }
  const sys::DistanceOracle& distances() const noexcept {
    return *distances_;
  }
  const sys::CdnSystem& system() const noexcept { return *system_; }

  /// Graph nodes hosting the CDN servers (index = ServerIndex).
  const std::vector<topology::NodeId>& server_nodes() const noexcept {
    return server_nodes_;
  }
  /// Graph nodes hosting the primary origins (index = SiteIndex).
  const std::vector<topology::NodeId>& primary_nodes() const noexcept {
    return primary_nodes_;
  }

 private:
  ScenarioConfig config_;
  std::unique_ptr<topology::TransitStubTopology> topo_;
  std::unique_ptr<topology::WaxmanTopology> waxman_topo_;
  const topology::Graph* graph_ = nullptr;
  std::vector<topology::NodeId> server_nodes_;
  std::vector<topology::NodeId> primary_nodes_;
  std::unique_ptr<topology::HopMatrix> hops_;
  std::unique_ptr<sys::DistanceOracle> distances_;
  std::unique_ptr<workload::SiteCatalog> catalog_;
  std::unique_ptr<workload::DemandMatrix> demand_;
  std::unique_ptr<sys::CdnSystem> system_;
};

}  // namespace cdn::core
