// Experiment harness: run several content-delivery mechanisms on one
// scenario, simulate each, and report the paper's metrics side by side
// (response-time CDFs, means, hop costs, predicted-vs-measured).

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/core/scenario.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/placement/model_support.h"
#include "src/placement/placement_result.h"
#include "src/sim/simulator.h"
#include "src/util/cdf.h"
#include "src/util/table.h"

namespace cdn::core {

/// A named placement strategy to evaluate.
struct MechanismSpec {
  std::string name;
  std::function<placement::PlacementResult(const sys::CdnSystem&)> build;
};

/// Standard mechanisms of the paper's evaluation.  Passing a registry makes
/// the placement stage log its per-iteration records under
/// "placement/<name>/" (mechanisms without tunable placement internals
/// ignore it); passing a span tracer makes it emit iteration spans under
/// the same prefix.
MechanismSpec replication_mechanism(
    obs::Registry* metrics = nullptr, obs::SpanTracer* spans = nullptr,
    placement::PlacementModel placement_model =
        placement::PlacementModel::kExact);
MechanismSpec caching_mechanism();
MechanismSpec hybrid_mechanism(obs::Registry* metrics = nullptr,
                               obs::SpanTracer* spans = nullptr,
                               placement::PlacementModel placement_model =
                                   placement::PlacementModel::kExact);

/// Loud-but-not-fatal coherence note for the CLI: "" when the --hit-model /
/// --placement-model pair is coherent (empirical<->exact,
/// closed-form<->closed-form, che<->che), otherwise a one-line warning that
/// the placement ranking and the simulated hit ratios use different model
/// tiers.  Mixing is allowed — the combination is well-defined — it just
/// should never happen silently.
std::string model_tier_mismatch_note(const std::string& hit_model,
                                     const std::string& placement_model);
/// Ad-hoc fixed split with the given cache share (0.2 / 0.8 in Figure 5).
MechanismSpec fixed_split_mechanism(double cache_fraction);
MechanismSpec random_mechanism(std::uint64_t seed);
MechanismSpec popularity_mechanism();

/// Placement + simulation outcome of one mechanism.
struct MechanismRun {
  std::string name;
  placement::PlacementResult placement;
  sim::SimulationReport report;
};

/// Runs every mechanism on the scenario with a shared simulation
/// configuration (same seed => same request stream for all mechanisms).
///
/// When `metrics` is non-null it overrides sim_config.metrics and each
/// mechanism's simulation logs under "sim/<name>/"; build/simulate wall
/// times land under "experiment/<name>/".  When `trace` is non-null every
/// mechanism's sampled request events are recorded into it, labelled with
/// a per-mechanism context.  When `spans` is non-null each mechanism gets
/// "experiment/<name>/build" and ".../simulate" spans and the simulator's
/// phase spans are recorded into the same tracer.
std::vector<MechanismRun> run_mechanisms(
    const Scenario& scenario, const std::vector<MechanismSpec>& mechanisms,
    const sim::SimulationConfig& sim_config, obs::Registry* metrics = nullptr,
    obs::TraceSink* trace = nullptr, obs::SpanTracer* spans = nullptr);

/// Summary table: mean / median / p90 / p99 latency, local ratio, measured
/// hop cost, model-predicted hop cost, replica count.
util::TextTable summary_table(const std::vector<MechanismRun>& runs);

/// Response-time CDFs of all runs on a shared latency grid (ms) — the
/// textual rendering of the paper's Figures 3-5 panels.
std::string cdf_table(const std::vector<MechanismRun>& runs,
                      std::size_t grid_points = 25);

/// Relative mean-latency gain of `candidate` over `baseline` in percent
/// (positive = candidate is faster).
double mean_latency_gain_percent(const MechanismRun& baseline,
                                 const MechanismRun& candidate);

}  // namespace cdn::core
