// Line-protocol control socket for live daemon reconfiguration.
//
// A second TCP listener (loopback by default) accepting operator commands,
// one per line, each answered with exactly one OK/ERR line:
//
//   RELOAD placement <path>\n   validate off the hot path, swap on success
//                               → OK generation=<g> digest=<hex>\n
//                               → ERR <line/col diagnostic>\n   (old config
//                                 keeps serving, generation unchanged)
//   RELOAD endpoints <path>\n   same contract for the endpoint map
//   STATUS\n                    → OK generation=<g> placement_digest=<hex>
//                                 endpoints_digest=<hex> requests=<n>
//                                 inflight=<n> sessions=<n> reloads=<n>
//                                 reload_failures=<n> draining=<0|1>\n
//   DRAIN\n                     → OK draining\n, then the daemon drains
//
// Commands on one connection are answered strictly in order; a RELOAD
// keeps the connection busy until its background validation completes
// (further pipelined commands queue).  Malformed commands get an ERR with
// a line/col diagnostic and the session survives; a line longer than
// kMaxControlLine gets an ERR and the session is closed (a broken or
// hostile client).  The rc_* adversarial corpus holds the regression
// inputs.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/net/event_loop.h"
#include "src/obs/registry.h"
#include "src/redirectd/reload.h"

namespace cdn::redirectd {

/// Hard cap on an inbound control line (including '\n').  Generous — it
/// must fit a filesystem path — but bounded: the session buffer cannot be
/// grown without limit by a client that never sends a newline.
inline constexpr std::size_t kMaxControlLine = 4096;

struct ControlCommand {
  enum class Verb : std::uint8_t { kStatus, kDrain, kReload };
  Verb verb = Verb::kStatus;
  ReloadKind reload_kind = ReloadKind::kPlacement;  // kReload only
  std::string path;                                 // kReload only
};

/// Parses one control line ('\n' / '\r\n' optional).  Throws
/// PreconditionError with a line/col diagnostic on any malformed input:
/// unknown verb, missing/trailing fields, unknown reload target, or a line
/// longer than kMaxControlLine.
ControlCommand parse_control_command(const std::string& line);

/// The control listener + its sessions.  Owned by the daemon; everything
/// runs on the daemon's event loop.
class ControlServer {
 public:
  struct Handlers {
    /// Asynchronous: `done(reply)` fires exactly once, later, on the loop
    /// thread with the full reply line (no '\n').
    std::function<void(ReloadKind kind, const std::string& path,
                       std::function<void(std::string)> done)>
        reload;
    /// Synchronous; return the full reply line (no '\n').
    std::function<std::string()> status;
    std::function<std::string()> drain;
  };

  ControlServer(net::EventLoop& loop, std::string host, std::uint16_t port,
                Handlers handlers, obs::Registry* metrics);
  ~ControlServer();

  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  /// Binds and registers the listener.  port() is valid afterwards.
  void start();
  /// Closes the listener and every session (the drain path).  Idempotent.
  void shutdown();

  std::uint16_t port() const noexcept { return listener_.port(); }
  std::uint64_t commands() const noexcept { return commands_; }
  std::uint64_t errors() const noexcept { return errors_; }
  std::size_t session_count() const noexcept { return sessions_.size(); }

 private:
  struct Session;

  void on_accept();
  void on_session_event(int fd, std::uint32_t events);
  void process_pending(Session& session);
  void handle_line(Session& session, const std::string& line);
  void send(Session& session, const std::string& line);
  void flush(Session& session);
  void close_session(int fd);

  net::EventLoop& loop_;
  std::string host_;
  std::uint16_t requested_port_;
  Handlers handlers_;
  net::TcpListener listener_;
  std::unordered_map<int, std::unique_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;
  std::uint64_t commands_ = 0;
  std::uint64_t errors_ = 0;
  bool shutdown_ = false;
  /// Cleared on destruction; async reload-done callbacks check it before
  /// touching `this`.
  std::shared_ptr<bool> alive_;
  obs::Counter* m_commands_ = nullptr;
  obs::Counter* m_errors_ = nullptr;
};

}  // namespace cdn::redirectd
