// Happy-eyeballs-style connection racing across ranked replica candidates.
//
// A race receives the top-k candidate endpoints for a request (cheapest
// first, as ranked by cdn::NearestReplicaIndex::nearest_live_candidates)
// and tries to establish a TCP connection *and receive the replica's
// one-byte greeting* from the best candidate that is actually alive:
//
//   * attempt 1 starts immediately; each further candidate starts after a
//     stagger delay OR as soon as an earlier attempt fails, whichever
//     comes first (the RFC 8305 shape: favour rank order, never serialise
//     on a black hole);
//   * every attempt has its own connect+greeting timeout;
//   * when a whole round fails, the race sleeps a capped-exponential
//     jittered backoff and retries, up to a retry budget;
//   * one monotonic overall deadline bounds everything — a race can never
//     outlive it, which is what keeps the daemon's answer latency bounded
//     under black-holed replicas.
//
// The race reports which rank won, how many connection attempts were
// spent, how many retry rounds and how much backoff time elapsed — the
// counters behind the redirect/* metrics.

#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/net/event_loop.h"
#include "src/redirectd/backoff.h"
#include "src/redirectd/protocol.h"

namespace cdn::redirectd {

struct RaceParams {
  /// Delay before starting the next-ranked candidate while the previous
  /// one is still pending.
  std::chrono::milliseconds stagger{25};
  /// Per-attempt budget covering connect + greeting byte.
  std::chrono::milliseconds attempt_timeout{150};
  /// Hard wall-clock bound on the whole race (all rounds + backoff).
  std::chrono::milliseconds overall_deadline{1000};
  /// Additional full rounds after the first (0 = single round).
  std::uint32_t max_retry_rounds = 2;
  BackoffPolicy backoff{};

  void validate() const {
    CDN_EXPECT(stagger.count() >= 0, "race stagger must be non-negative");
    CDN_EXPECT(attempt_timeout.count() > 0,
               "race attempt timeout must be positive");
    CDN_EXPECT(overall_deadline >= attempt_timeout,
               "race overall deadline must cover at least one attempt");
    backoff.validate();
  }
};

/// One ranked endpoint to race.  `rank` is 1-based (1 = cheapest).
struct RaceCandidate {
  Endpoint endpoint;
  std::uint32_t rank = 1;
};

/// Per-attempt measurement: how long one candidate took to succeed
/// (connect + greeting) or to fail (refusal, reset, EOF, attempt timeout).
/// Feeds the per-endpoint latency EWMA — failures should be charged the
/// attempt-timeout penalty by the consumer, so a fast refusal does not
/// read as a fast endpoint.
struct AttemptSample {
  std::uint32_t rank = 0;  // 1-based candidate rank
  bool success = false;
  std::uint64_t latency_ns = 0;
};

struct RaceResult {
  bool success = false;
  std::uint32_t winner_rank = 0;  // 1-based, valid when success
  std::uint32_t attempts = 0;     // connections started across all rounds
  std::uint32_t retries = 0;      // backoff rounds taken
  std::chrono::milliseconds backoff_total{0};
  bool deadline_exceeded = false;  // failed because the deadline fired
  /// One entry per resolved attempt, in resolution order (an attempt still
  /// in flight when the race finishes contributes nothing).
  std::vector<AttemptSample> samples;
};

/// Starts a race on `loop` (loop thread only).  `done` fires exactly once,
/// on the loop thread.  The race owns itself until completion; callers
/// keep no handle.  `candidates` must be non-empty.
void start_race(net::EventLoop& loop, std::vector<RaceCandidate> candidates,
                const RaceParams& params, std::uint64_t backoff_seed,
                std::function<void(const RaceResult&)> done);

}  // namespace cdn::redirectd
