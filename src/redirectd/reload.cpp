#include "src/redirectd/reload.h"

#include <utility>

#include "src/placement/placement_io.h"
#include "src/util/serial.h"

namespace cdn::redirectd {

const char* reload_kind_name(ReloadKind kind) {
  return kind == ReloadKind::kPlacement ? "placement" : "endpoints";
}

ReloadWorker::ReloadWorker(net::EventLoop& loop,
                           const sys::CdnSystem& system)
    : loop_(loop), system_(system) {
  thread_ = std::thread([this] { worker_main(); });
}

ReloadWorker::~ReloadWorker() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void ReloadWorker::submit(ReloadKind kind, std::string path, Done done) {
  ++submitted_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    requests_.push_back({kind, std::move(path), std::move(done)});
  }
  cv_.notify_one();
}

void ReloadWorker::drain_completions() {
  for (;;) {
    Completion completion;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (completions_.empty()) return;
      completion = std::move(completions_.front());
      completions_.pop_front();
    }
    completion.done(completion.outcome);
  }
}

void ReloadWorker::worker_main() {
  for (;;) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !requests_.empty(); });
      if (shutdown_) return;
      request = std::move(requests_.front());
      requests_.pop_front();
    }
    Completion completion{process(request), std::move(request.done)};
    {
      std::lock_guard<std::mutex> lock(mutex_);
      completions_.push_back(std::move(completion));
    }
    loop_.wakeup();
  }
}

ReloadOutcome ReloadWorker::process(const Request& request) const {
  ReloadOutcome outcome;
  outcome.kind = request.kind;
  try {
    if (request.kind == ReloadKind::kPlacement) {
      auto placement =
          std::make_shared<const placement::PlacementResult>(
              placement::load_placement_result(request.path, system_));
      outcome.digest = placement::placement_digest(placement->placement);
      outcome.placement = std::move(placement);
    } else {
      auto endpoints = std::make_shared<EndpointMap>(
          EndpointMap::load(request.path));
      endpoints->validate(system_.server_count(), system_.site_count());
      const std::string canonical = endpoints->serialize();
      outcome.digest = util::fnv1a(canonical.data(), canonical.size());
      outcome.endpoints = std::move(endpoints);
    }
    outcome.ok = true;
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.error = e.what();
  }
  return outcome;
}

}  // namespace cdn::redirectd
