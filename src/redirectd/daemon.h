// The live redirector daemon: placement output as a network service.
//
// Answers "which replica serves this request" over the line protocol of
// protocol.h, staying correct while the fleet degrades underneath it:
//
//   * candidate ranking comes from NearestReplicaIndex::
//     nearest_live_candidates under the intersection of two health masks —
//     the wall-clock fault timeline (scheduled/simulated faults) and the
//     socket-level health prober (what the network actually says);
//   * adaptive health on top of liveness: per-endpoint latency EWMAs
//     (ewma.h) fed by race outcomes and prober round trips demote slow
//     outliers to the back of the ranking, so the daemon routes around
//     slow replicas, not just dead ones;
//   * with an endpoint map, the daemon races real connections across the
//     top-k candidates (racer.h) — forced-closed or black-holed replicas
//     lose the race to the next rank within the retry/backoff budget;
//   * without endpoints (model mode), it answers from the ranking alone —
//     the configuration redirect_load drives at wall-clock rate;
//   * graceful degradation is explicit: origin fallback when replicas are
//     gone, UNAVAILABLE no_live_copy when the origin is down too,
//     UNAVAILABLE shed above the in-flight race limit, UNAVAILABLE
//     deadline when the race budget is exhausted — never a hang; slow
//     readers are disconnected once their output backlog exceeds
//     max_session_outbuf instead of growing it forever;
//   * request_stop() (async-signal-safe) drains: the listener closes, in-
//     flight requests finish, idle sessions close, and run() returns —
//     bounded by a drain deadline.
//
// Live reconfiguration: serving state (placement + endpoint map + derived
// holder lists) lives behind one generation-counted
// shared_ptr<const ServingState>.  A control socket (control.h) and SIGHUP
// (request_reload()) trigger reloads; parsing and validation run on a
// background ReloadWorker thread (reload.h) and the swap happens only in
// the event loop's wakeup handler — an event-loop-safe point — so a
// request raced against generation g finishes against g's state while new
// requests see g+1.  A failed reload leaves the old generation serving and
// answers ERR; a half-applied reload cannot exist.
//
// Single-threaded except the reload worker: everything else runs on the
// EventLoop thread.  The `redirect/*` metrics and `redirectd/*` spans
// follow the registry contract of docs/OBSERVABILITY.md (null = off, zero
// cost).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/cdn/system.h"
#include "src/fault/wall_clock.h"
#include "src/net/event_loop.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/placement/placement_result.h"
#include "src/redirectd/control.h"
#include "src/redirectd/ewma.h"
#include "src/redirectd/health.h"
#include "src/redirectd/protocol.h"
#include "src/redirectd/racer.h"
#include "src/redirectd/reload.h"

namespace cdn::redirectd {

struct DaemonConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read back via port()

  /// Candidate replicas raced per request (the paper's SN list depth).
  std::size_t top_k = 3;
  RaceParams race{};
  HealthParams health{};

  /// Adaptive latency health: outlier endpoints are demoted in ranking.
  bool adaptive = true;
  EwmaParams ewma{};

  /// In-flight race limit; beyond it requests are shed with UNAVAILABLE.
  std::size_t max_inflight_races = 256;
  /// Per-session output backlog cap; a reader slower than this is
  /// disconnected (counted in redirect/slow_reader_closes).
  std::size_t max_session_outbuf = 64 * 1024;
  /// Drain budget after request_stop() before the loop is forced down.
  std::chrono::milliseconds drain_timeout{2000};
  /// Seeds per-request backoff jitter streams.
  std::uint64_t seed = 1;

  /// Optional control socket for RELOAD/STATUS/DRAIN (control.h).
  bool control = false;
  std::string control_host = "127.0.0.1";
  std::uint16_t control_port = 0;  // 0 = ephemeral; control_port() reads back

  /// Paths re-read on request_reload() (SIGHUP); empty = SIGHUP ignores
  /// that kind.
  std::string reload_placement_path;
  std::string reload_endpoints_path;

  /// Non-owning wiring; system and placement are required and must
  /// outlive the daemon.
  const sys::CdnSystem* system = nullptr;
  const placement::PlacementResult* placement = nullptr;
  /// Optional: real endpoints to probe and race (empty/null = model mode).
  const EndpointMap* endpoints = nullptr;
  /// Optional: scheduled faults replayed on the wall clock.
  fault::WallClockTimeline* timeline = nullptr;
  obs::Registry* metrics = nullptr;
  obs::SpanTracer* spans = nullptr;
};

class RedirectorDaemon {
 public:
  explicit RedirectorDaemon(const DaemonConfig& config);
  ~RedirectorDaemon();

  RedirectorDaemon(const RedirectorDaemon&) = delete;
  RedirectorDaemon& operator=(const RedirectorDaemon&) = delete;

  /// Binds the listener(s) and starts the health prober.  port() and
  /// control_port() are valid afterwards.
  void start();

  /// Serves until request_stop() completes the drain.  Returns the number
  /// of requests answered.
  std::uint64_t run();

  /// Async-signal-safe shutdown request (callable from SIGINT/SIGTERM
  /// handlers and from other threads).
  void request_stop() noexcept;

  /// Async-signal-safe reload request (the SIGHUP handler): re-reads the
  /// configured reload paths through the same validate-then-swap pipeline
  /// as the control socket.
  void request_reload() noexcept;

  std::uint16_t port() const noexcept { return listener_.port(); }
  std::uint16_t control_port() const noexcept {
    return control_ != nullptr ? control_->port() : 0;
  }
  net::EventLoop& loop() noexcept { return loop_; }
  bool draining() const noexcept { return draining_; }
  /// Serving-state generation (starts at 1, bumped per applied reload).
  std::uint64_t generation() const noexcept { return state_->generation; }
  const LatencyEwma* latency_ewma() const noexcept { return ewma_.get(); }

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t replica_answers = 0;
    std::uint64_t origin_answers = 0;
    std::uint64_t unavailable_no_live_copy = 0;
    std::uint64_t unavailable_shed = 0;
    std::uint64_t unavailable_deadline = 0;
    std::uint64_t parse_errors = 0;
    std::uint64_t races = 0;
    std::uint64_t retries = 0;
    std::uint64_t reloads_applied = 0;
    std::uint64_t reloads_failed = 0;
    std::uint64_t slow_reader_closes = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct Session;

  /// One immutable generation of serving state.  Swapped wholesale; race
  /// callbacks pin the generation they started with via shared_ptr.
  struct ServingState {
    std::uint64_t generation = 1;
    /// Points into config wiring (generation 1) or the owned_* members
    /// (reloaded generations).
    const placement::PlacementResult* placement = nullptr;
    const EndpointMap* endpoints = nullptr;  // null/empty = model mode
    std::shared_ptr<const placement::PlacementResult> owned_placement;
    std::shared_ptr<const EndpointMap> owned_endpoints;
    std::vector<std::vector<sys::ServerIndex>> holders;  // per site
    std::uint64_t placement_digest = 0;
    std::uint64_t endpoints_digest = 0;

    bool racing() const noexcept {
      return endpoints != nullptr && !endpoints->empty();
    }
  };

  void on_accept();
  void on_session_event(int fd, std::uint32_t events);
  void process_pending(Session& session);
  void handle_request(Session& session, const RedirectRequest& request);
  void answer(Session& session, const RedirectAnswer& out,
              std::uint64_t started_ns);
  void record_outcome(const RedirectAnswer& out);
  void feed_ewma(sys::SiteIndex site,
                 const std::vector<sys::NearestCopy>& copies,
                 const RaceResult& result);
  void arm_tick();
  void send(Session& session, const std::string& line);
  void flush(Session& session);
  void close_session(int fd);
  void begin_drain();
  void maybe_finish_drain();
  void advance_timeline();
  void on_wakeup();
  void start_prober(const ServingState& state);
  void submit_reload(ReloadKind kind, const std::string& path,
                     std::function<void(std::string)> done);
  std::string apply_reload(const ReloadOutcome& outcome);
  std::string status_line() const;

  DaemonConfig config_;
  net::EventLoop loop_;
  net::TcpListener listener_;
  std::shared_ptr<const ServingState> state_;
  std::unique_ptr<LatencyEwma> ewma_;
  std::unique_ptr<HealthProber> prober_;
  std::unique_ptr<ReloadWorker> reload_worker_;
  std::unique_ptr<ControlServer> control_;
  std::vector<std::uint8_t> health_scratch_;  // merged server mask

  std::unordered_map<int, std::unique_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;
  std::size_t inflight_races_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> reload_requested_{false};
  bool draining_ = false;
  net::TimerId drain_timer_ = 0;
  net::TimerId tick_timer_ = 0;
  Stats stats_;

  // Resolved metric handles (null when metrics are off).
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_replica_ = nullptr;
  obs::Counter* m_origin_ = nullptr;
  obs::Counter* m_unavailable_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_parse_errors_ = nullptr;
  obs::Counter* m_races_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_backoff_ms_ = nullptr;
  obs::Counter* m_slow_reader_ = nullptr;
  obs::Counter* m_reload_applied_ = nullptr;
  obs::Counter* m_reload_failed_ = nullptr;
  obs::Gauge* m_generation_ = nullptr;
  obs::TimerStat* m_answer_latency_ = nullptr;
  std::vector<obs::Counter*> m_won_by_rank_;  // index 0 = rank 1
};

}  // namespace cdn::redirectd
