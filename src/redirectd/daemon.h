// The live redirector daemon: placement output as a network service.
//
// Answers "which replica serves this request" over the line protocol of
// protocol.h, staying correct while the fleet degrades underneath it:
//
//   * candidate ranking comes from NearestReplicaIndex::
//     nearest_live_candidates under the intersection of two health masks —
//     the wall-clock fault timeline (scheduled/simulated faults) and the
//     socket-level health prober (what the network actually says);
//   * with an endpoint map, the daemon races real connections across the
//     top-k candidates (racer.h) — forced-closed or black-holed replicas
//     lose the race to the next rank within the retry/backoff budget;
//   * without endpoints (model mode), it answers from the ranking alone —
//     the configuration redirect_load drives at wall-clock rate;
//   * graceful degradation is explicit: origin fallback when replicas are
//     gone, UNAVAILABLE no_live_copy when the origin is down too,
//     UNAVAILABLE shed above the in-flight race limit, UNAVAILABLE
//     deadline when the race budget is exhausted — never a hang;
//   * request_stop() (async-signal-safe) drains: the listener closes, in-
//     flight requests finish, idle sessions close, and run() returns —
//     bounded by a drain deadline.
//
// Single-threaded: everything runs on the EventLoop thread.  The
// `redirect/*` metrics and `redirectd/*` spans follow the registry
// contract of docs/OBSERVABILITY.md (null = off, zero cost).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/cdn/system.h"
#include "src/fault/wall_clock.h"
#include "src/net/event_loop.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/placement/placement_result.h"
#include "src/redirectd/health.h"
#include "src/redirectd/protocol.h"
#include "src/redirectd/racer.h"

namespace cdn::redirectd {

struct DaemonConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read back via port()

  /// Candidate replicas raced per request (the paper's SN list depth).
  std::size_t top_k = 3;
  RaceParams race{};
  HealthParams health{};

  /// In-flight race limit; beyond it requests are shed with UNAVAILABLE.
  std::size_t max_inflight_races = 256;
  /// Drain budget after request_stop() before the loop is forced down.
  std::chrono::milliseconds drain_timeout{2000};
  /// Seeds per-request backoff jitter streams.
  std::uint64_t seed = 1;

  /// Non-owning wiring; system and placement are required and must
  /// outlive the daemon.
  const sys::CdnSystem* system = nullptr;
  const placement::PlacementResult* placement = nullptr;
  /// Optional: real endpoints to probe and race (empty/null = model mode).
  const EndpointMap* endpoints = nullptr;
  /// Optional: scheduled faults replayed on the wall clock.
  fault::WallClockTimeline* timeline = nullptr;
  obs::Registry* metrics = nullptr;
  obs::SpanTracer* spans = nullptr;
};

class RedirectorDaemon {
 public:
  explicit RedirectorDaemon(const DaemonConfig& config);
  ~RedirectorDaemon();

  RedirectorDaemon(const RedirectorDaemon&) = delete;
  RedirectorDaemon& operator=(const RedirectorDaemon&) = delete;

  /// Binds the listener and starts the health prober.  port() is valid
  /// afterwards.
  void start();

  /// Serves until request_stop() completes the drain.  Returns the number
  /// of requests answered.
  std::uint64_t run();

  /// Async-signal-safe shutdown request (callable from SIGINT/SIGTERM
  /// handlers and from other threads).
  void request_stop() noexcept;

  std::uint16_t port() const noexcept { return listener_.port(); }
  net::EventLoop& loop() noexcept { return loop_; }
  bool draining() const noexcept { return draining_; }

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t replica_answers = 0;
    std::uint64_t origin_answers = 0;
    std::uint64_t unavailable_no_live_copy = 0;
    std::uint64_t unavailable_shed = 0;
    std::uint64_t unavailable_deadline = 0;
    std::uint64_t parse_errors = 0;
    std::uint64_t races = 0;
    std::uint64_t retries = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct Session;

  void on_accept();
  void on_session_event(int fd, std::uint32_t events);
  void process_pending(Session& session);
  void handle_request(Session& session, const RedirectRequest& request);
  void answer(Session& session, const RedirectAnswer& out,
              std::uint64_t started_ns);
  void record_outcome(const RedirectAnswer& out);
  void arm_tick();
  void send(Session& session, const std::string& line);
  void flush(Session& session);
  void close_session(int fd);
  void begin_drain();
  void maybe_finish_drain();
  void advance_timeline();

  DaemonConfig config_;
  net::EventLoop loop_;
  net::TcpListener listener_;
  std::unique_ptr<HealthProber> prober_;
  std::vector<std::vector<sys::ServerIndex>> holders_;  // per site
  std::vector<std::uint8_t> health_scratch_;            // merged server mask

  std::unordered_map<int, std::unique_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;
  std::size_t inflight_races_ = 0;
  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;
  net::TimerId drain_timer_ = 0;
  net::TimerId tick_timer_ = 0;
  Stats stats_;

  // Resolved metric handles (null when metrics are off).
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_replica_ = nullptr;
  obs::Counter* m_origin_ = nullptr;
  obs::Counter* m_unavailable_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_parse_errors_ = nullptr;
  obs::Counter* m_races_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_backoff_ms_ = nullptr;
  obs::TimerStat* m_answer_latency_ = nullptr;
  std::vector<obs::Counter*> m_won_by_rank_;  // index 0 = rank 1
};

}  // namespace cdn::redirectd
