// Validate-then-swap hot reload for the redirector daemon.
//
// Parsing and validating a new placement or endpoint map is file I/O plus
// O(N·M) index rebuilding — far too slow for the event-loop thread that is
// answering redirects.  ReloadWorker runs it on a dedicated background
// thread:
//
//   loop thread:  submit(kind, path, done)        — enqueue, never blocks
//   worker:       load file → parse → validate against the CdnSystem
//                 (index ranges, shape, capacity, non-emptiness) → build
//                 the immutable new state (NearestReplicaIndex included)
//   worker:       push the outcome + loop.wakeup()
//   loop thread:  drain_completions() from the wakeup handler invokes the
//                 `done` callback with the outcome — the only point where
//                 serving state may swap, which is what makes the swap
//                 event-loop-safe by construction.
//
// Any failure — unreadable file, parse error with line/col, validation
// violation — produces ok=false with the diagnostic; the daemon keeps the
// previous generation serving and answers ERR on the control socket.  A
// half-applied reload cannot exist: the outcome carries a fully built
// immutable state or nothing.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/cdn/system.h"
#include "src/net/event_loop.h"
#include "src/placement/placement_result.h"
#include "src/redirectd/protocol.h"

namespace cdn::redirectd {

enum class ReloadKind : std::uint8_t { kPlacement, kEndpoints };

const char* reload_kind_name(ReloadKind kind);

struct ReloadOutcome {
  ReloadKind kind = ReloadKind::kPlacement;
  bool ok = false;
  /// Diagnostic with line/col location when !ok.
  std::string error;
  /// FNV-1a digest of the canonical serialization (valid when ok).
  std::uint64_t digest = 0;
  /// Exactly one is set when ok, matching `kind`.
  std::shared_ptr<const placement::PlacementResult> placement;
  std::shared_ptr<const EndpointMap> endpoints;
};

/// Parses and validates reload requests off the event-loop thread.  All
/// public methods are loop-thread-only; completions are delivered on the
/// loop thread via drain_completions().
class ReloadWorker {
 public:
  using Done = std::function<void(const ReloadOutcome&)>;

  /// `system` must outlive the worker (it is the validation authority).
  ReloadWorker(net::EventLoop& loop, const sys::CdnSystem& system);
  /// Joins the worker thread; queued requests are abandoned (their `done`
  /// callbacks never fire — only reached on daemon teardown).
  ~ReloadWorker();

  ReloadWorker(const ReloadWorker&) = delete;
  ReloadWorker& operator=(const ReloadWorker&) = delete;

  /// Enqueues a reload.  `done` fires exactly once on the loop thread
  /// (unless the worker is destroyed first).
  void submit(ReloadKind kind, std::string path, Done done);

  /// Invokes pending completion callbacks.  Call from the loop's wakeup
  /// handler.
  void drain_completions();

  std::uint64_t submitted() const noexcept { return submitted_; }

 private:
  struct Request {
    ReloadKind kind;
    std::string path;
    Done done;
  };
  struct Completion {
    ReloadOutcome outcome;
    Done done;
  };

  void worker_main();
  ReloadOutcome process(const Request& request) const;

  net::EventLoop& loop_;
  const sys::CdnSystem& system_;
  std::uint64_t submitted_ = 0;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> requests_;
  std::deque<Completion> completions_;
  bool shutdown_ = false;
  std::thread thread_;
};

}  // namespace cdn::redirectd
