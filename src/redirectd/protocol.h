// Line-based redirector wire protocol + endpoint-map configuration.
//
// Request (one line, '\n'-terminated):
//
//   GET <client_server> <site> <object>\n
//
// where <client_server> is the first-hop server index the client is mapped
// to (what DNS resolution picked), <site> the site index, and <object> the
// object id / popularity rank.  Responses:
//
//   REPLICA <server> <cost> <rank> <attempts>\n   served by a replica
//   ORIGIN <site> <cost> <attempts>\n             origin fallback
//   UNAVAILABLE <reason>\n                        reason in
//                                                 {no_live_copy, shed,
//                                                  deadline}
//   ERR <message>\n                               malformed request
//
// Parsing is hardened with util::text_parse exactly like the fault
// schedule format: every malformed line throws PreconditionError with a
// line/column location, never crashes or accepts garbage — the adversarial
// corpus (tests/data/corpus/rp_*) holds the regression inputs.
//
// The endpoint map (--endpoints file) gives each server index and each
// site's origin a real host:port to probe and race:
//
//   replica <server> <host> <port>
//   origin <site> <host> <port>
//
// Ports must be decimal integers in [1, 65535] — "nan", floats and
// overflowing values are rejected (corpus prefix rd_*).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cdn::redirectd {

/// Hard cap on an inbound request line (including '\n').  Longer lines are
/// an attack or a broken client; sessions reject them without buffering.
inline constexpr std::size_t kMaxRequestLine = 128;

struct RedirectRequest {
  std::uint32_t client_server = 0;
  std::uint32_t site = 0;
  std::uint64_t object = 0;
};

/// Parses one request line ('\n' / '\r\n' optional).  Throws
/// PreconditionError on any malformed input: wrong verb, missing fields,
/// trailing junk, non-numeric / overflowing ids, or a line longer than
/// kMaxRequestLine.
RedirectRequest parse_request(const std::string& line);

/// Formats the request line (with '\n').
std::string format_request(const RedirectRequest& request);

/// Machine-readable outcome of one redirect answer.
enum class AnswerKind : std::uint8_t {
  kReplica,
  kOrigin,
  kUnavailable,
};

enum class UnavailableReason : std::uint8_t {
  kNoLiveCopy,  // nearest_live_candidates returned nothing
  kShed,        // load-shed: too many in-flight races
  kDeadline,    // retry budget / overall deadline exhausted
};

struct RedirectAnswer {
  AnswerKind kind = AnswerKind::kUnavailable;
  UnavailableReason reason = UnavailableReason::kNoLiveCopy;
  std::uint32_t server = 0;  // kReplica
  std::uint32_t site = 0;    // kOrigin
  double cost = 0.0;
  std::uint32_t winner_rank = 0;  // 1-based candidate rank (kReplica)
  std::uint32_t attempts = 0;     // connection attempts spent
};

/// Formats the response line (with '\n').
std::string format_answer(const RedirectAnswer& answer);

/// Parses a response line (used by redirect_load and the tests).  Throws
/// PreconditionError on malformed responses.
RedirectAnswer parse_answer(const std::string& line);

/// One replica/origin endpoint.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Endpoint map: replica endpoint per server index, origin endpoint per
/// site index.  Entries are optional — an unmapped server simply cannot be
/// raced (model-mode answers still work).
struct EndpointMap {
  std::vector<std::optional<Endpoint>> replicas;  // by server index
  std::vector<std::optional<Endpoint>> origins;   // by site index

  bool empty() const noexcept { return replicas.empty() && origins.empty(); }

  /// Text format parser (see header comment).  Throws PreconditionError
  /// with line/column locations on malformed input; duplicate indices are
  /// rejected.  Indices are validated against server/site counts later by
  /// `validate` (the file stands alone, like FaultSchedule).
  static EndpointMap parse(const std::string& text);
  static EndpointMap load(const std::string& path);

  /// Throws PreconditionError when an index exceeds the fleet shape.
  void validate(std::size_t server_count, std::size_t site_count) const;

  std::string serialize() const;
};

}  // namespace cdn::redirectd
