#include "src/redirectd/racer.h"

#include <algorithm>

namespace cdn::redirectd {

namespace {

using net::EventLoop;

/// Self-owning race state machine.  Every loop callback captures the
/// shared_ptr, so the state lives until the last registration is gone;
/// `finished_` makes late callbacks no-ops.
class Race : public std::enable_shared_from_this<Race> {
 public:
  Race(EventLoop& loop, std::vector<RaceCandidate> candidates,
       const RaceParams& params, std::uint64_t backoff_seed,
       std::function<void(const RaceResult&)> done)
      : loop_(loop),
        candidates_(std::move(candidates)),
        params_(params),
        backoff_(params.backoff, backoff_seed),
        done_(std::move(done)) {
    CDN_EXPECT(!candidates_.empty(), "race needs at least one candidate");
    params_.validate();
    attempts_.resize(candidates_.size());
  }

  void start() {
    auto self = shared_from_this();
    deadline_timer_ = loop_.add_timer(
        net::Clock::now() + params_.overall_deadline, [self] {
          self->deadline_timer_ = 0;
          self->result_.deadline_exceeded = true;
          self->finish(false, 0);
        });
    begin_round();
  }

 private:
  struct Attempt {
    net::Fd fd;
    net::TimerId timeout_timer = 0;
    bool started = false;
    bool failed = false;
    bool connected = false;  // connect done, waiting for the greeting
    net::TimePoint started_at{};
  };

  std::uint64_t attempt_elapsed_ns(const Attempt& attempt) const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            net::Clock::now() - attempt.started_at)
            .count());
  }

  void begin_round() {
    if (finished_) return;
    for (auto& a : attempts_) a = Attempt{};
    next_candidate_ = 0;
    round_failures_ = 0;
    start_next_candidate();
  }

  void start_next_candidate() {
    if (finished_ || next_candidate_ >= candidates_.size()) return;
    const std::size_t idx = next_candidate_++;
    launch_attempt(idx);
    arm_stagger();
  }

  void arm_stagger() {
    if (finished_ || next_candidate_ >= candidates_.size()) return;
    auto self = shared_from_this();
    stagger_timer_ =
        loop_.add_timer_after(params_.stagger, [self] {
          self->stagger_timer_ = 0;
          self->start_next_candidate();
        });
  }

  void launch_attempt(std::size_t idx) {
    Attempt& attempt = attempts_[idx];
    attempt.started = true;
    attempt.started_at = net::Clock::now();
    ++result_.attempts;
    const Endpoint& ep = candidates_[idx].endpoint;
    net::ConnectStart conn = net::start_connect(ep.host, ep.port);
    if (!conn.fd.valid()) {
      attempt_failed(idx);
      return;
    }
    attempt.fd = std::move(conn.fd);
    attempt.connected = !conn.in_progress;

    auto self = shared_from_this();
    attempt.timeout_timer =
        loop_.add_timer_after(params_.attempt_timeout, [self, idx] {
          self->attempts_[idx].timeout_timer = 0;
          self->attempt_failed(idx);
        });

    const std::uint32_t interest =
        attempt.connected ? net::kReadable : net::kWritable;
    loop_.add_fd(attempt.fd.get(), interest,
                 [self, idx](std::uint32_t events) {
                   self->on_attempt_event(idx, events);
                 });
  }

  void on_attempt_event(std::size_t idx, std::uint32_t events) {
    if (finished_) return;
    Attempt& attempt = attempts_[idx];
    if (!attempt.fd.valid() || attempt.failed) return;

    if (!attempt.connected) {
      // Writable/errored: the connect resolved one way or the other.
      const int err = net::finish_connect(attempt.fd.get());
      if (err != 0) {
        attempt_failed(idx);
        return;
      }
      attempt.connected = true;
      loop_.set_interest(attempt.fd.get(), net::kReadable);
      if ((events & net::kReadable) == 0) return;
    }

    // Connected: success requires the replica's greeting byte — a server
    // that accepts but never speaks (black hole) must not win the race.
    char byte = 0;
    const net::IoResult r = net::read_some(attempt.fd.get(), &byte, 1);
    switch (r.status) {
      case net::IoStatus::kOk:
        result_.samples.push_back(
            {candidates_[idx].rank, true, attempt_elapsed_ns(attempt)});
        finish(true, candidates_[idx].rank);
        return;
      case net::IoStatus::kWouldBlock:
        return;  // spurious wakeup; keep waiting
      case net::IoStatus::kClosed:
      case net::IoStatus::kError:
        attempt_failed(idx);  // forced-close lands here
        return;
    }
  }

  void attempt_failed(std::size_t idx) {
    if (finished_) return;
    Attempt& attempt = attempts_[idx];
    if (attempt.failed) return;
    attempt.failed = true;
    result_.samples.push_back(
        {candidates_[idx].rank, false, attempt_elapsed_ns(attempt)});
    retire_attempt(attempt);
    ++round_failures_;

    // Happy-eyeballs: a failure immediately promotes the next candidate
    // instead of waiting out the stagger.
    if (next_candidate_ < candidates_.size()) {
      if (stagger_timer_ != 0) {
        loop_.cancel_timer(stagger_timer_);
        stagger_timer_ = 0;
      }
      start_next_candidate();
      return;
    }
    if (round_failures_ == candidates_.size()) round_exhausted();
  }

  void round_exhausted() {
    if (result_.retries >= params_.max_retry_rounds) {
      finish(false, 0);
      return;
    }
    const std::chrono::milliseconds delay = backoff_.next(result_.retries);
    ++result_.retries;
    result_.backoff_total += delay;
    auto self = shared_from_this();
    backoff_timer_ = loop_.add_timer_after(delay, [self] {
      self->backoff_timer_ = 0;
      self->begin_round();
    });
  }

  void retire_attempt(Attempt& attempt) {
    if (attempt.timeout_timer != 0) {
      loop_.cancel_timer(attempt.timeout_timer);
      attempt.timeout_timer = 0;
    }
    if (attempt.fd.valid()) {
      if (loop_.has_fd(attempt.fd.get())) loop_.remove_fd(attempt.fd.get());
      attempt.fd.reset();
    }
  }

  void finish(bool success, std::uint32_t winner_rank) {
    if (finished_) return;
    finished_ = true;
    for (auto& attempt : attempts_) retire_attempt(attempt);
    for (const net::TimerId id :
         {deadline_timer_, stagger_timer_, backoff_timer_}) {
      if (id != 0) loop_.cancel_timer(id);
    }
    deadline_timer_ = stagger_timer_ = backoff_timer_ = 0;
    result_.success = success;
    result_.winner_rank = winner_rank;
    done_(result_);
  }

  EventLoop& loop_;
  std::vector<RaceCandidate> candidates_;
  RaceParams params_;
  Backoff backoff_;
  std::function<void(const RaceResult&)> done_;

  std::vector<Attempt> attempts_;
  std::size_t next_candidate_ = 0;
  std::size_t round_failures_ = 0;
  net::TimerId deadline_timer_ = 0;
  net::TimerId stagger_timer_ = 0;
  net::TimerId backoff_timer_ = 0;
  RaceResult result_;
  bool finished_ = false;
};

}  // namespace

void start_race(net::EventLoop& loop, std::vector<RaceCandidate> candidates,
                const RaceParams& params, std::uint64_t backoff_seed,
                std::function<void(const RaceResult&)> done) {
  auto race = std::make_shared<Race>(loop, std::move(candidates), params,
                                     backoff_seed, std::move(done));
  race->start();
}

}  // namespace cdn::redirectd
