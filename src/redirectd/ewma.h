// Per-endpoint latency EWMA with fleet-median outlier ejection.
//
// The health prober's up/down masks catch *dead* replicas; this layer
// catches *slow* ones.  Every successful race win and every health-probe
// round trip feeds an exponentially weighted moving average of the
// endpoint's connect+greeting latency (failures feed the attempt-timeout
// penalty, so a refusing or black-holed endpoint reads as slow, not fast).
// An endpoint whose EWMA exceeds `eject_multiplier` times the fleet median
// is ejected: the daemon demotes it to the back of the candidate ranking —
// still raceable as a last resort, never preferred — and a circuit breaker
// governs recovery:
//
//   kClosed ──(EWMA > k × median)──▶ kEjected ──(cooldown)──▶ kHalfOpen
//      ▲                                 ▲                        │
//      └──────(healthy sample)───────────┴──(still an outlier)────┘
//
// In kHalfOpen the endpoint ranks normally again, so the next race or
// probe re-measures it: a healthy sample closes the circuit, an outlier
// sample re-ejects for another cooldown.  Probes keep flowing to ejected
// endpoints throughout (ejection demotes ranking, it does not stop
// measurement), so recovery needs no extra machinery.
//
// Single-threaded: lives on the daemon's event-loop thread.

#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/net/event_loop.h"
#include "src/obs/registry.h"
#include "src/util/error.h"

namespace cdn::redirectd {

struct EwmaParams {
  /// Weight of the newest sample (ewma' = alpha*x + (1-alpha)*ewma).
  double alpha = 0.3;
  /// Ejection threshold: EWMA > multiplier × fleet median.
  double eject_multiplier = 4.0;
  /// Samples an endpoint needs before it can be ejected.
  std::uint32_t min_samples = 3;
  /// Sampled endpoints the fleet needs before any ejection (a median over
  /// one or two endpoints is noise).
  std::uint32_t min_fleet = 3;
  /// Ejection duration before the circuit half-opens.
  std::chrono::milliseconds eject_cooldown{2000};

  void validate() const {
    CDN_EXPECT(alpha > 0.0 && alpha <= 1.0, "ewma alpha must be in (0, 1]");
    CDN_EXPECT(eject_multiplier > 1.0,
               "ewma eject multiplier must exceed 1");
    CDN_EXPECT(min_samples >= 1, "ewma min samples must be at least 1");
    CDN_EXPECT(min_fleet >= 2, "ewma min fleet must be at least 2");
    CDN_EXPECT(eject_cooldown.count() > 0,
               "ewma eject cooldown must be positive");
  }
};

class LatencyEwma {
 public:
  enum class Kind : std::uint8_t { kReplica, kOrigin };
  enum class Circuit : std::uint8_t { kClosed, kEjected, kHalfOpen };

  /// `metrics` may be null (metrics off).
  LatencyEwma(std::size_t server_count, std::size_t site_count,
              const EwmaParams& params, obs::Registry* metrics);

  /// Feeds one latency observation (ns) and advances the endpoint's
  /// circuit.  Failures should be fed as the attempt-timeout penalty by
  /// the caller — this class only sees latencies.
  void record(Kind kind, std::uint32_t index, std::uint64_t latency_ns,
              net::TimePoint now);

  /// True while the endpoint should be demoted in candidate ranking.
  /// Ejected endpoints whose cooldown has expired transition to half-open
  /// here (rank normally; the next sample decides).
  bool demoted(Kind kind, std::uint32_t index, net::TimePoint now);

  /// Current EWMA in ns; 0 before the first sample.
  double ewma_ns(Kind kind, std::uint32_t index) const;
  Circuit circuit(Kind kind, std::uint32_t index) const;

  /// Median EWMA over every endpoint with at least one sample; 0 when none
  /// have samples.
  double fleet_median_ns() const;

  std::uint64_t ejections() const noexcept { return ejections_; }
  std::uint64_t recoveries() const noexcept { return recoveries_; }

 private:
  struct Entry {
    double ewma = 0.0;
    std::uint32_t samples = 0;
    Circuit circuit = Circuit::kClosed;
    net::TimePoint eject_until{};
  };

  Entry& entry(Kind kind, std::uint32_t index);
  const Entry& entry(Kind kind, std::uint32_t index) const;
  bool is_outlier(const Entry& e) const;

  EwmaParams params_;
  std::vector<Entry> replicas_;  // by server index
  std::vector<Entry> origins_;   // by site index
  std::uint64_t ejections_ = 0;
  std::uint64_t recoveries_ = 0;
  obs::Counter* m_ejections_ = nullptr;
  obs::Counter* m_recoveries_ = nullptr;
};

}  // namespace cdn::redirectd
