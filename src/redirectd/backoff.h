// Capped exponential backoff with deterministic decorrelated jitter.
//
// delay(retry) = min(cap, base * multiplier^retry) * U,  U ~ [1-j, 1+j]
//
// drawn from a caller-seeded xorshift stream, so a daemon run with a fixed
// seed produces a reproducible retry schedule (tests assert bounds, not
// exact values).  The policy is a value type: each racing request carries
// its own, so concurrent races never share RNG state.

#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "src/util/error.h"

namespace cdn::redirectd {

struct BackoffPolicy {
  std::chrono::milliseconds base{20};
  std::chrono::milliseconds cap{500};
  double multiplier = 2.0;
  /// Jitter half-width as a fraction of the un-jittered delay, in [0, 1).
  double jitter = 0.2;

  void validate() const {
    CDN_EXPECT(base.count() >= 0, "backoff base must be non-negative");
    CDN_EXPECT(cap >= base, "backoff cap must be >= base");
    CDN_EXPECT(multiplier >= 1.0, "backoff multiplier must be >= 1");
    CDN_EXPECT(jitter >= 0.0 && jitter < 1.0,
               "backoff jitter must be in [0, 1)");
  }
};

/// Per-request backoff state: call next() once per retry round.
class Backoff {
 public:
  Backoff(const BackoffPolicy& policy, std::uint64_t seed)
      : policy_(policy), state_(seed | 1) {
    policy_.validate();
  }

  /// Delay before retry round `retries_so_far` (0-based).
  std::chrono::milliseconds next(std::uint32_t retries_so_far) {
    double ms = static_cast<double>(policy_.base.count());
    for (std::uint32_t i = 0;
         i < retries_so_far && ms < static_cast<double>(policy_.cap.count());
         ++i) {
      ms *= policy_.multiplier;
    }
    ms = std::min(ms, static_cast<double>(policy_.cap.count()));
    // xorshift64* uniform in [1-j, 1+j].
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    const std::uint64_t bits = state_ * 0x2545F4914F6CDD1DULL;
    const double unit =
        static_cast<double>(bits >> 11) / 9007199254740992.0;  // [0,1)
    ms *= 1.0 + policy_.jitter * (2.0 * unit - 1.0);
    return std::chrono::milliseconds(
        static_cast<std::int64_t>(std::max(0.0, ms)));
  }

  const BackoffPolicy& policy() const noexcept { return policy_; }

 private:
  BackoffPolicy policy_;
  std::uint64_t state_;
};

}  // namespace cdn::redirectd
