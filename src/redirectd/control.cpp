#include "src/redirectd/control.h"

#include <deque>
#include <utility>

#include "src/util/error.h"
#include "src/util/text_parse.h"

namespace cdn::redirectd {

namespace {

const std::string kWhat = "control command";

/// Whitespace tokenizer with 1-based column tracking, mirroring the
/// request/endpoint-map parsers so every control error carries an exact
/// location.
class LineTokens {
 public:
  explicit LineTokens(const std::string& line) : line_(line) {}

  std::string where() const {
    return kWhat + " line 1, col " +
           std::to_string(
               util::text_column(std::min(next_start(), line_.size())));
  }

  bool at_end() const { return next_start() >= line_.size(); }

  std::string expect(const char* what) {
    const std::size_t start = next_start();
    CDN_EXPECT(start < line_.size(),
               where() + ": expected " + what + ", but the line ended");
    std::size_t end = start;
    while (end < line_.size() && !is_space(line_[end])) ++end;
    token_where_ = kWhat + " line 1, col " +
                   std::to_string(util::text_column(start));
    pos_ = end;
    return line_.substr(start, end - start);
  }

  void done() const {
    CDN_EXPECT(at_end(), where() + ": unexpected trailing token");
  }

  const std::string& last_where() const { return token_where_; }

 private:
  static bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }
  std::size_t next_start() const {
    std::size_t p = pos_;
    while (p < line_.size() && is_space(line_[p])) ++p;
    return p;
  }

  const std::string& line_;
  std::size_t pos_ = 0;
  std::string token_where_;
};

std::string strip_eol(const std::string& line) {
  std::string s = line;
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
  return s;
}

}  // namespace

ControlCommand parse_control_command(const std::string& line) {
  CDN_EXPECT(line.size() <= kMaxControlLine,
             "control command line exceeds " +
                 std::to_string(kMaxControlLine) + " bytes (" +
                 std::to_string(line.size()) + ")");
  const std::string body = strip_eol(line);
  LineTokens tokens(body);
  const std::string verb = tokens.expect("a control verb");
  ControlCommand command;
  if (verb == "STATUS") {
    command.verb = ControlCommand::Verb::kStatus;
    tokens.done();
  } else if (verb == "DRAIN") {
    command.verb = ControlCommand::Verb::kDrain;
    tokens.done();
  } else if (verb == "RELOAD") {
    command.verb = ControlCommand::Verb::kReload;
    const std::string target = tokens.expect("'placement' or 'endpoints'");
    if (target == "placement") {
      command.reload_kind = ReloadKind::kPlacement;
    } else if (target == "endpoints") {
      command.reload_kind = ReloadKind::kEndpoints;
    } else {
      CDN_EXPECT(false, tokens.last_where() + ": unknown reload target '" +
                            target +
                            "' (expected 'placement' or 'endpoints')");
    }
    command.path = tokens.expect("a file path");
    tokens.done();
  } else {
    CDN_EXPECT(false, tokens.last_where() + ": unknown control verb '" +
                          verb +
                          "' (expected RELOAD, STATUS, or DRAIN)");
  }
  return command;
}

/// One control connection.  Commands are answered strictly in order; an
/// async RELOAD keeps the session busy and later lines queue.
struct ControlServer::Session {
  std::uint64_t id = 0;
  net::Fd fd;
  std::string inbuf;
  std::string outbuf;
  std::deque<std::string> pending;
  bool busy = false;
  bool closing = false;
};

ControlServer::ControlServer(net::EventLoop& loop, std::string host,
                             std::uint16_t port, Handlers handlers,
                             obs::Registry* metrics)
    : loop_(loop),
      host_(std::move(host)),
      requested_port_(port),
      handlers_(std::move(handlers)),
      alive_(std::make_shared<bool>(true)) {
  CDN_EXPECT(handlers_.reload != nullptr && handlers_.status != nullptr &&
                 handlers_.drain != nullptr,
             "control server needs reload/status/drain handlers");
  if (metrics != nullptr) {
    m_commands_ = &metrics->counter("redirect/control/commands");
    m_errors_ = &metrics->counter("redirect/control/errors");
  }
}

ControlServer::~ControlServer() {
  shutdown();
  *alive_ = false;
}

void ControlServer::start() {
  listener_ = net::TcpListener::bind(host_, requested_port_);
  loop_.add_fd(listener_.fd(), net::kReadable,
               [this](std::uint32_t) { on_accept(); });
}

void ControlServer::shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  if (listener_.valid()) {
    if (loop_.has_fd(listener_.fd())) loop_.remove_fd(listener_.fd());
    listener_.close();
  }
  std::vector<int> open;
  open.reserve(sessions_.size());
  for (const auto& [fd, session] : sessions_) open.push_back(fd);
  for (const int fd : open) close_session(fd);
}

void ControlServer::on_accept() {
  while (auto fd = listener_.accept()) {
    auto session = std::make_unique<Session>();
    session->id = next_session_id_++;
    session->fd = std::move(*fd);
    const int raw = session->fd.get();
    sessions_.emplace(raw, std::move(session));
    loop_.add_fd(raw, net::kReadable, [this, raw](std::uint32_t events) {
      on_session_event(raw, events);
    });
  }
}

void ControlServer::on_session_event(int fd, std::uint32_t events) {
  auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  Session& session = *it->second;

  if ((events & net::kErrored) != 0) {
    close_session(fd);
    return;
  }
  if ((events & net::kWritable) != 0) {
    flush(session);
    if (sessions_.find(fd) == sessions_.end()) return;
  }
  if ((events & net::kReadable) != 0 && !session.closing) {
    char buf[4096];
    // Bounded read per dispatch, mirroring the daemon sessions: a
    // firehosing control client must not starve the data plane.
    for (int chunk = 0; chunk < 4; ++chunk) {
      const net::IoResult r = net::read_some(fd, buf, sizeof(buf));
      if (r.status == net::IoStatus::kOk) {
        session.inbuf.append(buf, r.bytes);
        std::size_t start = 0;
        for (;;) {
          const std::size_t nl = session.inbuf.find('\n', start);
          if (nl == std::string::npos) break;
          session.pending.push_back(
              session.inbuf.substr(start, nl - start + 1));
          start = nl + 1;
        }
        session.inbuf.erase(0, start);
        if (session.inbuf.size() > kMaxControlLine) {
          ++errors_;
          if (m_errors_ != nullptr) m_errors_->add();
          send(session, "ERR control line exceeds " +
                            std::to_string(kMaxControlLine) + " bytes\n");
          if (sessions_.find(fd) == sessions_.end()) return;
          session.closing = true;
          session.inbuf.clear();
          session.pending.clear();
          break;
        }
        continue;
      }
      if (r.status == net::IoStatus::kWouldBlock) break;
      if (session.busy) {
        session.closing = true;
        session.pending.clear();
      } else {
        close_session(fd);
        return;
      }
      break;
    }
    process_pending(session);
  }
  if (sessions_.find(fd) != sessions_.end() && session.closing &&
      !session.busy && session.outbuf.empty()) {
    close_session(fd);
  }
}

void ControlServer::process_pending(Session& session) {
  const int fd = session.fd.get();
  while (!session.busy && !session.pending.empty()) {
    const std::string line = std::move(session.pending.front());
    session.pending.pop_front();
    handle_line(session, line);
    if (sessions_.find(fd) == sessions_.end()) return;
  }
}

void ControlServer::handle_line(Session& session, const std::string& line) {
  ++commands_;
  if (m_commands_ != nullptr) m_commands_->add();
  ControlCommand command;
  try {
    command = parse_control_command(line);
  } catch (const PreconditionError& e) {
    ++errors_;
    if (m_errors_ != nullptr) m_errors_->add();
    send(session, std::string("ERR ") + e.what() + "\n");
    return;
  }
  switch (command.verb) {
    case ControlCommand::Verb::kStatus:
      send(session, handlers_.status() + "\n");
      return;
    case ControlCommand::Verb::kDrain:
      send(session, handlers_.drain() + "\n");
      return;
    case ControlCommand::Verb::kReload: {
      session.busy = true;
      const int fd = session.fd.get();
      const std::uint64_t session_id = session.id;
      auto alive = alive_;
      handlers_.reload(
          command.reload_kind, command.path,
          [this, alive, fd, session_id](std::string reply) {
            if (!*alive) return;
            if (reply.rfind("ERR", 0) == 0) {
              ++errors_;
              if (m_errors_ != nullptr) m_errors_->add();
            }
            auto it = sessions_.find(fd);
            if (it == sessions_.end() || it->second->id != session_id) {
              return;  // client went away mid-reload; the swap still ran
            }
            Session& target = *it->second;
            target.busy = false;
            send(target, reply + "\n");
            if (sessions_.find(fd) != sessions_.end()) {
              process_pending(target);
              if (sessions_.find(fd) != sessions_.end() && target.closing &&
                  !target.busy && target.outbuf.empty()) {
                close_session(fd);
              }
            }
          });
      return;
    }
  }
}

void ControlServer::send(Session& session, const std::string& line) {
  session.outbuf += line;
  flush(session);
}

void ControlServer::flush(Session& session) {
  const int fd = session.fd.get();
  while (!session.outbuf.empty()) {
    const net::IoResult r =
        net::write_some(fd, session.outbuf.data(), session.outbuf.size());
    if (r.status == net::IoStatus::kOk) {
      session.outbuf.erase(0, r.bytes);
      continue;
    }
    if (r.status == net::IoStatus::kWouldBlock) {
      loop_.set_interest(fd, net::kReadable | net::kWritable);
      return;
    }
    session.outbuf.clear();
    if (!session.busy) close_session(fd);
    return;
  }
  if (loop_.has_fd(fd)) loop_.set_interest(fd, net::kReadable);
  if (session.closing && !session.busy) close_session(fd);
}

void ControlServer::close_session(int fd) {
  auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  if (loop_.has_fd(fd)) loop_.remove_fd(fd);
  sessions_.erase(it);
}

}  // namespace cdn::redirectd
