// Replica health probing over real sockets.
//
// The prober periodically probes every mapped replica/origin endpoint with
// a one-candidate connection probe (connect + greeting byte, bounded by a
// probe timeout) and maintains up/down masks with consecutive-failure
// hysteresis.  The daemon intersects these masks with the wall-clock fault
// timeline's masks before ranking candidates, so racing starts from
// believed-live replicas and a flapping endpoint cannot whipsaw the
// candidate lists.
//
// Probes are *phase-spread*: each endpoint owns a self-rearming timer
// offset by `index * interval / targets` within the probe interval, so the
// fleet is never swept in one synchronized burst — a recovering replica
// sees a trickle of probes, not a thundering herd, and the per-endpoint
// cadence (and therefore the hysteresis behaviour) is identical to the
// old synchronized sweep.
//
// Probe round trips also feed the per-endpoint latency EWMA (ewma.h) when
// one is attached: a successful probe contributes its measured latency, a
// failed probe contributes the probe-timeout penalty — which is how a
// slow-but-alive endpoint gets demoted in candidate ranking while staying
// "up" in the mask.
//
// Unmapped servers/origins are reported as up — in model mode there is
// nothing to probe, and the fault timeline is the sole health authority.

#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/net/event_loop.h"
#include "src/obs/registry.h"
#include "src/redirectd/ewma.h"
#include "src/redirectd/protocol.h"
#include "src/redirectd/racer.h"

namespace cdn::redirectd {

struct HealthParams {
  std::chrono::milliseconds probe_interval{250};
  std::chrono::milliseconds probe_timeout{100};
  /// Consecutive failed probes before an endpoint is marked down.
  std::uint32_t down_after = 2;
  /// Consecutive successful probes before a down endpoint recovers.
  std::uint32_t up_after = 1;

  void validate() const {
    CDN_EXPECT(probe_interval.count() > 0,
               "probe interval must be positive");
    CDN_EXPECT(probe_timeout.count() > 0, "probe timeout must be positive");
    CDN_EXPECT(down_after >= 1 && up_after >= 1,
               "health thresholds must be at least 1");
  }
};

class HealthProber {
 public:
  /// Masks start all-up.  `metrics` and `ewma` may be null; `ewma` must
  /// outlive the prober when given.
  HealthProber(net::EventLoop& loop, const EndpointMap& endpoints,
               std::size_t server_count, std::size_t site_count,
               const HealthParams& params, obs::Registry* metrics,
               LatencyEwma* ewma = nullptr);

  /// Cancels pending timers and disarms in-flight probe callbacks — safe
  /// to destroy while the loop keeps running (the hot-reload path swaps
  /// probers live when the endpoint map changes).
  ~HealthProber();

  /// Schedules the phase-offset first probes (loop thread).
  void start();
  /// Cancels future probes; in-flight ones finish on their own within the
  /// probe timeout.
  void stop();

  const std::vector<std::uint8_t>& server_up() const noexcept {
    return server_up_;
  }
  const std::vector<std::uint8_t>& origin_up() const noexcept {
    return origin_up_;
  }
  /// Full rounds completed by EVERY endpoint (the slowest phase defines a
  /// sweep, matching the old synchronized-sweep counter).
  std::uint64_t sweeps_completed() const noexcept;

 private:
  struct Target {
    bool is_origin = false;
    std::uint32_t index = 0;
    Endpoint endpoint;
    std::uint32_t consecutive_fail = 0;
    std::uint32_t consecutive_ok = 0;
    std::uint64_t rounds = 0;
    net::TimerId timer = 0;
  };

  void schedule_probe(std::size_t target_index,
                      std::chrono::nanoseconds delay);
  void launch_probe(std::size_t target_index);
  void probe_done(std::size_t target_index, const RaceResult& result);

  net::EventLoop& loop_;
  HealthParams params_;
  std::vector<Target> targets_;
  std::vector<std::uint8_t> server_up_;
  std::vector<std::uint8_t> origin_up_;
  bool stopped_ = true;
  /// Cleared on destruction; in-flight race callbacks check it before
  /// touching `this`, so a live prober swap cannot use-after-free.
  std::shared_ptr<bool> alive_;
  obs::Counter* probes_ = nullptr;
  obs::Counter* probe_failures_ = nullptr;
  obs::Counter* transitions_ = nullptr;
  LatencyEwma* ewma_ = nullptr;
};

}  // namespace cdn::redirectd
