// Replica health probing over real sockets.
//
// The prober periodically sweeps every mapped replica/origin endpoint with
// a one-candidate connection probe (connect + greeting byte, bounded by a
// probe timeout) and maintains up/down masks with consecutive-failure
// hysteresis.  The daemon intersects these masks with the wall-clock fault
// timeline's masks before ranking candidates, so racing starts from
// believed-live replicas and a flapping endpoint cannot whipsaw the
// candidate lists.
//
// Unmapped servers/origins are reported as up — in model mode there is
// nothing to probe, and the fault timeline is the sole health authority.

#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/net/event_loop.h"
#include "src/obs/registry.h"
#include "src/redirectd/protocol.h"
#include "src/redirectd/racer.h"

namespace cdn::redirectd {

struct HealthParams {
  std::chrono::milliseconds probe_interval{250};
  std::chrono::milliseconds probe_timeout{100};
  /// Consecutive failed probes before an endpoint is marked down.
  std::uint32_t down_after = 2;
  /// Consecutive successful probes before a down endpoint recovers.
  std::uint32_t up_after = 1;

  void validate() const {
    CDN_EXPECT(probe_interval.count() > 0,
               "probe interval must be positive");
    CDN_EXPECT(probe_timeout.count() > 0, "probe timeout must be positive");
    CDN_EXPECT(down_after >= 1 && up_after >= 1,
               "health thresholds must be at least 1");
  }
};

class HealthProber {
 public:
  /// Masks start all-up.  `metrics` may be null.
  HealthProber(net::EventLoop& loop, const EndpointMap& endpoints,
               std::size_t server_count, std::size_t site_count,
               const HealthParams& params, obs::Registry* metrics);

  /// Schedules the first sweep (loop thread).
  void start();
  /// Cancels future sweeps; in-flight probes finish on their own within
  /// the probe timeout.
  void stop();

  const std::vector<std::uint8_t>& server_up() const noexcept {
    return server_up_;
  }
  const std::vector<std::uint8_t>& origin_up() const noexcept {
    return origin_up_;
  }
  std::uint64_t sweeps_completed() const noexcept { return sweeps_; }

 private:
  struct Target {
    bool is_origin = false;
    std::uint32_t index = 0;
    Endpoint endpoint;
    std::uint32_t consecutive_fail = 0;
    std::uint32_t consecutive_ok = 0;
  };

  void begin_sweep();
  void probe_done(std::size_t target_index, bool success);

  net::EventLoop& loop_;
  HealthParams params_;
  std::vector<Target> targets_;
  std::vector<std::uint8_t> server_up_;
  std::vector<std::uint8_t> origin_up_;
  std::size_t outstanding_ = 0;
  std::uint64_t sweeps_ = 0;
  net::TimerId sweep_timer_ = 0;
  bool stopped_ = true;
  obs::Counter* probes_ = nullptr;
  obs::Counter* probe_failures_ = nullptr;
  obs::Counter* transitions_ = nullptr;
};

}  // namespace cdn::redirectd
