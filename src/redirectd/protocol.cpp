#include "src/redirectd/protocol.h"

#include <fstream>
#include <sstream>

#include "src/util/error.h"
#include "src/util/text_parse.h"

namespace cdn::redirectd {

namespace {

/// Whitespace tokenizer with 1-based column tracking, mirroring the fault
/// schedule parser so every protocol/config error carries an exact
/// location.
class LineTokens {
 public:
  LineTokens(const std::string& line, const std::string& what,
             std::size_t line_no)
      : line_(line), what_(what), line_no_(line_no) {}

  std::string where() const {
    return what_ + " line " + std::to_string(line_no_) + ", col " +
           std::to_string(util::text_column(
               std::min(next_start(), line_.size())));
  }

  bool at_end() const { return next_start() >= line_.size(); }

  std::string expect(const char* what) {
    const std::size_t start = next_start();
    CDN_EXPECT(start < line_.size(),
               where() + ": expected " + what + ", but the line ended");
    std::size_t end = start;
    while (end < line_.size() && !is_space(line_[end])) ++end;
    token_where_ = what_ + " line " + std::to_string(line_no_) + ", col " +
                   std::to_string(util::text_column(start));
    pos_ = end;
    return line_.substr(start, end - start);
  }

  std::uint32_t u32(const char* what) {
    const std::string tok = expect(what);
    return util::parse_u32_token(tok, token_where_);
  }
  std::uint64_t u64(const char* what) {
    const std::string tok = expect(what);
    return util::parse_u64_token(tok, token_where_);
  }
  double finite(const char* what) {
    const std::string tok = expect(what);
    return util::parse_finite_double_token(tok, token_where_);
  }
  void literal(const char* word) {
    const std::string tok = expect(word);
    CDN_EXPECT(tok == word, token_where_ + ": expected '" +
                                std::string(word) + "' (got '" + tok + "')");
  }
  void done() {
    CDN_EXPECT(at_end(),
               where() + ": unexpected trailing token '" +
                   line_.substr(next_start(),
                                line_.find_first_of(
                                    " \t", next_start()) - next_start()) +
                   "'");
  }

  const std::string& last_where() const { return token_where_; }

 private:
  static bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }
  std::size_t next_start() const {
    std::size_t p = pos_;
    while (p < line_.size() && is_space(line_[p])) ++p;
    return p;
  }

  const std::string& line_;
  const std::string& what_;
  std::size_t line_no_;
  std::size_t pos_ = 0;
  std::string token_where_;
};

std::string strip_eol(const std::string& line) {
  std::string s = line;
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
  return s;
}

const std::string kRequestWhat = "redirect request";
const std::string kAnswerWhat = "redirect answer";
const std::string kEndpointsWhat = "endpoint map";

}  // namespace

RedirectRequest parse_request(const std::string& line) {
  CDN_EXPECT(line.size() <= kMaxRequestLine,
             "redirect request line exceeds " +
                 std::to_string(kMaxRequestLine) + " bytes (" +
                 std::to_string(line.size()) + ")");
  const std::string body = strip_eol(line);
  LineTokens tokens(body, kRequestWhat, 1);
  tokens.literal("GET");
  RedirectRequest request;
  request.client_server = tokens.u32("the client's first-hop server index");
  request.site = tokens.u32("a site index");
  request.object = tokens.u64("an object id");
  tokens.done();
  return request;
}

std::string format_request(const RedirectRequest& request) {
  std::ostringstream os;
  os << "GET " << request.client_server << ' ' << request.site << ' '
     << request.object << '\n';
  return os.str();
}

namespace {

const char* reason_word(UnavailableReason reason) {
  switch (reason) {
    case UnavailableReason::kNoLiveCopy:
      return "no_live_copy";
    case UnavailableReason::kShed:
      return "shed";
    case UnavailableReason::kDeadline:
      return "deadline";
  }
  return "no_live_copy";
}

}  // namespace

std::string format_answer(const RedirectAnswer& answer) {
  std::ostringstream os;
  switch (answer.kind) {
    case AnswerKind::kReplica:
      os << "REPLICA " << answer.server << ' ' << answer.cost << ' '
         << answer.winner_rank << ' ' << answer.attempts << '\n';
      break;
    case AnswerKind::kOrigin:
      os << "ORIGIN " << answer.site << ' ' << answer.cost << ' '
         << answer.attempts << '\n';
      break;
    case AnswerKind::kUnavailable:
      os << "UNAVAILABLE " << reason_word(answer.reason) << '\n';
      break;
  }
  return os.str();
}

RedirectAnswer parse_answer(const std::string& line) {
  const std::string body = strip_eol(line);
  LineTokens tokens(body, kAnswerWhat, 1);
  const std::string verb = tokens.expect("a response verb");
  RedirectAnswer answer;
  if (verb == "REPLICA") {
    answer.kind = AnswerKind::kReplica;
    answer.server = tokens.u32("a server index");
    answer.cost = tokens.finite("the redirection cost");
    answer.winner_rank = tokens.u32("the winning candidate rank");
    answer.attempts = tokens.u32("the attempt count");
  } else if (verb == "ORIGIN") {
    answer.kind = AnswerKind::kOrigin;
    answer.site = tokens.u32("a site index");
    answer.cost = tokens.finite("the redirection cost");
    answer.attempts = tokens.u32("the attempt count");
  } else if (verb == "UNAVAILABLE") {
    answer.kind = AnswerKind::kUnavailable;
    const std::string reason = tokens.expect("an unavailability reason");
    if (reason == "no_live_copy") {
      answer.reason = UnavailableReason::kNoLiveCopy;
    } else if (reason == "shed") {
      answer.reason = UnavailableReason::kShed;
    } else if (reason == "deadline") {
      answer.reason = UnavailableReason::kDeadline;
    } else {
      CDN_EXPECT(false, tokens.last_where() +
                            ": unknown unavailability reason '" + reason +
                            "'");
    }
  } else {
    CDN_EXPECT(false, tokens.last_where() + ": unknown response verb '" +
                          verb + "'");
  }
  tokens.done();
  return answer;
}

EndpointMap EndpointMap::parse(const std::string& text) {
  EndpointMap map;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;

  const auto assign = [&](std::vector<std::optional<Endpoint>>& slots,
                          std::uint32_t index, Endpoint endpoint,
                          const std::string& where, const char* what) {
    if (slots.size() <= index) slots.resize(index + 1);
    CDN_EXPECT(!slots[index].has_value(),
               where + ": duplicate " + what + " entry for index " +
                   std::to_string(index));
    slots[index] = std::move(endpoint);
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    LineTokens tokens(line, kEndpointsWhat, line_no);
    if (tokens.at_end()) continue;
    const std::string kind = tokens.expect("'replica' or 'origin'");
    CDN_EXPECT(kind == "replica" || kind == "origin",
               tokens.last_where() + ": unknown directive '" + kind +
                   "' (expected 'replica' or 'origin')");
    const std::uint32_t index = tokens.u32("a target index");
    const std::string host = tokens.expect("a host");
    const std::uint32_t port = tokens.u32("a port");
    const std::string port_where = tokens.last_where();
    tokens.done();
    CDN_EXPECT(port >= 1 && port <= 65535,
               port_where + ": port " + std::to_string(port) +
                   " is outside [1, 65535]");
    Endpoint endpoint{host, static_cast<std::uint16_t>(port)};
    if (kind == "replica") {
      assign(map.replicas, index, std::move(endpoint), port_where,
             "replica");
    } else {
      assign(map.origins, index, std::move(endpoint), port_where, "origin");
    }
  }
  return map;
}

EndpointMap EndpointMap::load(const std::string& path) {
  std::ifstream in(path);
  CDN_EXPECT(in.good(), "cannot open endpoint map: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  CDN_EXPECT(!in.bad(), "I/O error reading endpoint map: " + path);
  return parse(buffer.str());
}

void EndpointMap::validate(std::size_t server_count,
                           std::size_t site_count) const {
  CDN_EXPECT(replicas.size() <= server_count,
             "endpoint map names a replica index >= the server count");
  CDN_EXPECT(origins.size() <= site_count,
             "endpoint map names an origin index >= the site count");
}

std::string EndpointMap::serialize() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (replicas[i]) {
      os << "replica " << i << ' ' << replicas[i]->host << ' '
         << replicas[i]->port << '\n';
    }
  }
  for (std::size_t j = 0; j < origins.size(); ++j) {
    if (origins[j]) {
      os << "origin " << j << ' ' << origins[j]->host << ' '
         << origins[j]->port << '\n';
    }
  }
  return os.str();
}

}  // namespace cdn::redirectd
