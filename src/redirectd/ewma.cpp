#include "src/redirectd/ewma.h"

#include <algorithm>

namespace cdn::redirectd {

LatencyEwma::LatencyEwma(std::size_t server_count, std::size_t site_count,
                         const EwmaParams& params, obs::Registry* metrics)
    : params_(params),
      replicas_(server_count),
      origins_(site_count) {
  params_.validate();
  if (metrics != nullptr) {
    m_ejections_ = &metrics->counter("redirect/ewma/ejections");
    m_recoveries_ = &metrics->counter("redirect/ewma/recoveries");
  }
}

LatencyEwma::Entry& LatencyEwma::entry(Kind kind, std::uint32_t index) {
  auto& slots = kind == Kind::kReplica ? replicas_ : origins_;
  CDN_EXPECT(index < slots.size(), "ewma endpoint index out of range");
  return slots[index];
}

const LatencyEwma::Entry& LatencyEwma::entry(Kind kind,
                                             std::uint32_t index) const {
  const auto& slots = kind == Kind::kReplica ? replicas_ : origins_;
  CDN_EXPECT(index < slots.size(), "ewma endpoint index out of range");
  return slots[index];
}

double LatencyEwma::fleet_median_ns() const {
  std::vector<double> sampled;
  sampled.reserve(replicas_.size() + origins_.size());
  for (const auto* slots : {&replicas_, &origins_}) {
    for (const Entry& e : *slots) {
      if (e.samples > 0) sampled.push_back(e.ewma);
    }
  }
  if (sampled.empty()) return 0.0;
  const std::size_t mid = sampled.size() / 2;
  std::nth_element(sampled.begin(), sampled.begin() + mid, sampled.end());
  return sampled[mid];
}

bool LatencyEwma::is_outlier(const Entry& e) const {
  if (e.samples < params_.min_samples) return false;
  std::size_t fleet = 0;
  for (const auto* slots : {&replicas_, &origins_}) {
    for (const Entry& other : *slots) {
      if (other.samples > 0) ++fleet;
    }
  }
  if (fleet < params_.min_fleet) return false;
  const double median = fleet_median_ns();
  return median > 0.0 && e.ewma > params_.eject_multiplier * median;
}

void LatencyEwma::record(Kind kind, std::uint32_t index,
                         std::uint64_t latency_ns, net::TimePoint now) {
  Entry& e = entry(kind, index);
  const double x = static_cast<double>(latency_ns);
  e.ewma = e.samples == 0
               ? x
               : params_.alpha * x + (1.0 - params_.alpha) * e.ewma;
  ++e.samples;

  const bool outlier = is_outlier(e);
  switch (e.circuit) {
    case Circuit::kClosed:
      if (outlier) {
        e.circuit = Circuit::kEjected;
        e.eject_until = now + params_.eject_cooldown;
        ++ejections_;
        if (m_ejections_ != nullptr) m_ejections_->add();
      }
      break;
    case Circuit::kEjected:
      if (!outlier) {
        // Recovered early (the prober kept measuring it).
        e.circuit = Circuit::kClosed;
        ++recoveries_;
        if (m_recoveries_ != nullptr) m_recoveries_->add();
      } else if (now >= e.eject_until) {
        e.circuit = Circuit::kHalfOpen;
      }
      break;
    case Circuit::kHalfOpen:
      if (outlier) {
        e.circuit = Circuit::kEjected;
        e.eject_until = now + params_.eject_cooldown;
        ++ejections_;
        if (m_ejections_ != nullptr) m_ejections_->add();
      } else {
        e.circuit = Circuit::kClosed;
        ++recoveries_;
        if (m_recoveries_ != nullptr) m_recoveries_->add();
      }
      break;
  }
}

bool LatencyEwma::demoted(Kind kind, std::uint32_t index,
                          net::TimePoint now) {
  Entry& e = entry(kind, index);
  if (e.circuit == Circuit::kEjected && now >= e.eject_until) {
    e.circuit = Circuit::kHalfOpen;
  }
  return e.circuit == Circuit::kEjected;
}

double LatencyEwma::ewma_ns(Kind kind, std::uint32_t index) const {
  return entry(kind, index).ewma;
}

LatencyEwma::Circuit LatencyEwma::circuit(Kind kind,
                                          std::uint32_t index) const {
  return entry(kind, index).circuit;
}

}  // namespace cdn::redirectd
