#include "src/redirectd/health.h"

namespace cdn::redirectd {

HealthProber::HealthProber(net::EventLoop& loop, const EndpointMap& endpoints,
                           std::size_t server_count, std::size_t site_count,
                           const HealthParams& params,
                           obs::Registry* metrics)
    : loop_(loop), params_(params) {
  params_.validate();
  endpoints.validate(server_count, site_count);
  server_up_.assign(server_count, 1);
  origin_up_.assign(site_count, 1);
  for (std::size_t i = 0; i < endpoints.replicas.size(); ++i) {
    if (endpoints.replicas[i]) {
      targets_.push_back({false, static_cast<std::uint32_t>(i),
                          *endpoints.replicas[i], 0, 0});
    }
  }
  for (std::size_t j = 0; j < endpoints.origins.size(); ++j) {
    if (endpoints.origins[j]) {
      targets_.push_back({true, static_cast<std::uint32_t>(j),
                          *endpoints.origins[j], 0, 0});
    }
  }
  if (metrics != nullptr) {
    probes_ = &metrics->counter("redirect/health/probes");
    probe_failures_ = &metrics->counter("redirect/health/failures");
    transitions_ = &metrics->counter("redirect/health/transitions");
  }
}

void HealthProber::start() {
  if (targets_.empty()) return;  // nothing to probe; masks stay all-up
  stopped_ = false;
  begin_sweep();
}

void HealthProber::stop() {
  stopped_ = true;
  if (sweep_timer_ != 0) {
    loop_.cancel_timer(sweep_timer_);
    sweep_timer_ = 0;
  }
}

void HealthProber::begin_sweep() {
  if (stopped_) return;
  outstanding_ = targets_.size();
  // A probe is a one-candidate race: no stagger, no retries, one bounded
  // connect+greeting attempt.
  RaceParams probe;
  probe.stagger = std::chrono::milliseconds(0);
  probe.attempt_timeout = params_.probe_timeout;
  probe.overall_deadline = params_.probe_timeout;
  probe.max_retry_rounds = 0;
  for (std::size_t t = 0; t < targets_.size(); ++t) {
    if (probes_ != nullptr) probes_->add();
    start_race(loop_, {{targets_[t].endpoint, 1}}, probe,
               /*backoff_seed=*/t + 1,
               [this, t](const RaceResult& result) {
                 probe_done(t, result.success);
               });
  }
}

void HealthProber::probe_done(std::size_t target_index, bool success) {
  Target& target = targets_[target_index];
  std::vector<std::uint8_t>& mask =
      target.is_origin ? origin_up_ : server_up_;
  if (success) {
    target.consecutive_fail = 0;
    ++target.consecutive_ok;
    if (mask[target.index] == 0 &&
        target.consecutive_ok >= params_.up_after) {
      mask[target.index] = 1;
      if (transitions_ != nullptr) transitions_->add();
    }
  } else {
    target.consecutive_ok = 0;
    ++target.consecutive_fail;
    if (probe_failures_ != nullptr) probe_failures_->add();
    if (mask[target.index] == 1 &&
        target.consecutive_fail >= params_.down_after) {
      mask[target.index] = 0;
      if (transitions_ != nullptr) transitions_->add();
    }
  }

  if (--outstanding_ == 0) {
    ++sweeps_;
    if (stopped_) return;
    sweep_timer_ = loop_.add_timer_after(params_.probe_interval, [this] {
      sweep_timer_ = 0;
      begin_sweep();
    });
  }
}

}  // namespace cdn::redirectd
