#include "src/redirectd/health.h"

#include <algorithm>

namespace cdn::redirectd {

HealthProber::HealthProber(net::EventLoop& loop, const EndpointMap& endpoints,
                           std::size_t server_count, std::size_t site_count,
                           const HealthParams& params, obs::Registry* metrics,
                           LatencyEwma* ewma)
    : loop_(loop),
      params_(params),
      alive_(std::make_shared<bool>(true)),
      ewma_(ewma) {
  params_.validate();
  endpoints.validate(server_count, site_count);
  server_up_.assign(server_count, 1);
  origin_up_.assign(site_count, 1);
  for (std::size_t i = 0; i < endpoints.replicas.size(); ++i) {
    if (endpoints.replicas[i]) {
      targets_.push_back({false, static_cast<std::uint32_t>(i),
                          *endpoints.replicas[i], 0, 0, 0, 0});
    }
  }
  for (std::size_t j = 0; j < endpoints.origins.size(); ++j) {
    if (endpoints.origins[j]) {
      targets_.push_back({true, static_cast<std::uint32_t>(j),
                          *endpoints.origins[j], 0, 0, 0, 0});
    }
  }
  if (metrics != nullptr) {
    probes_ = &metrics->counter("redirect/health/probes");
    probe_failures_ = &metrics->counter("redirect/health/failures");
    transitions_ = &metrics->counter("redirect/health/transitions");
  }
}

HealthProber::~HealthProber() {
  stop();
  *alive_ = false;
}

void HealthProber::start() {
  if (targets_.empty()) return;  // nothing to probe; masks stay all-up
  stopped_ = false;
  // Phase-spread: endpoint t's probes fire at offset t/|targets| of the
  // interval, every interval — same per-endpoint cadence as a synchronized
  // sweep, but the fleet-wide burst is gone.
  const auto interval =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          params_.probe_interval);
  for (std::size_t t = 0; t < targets_.size(); ++t) {
    schedule_probe(t, interval * t / targets_.size());
  }
}

void HealthProber::stop() {
  stopped_ = true;
  for (Target& target : targets_) {
    if (target.timer != 0) {
      loop_.cancel_timer(target.timer);
      target.timer = 0;
    }
  }
}

std::uint64_t HealthProber::sweeps_completed() const noexcept {
  if (targets_.empty()) return 0;
  std::uint64_t sweeps = targets_.front().rounds;
  for (const Target& target : targets_) {
    sweeps = std::min(sweeps, target.rounds);
  }
  return sweeps;
}

void HealthProber::schedule_probe(std::size_t target_index,
                                  std::chrono::nanoseconds delay) {
  auto alive = alive_;
  targets_[target_index].timer =
      loop_.add_timer_after(delay, [this, alive, target_index] {
        if (!*alive) return;
        targets_[target_index].timer = 0;
        launch_probe(target_index);
      });
}

void HealthProber::launch_probe(std::size_t target_index) {
  if (stopped_) return;
  if (probes_ != nullptr) probes_->add();
  // A probe is a one-candidate race: no stagger, no retries, one bounded
  // connect+greeting attempt.
  RaceParams probe;
  probe.stagger = std::chrono::milliseconds(0);
  probe.attempt_timeout = params_.probe_timeout;
  probe.overall_deadline = params_.probe_timeout;
  probe.max_retry_rounds = 0;
  auto alive = alive_;
  start_race(loop_, {{targets_[target_index].endpoint, 1}}, probe,
             /*backoff_seed=*/target_index + 1,
             [this, alive, target_index](const RaceResult& result) {
               if (!*alive) return;
               probe_done(target_index, result);
             });
}

void HealthProber::probe_done(std::size_t target_index,
                              const RaceResult& result) {
  Target& target = targets_[target_index];
  const bool success = result.success;
  std::vector<std::uint8_t>& mask =
      target.is_origin ? origin_up_ : server_up_;
  if (success) {
    target.consecutive_fail = 0;
    ++target.consecutive_ok;
    if (mask[target.index] == 0 &&
        target.consecutive_ok >= params_.up_after) {
      mask[target.index] = 1;
      if (transitions_ != nullptr) transitions_->add();
    }
  } else {
    target.consecutive_ok = 0;
    ++target.consecutive_fail;
    if (probe_failures_ != nullptr) probe_failures_->add();
    if (mask[target.index] == 1 &&
        target.consecutive_fail >= params_.down_after) {
      mask[target.index] = 0;
      if (transitions_ != nullptr) transitions_->add();
    }
  }

  if (ewma_ != nullptr) {
    // A successful probe contributes its measured round trip; a failed one
    // the full probe-timeout penalty (a fast refusal is not a fast
    // endpoint).
    const std::uint64_t penalty = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            params_.probe_timeout)
            .count());
    std::uint64_t latency_ns = penalty;
    if (success && !result.samples.empty()) {
      latency_ns = result.samples.back().latency_ns;
    }
    ewma_->record(target.is_origin ? LatencyEwma::Kind::kOrigin
                                   : LatencyEwma::Kind::kReplica,
                  target.index, latency_ns, net::Clock::now());
  }

  ++target.rounds;
  if (!stopped_) schedule_probe(target_index, params_.probe_interval);
}

}  // namespace cdn::redirectd
