#include "src/redirectd/daemon.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <string>
#include <utility>

#include "src/placement/placement_io.h"
#include "src/util/error.h"
#include "src/util/serial.h"

namespace cdn::redirectd {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          net::Clock::now().time_since_epoch())
          .count());
}

std::string to_hex(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::uint64_t endpoint_map_digest(const EndpointMap& endpoints) {
  const std::string canonical = endpoints.serialize();
  return util::fnv1a(canonical.data(), canonical.size());
}

}  // namespace

/// One client connection.  Requests on a session are answered strictly in
/// order: while a race is in flight (`busy`) further complete lines queue
/// in `pending` — clients that want concurrency open more connections
/// (which is what redirect_load does).
struct RedirectorDaemon::Session {
  std::uint64_t id = 0;
  net::Fd fd;
  std::string inbuf;
  std::string outbuf;
  std::deque<std::string> pending;
  bool busy = false;     // race in flight; answers must stay ordered
  bool closing = false;  // close once outbuf drains and no race is live
};

RedirectorDaemon::RedirectorDaemon(const DaemonConfig& config)
    : config_(config) {
  CDN_EXPECT(config_.system != nullptr && config_.placement != nullptr,
             "redirector daemon needs a system and a placement");
  CDN_EXPECT(config_.top_k >= 1, "top_k must be at least 1");
  CDN_EXPECT(config_.max_inflight_races >= 1,
             "max_inflight_races must be at least 1");
  CDN_EXPECT(config_.max_session_outbuf >= kMaxRequestLine,
             "max_session_outbuf must hold at least one line");
  CDN_EXPECT(config_.drain_timeout.count() > 0,
             "drain timeout must be positive");
  config_.race.validate();
  config_.health.validate();
  if (config_.adaptive) config_.ewma.validate();

  const std::size_t servers = config_.system->server_count();
  const std::size_t sites = config_.system->site_count();
  CDN_EXPECT(config_.placement->placement.server_count() == servers &&
                 config_.placement->placement.site_count() == sites,
             "placement and system disagree on fleet shape");
  if (config_.endpoints != nullptr && !config_.endpoints->empty()) {
    config_.endpoints->validate(servers, sites);
  }

  // Generation 1: serving state built from the constructor wiring.
  auto initial = std::make_shared<ServingState>();
  initial->generation = 1;
  initial->placement = config_.placement;
  initial->endpoints = config_.endpoints;
  initial->holders.resize(sites);
  for (std::size_t j = 0; j < sites; ++j) {
    initial->holders[j] = config_.placement->placement.replicators(
        static_cast<sys::SiteIndex>(j));
  }
  initial->placement_digest =
      placement::placement_digest(config_.placement->placement);
  if (initial->racing()) {
    initial->endpoints_digest = endpoint_map_digest(*initial->endpoints);
  }
  state_ = std::move(initial);

  if (config_.adaptive) {
    ewma_ = std::make_unique<LatencyEwma>(servers, sites, config_.ewma,
                                          config_.metrics);
  }
  health_scratch_.assign(servers, 1);

  if (config_.metrics != nullptr) {
    obs::Registry& r = *config_.metrics;
    m_requests_ = &r.counter("redirect/requests");
    m_replica_ = &r.counter("redirect/answers/replica");
    m_origin_ = &r.counter("redirect/answers/origin");
    m_unavailable_ = &r.counter("redirect/answers/unavailable");
    m_shed_ = &r.counter("redirect/shed");
    m_parse_errors_ = &r.counter("redirect/parse_errors");
    m_races_ = &r.counter("redirect/races/started");
    m_retries_ = &r.counter("redirect/retries");
    m_backoff_ms_ = &r.counter("redirect/backoff_ms");
    m_slow_reader_ = &r.counter("redirect/slow_reader_closes");
    m_reload_applied_ = &r.counter("redirect/reload/applied");
    m_reload_failed_ = &r.counter("redirect/reload/failed");
    m_generation_ = &r.gauge("redirect/reload/generation");
    m_generation_->set(1.0);
    m_answer_latency_ = &r.timer("redirect/answer_latency");
    m_won_by_rank_.reserve(config_.top_k);
    for (std::size_t rank = 1; rank <= config_.top_k; ++rank) {
      m_won_by_rank_.push_back(
          &r.counter("redirect/races/won_rank_" + std::to_string(rank)));
    }
  }
}

RedirectorDaemon::~RedirectorDaemon() = default;

void RedirectorDaemon::start() {
  listener_ = net::TcpListener::bind(config_.host, config_.port);
  loop_.add_fd(listener_.fd(), net::kReadable,
               [this](std::uint32_t) { on_accept(); });
  loop_.set_wakeup_handler([this] { on_wakeup(); });
  start_prober(*state_);
  if (config_.control || !config_.reload_placement_path.empty() ||
      !config_.reload_endpoints_path.empty()) {
    reload_worker_ = std::make_unique<ReloadWorker>(loop_, *config_.system);
  }
  if (config_.control) {
    ControlServer::Handlers handlers;
    handlers.reload = [this](ReloadKind kind, const std::string& path,
                             std::function<void(std::string)> done) {
      submit_reload(kind, path, std::move(done));
    };
    handlers.status = [this] { return status_line(); };
    handlers.drain = [this] {
      // Defer the drain to the wakeup handler so the reply line gets
      // flushed before the control sessions are torn down.
      request_stop();
      return std::string("OK draining");
    };
    control_ = std::make_unique<ControlServer>(
        loop_, config_.control_host, config_.control_port,
        std::move(handlers), config_.metrics);
    control_->start();
  }
  if (config_.timeline != nullptr) {
    // Idle tick: faults keep playing out even between requests, so health
    // probes and the next request see current masks.
    arm_tick();
  }
}

void RedirectorDaemon::start_prober(const ServingState& state) {
  prober_.reset();  // in-flight probe callbacks are disarmed by its alive flag
  if (!state.racing()) return;
  prober_ = std::make_unique<HealthProber>(
      loop_, *state.endpoints, config_.system->server_count(),
      config_.system->site_count(), config_.health, config_.metrics,
      ewma_.get());
  prober_->start();
}

void RedirectorDaemon::advance_timeline() {
  if (config_.timeline != nullptr) {
    config_.timeline->advance_to(net::Clock::now());
  }
}

std::uint64_t RedirectorDaemon::run() {
  loop_.run();
  return stats_.requests;
}

void RedirectorDaemon::request_stop() noexcept {
  stop_requested_.store(true, std::memory_order_relaxed);
  loop_.wakeup();
}

void RedirectorDaemon::request_reload() noexcept {
  reload_requested_.store(true, std::memory_order_relaxed);
  loop_.wakeup();
}

void RedirectorDaemon::on_wakeup() {
  // Reload completions swap serving state here — between dispatch passes,
  // never under a request callback's feet.
  if (reload_worker_ != nullptr) reload_worker_->drain_completions();
  if (reload_requested_.exchange(false, std::memory_order_relaxed) &&
      !draining_) {
    // SIGHUP path: re-read whichever files the daemon was configured to
    // watch.  Outcomes land in stats/metrics; there is no reply channel.
    if (!config_.reload_placement_path.empty()) {
      submit_reload(ReloadKind::kPlacement, config_.reload_placement_path,
                    [](std::string) {});
    }
    if (!config_.reload_endpoints_path.empty()) {
      submit_reload(ReloadKind::kEndpoints, config_.reload_endpoints_path,
                    [](std::string) {});
    }
  }
  if (stop_requested_.load(std::memory_order_relaxed)) begin_drain();
}

void RedirectorDaemon::submit_reload(ReloadKind kind, const std::string& path,
                                     std::function<void(std::string)> done) {
  if (draining_) {
    done("ERR draining");
    return;
  }
  if (reload_worker_ == nullptr) {
    reload_worker_ = std::make_unique<ReloadWorker>(loop_, *config_.system);
  }
  reload_worker_->submit(
      kind, path, [this, done = std::move(done)](const ReloadOutcome& outcome) {
        done(apply_reload(outcome));
      });
}

std::string RedirectorDaemon::apply_reload(const ReloadOutcome& outcome) {
  if (draining_) return "ERR draining";
  if (!outcome.ok) {
    ++stats_.reloads_failed;
    if (m_reload_failed_ != nullptr) m_reload_failed_->add();
    return std::string("ERR reload ") + reload_kind_name(outcome.kind) +
           ": " + outcome.error;
  }
  auto next = std::make_shared<ServingState>(*state_);
  next->generation = state_->generation + 1;
  if (outcome.kind == ReloadKind::kPlacement) {
    next->owned_placement = outcome.placement;
    next->placement = outcome.placement.get();
    next->placement_digest = outcome.digest;
    const std::size_t sites = config_.system->site_count();
    for (std::size_t j = 0; j < sites; ++j) {
      next->holders[j] = next->placement->placement.replicators(
          static_cast<sys::SiteIndex>(j));
    }
  } else {
    next->owned_endpoints = outcome.endpoints;
    next->endpoints = outcome.endpoints.get();
    next->endpoints_digest = outcome.digest;
  }
  const std::uint64_t generation = next->generation;
  state_ = std::move(next);
  if (outcome.kind == ReloadKind::kEndpoints) {
    // The prober probes a fixed endpoint list; swap it with the map.  Its
    // up/down masks restart all-up and re-converge within the hysteresis
    // window (documented in docs/REDIRECTOR.md).
    start_prober(*state_);
  }
  ++stats_.reloads_applied;
  if (m_reload_applied_ != nullptr) m_reload_applied_->add();
  if (m_generation_ != nullptr) {
    m_generation_->set(static_cast<double>(generation));
  }
  return "OK generation=" + std::to_string(generation) +
         " digest=" + to_hex(outcome.digest);
}

std::string RedirectorDaemon::status_line() const {
  const ServingState& state = *state_;
  return "OK generation=" + std::to_string(state.generation) +
         " placement_digest=" + to_hex(state.placement_digest) +
         " endpoints_digest=" + to_hex(state.endpoints_digest) +
         " requests=" + std::to_string(stats_.requests) +
         " inflight=" + std::to_string(inflight_races_) +
         " sessions=" + std::to_string(sessions_.size()) +
         " reloads=" + std::to_string(stats_.reloads_applied) +
         " reload_failures=" + std::to_string(stats_.reloads_failed) +
         " draining=" + (draining_ ? "1" : "0");
}

void RedirectorDaemon::on_accept() {
  while (auto fd = listener_.accept()) {
    auto session = std::make_unique<Session>();
    session->id = next_session_id_++;
    session->fd = std::move(*fd);
    const int raw = session->fd.get();
    sessions_.emplace(raw, std::move(session));
    loop_.add_fd(raw, net::kReadable,
                 [this, raw](std::uint32_t events) {
                   on_session_event(raw, events);
                 });
  }
}

void RedirectorDaemon::on_session_event(int fd, std::uint32_t events) {
  auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  Session& session = *it->second;

  if ((events & net::kErrored) != 0) {
    close_session(fd);
    return;
  }
  if ((events & net::kWritable) != 0) {
    flush(session);
    if (sessions_.find(fd) == sessions_.end()) return;  // flushed and closed
  }
  if ((events & net::kReadable) != 0 && !session.closing) {
    char buf[4096];
    // Bounded read per dispatch: a client writing faster than we parse
    // must not pin this loop iteration until it pauses — that would
    // starve every other session, the timers, the prober and the control
    // socket for as long as the firehose lasts.  poll(2) is level-
    // triggered, so unread bytes re-deliver on the next loop pass, after
    // everyone else has had their turn.
    for (int chunk = 0; chunk < 4; ++chunk) {
      const net::IoResult r = net::read_some(fd, buf, sizeof(buf));
      if (r.status == net::IoStatus::kOk) {
        session.inbuf.append(buf, r.bytes);
        // Lift complete lines out of the input buffer.
        std::size_t start = 0;
        for (;;) {
          const std::size_t nl = session.inbuf.find('\n', start);
          if (nl == std::string::npos) break;
          session.pending.push_back(
              session.inbuf.substr(start, nl - start + 1));
          start = nl + 1;
        }
        session.inbuf.erase(0, start);
        if (session.inbuf.size() > kMaxRequestLine) {
          // No newline within the cap: a broken or hostile client.
          send(session, "ERR request line exceeds " +
                            std::to_string(kMaxRequestLine) + " bytes\n");
          // A failed write inside send() tears the session down when no
          // race is in flight; `session` is freed then.
          if (sessions_.find(fd) == sessions_.end()) return;
          session.closing = true;
          session.inbuf.clear();
          session.pending.clear();
          break;
        }
        continue;
      }
      if (r.status == net::IoStatus::kWouldBlock) break;
      // kClosed / kError: peer is gone.  Finish what is answerable only if
      // a race is in flight; otherwise tear down now.
      if (session.busy) {
        session.closing = true;
        session.pending.clear();
      } else {
        close_session(fd);
        return;
      }
      break;
    }
    process_pending(session);
  }
  if (sessions_.find(fd) != sessions_.end() && session.closing &&
      !session.busy && session.outbuf.empty()) {
    close_session(fd);
  }
}

void RedirectorDaemon::process_pending(Session& session) {
  // send() tears the session down when the peer is gone, so re-check
  // liveness after anything that writes (fds are not reused within one
  // dispatch pass, making the by-fd lookup safe).
  const int fd = session.fd.get();
  while (!session.busy && !session.pending.empty()) {
    const std::string line = std::move(session.pending.front());
    session.pending.pop_front();
    RedirectRequest request;
    bool parsed = true;
    try {
      request = parse_request(line);
    } catch (const PreconditionError& e) {
      ++stats_.parse_errors;
      if (m_parse_errors_ != nullptr) m_parse_errors_->add();
      send(session, std::string("ERR ") + e.what() + "\n");
      parsed = false;
    }
    if (parsed) handle_request(session, request);
    if (sessions_.find(fd) == sessions_.end()) return;
  }
}

void RedirectorDaemon::handle_request(Session& session,
                                      const RedirectRequest& request) {
  const std::uint64_t started_ns = steady_now_ns();
  ++stats_.requests;
  if (m_requests_ != nullptr) m_requests_->add();
  advance_timeline();

  // Pin this request's generation: a reload that lands while the race is
  // in flight swaps state_ under us, but this request resolves and answers
  // against the generation it started with.
  const std::shared_ptr<const ServingState> state = state_;

  const std::size_t servers = config_.system->server_count();
  const std::size_t sites = config_.system->site_count();
  if (request.client_server >= servers) {
    send(session, "ERR client server index out of range\n");
    return;
  }
  if (request.site >= sites) {
    send(session, "ERR site index out of range\n");
    return;
  }

  // Health = AND(scheduled faults, observed socket health).
  if (config_.timeline != nullptr) {
    health_scratch_ = config_.timeline->server_up_mask();
  } else {
    health_scratch_.assign(servers, 1);
  }
  bool origin_up = config_.timeline == nullptr ||
                   config_.timeline->origin_up(request.site);
  if (prober_ != nullptr) {
    const auto& probed = prober_->server_up();
    for (std::size_t i = 0; i < servers; ++i) {
      health_scratch_[i] =
          static_cast<std::uint8_t>(health_scratch_[i] != 0 && probed[i] != 0);
    }
    origin_up = origin_up && prober_->origin_up()[request.site] != 0;
  }

  auto candidates = state->placement->nearest.nearest_live_candidates(
      request.client_server, request.site, state->holders[request.site],
      health_scratch_, origin_up, config_.top_k);

  // Adaptive health: stable-demote latency outliers to the back of the
  // ranking — still raceable as a last resort, never preferred.
  if (ewma_ != nullptr && candidates.size() > 1) {
    const net::TimePoint now = net::Clock::now();
    std::stable_partition(
        candidates.begin(), candidates.end(),
        [&](const sys::NearestCopy& copy) {
          return !ewma_->demoted(
              copy.at_primary ? LatencyEwma::Kind::kOrigin
                              : LatencyEwma::Kind::kReplica,
              copy.at_primary ? static_cast<std::uint32_t>(request.site)
                              : static_cast<std::uint32_t>(copy.server),
              now);
        });
  }

  RedirectAnswer out;
  out.site = request.site;
  if (candidates.empty()) {
    out.kind = AnswerKind::kUnavailable;
    out.reason = UnavailableReason::kNoLiveCopy;
    answer(session, out, started_ns);
    return;
  }

  // Resolve each ranked candidate to a real endpoint, keeping the model
  // candidate alongside so the winner maps back to a placement answer.
  std::vector<RaceCandidate> raced;
  std::vector<sys::NearestCopy> raced_copies;
  if (state->racing()) {
    raced.reserve(candidates.size());
    raced_copies.reserve(candidates.size());
    for (const auto& copy : candidates) {
      const std::optional<Endpoint>* slot = nullptr;
      if (copy.at_primary) {
        if (request.site < state->endpoints->origins.size()) {
          slot = &state->endpoints->origins[request.site];
        }
      } else if (copy.server < state->endpoints->replicas.size()) {
        slot = &state->endpoints->replicas[copy.server];
      }
      if (slot != nullptr && slot->has_value()) {
        raced.push_back(
            {**slot, static_cast<std::uint32_t>(raced.size() + 1)});
        raced_copies.push_back(copy);
      }
    }
  }

  if (raced.empty()) {
    // Model mode (or nothing mapped): answer from the ranking directly.
    const sys::NearestCopy& best = candidates.front();
    if (best.at_primary) {
      out.kind = AnswerKind::kOrigin;
    } else {
      out.kind = AnswerKind::kReplica;
      out.server = best.server;
    }
    out.cost = best.cost;
    out.winner_rank = 1;
    out.attempts = 0;
    answer(session, out, started_ns);
    return;
  }

  if (inflight_races_ >= config_.max_inflight_races) {
    ++stats_.unavailable_shed;
    if (m_shed_ != nullptr) m_shed_->add();
    out.kind = AnswerKind::kUnavailable;
    out.reason = UnavailableReason::kShed;
    answer(session, out, started_ns);
    return;
  }

  session.busy = true;
  ++inflight_races_;
  ++stats_.races;
  if (m_races_ != nullptr) m_races_->add();
  const std::uint64_t backoff_seed =
      config_.seed * 0x9e3779b97f4a7c15ULL + stats_.requests;
  const int fd = session.fd.get();
  const std::uint64_t session_id = session.id;
  start_race(
      loop_, std::move(raced), config_.race, backoff_seed,
      [this, fd, session_id, started_ns, site = request.site, state,
       copies = std::move(raced_copies)](const RaceResult& result) {
        --inflight_races_;
        stats_.retries += result.retries;
        if (m_retries_ != nullptr) m_retries_->add(result.retries);
        if (m_backoff_ms_ != nullptr) {
          m_backoff_ms_->add(
              static_cast<std::uint64_t>(result.backoff_total.count()));
        }
        feed_ewma(site, copies, result);
        auto it = sessions_.find(fd);
        const bool session_live =
            it != sessions_.end() && it->second->id == session_id;
        RedirectAnswer reply;
        reply.site = site;
        if (result.success) {
          const sys::NearestCopy& winner = copies[result.winner_rank - 1];
          if (winner.at_primary) {
            reply.kind = AnswerKind::kOrigin;
          } else {
            reply.kind = AnswerKind::kReplica;
            reply.server = winner.server;
          }
          reply.cost = winner.cost;
          reply.winner_rank = result.winner_rank;
          reply.attempts = result.attempts;
          if (result.winner_rank <= m_won_by_rank_.size()) {
            m_won_by_rank_[result.winner_rank - 1]->add();
          }
        } else {
          reply.kind = AnswerKind::kUnavailable;
          reply.reason = UnavailableReason::kDeadline;
          reply.attempts = result.attempts;
        }
        if (session_live) {
          Session& target = *it->second;
          target.busy = false;
          answer(target, reply, started_ns);
          if (sessions_.find(fd) != sessions_.end()) {
            process_pending(target);
            if (sessions_.find(fd) != sessions_.end() && target.closing &&
                !target.busy && target.outbuf.empty()) {
              close_session(fd);
            }
          }
        } else {
          // Session died mid-race; still account the outcome.
          record_outcome(reply);
        }
        maybe_finish_drain();
      });
}

void RedirectorDaemon::feed_ewma(sys::SiteIndex site,
                                 const std::vector<sys::NearestCopy>& copies,
                                 const RaceResult& result) {
  if (ewma_ == nullptr) return;
  // A failed attempt is charged at least the attempt timeout: a fast
  // refusal (connection reset) must read as a slow endpoint, not a fast
  // one, or refusing replicas would look attractive.
  const std::uint64_t penalty = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          config_.race.attempt_timeout)
          .count());
  const net::TimePoint now = net::Clock::now();
  for (const AttemptSample& sample : result.samples) {
    if (sample.rank == 0 || sample.rank > copies.size()) continue;
    const sys::NearestCopy& copy = copies[sample.rank - 1];
    const std::uint64_t latency_ns =
        sample.success ? sample.latency_ns
                       : std::max(sample.latency_ns, penalty);
    ewma_->record(copy.at_primary ? LatencyEwma::Kind::kOrigin
                                  : LatencyEwma::Kind::kReplica,
                  copy.at_primary ? static_cast<std::uint32_t>(site)
                                  : static_cast<std::uint32_t>(copy.server),
                  latency_ns, now);
  }
}

void RedirectorDaemon::record_outcome(const RedirectAnswer& out) {
  switch (out.kind) {
    case AnswerKind::kReplica:
      ++stats_.replica_answers;
      if (m_replica_ != nullptr) m_replica_->add();
      break;
    case AnswerKind::kOrigin:
      ++stats_.origin_answers;
      if (m_origin_ != nullptr) m_origin_->add();
      break;
    case AnswerKind::kUnavailable:
      if (out.reason == UnavailableReason::kShed) {
        // counted at shed time
      } else if (out.reason == UnavailableReason::kDeadline) {
        ++stats_.unavailable_deadline;
      } else {
        ++stats_.unavailable_no_live_copy;
      }
      if (m_unavailable_ != nullptr) m_unavailable_->add();
      break;
  }
}

void RedirectorDaemon::answer(Session& session, const RedirectAnswer& out,
                              std::uint64_t started_ns) {
  record_outcome(out);
  const std::uint64_t latency_ns = steady_now_ns() - started_ns;
  if (m_answer_latency_ != nullptr) m_answer_latency_->record_ns(latency_ns);
  if (config_.spans != nullptr) {
    const std::uint64_t end = config_.spans->now_ns();
    const std::uint64_t begin = end >= latency_ns ? end - latency_ns : 0;
    config_.spans->complete("redirect/request", "redirectd", begin, end,
                            "attempts", static_cast<double>(out.attempts));
  }
  send(session, format_answer(out));
}

void RedirectorDaemon::send(Session& session, const std::string& line) {
  session.outbuf += line;
  if (session.outbuf.size() > config_.max_session_outbuf) {
    // The reader is slower than its answer stream; unbounded buffering
    // would trade one slow client for daemon memory.  Disconnect it.
    ++stats_.slow_reader_closes;
    if (m_slow_reader_ != nullptr) m_slow_reader_->add();
    close_session(session.fd.get());
    return;
  }
  flush(session);
}

void RedirectorDaemon::flush(Session& session) {
  const int fd = session.fd.get();
  while (!session.outbuf.empty()) {
    const net::IoResult r =
        net::write_some(fd, session.outbuf.data(), session.outbuf.size());
    if (r.status == net::IoStatus::kOk) {
      session.outbuf.erase(0, r.bytes);
      continue;
    }
    if (r.status == net::IoStatus::kWouldBlock) {
      loop_.set_interest(fd, net::kReadable | net::kWritable);
      return;
    }
    // Peer is gone; nothing left to deliver.
    session.outbuf.clear();
    if (!session.busy) close_session(fd);
    return;
  }
  if (loop_.has_fd(fd)) loop_.set_interest(fd, net::kReadable);
  if (session.closing && !session.busy) close_session(fd);
}

void RedirectorDaemon::close_session(int fd) {
  auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  if (loop_.has_fd(fd)) loop_.remove_fd(fd);
  sessions_.erase(it);
  maybe_finish_drain();
}

void RedirectorDaemon::begin_drain() {
  if (draining_) return;
  draining_ = true;
  if (listener_.valid()) {
    if (loop_.has_fd(listener_.fd())) loop_.remove_fd(listener_.fd());
    listener_.close();
  }
  if (control_ != nullptr) control_->shutdown();
  if (prober_ != nullptr) prober_->stop();
  if (tick_timer_ != 0) {
    loop_.cancel_timer(tick_timer_);
    tick_timer_ = 0;
  }
  // Idle sessions close now; busy ones get their answer first.  Queued
  // lines that have not started are dropped — drain means "finish what is
  // in flight", not "serve the backlog forever".
  std::vector<int> idle;
  for (auto& [fd, session] : sessions_) {
    session->pending.clear();
    session->closing = true;
    if (!session->busy && session->outbuf.empty()) idle.push_back(fd);
  }
  for (const int fd : idle) close_session(fd);
  drain_timer_ = loop_.add_timer_after(config_.drain_timeout,
                                       [this] { loop_.stop(); });
  maybe_finish_drain();
}

void RedirectorDaemon::maybe_finish_drain() {
  if (!draining_) return;
  if (sessions_.empty() && inflight_races_ == 0) {
    if (drain_timer_ != 0) {
      loop_.cancel_timer(drain_timer_);
      drain_timer_ = 0;
    }
    loop_.stop();
  }
}

void RedirectorDaemon::arm_tick() {
  tick_timer_ = loop_.add_timer_after(std::chrono::milliseconds(50), [this] {
    advance_timeline();
    if (!draining_) arm_tick();
  });
}

}  // namespace cdn::redirectd
