// SURGE-like workload parameterisation (Section 5.1 "Datasets").
//
// The paper generates one synthetic SURGE workload per hosted web site, with
// identical theta (Zipf exponent) and L (objects per site) everywhere, and
// three site-popularity classes: 50 low-, 100 medium-, and 50 high-
// popularity sites.  We reproduce SURGE's distributional skeleton: object
// sizes drawn from a lognormal body with a bounded-Pareto heavy tail, and
// object popularity within a site following a Zipf-like law.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/error.h"

namespace cdn::workload {

/// Distributional parameters of one synthetic site's object population.
/// Defaults are the canonical SURGE fits (Barford & Crovella, SIGMETRICS'98):
/// lognormal(9.357, 1.318) body, Pareto(alpha = 1.1) tail.
struct SurgeParams {
  std::size_t objects_per_site = 1000;
  double zipf_theta = 1.0;

  double body_lognormal_mu = 9.357;
  double body_lognormal_sigma = 1.318;
  /// Fraction of objects drawn from the heavy tail instead of the body.
  double tail_fraction = 0.07;
  double tail_pareto_alpha = 1.1;
  double tail_pareto_min_bytes = 133e3;
  /// Tail bound keeps synthetic site sizes finite-variance (documented
  /// substitution: SURGE's unbounded tail, truncated at 50 MB).
  double tail_pareto_max_bytes = 50e6;

  /// Minimum object size in bytes (HTTP response floor).
  double min_object_bytes = 64.0;

  void validate() const {
    CDN_EXPECT(objects_per_site >= 1, "need at least one object per site");
    CDN_EXPECT(zipf_theta >= 0.0, "zipf theta must be non-negative");
    CDN_EXPECT(tail_fraction >= 0.0 && tail_fraction <= 1.0,
               "tail fraction must be in [0, 1]");
    CDN_EXPECT(body_lognormal_sigma >= 0.0, "lognormal sigma must be >= 0");
    CDN_EXPECT(tail_pareto_alpha > 0.0, "pareto alpha must be positive");
    CDN_EXPECT(tail_pareto_min_bytes > 0.0 &&
                   tail_pareto_min_bytes < tail_pareto_max_bytes,
               "pareto bounds must satisfy 0 < min < max");
    CDN_EXPECT(min_object_bytes > 0.0, "object size floor must be positive");
  }
};

/// One site-popularity class: how many sites and their relative request
/// volume (requests per site in this class, relative to a low-traffic site).
struct PopularityClass {
  std::size_t site_count = 0;
  double volume_weight = 1.0;
  const char* label = "";
};

/// The paper's mixture: 50 low-, 100 medium-, 50 high-popularity sites.
/// Volume weights 1 : 4 : 16 give the "busy site" skew motivating the work;
/// they are configurable through this struct.
std::vector<PopularityClass> default_popularity_classes();

}  // namespace cdn::workload
