// The demand matrix r_j^(i): expected request counts per (server, site).
//
// Section 5.1: "the popularity of each site O_j at server S^(i) followed a
// normal distribution with mean mu = 1/N and standard deviation
// sigma = 1/(4N) ... limited to the interval mu +/- 3 sigma".  A site's
// total volume comes from its popularity class; the truncated normal shares
// it across the N servers.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.h"
#include "src/workload/site_catalog.h"

namespace cdn::workload {

using ServerId = std::uint32_t;

/// Dense N x M matrix of expected request counts.
class DemandMatrix {
 public:
  /// Builds the matrix: site j's volume is
  /// total_requests * weight_j / sum(weights), split across servers by the
  /// paper's truncated normal.  Requires server_count >= 1.
  static DemandMatrix generate(const SiteCatalog& catalog,
                               std::size_t server_count,
                               double total_requests, util::Rng& rng);

  /// Builds a matrix directly from explicit values (tests, custom studies).
  /// `values` is row-major server x site; all entries must be >= 0.
  static DemandMatrix from_values(std::size_t server_count,
                                  std::size_t site_count,
                                  std::span<const double> values);

  std::size_t server_count() const noexcept { return servers_; }
  std::size_t site_count() const noexcept { return sites_; }

  /// Expected requests from server i's client population for site j.
  double requests(ServerId server, SiteId site) const;

  /// Total requests entering server i (its row sum).
  double server_total(ServerId server) const;

  /// Total requests for site j across servers (its column sum).
  double site_total(SiteId site) const;

  double total() const noexcept { return total_; }

  /// The site popularity p_j^(i) = r_j^(i) / sum_k r_k^(i) — the quantity
  /// fed to the LRU model.
  double site_popularity(ServerId server, SiteId site) const;

  /// Row view for server i (length site_count()).
  std::span<const double> row(ServerId server) const;

 private:
  DemandMatrix(std::size_t servers, std::size_t sites);

  void finalize();

  std::size_t servers_ = 0;
  std::size_t sites_ = 0;
  std::vector<double> values_;        // row-major
  std::vector<double> row_totals_;
  std::vector<double> col_totals_;
  double total_ = 0.0;
};

}  // namespace cdn::workload
