// Request-trace recording, (de)serialisation and replay.
//
// The paper's evaluation is "trace-driven" over synthetic SURGE traces
// because "no CDN log files exist in the public domain".  This module makes
// the trace a first-class artefact: record a synthetic stream once, save it
// (compact binary format with a checksummed header, or CSV for inspection),
// and replay the identical trace against different placements or policies —
// or load a real CDN log converted to the same schema.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/workload/request_stream.h"

namespace cdn::workload {

/// An in-memory request trace.
class RecordedTrace {
 public:
  RecordedTrace() = default;

  /// Materialises `count` requests from a live stream.
  static RecordedTrace record(RequestStream& stream, std::size_t count);

  /// Binary round-trip.  The format is:
  ///   magic "CDNTRACE" | u32 version | u64 count | count x (u32,u32,u32)
  /// followed by a FNV-1a checksum of the payload.
  void save_binary(const std::string& path) const;
  static RecordedTrace load_binary(const std::string& path);

  /// CSV round-trip (header "server,site,rank").
  void save_csv(const std::string& path) const;
  static RecordedTrace load_csv(const std::string& path);

  void append(const Request& r) { requests_.push_back(r); }
  std::size_t size() const noexcept { return requests_.size(); }
  bool empty() const noexcept { return requests_.empty(); }
  const Request& operator[](std::size_t i) const { return requests_[i]; }
  const std::vector<Request>& requests() const noexcept { return requests_; }

  /// Validates every record against catalogue/demand dimensions; throws
  /// PreconditionError on out-of-range servers, sites, or ranks.
  void validate(std::size_t server_count, std::size_t site_count,
                std::size_t objects_per_site) const;

 private:
  std::vector<Request> requests_;
};

}  // namespace cdn::workload
