#include "src/workload/request_stream.h"

#include "src/util/error.h"

namespace cdn::workload {

RequestStream::RequestStream(const SiteCatalog& catalog,
                             const DemandMatrix& demand, std::uint64_t seed,
                             double locality, std::size_t locality_window)
    : catalog_(&catalog),
      sites_(demand.site_count()),
      rng_(seed),
      locality_(locality),
      locality_window_(locality_window),
      recent_(demand.server_count()) {
  CDN_EXPECT(catalog.site_count() == demand.site_count(),
             "catalog and demand matrix disagree on site count");
  CDN_EXPECT(locality >= 0.0 && locality < 1.0, "locality must be in [0, 1)");
  CDN_EXPECT(locality == 0.0 || locality_window >= 1,
             "locality window must be positive when locality > 0");
  std::vector<double> weights;
  weights.reserve(demand.server_count() * sites_);
  for (ServerId i = 0; i < demand.server_count(); ++i) {
    const auto row = demand.row(i);
    weights.insert(weights.end(), row.begin(), row.end());
  }
  cell_sampler_ = util::AliasSampler(weights);
}

Request RequestStream::next() {
  const std::size_t cell = cell_sampler_.sample(rng_);
  Request req;
  req.server = static_cast<ServerId>(cell / sites_);
  req.site = static_cast<SiteId>(cell % sites_);
  req.rank = static_cast<std::uint32_t>(
      catalog_->object_popularity().sample(rng_));

  if (locality_ > 0.0) {
    auto& window = recent_[req.server];
    if (!window.empty() && rng_.bernoulli(locality_)) {
      req = window[rng_.uniform_index(window.size())];
    }
    window.push_back(req);
    if (window.size() > locality_window_) window.pop_front();
  }
  return req;
}

}  // namespace cdn::workload
