#include "src/workload/request_stream.h"

#include "src/util/error.h"

namespace cdn::workload {

RequestStream::RequestStream(const SiteCatalog& catalog,
                             const DemandMatrix& demand, std::uint64_t seed,
                             double locality, std::size_t locality_window,
                             std::span<const ServerId> servers)
    : catalog_(&catalog),
      sites_(demand.site_count()),
      rng_(seed),
      servers_(servers.begin(), servers.end()),
      locality_(locality),
      locality_window_(locality_window) {
  CDN_EXPECT(catalog.site_count() == demand.site_count(),
             "catalog and demand matrix disagree on site count");
  CDN_EXPECT(locality >= 0.0 && locality < 1.0, "locality must be in [0, 1)");
  CDN_EXPECT(locality == 0.0 || locality_window >= 1,
             "locality window must be positive when locality > 0");
  const std::size_t rows =
      servers_.empty() ? demand.server_count() : servers_.size();
  std::vector<double> weights;
  weights.reserve(rows * sites_);
  for (std::size_t r = 0; r < rows; ++r) {
    const ServerId server =
        servers_.empty() ? static_cast<ServerId>(r) : servers_[r];
    CDN_EXPECT(server < demand.server_count(),
               "stream server subset exceeds the demand matrix");
    const auto row = demand.row(server);
    weights.insert(weights.end(), row.begin(), row.end());
  }
  cell_sampler_ = util::AliasSampler(weights);
  if (locality_ > 0.0) {
    recent_.resize(rows * locality_window_);
    recent_size_.assign(rows, 0);
    recent_head_.assign(rows, 0);
  }
}

Request RequestStream::next() {
  const std::size_t cell = cell_sampler_.sample(rng_);
  const std::size_t row = cell / sites_;
  Request req;
  req.server =
      servers_.empty() ? static_cast<ServerId>(row) : servers_[row];
  req.site = static_cast<SiteId>(cell % sites_);
  req.rank = static_cast<std::uint32_t>(
      catalog_->object_popularity().sample(rng_));

  if (locality_ > 0.0) {
    // A repeat draws uniformly from the server's ring, oldest-first logical
    // order — the exact semantics (and RNG consumption) of the previous
    // deque-backed history.
    Request* const ring = recent_.data() + row * locality_window_;
    const std::uint32_t cap = static_cast<std::uint32_t>(locality_window_);
    std::uint32_t& size = recent_size_[row];
    std::uint32_t& head = recent_head_[row];
    if (size > 0 && rng_.bernoulli(locality_)) {
      const auto k =
          static_cast<std::uint32_t>(rng_.uniform_index(size));
      req = ring[(head + k) % cap];
    }
    if (size < cap) {
      ring[(head + size) % cap] = req;
      ++size;
    } else {
      ring[head] = req;
      head = (head + 1) % cap;
    }
  }
  return req;
}

void RequestStream::next_batch(RequestBatch& out, std::size_t count) {
  out.resize(count);
  if (locality_ > 0.0) {
    // Locality interleaves history reads with generation; keep the
    // reference path (identical RNG order either way).
    for (std::size_t i = 0; i < count; ++i) {
      const Request req = next();
      out.server[i] = req.server;
      out.site[i] = req.site;
      out.rank[i] = req.rank;
    }
    return;
  }
  // i.i.d. fast path: same per-request draw order as next() — cell first,
  // then rank — with straight-line SoA writes and no history bookkeeping.
  const util::ZipfDistribution& zipf = catalog_->object_popularity();
  if (servers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t cell = cell_sampler_.sample(rng_);
      out.server[i] = static_cast<ServerId>(cell / sites_);
      out.site[i] = static_cast<SiteId>(cell % sites_);
      out.rank[i] = static_cast<std::uint32_t>(zipf.sample(rng_));
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t cell = cell_sampler_.sample(rng_);
      out.server[i] = servers_[cell / sites_];
      out.site[i] = static_cast<SiteId>(cell % sites_);
      out.rank[i] = static_cast<std::uint32_t>(zipf.sample(rng_));
    }
  }
}

void RequestStream::save_state(util::ByteWriter& w) const {
  for (const std::uint64_t word : rng_.state()) w.u64(word);
  w.u8(locality_ > 0.0 ? 1 : 0);
  if (locality_ > 0.0) {
    w.u64(recent_.size());
    for (const Request& req : recent_) {
      w.u32(req.server);
      w.u32(req.site);
      w.u32(req.rank);
    }
    w.u64(recent_size_.size());
    for (const std::uint32_t v : recent_size_) w.u32(v);
    for (const std::uint32_t v : recent_head_) w.u32(v);
  }
}

void RequestStream::restore_state(util::ByteReader& r) {
  std::array<std::uint64_t, 4> state;
  for (auto& word : state) word = r.u64();
  rng_.set_state(state);
  const bool has_history = r.u8() != 0;
  CDN_EXPECT(has_history == (locality_ > 0.0),
             "request stream locality mode mismatch");
  if (!has_history) return;
  const std::uint64_t ring_slots = r.u64();
  CDN_EXPECT(ring_slots == recent_.size(),
             "request stream history size mismatch");
  for (Request& req : recent_) {
    req.server = r.u32();
    req.site = r.u32();
    req.rank = r.u32();
  }
  const std::uint64_t rows = r.u64();
  CDN_EXPECT(rows == recent_size_.size(),
             "request stream row count mismatch");
  for (auto& v : recent_size_) v = r.u32();
  for (auto& v : recent_head_) v = r.u32();
}

}  // namespace cdn::workload
