// Streaming synthetic request generation for the trace-driven simulator.
//
// The reference stream is i.i.d.: each request independently picks a
// (server, site) cell proportional to the demand matrix and an object rank
// from the site's Zipf law — the independence assumption underlying the
// paper's analytical model (Section 3.2).  An optional temporal-locality
// knob re-references a recent request at the same server with probability
// `locality`, for sensitivity studies beyond the paper.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "src/util/rng.h"
#include "src/util/zipf.h"
#include "src/workload/demand.h"
#include "src/workload/site_catalog.h"

namespace cdn::workload {

/// One HTTP request as seen by the CDN: which first-hop server received it,
/// which site and which object (by popularity rank) it asks for.
struct Request {
  ServerId server = 0;
  SiteId site = 0;
  std::uint32_t rank = 1;  // 1-based within-site popularity rank
};

/// Infinite request stream.  Deterministic given the seed.
class RequestStream {
 public:
  /// `locality` in [0, 1): probability that a request repeats one of the
  /// last `locality_window` requests at the same server (0 = pure i.i.d.).
  RequestStream(const SiteCatalog& catalog, const DemandMatrix& demand,
                std::uint64_t seed, double locality = 0.0,
                std::size_t locality_window = 256);

  /// Generates the next request.
  Request next();

  const SiteCatalog& catalog() const noexcept { return *catalog_; }

 private:
  const SiteCatalog* catalog_;
  std::size_t sites_;
  util::Rng rng_;
  util::AliasSampler cell_sampler_;  // over server*site cells
  double locality_;
  std::size_t locality_window_;
  std::vector<std::deque<Request>> recent_;  // per server
};

}  // namespace cdn::workload
