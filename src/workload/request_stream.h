// Streaming synthetic request generation for the trace-driven simulator.
//
// The reference stream is i.i.d.: each request independently picks a
// (server, site) cell proportional to the demand matrix and an object rank
// from the site's Zipf law — the independence assumption underlying the
// paper's analytical model (Section 3.2).  An optional temporal-locality
// knob re-references a recent request at the same server with probability
// `locality`, for sensitivity studies beyond the paper.
//
// A stream may be restricted to a subset of first-hop servers: it then
// samples cells from those servers' demand rows only (renormalised), which
// is exactly the conditional distribution of the full stream given the
// first hop — the decomposition the parallel sharded simulator relies on.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.h"
#include "src/util/serial.h"
#include "src/util/zipf.h"
#include "src/workload/demand.h"
#include "src/workload/site_catalog.h"

namespace cdn::workload {

/// One HTTP request as seen by the CDN: which first-hop server received it,
/// which site and which object (by popularity rank) it asks for.
struct Request {
  ServerId server = 0;
  SiteId site = 0;
  std::uint32_t rank = 1;  // 1-based within-site popularity rank
};

/// Structure-of-arrays batch of requests — the data-oriented hot-loop
/// input.  Parallel arrays (server[i], site[i], rank[i]) describe request
/// i; the flat layout lets the simulator's per-request path stream through
/// ids without touching a struct per request.
struct RequestBatch {
  std::vector<ServerId> server;
  std::vector<SiteId> site;
  std::vector<std::uint32_t> rank;  // 1-based within-site popularity rank

  std::size_t size() const noexcept { return server.size(); }
  void resize(std::size_t n) {
    server.resize(n);
    site.resize(n);
    rank.resize(n);
  }
};

/// Infinite request stream.  Deterministic given the seed.
class RequestStream {
 public:
  /// `locality` in [0, 1): probability that a request repeats one of the
  /// last `locality_window` requests at the same server (0 = pure i.i.d.).
  /// A non-empty `servers` restricts the stream to those first-hop servers
  /// (distinct ids < demand.server_count()); empty means all servers.
  RequestStream(const SiteCatalog& catalog, const DemandMatrix& demand,
                std::uint64_t seed, double locality = 0.0,
                std::size_t locality_window = 256,
                std::span<const ServerId> servers = {});

  /// Generates the next request.
  Request next();

  /// Fills `out` (resized to `count`) with the next `count` requests.
  /// Draws exactly the same RNG sequence as `count` calls to next() — the
  /// contract that keeps the batched simulator paths byte-identical to the
  /// per-request reference loop.
  void next_batch(RequestBatch& out, std::size_t count);

  const SiteCatalog& catalog() const noexcept { return *catalog_; }

  /// Checkpointing: RNG position and locality history.  The alias sampler,
  /// catalog pointer and server subset are construction-time state — the
  /// resuming run rebuilds the stream with the same constructor arguments
  /// and then restores the mutable remainder.
  void save_state(util::ByteWriter& w) const;
  void restore_state(util::ByteReader& r);

 private:
  const SiteCatalog* catalog_;
  std::size_t sites_;
  util::Rng rng_;
  util::AliasSampler cell_sampler_;  // over owned-server*site cells
  std::vector<ServerId> servers_;    // owned subset; empty = all servers
  double locality_;
  std::size_t locality_window_;
  // Recent-request history as one fixed ring segment of `locality_window_`
  // slots per owned server — no per-request allocation, unlike a deque.
  std::vector<Request> recent_;
  std::vector<std::uint32_t> recent_size_;
  std::vector<std::uint32_t> recent_head_;
};

}  // namespace cdn::workload
