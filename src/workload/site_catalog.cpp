#include "src/workload/site_catalog.h"

#include <algorithm>
#include <cmath>

#include "src/util/distributions.h"
#include "src/util/error.h"

namespace cdn::workload {

std::vector<PopularityClass> default_popularity_classes() {
  return {{50, 1.0, "low"}, {100, 4.0, "medium"}, {50, 16.0, "high"}};
}

SiteCatalog SiteCatalog::generate(const SurgeParams& params,
                                  std::span<const PopularityClass> classes,
                                  util::Rng& rng) {
  params.validate();
  CDN_EXPECT(!classes.empty(), "need at least one popularity class");
  std::size_t num_sites = 0;
  for (const auto& c : classes) {
    CDN_EXPECT(c.volume_weight > 0.0, "class volume weight must be positive");
    num_sites += c.site_count;
  }
  CDN_EXPECT(num_sites >= 1, "need at least one site");

  SiteCatalog catalog(
      util::ZipfDistribution(params.objects_per_site, params.zipf_theta));
  const std::size_t L = params.objects_per_site;
  catalog.object_bytes_.reserve(num_sites * L);
  catalog.site_bytes_.reserve(num_sites);
  catalog.volume_weights_.reserve(num_sites);
  catalog.class_labels_.reserve(num_sites);

  util::Lognormal body(params.body_lognormal_mu, params.body_lognormal_sigma);
  util::BoundedPareto tail(params.tail_pareto_alpha,
                           params.tail_pareto_min_bytes,
                           params.tail_pareto_max_bytes);

  for (const auto& cls : classes) {
    for (std::size_t s = 0; s < cls.site_count; ++s) {
      std::uint64_t site_total = 0;
      for (std::size_t k = 0; k < L; ++k) {
        const double raw = rng.bernoulli(params.tail_fraction)
                               ? tail.sample(rng)
                               : body.sample(rng);
        const auto bytes = static_cast<std::uint64_t>(
            std::max(params.min_object_bytes, raw));
        catalog.object_bytes_.push_back(bytes);
        site_total += bytes;
      }
      catalog.site_bytes_.push_back(site_total);
      catalog.total_bytes_ += site_total;
      catalog.volume_weights_.push_back(cls.volume_weight);
      catalog.class_labels_.push_back(cls.label);
    }
  }
  catalog.uncacheable_.assign(num_sites, 0.0);
  catalog.mean_object_bytes_ =
      static_cast<double>(catalog.total_bytes_) /
      static_cast<double>(num_sites * L);
  return catalog;
}

void SiteCatalog::check_site(SiteId site) const {
  CDN_EXPECT(site < site_bytes_.size(), "site id out of range");
}

std::uint64_t SiteCatalog::object_bytes(SiteId site, std::size_t rank) const {
  check_site(site);
  CDN_EXPECT(rank >= 1 && rank <= objects_per_site(),
             "object rank out of range");
  return object_bytes_[site * objects_per_site() + (rank - 1)];
}

std::uint64_t SiteCatalog::site_bytes(SiteId site) const {
  check_site(site);
  return site_bytes_[site];
}

double SiteCatalog::volume_weight(SiteId site) const {
  check_site(site);
  return volume_weights_[site];
}

const char* SiteCatalog::class_label(SiteId site) const {
  check_site(site);
  return class_labels_[site];
}

double SiteCatalog::uncacheable_fraction(SiteId site) const {
  check_site(site);
  return uncacheable_[site];
}

void SiteCatalog::set_uncacheable_fraction(double lambda) {
  CDN_EXPECT(lambda >= 0.0 && lambda <= 1.0, "lambda must be in [0, 1]");
  std::fill(uncacheable_.begin(), uncacheable_.end(), lambda);
}

void SiteCatalog::set_uncacheable_fraction(SiteId site, double lambda) {
  check_site(site);
  CDN_EXPECT(lambda >= 0.0 && lambda <= 1.0, "lambda must be in [0, 1]");
  uncacheable_[site] = lambda;
}

ObjectId SiteCatalog::object_id(SiteId site, std::size_t rank) const {
  check_site(site);
  CDN_EXPECT(rank >= 1 && rank <= objects_per_site(),
             "object rank out of range");
  return static_cast<ObjectId>(site) * objects_per_site() + (rank - 1);
}

}  // namespace cdn::workload
