#include "src/workload/demand.h"

#include <numeric>

#include "src/util/distributions.h"
#include "src/util/error.h"

namespace cdn::workload {

DemandMatrix::DemandMatrix(std::size_t servers, std::size_t sites)
    : servers_(servers),
      sites_(sites),
      values_(servers * sites, 0.0),
      row_totals_(servers, 0.0),
      col_totals_(sites, 0.0) {}

DemandMatrix DemandMatrix::generate(const SiteCatalog& catalog,
                                    std::size_t server_count,
                                    double total_requests, util::Rng& rng) {
  CDN_EXPECT(server_count >= 1, "need at least one server");
  CDN_EXPECT(total_requests > 0.0, "total request volume must be positive");

  const std::size_t sites = catalog.site_count();
  DemandMatrix dm(server_count, sites);

  double weight_sum = 0.0;
  for (SiteId j = 0; j < sites; ++j) weight_sum += catalog.volume_weight(j);

  const double n = static_cast<double>(server_count);
  const double mu = 1.0 / n;
  const double sigma = 1.0 / (4.0 * n);
  util::TruncatedNormal share(mu, sigma, mu - 3.0 * sigma, mu + 3.0 * sigma);

  std::vector<double> shares(server_count);
  for (SiteId j = 0; j < sites; ++j) {
    const double site_volume =
        total_requests * catalog.volume_weight(j) / weight_sum;
    double share_sum = 0.0;
    for (std::size_t i = 0; i < server_count; ++i) {
      shares[i] = share.sample(rng);
      share_sum += shares[i];
    }
    for (std::size_t i = 0; i < server_count; ++i) {
      dm.values_[i * sites + j] = site_volume * shares[i] / share_sum;
    }
  }
  dm.finalize();
  return dm;
}

DemandMatrix DemandMatrix::from_values(std::size_t server_count,
                                       std::size_t site_count,
                                       std::span<const double> values) {
  CDN_EXPECT(server_count >= 1 && site_count >= 1,
             "demand matrix must be non-empty");
  CDN_EXPECT(values.size() == server_count * site_count,
             "value count must equal servers x sites");
  DemandMatrix dm(server_count, site_count);
  for (std::size_t k = 0; k < values.size(); ++k) {
    CDN_EXPECT(values[k] >= 0.0, "request counts must be non-negative");
    dm.values_[k] = values[k];
  }
  dm.finalize();
  return dm;
}

void DemandMatrix::finalize() {
  total_ = 0.0;
  for (std::size_t i = 0; i < servers_; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < sites_; ++j) {
      const double v = values_[i * sites_ + j];
      row += v;
      col_totals_[j] += v;
    }
    row_totals_[i] = row;
    total_ += row;
  }
}

double DemandMatrix::requests(ServerId server, SiteId site) const {
  CDN_EXPECT(server < servers_, "server id out of range");
  CDN_EXPECT(site < sites_, "site id out of range");
  return values_[static_cast<std::size_t>(server) * sites_ + site];
}

double DemandMatrix::server_total(ServerId server) const {
  CDN_EXPECT(server < servers_, "server id out of range");
  return row_totals_[server];
}

double DemandMatrix::site_total(SiteId site) const {
  CDN_EXPECT(site < sites_, "site id out of range");
  return col_totals_[site];
}

double DemandMatrix::site_popularity(ServerId server, SiteId site) const {
  const double row = server_total(server);
  return row > 0.0 ? requests(server, site) / row : 0.0;
}

std::span<const double> DemandMatrix::row(ServerId server) const {
  CDN_EXPECT(server < servers_, "server id out of range");
  return {values_.data() + static_cast<std::size_t>(server) * sites_, sites_};
}

}  // namespace cdn::workload
