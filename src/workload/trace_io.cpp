#include "src/workload/trace_io.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "src/util/error.h"
#include "src/util/text_parse.h"

namespace cdn::workload {

namespace {

constexpr char kMagic[8] = {'C', 'D', 'N', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;

std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

RecordedTrace RecordedTrace::record(RequestStream& stream,
                                    std::size_t count) {
  RecordedTrace trace;
  trace.requests_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trace.requests_.push_back(stream.next());
  }
  return trace;
}

void RecordedTrace::save_binary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CDN_EXPECT(out.good(), "cannot open trace file for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const std::uint64_t count = requests_.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  for (const Request& r : requests_) {
    const std::uint32_t fields[3] = {r.server, r.site, r.rank};
    out.write(reinterpret_cast<const char*>(fields), sizeof(fields));
    checksum = fnv1a(fields, sizeof(fields), checksum);
  }
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  CDN_CHECK(out.good(), "short write while saving trace: " + path);
}

RecordedTrace RecordedTrace::load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CDN_EXPECT(in.good(), "cannot open trace file: " + path);
  // Reject truncated or padded files up front, BEFORE trusting the record
  // count: a corrupt header must not drive a multi-gigabyte allocation or a
  // long doomed read loop.
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  constexpr std::uint64_t kHeaderBytes =
      sizeof(kMagic) + sizeof(kVersion) + sizeof(std::uint64_t);
  constexpr std::uint64_t kChecksumBytes = sizeof(std::uint64_t);
  CDN_EXPECT(file_size >= kHeaderBytes + kChecksumBytes,
             "truncated trace file (smaller than its header): " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  CDN_EXPECT(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
             "not a hybridcdn trace file: " + path);
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  CDN_EXPECT(in.good() && version == kVersion,
             "unsupported trace version in " + path);
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  CDN_EXPECT(in.good(), "truncated trace header: " + path);
  constexpr std::uint64_t kRecordBytes = 3 * sizeof(std::uint32_t);
  CDN_EXPECT(count <= (file_size - kHeaderBytes - kChecksumBytes) /
                          kRecordBytes,
             "trace record count exceeds the file size (truncated or "
             "corrupt): " +
                 path);
  CDN_EXPECT(file_size == kHeaderBytes + count * kRecordBytes + kChecksumBytes,
             "trace file size does not match its record count: " + path);

  RecordedTrace trace;
  trace.requests_.resize(count);
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t fields[3];
    in.read(reinterpret_cast<char*>(fields), sizeof(fields));
    CDN_EXPECT(in.good(), "truncated trace payload: " + path);
    checksum = fnv1a(fields, sizeof(fields), checksum);
    trace.requests_[i] = {fields[0], fields[1], fields[2]};
  }
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  CDN_EXPECT(in.good() && stored == checksum,
             "trace checksum mismatch (corrupt file?): " + path);
  return trace;
}

void RecordedTrace::save_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  CDN_EXPECT(out.good(), "cannot open trace file for writing: " + path);
  out << "server,site,rank\n";
  for (const Request& r : requests_) {
    out << r.server << ',' << r.site << ',' << r.rank << '\n';
  }
  CDN_CHECK(out.good(), "short write while saving trace: " + path);
}

RecordedTrace RecordedTrace::load_csv(const std::string& path) {
  std::ifstream in(path);
  CDN_EXPECT(in.good(), "cannot open trace file: " + path);
  std::string line;
  CDN_EXPECT(static_cast<bool>(std::getline(in, line)),
             "empty CSV trace file: " + path);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  CDN_EXPECT(line == "server,site,rank",
             "trace CSV line 1: expected header 'server,site,rank' (got '" +
                 line + "')");
  RecordedTrace trace;
  static constexpr const char* kFields[3] = {"server", "site", "rank"};
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::string where_line =
        "trace CSV line " + std::to_string(line_no);
    std::uint32_t values[3];
    std::size_t pos = 0;
    for (int f = 0; f < 3; ++f) {
      const std::string where =
          where_line + ", col " + std::to_string(util::text_column(pos));
      CDN_EXPECT(pos <= line.size(),
                 where + ": expected a " + std::string(kFields[f]) +
                     " field, but the line ended");
      std::size_t comma = line.find(',', pos);
      if (f == 2) {
        CDN_EXPECT(comma == std::string::npos,
                   where_line + ", col " +
                       std::to_string(util::text_column(comma)) +
                       ": unexpected extra field after rank");
        comma = line.size();
      } else {
        CDN_EXPECT(comma != std::string::npos,
                   where + ": expected 3 comma-separated fields, found " +
                       std::to_string(f + 1));
      }
      values[f] = util::parse_u32_token(line.substr(pos, comma - pos), where);
      pos = comma + 1;
    }
    trace.requests_.push_back({values[0], values[1], values[2]});
  }
  return trace;
}

void RecordedTrace::validate(std::size_t server_count, std::size_t site_count,
                             std::size_t objects_per_site) const {
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    const Request& r = requests_[i];
    CDN_EXPECT(r.server < server_count,
               "trace record " + std::to_string(i) + ": server out of range");
    CDN_EXPECT(r.site < site_count,
               "trace record " + std::to_string(i) + ": site out of range");
    CDN_EXPECT(r.rank >= 1 && r.rank <= objects_per_site,
               "trace record " + std::to_string(i) + ": rank out of range");
  }
}

}  // namespace cdn::workload
