// The catalogue of hosted web sites: object sizes, per-site totals,
// within-site Zipf popularity, uncacheable fractions, and relative request
// volumes.  This is the M-site universe {O_1 .. O_M} of Section 3.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.h"
#include "src/util/zipf.h"
#include "src/workload/surge.h"

namespace cdn::workload {

using SiteId = std::uint32_t;

/// Globally unique object identifier: site * L + (rank - 1).
using ObjectId = std::uint64_t;

/// Immutable catalogue of all hosted sites.  All sites share one
/// ZipfDistribution (same theta and L everywhere, as in the paper);
/// object sizes and total bytes differ per site.
class SiteCatalog {
 public:
  /// Generates `classes` worth of sites with SURGE-like object sizes.
  /// Sites are laid out class-by-class in id order.
  static SiteCatalog generate(const SurgeParams& params,
                              std::span<const PopularityClass> classes,
                              util::Rng& rng);

  std::size_t site_count() const noexcept { return site_bytes_.size(); }
  std::size_t objects_per_site() const noexcept { return zipf_.size(); }

  /// Within-site popularity law (rank 1 most popular).
  const util::ZipfDistribution& object_popularity() const noexcept {
    return zipf_;
  }

  /// Size in bytes of the object with `rank` (1-based) at `site`.
  std::uint64_t object_bytes(SiteId site, std::size_t rank) const;

  /// Total bytes of a site (the o_j of the paper).
  std::uint64_t site_bytes(SiteId site) const;

  /// Sum of all site sizes; server capacities are quoted as a % of this.
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }

  /// Mean object size across the whole catalogue (the o-bar used to convert
  /// cache bytes into the LRU slot count B = c / o-bar).
  double mean_object_bytes() const noexcept { return mean_object_bytes_; }

  /// Relative request volume of a site (class weight; absolute request
  /// counts are assigned by DemandMatrix).
  double volume_weight(SiteId site) const;

  /// Class label of the site ("low" / "medium" / "high" by default).
  const char* class_label(SiteId site) const;

  /// Fraction lambda_j of the site's requests returning uncacheable
  /// documents (Section 3.3).  Defaults to 0.
  double uncacheable_fraction(SiteId site) const;

  /// Sets lambda for every site.
  void set_uncacheable_fraction(double lambda);

  /// Sets lambda for one site.
  void set_uncacheable_fraction(SiteId site, double lambda);

  /// Globally unique object id.
  ObjectId object_id(SiteId site, std::size_t rank) const;

 private:
  SiteCatalog(util::ZipfDistribution zipf) : zipf_(std::move(zipf)) {}

  void check_site(SiteId site) const;

  util::ZipfDistribution zipf_;
  std::vector<std::uint64_t> object_bytes_;  // site-major, rank-minor
  std::vector<std::uint64_t> site_bytes_;
  std::vector<double> volume_weights_;
  std::vector<double> uncacheable_;
  std::vector<const char*> class_labels_;
  std::uint64_t total_bytes_ = 0;
  double mean_object_bytes_ = 0.0;
};

}  // namespace cdn::workload
