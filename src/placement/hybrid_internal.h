// Internal glue shared by the two hybrid-greedy engines (reference and
// incremental).  Not part of the public placement API.

#pragma once

#include <vector>

#include "src/model/server_cache_state.h"
#include "src/placement/hybrid_greedy.h"
#include "src/util/error.h"

namespace cdn::placement::detail {

/// The original Figure-2 loop: every feasible candidate re-evaluated every
/// iteration.  Oracle for the incremental engine and the bench baseline.
PlacementResult hybrid_greedy_reference(const sys::CdnSystem& system,
                                        const HybridGreedyOptions& options);

/// Lazy-heap engine: candidates keep their cached benefits until a commit
/// changes one of their inputs; only the invalidated set is re-evaluated.
/// Byte-identical to the reference in placement, cost trajectory and commit
/// order.
PlacementResult hybrid_greedy_incremental(const sys::CdnSystem& system,
                                          const HybridGreedyOptions& options);

/// The cache-penalty term of the canonical benefit (lines 10-13), exactly
/// as hybrid_candidate_benefit_parts accumulates it.  When `terms` is
/// non-null it receives the per-site contributions (length M, zero for
/// skipped sites), letting the incremental engine repair a single changed
/// term and re-sum instead of re-deriving every what-if hit ratio.
double hybrid_cache_penalty(const sys::CdnSystem& system,
                            const sys::NearestReplicaIndex& nearest,
                            const model::ServerCacheState& state,
                            const std::vector<double>& hit,
                            sys::ServerIndex server, sys::SiteIndex site,
                            double* terms);

/// The relative-gain term (lines 14-17), exactly as the canonical function
/// accumulates it.  `miss_flow` may be null (elementwise fallback).
double hybrid_relative_gain(const sys::CdnSystem& system,
                            const sys::ReplicaPlacement& placement,
                            const sys::NearestReplicaIndex& nearest,
                            const std::vector<double>& hit,
                            const double* miss_flow, sys::ServerIndex server,
                            sys::SiteIndex site);

/// hybrid_candidate_benefit_parts with the penalty terms captured (see
/// hybrid_cache_penalty).  The public overloads forward here with
/// `penalty_terms == nullptr`, so there is exactly one benefit definition.
HybridBenefitParts hybrid_benefit_parts_capture(
    const sys::CdnSystem& system, const sys::ReplicaPlacement& placement,
    const sys::NearestReplicaIndex& nearest,
    const model::ServerCacheState& state, const std::vector<double>& hit,
    const double* miss_flow, sys::ServerIndex server, sys::SiteIndex site,
    double* penalty_terms);

/// Materialises options.seed (if any) into `placement` and `states`, in the
/// same row-major order for both engines.
inline void apply_seed(const sys::CdnSystem& system,
                       const HybridGreedyOptions& options,
                       sys::ReplicaPlacement& placement,
                       std::vector<model::ServerCacheState>& states) {
  if (options.seed == nullptr) return;
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  CDN_EXPECT(
      options.seed->server_count() == n && options.seed->site_count() == m,
      "seed placement dimensions must match the system");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const auto server = static_cast<sys::ServerIndex>(i);
      const auto site = static_cast<sys::SiteIndex>(j);
      if (options.seed->is_replicated(server, site)) {
        placement.add(server, site);
        states[i].replicate(static_cast<std::uint32_t>(j));
      }
    }
  }
}

}  // namespace cdn::placement::detail
