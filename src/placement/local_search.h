// Local-search refinement of replica placements.
//
// Section 2.2 cites [12] (Jamin et al.): among the k-median-style
// heuristics, "a greedy one that performs back tracking offers the better
// results".  This module implements that refinement: starting from any
// placement, repeatedly apply the best cost-reducing *swap* (drop one
// replica, add another that fits) until no swap helps.  It applies to the
// pure-replication objective and is used (a) as a stronger replication
// baseline and (b) to quantify how far greedy-global is from a local
// optimum.

#pragma once

#include <cstdint>

#include "src/cdn/system.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/placement/model_support.h"
#include "src/placement/placement_result.h"

namespace cdn::placement {

struct LocalSearchOptions {
  /// Accepted for CLI symmetry with hybrid_greedy, but a documented no-op:
  /// the swap objective is the pure replication cost (model-free), so every
  /// tier prices swaps identically (invariance is test-enforced).
  PlacementModel placement_model = PlacementModel::kExact;
  /// Swap-evaluation engine.  The reference rebuilds a NearestReplicaIndex
  /// from scratch for every trial swap; the incremental engine maintains the
  /// exact per-cell redirection-cost matrix and recomputes only the two
  /// affected site columns per trial, producing bit-identical swap choices
  /// and costs (test-enforced).
  PlacementEngine engine = PlacementEngine::kIncremental;

  /// Stop after this many applied swaps (0 = until convergence).
  std::size_t max_swaps = 0;
  /// A swap must improve the cost by more than this relative margin to be
  /// applied (guards against floating-point ping-pong).
  double min_relative_gain = 1e-9;

  /// Metric sink (non-owning; null = no instrumentation).  Emits
  /// "<metrics_prefix>swaps" (one row per applied swap) and a total timer.
  obs::Registry* metrics = nullptr;
  std::string metrics_prefix = "placement/local_search/";

  /// Span tracer (non-owning; null = no spans).  Emits a total span.
  obs::SpanTracer* spans = nullptr;
};

struct LocalSearchStats {
  std::size_t swaps_applied = 0;
  double initial_cost = 0.0;
  double final_cost = 0.0;
};

/// Refines `result` in place with best-improvement swaps under the pure
/// replication objective (modelled cache hits are ignored during the
/// search; the result's predictions are recomputed afterwards only for
/// replication-style results).  Returns the applied-swap statistics.
LocalSearchStats local_search_refine(const sys::CdnSystem& system,
                                     PlacementResult& result,
                                     const LocalSearchOptions& options = {});

/// Greedy-global followed by local-search refinement — the "greedy with
/// backtracking" baseline of [12].
PlacementResult greedy_with_backtracking(
    const sys::CdnSystem& system, const LocalSearchOptions& options = {});

/// Topology-informed placement of [25] (Radoslavov et al.): replicate the
/// most-demanded sites at the best-connected servers (highest-degree /
/// lowest total distance first), ignoring per-site geography.
PlacementResult topology_informed_placement(const sys::CdnSystem& system);

}  // namespace cdn::placement
