// The incremental lazy-heap engine behind HybridGreedyOptions::engine ==
// kIncremental.
//
// The reference engine re-evaluates every feasible (server, site) candidate
// on every iteration — Theta(N*M) evaluations of O(N + M) each per commit.
// But a commit of (i*, j*) only changes the inputs of a small set of
// candidates, and for most of them only ONE of the three benefit terms:
//
//   * every candidate at server i* — its cache state, hit row and remaining
//     budget changed: FULL re-evaluation;
//   * every candidate for site j* — relative gains reference column j* of
//     the nearest index and the placement: FULL re-evaluation;
//   * candidates at a server i != i* whose nearest-replica cost for j*
//     changed (the ascending list NearestReplicaIndex::on_replica_added
//     returns) — ONLY the cache-penalty sum is stale, and only its j* term
//     (the penalty references C(i, SN_k^(i)) per site k, and a commit moves
//     just column j* of the nearest index): PENALTY repair — recompute the
//     j* term and re-sum the cached per-site terms in ascending order,
//     which is bit-identical to a fresh accumulation because skipped terms
//     contribute exactly +0.0 (see hybrid_cache_penalty);
//   * candidates (i, j) whose relative gain references server i*'s changed
//     miss flow for j: flow[i*][j] changed bitwise, j is unreplicated at i*,
//     and C(i*, SN_j^(i*)) > C(i*, i) (the max(0, .) gate is open) — ONLY
//     the relative-gain term is stale: RELATIVE repair — re-run the O(N)
//     relative loop, reuse the cached local gain and penalty.
//
// The local gain of a repaired candidate never moves: it reads flow[i][j]
// (row i* only changed -> full re-eval) and nearest.cost(i, j) (column j*
// only changed -> full re-eval).  Repairs reuse exactly the term helpers
// the canonical hybrid_candidate_benefit_parts is built from, so every
// repaired double equals what a fresh evaluation would produce.
//
// Everything else keeps its cached benefit.  Cached values live in a lazy
// max-heap ordered (benefit desc, server asc, site asc) — exactly the
// reference's winner tie-break — with per-candidate version counters for
// lazy deletion.  Invalidated candidates are re-evaluated in parallel
// batches grouped by server (the WhatIf memo arena in ServerCacheState is
// per-state mutable, so a state must stay single-threaded) using the same
// canonical benefit function and the same miss-flow matrix as the reference,
// so every evaluated double is bit-identical and the two engines produce
// byte-identical placements, cost trajectories and commit orders.
//
// Feasibility is monotone (server budgets only shrink), so a candidate that
// stops fitting is dead forever; deaths can only occur inside the
// invalidated set (only server i*'s budget moved), where the batch
// re-evaluation notices them.
//
// Tier mode (placement_model != kExact) reuses the same invalidation sets
// but prices kFull re-evaluations from the shared per-server tables and
// verifies near-top candidates with the exact model before commit (see
// hybrid_greedy.h).  Repairs of an exact-verified candidate patch the
// exact decomposition in place instead of dropping back to a tier price:
// the penalty's j* term moves by dh * r * (C_new - C_old) with dh and r
// untouched off the committed row, and the relative term is exact by
// construction.  The patched doubles carry normal floating-point
// accumulation drift relative to a fresh evaluation (they are NOT
// bit-identical, unlike the kExact repairs above), which the 1 % cost gate
// absorbs; keeping the verified stamp across repairs is what makes the
// verify band affordable at large M.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <vector>

#include "src/cdn/cost.h"
#include "src/obs/scoped_timer.h"
#include "src/placement/hybrid_greedy.h"
#include "src/placement/hybrid_internal.h"
#include "src/placement/model_support.h"
#include "src/placement/tier_evaluator.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace cdn::placement::detail {

namespace {

struct HeapEntry {
  double benefit = 0.0;
  sys::ServerIndex server = 0;
  sys::SiteIndex site = 0;
  std::uint32_t version = 0;
};

// std::push_heap comparator: "a is worse than b".  The max element is the
// highest benefit, ties broken by lowest server then lowest site — the same
// total order the reference's two-stage scan induces.
struct WorseThan {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.benefit != b.benefit) return a.benefit < b.benefit;
    if (a.server != b.server) return a.server > b.server;
    return a.site > b.site;
  }
};

}  // namespace

PlacementResult hybrid_greedy_incremental(const sys::CdnSystem& system,
                                          const HybridGreedyOptions& options) {
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  const auto& demand = system.demand();
  const auto& dist = system.distances();

  obs::Registry* const metrics = options.metrics;
  const std::string& pfx = options.metrics_prefix;
  obs::TimerStat* const t_total =
      metrics ? &metrics->timer(pfx + "phase/total") : nullptr;
  obs::TimerStat* const t_eval =
      metrics ? &metrics->timer(pfx + "phase/eval") : nullptr;
  obs::TimerStat* const t_commit =
      metrics ? &metrics->timer(pfx + "phase/commit") : nullptr;
  obs::Table* const iteration_log =
      metrics ? &metrics->table(
                    pfx + "iterations",
                    {"iteration", "server", "site", "candidates", "benefit",
                     "local_gain", "relative_gain", "cache_penalty",
                     "bytes_committed", "cost_after", "eval_ms"})
              : nullptr;
  obs::Series* const inval_series =
      metrics ? &metrics->series(pfx + "heap/invalidated_per_commit")
              : nullptr;
  obs::SpanTracer* const spans = options.spans;
  const char* sp_total = nullptr;
  const char* sp_initial = nullptr;
  const char* sp_iter = nullptr;
  const char* sp_reeval = nullptr;
  const char* sp_inval = nullptr;
  const char* sp_heap = nullptr;
  if (spans != nullptr) {
    sp_total = spans->intern(pfx + "total");
    sp_initial = spans->intern(pfx + "initial_eval");
    sp_iter = spans->intern(pfx + "iteration");
    sp_reeval = spans->intern(pfx + "heap/reevaluate");
    sp_inval = spans->intern(pfx + "heap/invalidate");
    sp_heap = spans->intern(pfx + "heap/size");
  }
  obs::ScopedTimer total_timer(t_total);
  obs::ScopedSpan total_span(spans, sp_total, "placement");

  ModelContext context(system, options.pb_mode, options.placement_model);
  std::vector<model::ServerCacheState> states = context.make_states();

  sys::ReplicaPlacement placement(system.server_storage(),
                                  system.site_bytes());
  apply_seed(system, options, placement, states);
  sys::NearestReplicaIndex nearest(system.distances(), placement);

  PlacementResult result{.algorithm = "hybrid-greedy",
                         .placement = std::move(placement),
                         .nearest = std::move(nearest)};

  std::vector<double> hit = modeled_hit_matrix(states);
  std::vector<double> flow = miss_flow_matrix(system, hit);
  auto current_cost = [&] {
    return sys::total_remote_cost(demand, result.nearest, hit_fn(hit, m));
  };
  result.cost_trajectory.push_back(current_cost());

  // Tier fast path (kClosedForm / kChe): candidate prices come from shared
  // per-server tables and the transposed relative columns; every branch
  // below that touches `tier`/`columns` is gated on `tiered`, so the kExact
  // paths stay literally the pre-tier code (byte-identity gate).
  const bool tiered = options.placement_model != PlacementModel::kExact;
  std::optional<TierEvaluator> tier;
  std::optional<RelativeColumns> columns;
  if (tiered) {
    tier.emplace(system, states, result.nearest, context.curve(),
                 context.occupancy(), options.placement_model);
    columns.emplace();
    columns->build(system, result.placement, result.nearest, flow);
  }
  std::uint64_t tier_fallbacks = 0;
  std::uint64_t tier_margin_hits = 0;

  // Per-candidate books.  `val` caches the budget-adjusted benefit; an
  // in-heap entry is live iff its version matches `version[idx]`; `dead`
  // candidates (replicated or no longer fitting) never re-enter the heap.
  std::vector<double> val(n * m, 0.0);
  std::vector<std::uint32_t> version(n * m, 1);
  // A tier-mode candidate is exactly priced iff its stamp matches its
  // version: any invalidation or repair bumps the version and naturally
  // stales the stamp.
  std::vector<std::uint32_t> verified_stamp(n * m, 0);
  std::vector<std::uint8_t> dead(n * m, 0);
  std::vector<std::uint8_t> eval_ok(n * m, 0);
  std::vector<std::uint32_t> mark_stamp(n * m, 0);
  std::vector<std::uint8_t> mark_kind(n * m, 0);
  std::vector<std::uint32_t> marked;
  std::vector<double> old_flow(m, 0.0);
  // Tier mode: repairs of an exact-verified candidate patch its exact
  // decomposition in place (the relative term is exact by construction and
  // the penalty moved only in the committed site's term), so verification
  // survives invalidation; `still_exact` carries that fact from the
  // parallel repair batch to the serial version bump.  `old_cost_js[k]` is
  // the pre-commit nearest cost C(k, SN_js) the penalty patch differences
  // against.
  std::vector<std::uint8_t> still_exact(n * m, 0);
  std::vector<double> old_cost_js(n, 0.0);
  std::vector<HeapEntry> heap;
  const WorseThan worse{};
  const std::size_t compact_threshold = 2 * n * m + 1024;

  // Cached benefit decomposition per candidate, kept current by full
  // re-evaluations and component repairs.  The per-site penalty terms make
  // a penalty repair O(M) additions instead of O(M) what-if model
  // evaluations; the cache is skipped (repairs fall back to re-running the
  // penalty loop) when N*M*M would not fit a sane memory budget.
  constexpr std::uint8_t kRepairPenalty = 1;
  constexpr std::uint8_t kRepairRelative = 2;
  constexpr std::uint8_t kFull = 4;
  std::vector<double> part_local(n * m, 0.0);
  std::vector<double> part_penalty(n * m, 0.0);
  std::vector<double> part_relative(n * m, 0.0);
  const bool term_cache = !tiered && n * m * m <= (std::size_t{1} << 24);
  std::vector<double> pen_terms(term_cache ? n * m * m : 0, 0.0);

  auto evaluate = [&](std::size_t idx) {
    const auto server = static_cast<sys::ServerIndex>(idx / m);
    const auto site = static_cast<sys::SiteIndex>(idx % m);
    if (!result.placement.can_add(server, site)) {
      eval_ok[idx] = 0;
      return;
    }
    CDN_DCHECK(states[server].can_fit(static_cast<std::uint32_t>(site)),
               "placement and model state disagree on free space");
    eval_ok[idx] = 1;
    if (tiered) {
      // Local and relative terms are exact (they are model-free); only the
      // cache penalty is tier-priced.
      still_exact[idx] = 0;
      part_local[idx] = flow[idx] * result.nearest.cost(server, site);
      part_penalty[idx] = tier->penalty(server, site);
      part_relative[idx] = columns->relative_gain(server, site);
      val[idx] = part_local[idx] + part_relative[idx] - part_penalty[idx] -
                 options.add_cost_per_byte *
                     static_cast<double>(system.site_bytes()[site]);
      return;
    }
    const HybridBenefitParts parts = hybrid_benefit_parts_capture(
        system, result.placement, result.nearest, states[server], hit,
        flow.data(), server, site,
        term_cache ? &pen_terms[idx * m] : nullptr);
    part_local[idx] = parts.local_gain;
    part_penalty[idx] = parts.cache_penalty;
    part_relative[idx] = parts.relative_gain;
    val[idx] = parts.total() - options.add_cost_per_byte *
                                   static_cast<double>(system.site_bytes()[site]);
  };

  // Component repair: recompute only the stale term(s) of an alive
  // candidate at an untouched server — its feasibility and the other terms
  // are unchanged by construction (see the file comment).
  auto repair = [&](std::size_t idx, std::uint8_t kind, sys::SiteIndex js) {
    const auto server = static_cast<sys::ServerIndex>(idx / m);
    const auto site = static_cast<sys::SiteIndex>(idx % m);
    if (tiered) {
      still_exact[idx] = 0;
      if (verified_stamp[idx] == version[idx]) {
        // The candidate's cached decomposition is exact (verify loop or a
        // previous exact-preserving patch).  A repair-class invalidation
        // only moves inputs the exact terms depend on linearly: the
        // relative term is exact by construction in tier mode, and a
        // penalty repair shifts just the committed column's term by
        // dh * r * (C_new - C_old) — dh and r are untouched for servers
        // off the committed row (those get kFull).  Patching in place keeps
        // the candidate exact-verified, so the verify loop never pays the
        // O(M) re-price for it again.
        if ((kind & kRepairPenalty) != 0 && js != site &&
            !states[server].is_replicated(static_cast<std::uint32_t>(js))) {
          const double c_new = result.nearest.cost(server, js);
          const double c_old = old_cost_js[server];
          if (c_new != c_old) {
            const double dh =
                hit[static_cast<std::size_t>(server) * m + js] -
                states[server]
                    .what_if_replicate(static_cast<std::uint32_t>(site))
                    .hit_ratio(static_cast<std::uint32_t>(js));
            part_penalty[idx] +=
                dh * system.demand().requests(server, js) * (c_new - c_old);
          }
        }
        if ((kind & kRepairRelative) != 0) {
          part_relative[idx] = columns->relative_gain(server, site);
        }
        still_exact[idx] = 1;
      } else {
        // Tier repairs re-price from the (already patched) shared tables —
        // both components are O(1)-ish, so no term cache is needed.
        if ((kind & kRepairPenalty) != 0) {
          part_penalty[idx] = tier->penalty(server, site);
        }
        if ((kind & kRepairRelative) != 0) {
          part_relative[idx] = columns->relative_gain(server, site);
        }
      }
      val[idx] = part_local[idx] + part_relative[idx] - part_penalty[idx] -
                 options.add_cost_per_byte *
                     static_cast<double>(system.site_bytes()[site]);
      return;
    }
    if ((kind & kRepairPenalty) != 0) {
      if (term_cache) {
        double* terms = &pen_terms[idx * m];
        double term = 0.0;
        if (js != site &&
            !states[server].is_replicated(static_cast<std::uint32_t>(js))) {
          const double c = result.nearest.cost(server, js);
          if (c != 0.0) {
            const double dh =
                hit[static_cast<std::size_t>(server) * m + js] -
                states[server]
                    .what_if_replicate(static_cast<std::uint32_t>(site))
                    .hit_ratio(static_cast<std::uint32_t>(js));
            term = dh * system.demand().requests(server, js) * c;
          }
        }
        terms[js] = term;
        double penalty = 0.0;
        for (std::size_t s = 0; s < m; ++s) penalty += terms[s];
        part_penalty[idx] = penalty;
      } else {
        part_penalty[idx] = hybrid_cache_penalty(
            system, result.nearest, states[server], hit, server, site,
            nullptr);
      }
    }
    if ((kind & kRepairRelative) != 0) {
      part_relative[idx] =
          hybrid_relative_gain(system, result.placement, result.nearest, hit,
                               flow.data(), server, site);
    }
    HybridBenefitParts parts;
    parts.local_gain = part_local[idx];
    parts.cache_penalty = part_penalty[idx];
    parts.relative_gain = part_relative[idx];
    val[idx] = parts.total() - options.add_cost_per_byte *
                                   static_cast<double>(system.site_bytes()[site]);
  };

  // Initial build: evaluate every candidate once (this is the one full
  // sweep; afterwards only invalidated candidates are touched).
  obs::ScopedSpan initial_span(spans, sp_initial, "placement");
  std::chrono::steady_clock::time_point eval_start;
  if (t_eval != nullptr) eval_start = std::chrono::steady_clock::now();
  util::parallel_for(0, n, [&](std::size_t i) {
    for (std::size_t j = 0; j < m; ++j) evaluate(i * m + j);
  });
  std::uint64_t pending_candidates = 0;
  heap.reserve(n * m);
  for (std::size_t idx = 0; idx < n * m; ++idx) {
    if (!eval_ok[idx]) {
      dead[idx] = 1;
      continue;
    }
    ++pending_candidates;
    heap.push_back({val[idx], static_cast<sys::ServerIndex>(idx / m),
                    static_cast<sys::SiteIndex>(idx % m), version[idx]});
  }
  std::make_heap(heap.begin(), heap.end(), worse);
  double pending_eval_ms = 0.0;
  if (t_eval != nullptr) {
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - eval_start)
            .count());
    t_eval->record_ns(ns);
    pending_eval_ms = static_cast<double>(ns) * 1e-6;
  }
  initial_span.arg("candidates", static_cast<double>(heap.size()));
  initial_span.stop();

  const std::size_t seeded = result.placement.replica_count();
  std::uint64_t total_candidates = pending_candidates;
  std::uint64_t reevaluations = 0;
  std::uint64_t repairs = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t stale_discarded = 0;
  std::size_t peak_heap = heap.size();
  std::uint32_t commit_id = 0;
  std::size_t iteration = 0;

  for (;;) {
    if (options.max_replicas != 0 &&
        result.placement.replica_count() >= seeded + options.max_replicas) {
      break;
    }
    obs::ScopedSpan iter_span(spans, sp_iter, "placement");
    iter_span.arg("iteration", static_cast<double>(iteration));
    // Lazy deletion: discard entries whose candidate was re-evaluated or
    // died since they were pushed.
    auto discard_stale = [&] {
      while (!heap.empty()) {
        const HeapEntry& top = heap.front();
        const std::size_t idx =
            static_cast<std::size_t>(top.server) * m + top.site;
        if (top.version != version[idx]) {
          std::pop_heap(heap.begin(), heap.end(), worse);
          heap.pop_back();
          ++stale_discarded;
          continue;
        }
        break;
      }
    };
    discard_stale();

    // Error-gated exact fallback (cheap tiers only): tier prices RANK the
    // heap; the commit decision is always exact.  Each round exact
    // re-prices every live, unverified entry whose tier benefit lands
    // within the margin band of the current top (the top itself included),
    // stamps them, and reinserts; it stops once the top is exact-priced
    // and no unverified runner remains inside its band.  Stop decisions
    // are therefore exact-anchored too: an unverified top at or below
    // zero is within its own band and gets verified before the loop can
    // break on it.
    if (tiered) {
      // Verification is exact-model work — it counts toward the eval
      // timer so tier speedup numbers cannot hide fallback cost.
      std::chrono::steady_clock::time_point verify_start;
      if (t_eval != nullptr) verify_start = std::chrono::steady_clock::now();
      std::vector<HeapEntry> repriced;
      for (;;) {
        discard_stale();
        if (heap.empty()) break;
        const HeapEntry top = heap.front();
        // The band tracks the current top benefit, tightening as the
        // frontier decays — a frozen run-level scale would drag the whole
        // post-commit invalidation set into exact re-pricing every
        // iteration once benefits shrink below it.
        const double band =
            options.tier_fallback_margin * std::abs(top.benefit);
        const std::size_t tidx =
            static_cast<std::size_t>(top.server) * m + top.site;
        // Settled: exact top, nothing unverified close enough to contest.
        bool pending = false;
        for (const HeapEntry& e : heap) {
          const std::size_t idx =
              static_cast<std::size_t>(e.server) * m + e.site;
          if (e.version != version[idx]) continue;  // stale duplicate
          if (verified_stamp[idx] == version[idx]) continue;
          if (e.benefit < top.benefit - band) continue;
          pending = true;
          break;
        }
        if (!pending && verified_stamp[tidx] == version[tidx]) break;

        repriced.clear();
        for (const HeapEntry& e : heap) {
          const std::size_t idx =
              static_cast<std::size_t>(e.server) * m + e.site;
          if (e.version != version[idx]) continue;
          if (verified_stamp[idx] == version[idx]) continue;
          if (e.benefit < top.benefit - band) continue;
          ++tier_fallbacks;
          if (idx != tidx) ++tier_margin_hits;
          part_penalty[idx] = hybrid_cache_penalty(
              system, result.nearest, states[e.server], hit, e.server,
              e.site, nullptr);
          val[idx] = part_local[idx] + part_relative[idx] -
                     part_penalty[idx] -
                     options.add_cost_per_byte *
                         static_cast<double>(system.site_bytes()[e.site]);
          ++version[idx];
          verified_stamp[idx] = version[idx];
          repriced.push_back({val[idx], e.server, e.site, version[idx]});
        }
        for (const HeapEntry& e : repriced) {
          heap.push_back(e);
          std::push_heap(heap.begin(), heap.end(), worse);
        }
        // Loop: re-pricing may have surfaced a different (possibly still
        // unverified) top whose own band needs settling.
      }
      if (t_eval != nullptr) {
        t_eval->record_ns(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - verify_start)
                .count()));
      }
    }
    if (heap.empty()) break;
    const HeapEntry winner = heap.front();
    if (winner.benefit <= 0.0) break;
    std::pop_heap(heap.begin(), heap.end(), worse);
    heap.pop_back();
    const auto ws = winner.server;
    const auto js = winner.site;
    const std::size_t ws_row = static_cast<std::size_t>(ws) * m;

    // Benefit decomposition of the winner, against the pre-commit state.
    HybridBenefitParts parts;
    if (iteration_log != nullptr) {
      if (tiered) {
        const std::size_t widx = ws_row + js;
        parts.local_gain = part_local[widx];
        parts.cache_penalty = part_penalty[widx];
        parts.relative_gain = part_relative[widx];
      } else {
        parts = hybrid_candidate_benefit_parts(system, result.placement,
                                               result.nearest, states[ws], hit,
                                               flow.data(), ws, js);
      }
    }

    std::vector<sys::ServerIndex> changed_servers;
    {
      obs::ScopedTimer commit_timer(t_commit);
      if (tiered) {
        // Pre-commit nearest costs of the committed column, for the
        // exact-preserving penalty patch in repair().
        for (std::size_t i = 0; i < n; ++i) {
          old_cost_js[i] =
              result.nearest.cost(static_cast<sys::ServerIndex>(i), js);
        }
      }
      result.placement.add(ws, js);
      changed_servers = result.nearest.on_replica_added(ws, js);
      states[ws].replicate(js);
      std::copy(flow.begin() + static_cast<std::ptrdiff_t>(ws_row),
                flow.begin() + static_cast<std::ptrdiff_t>(ws_row + m),
                old_flow.begin());
      for (std::size_t j = 0; j < m; ++j) {
        hit[ws_row + j] =
            states[ws].hit_ratio(static_cast<std::uint32_t>(j));
      }
      refresh_miss_flow_row(system, hit, ws, flow);
      if (tiered) {
        // Patch the shared tables before the batch re-pricing below reads
        // them: cost deltas fold into the changed servers' g/Phi/A tables
        // in O(grid); ws's own table rebuilds lazily (its epoch moved).
        for (const sys::ServerIndex k : changed_servers) {
          if (k != ws) tier->on_cost_changed(k, js);
        }
        columns->on_commit(result.nearest, flow, ws, js, changed_servers);
      }
      result.cost_trajectory.push_back(current_cost());
    }

    if (iteration_log != nullptr) {
      iteration_log->add_row(
          {static_cast<double>(iteration), static_cast<double>(ws),
           static_cast<double>(js), static_cast<double>(pending_candidates),
           winner.benefit, parts.local_gain, parts.relative_gain,
           parts.cache_penalty,
           static_cast<double>(system.site_bytes()[js]),
           result.cost_trajectory.back(), pending_eval_ms});
    }
    ++iteration;

    // --- Invalidation: collect exactly the candidates whose inputs the
    // commit changed, tagged with WHICH term went stale (see the file
    // comment for the derivation).  kFull subsumes the repairs.
    ++commit_id;
    marked.clear();
    auto mark = [&](std::size_t idx, std::uint8_t kind) {
      if (dead[idx] != 0) return;
      if (mark_stamp[idx] != commit_id) {
        mark_stamp[idx] = commit_id;
        mark_kind[idx] = kind;
        marked.push_back(static_cast<std::uint32_t>(idx));
        return;
      }
      mark_kind[idx] = static_cast<std::uint8_t>(mark_kind[idx] | kind);
    };
    for (std::size_t j = 0; j < m; ++j) mark(ws_row + j, kFull);
    for (std::size_t i = 0; i < n; ++i) mark(i * m + js, kFull);
    for (const sys::ServerIndex i : changed_servers) {
      if (i == ws) continue;
      const std::size_t row = static_cast<std::size_t>(i) * m;
      for (std::size_t j = 0; j < m; ++j) mark(row + j, kRepairPenalty);
    }
    for (std::size_t j = 0; j < m; ++j) {
      if (j == js || old_flow[j] == flow[ws_row + j]) continue;
      const auto site = static_cast<sys::SiteIndex>(j);
      if (result.placement.is_replicated(ws, site)) continue;
      const double c = result.nearest.cost(ws, site);
      for (std::size_t i = 0; i < n; ++i) {
        if (i == ws) continue;
        if (dist.server_to_server(ws, static_cast<sys::ServerIndex>(i)) < c) {
          mark(i * m + j, kRepairRelative);
        }
      }
    }
    invalidations += marked.size();
    if (inval_series != nullptr) {
      inval_series->push(static_cast<double>(marked.size()));
    }
    if (spans != nullptr) {
      spans->instant(sp_inval, "placement", "marked",
                     static_cast<double>(marked.size()));
    }

    // --- Batched re-evaluation / repair, parallel across servers, serial
    // within a server (the WhatIf memo is per-state mutable).  Sorting makes
    // the groups contiguous and the later heap pushes deterministic.
    obs::ScopedSpan reeval_span(spans, sp_reeval, "placement");
    reeval_span.arg("marked", static_cast<double>(marked.size()));
    std::sort(marked.begin(), marked.end());
    if (t_eval != nullptr) eval_start = std::chrono::steady_clock::now();
    std::vector<std::pair<std::size_t, std::size_t>> groups;
    for (std::size_t b = 0; b < marked.size();) {
      const std::size_t server = marked[b] / m;
      std::size_t e = b + 1;
      while (e < marked.size() && marked[e] / m == server) ++e;
      groups.emplace_back(b, e);
      b = e;
    }
    util::parallel_for(0, groups.size(), [&](std::size_t g) {
      for (std::size_t t = groups[g].first; t < groups[g].second; ++t) {
        const std::uint32_t idx = marked[t];
        if ((mark_kind[idx] & kFull) != 0) {
          evaluate(idx);
        } else {
          repair(idx, mark_kind[idx], js);
        }
      }
    });
    std::uint64_t batch_alive = 0;
    std::uint64_t batch_evals = 0;
    std::uint64_t batch_repairs = 0;
    for (const std::uint32_t idx : marked) {
      ++version[idx];
      if (!eval_ok[idx]) {
        dead[idx] = 1;
        continue;
      }
      if (still_exact[idx] != 0) {
        // Exact-preserving patch: the new version is born verified.
        verified_stamp[idx] = version[idx];
        still_exact[idx] = 0;
      }
      if ((mark_kind[idx] & kFull) != 0) {
        ++batch_evals;
      } else {
        ++batch_repairs;
      }
      ++batch_alive;
      heap.push_back({val[idx], static_cast<sys::ServerIndex>(idx / m),
                      static_cast<sys::SiteIndex>(idx % m), version[idx]});
      std::push_heap(heap.begin(), heap.end(), worse);
    }
    pending_candidates = batch_alive;
    reevaluations += batch_evals;
    repairs += batch_repairs;
    total_candidates += batch_evals;
    if (t_eval != nullptr) {
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - eval_start)
              .count());
      t_eval->record_ns(ns);
      pending_eval_ms = static_cast<double>(ns) * 1e-6;
    }
    reeval_span.stop();
    peak_heap = std::max(peak_heap, heap.size());
    if (spans != nullptr) {
      spans->counter(sp_heap, static_cast<double>(heap.size()));
    }

    // Compact when lazy deletion has let stale entries pile up.
    if (heap.size() > compact_threshold) {
      std::erase_if(heap, [&](const HeapEntry& e) {
        return e.version !=
               version[static_cast<std::size_t>(e.server) * m + e.site];
      });
      std::make_heap(heap.begin(), heap.end(), worse);
    }
  }

  finalize_result(system, states, result);

  if (metrics != nullptr) {
    metrics->counter(pfx + "candidates_evaluated").add(total_candidates);
    metrics->counter(pfx + "heap/reevaluations").add(reevaluations);
    metrics->counter(pfx + "heap/repairs").add(repairs);
    metrics->counter(pfx + "heap/invalidations").add(invalidations);
    metrics->counter(pfx + "heap/stale_discarded").add(stale_discarded);
    metrics->counter("model/curve_clamped")
        .add(context.curve().clamped_evaluations());
    if (tiered) {
      metrics->counter(pfx + "tier_evaluations").add(tier->evaluations());
      metrics->counter(pfx + "tier_fallbacks").add(tier_fallbacks);
      metrics->counter(pfx + "tier_margin_hits").add(tier_margin_hits);
      if (options.placement_model == PlacementModel::kChe) {
        metrics->counter("model/che/fixed_point_iterations")
            .add(tier->che_iterations());
      }
    }
    metrics->gauge(pfx + "heap/peak_size")
        .set(static_cast<double>(peak_heap));
    metrics->gauge(pfx + "replicas_created")
        .set(static_cast<double>(result.replicas_created));
    metrics->gauge(pfx + "predicted_cost_per_request")
        .set(result.predicted_cost_per_request);
    obs::Series& cost = metrics->series(pfx + "cost");
    for (const double c : result.cost_trajectory) cost.push(c);
  }
  return result;
}

}  // namespace cdn::placement::detail
