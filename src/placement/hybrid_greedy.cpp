#include "src/placement/hybrid_greedy.h"

#include <algorithm>
#include <chrono>

#include "src/cdn/cost.h"
#include "src/obs/scoped_timer.h"
#include "src/placement/model_support.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace cdn::placement {

namespace {

struct Candidate {
  double benefit = 0.0;
  sys::ServerIndex server = 0;
  sys::SiteIndex site = 0;
  bool valid = false;
  std::uint64_t evaluated = 0;  // candidates this server considered
};

}  // namespace

double hybrid_candidate_benefit(const sys::CdnSystem& system,
                                const sys::ReplicaPlacement& placement,
                                const sys::NearestReplicaIndex& nearest,
                                const model::ServerCacheState& state,
                                const std::vector<double>& hit,
                                sys::ServerIndex server,
                                sys::SiteIndex site) {
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  const auto& demand = system.demand();
  const auto& dist = system.distances();
  const std::size_t i = server;
  const std::size_t j = site;

  // Local benefit (line 9): former misses for j become local.
  double b = (1.0 - hit[i * m + j]) * demand.requests(server, site) *
             nearest.cost(server, site);

  // Cache penalty (lines 10-13): smaller buffer for everyone else.
  const auto what_if = state.what_if_replicate(static_cast<std::uint32_t>(j));
  for (std::size_t k = 0; k < m; ++k) {
    if (k == j || state.is_replicated(static_cast<std::uint32_t>(k))) {
      continue;
    }
    const double c = nearest.cost(server, static_cast<sys::SiteIndex>(k));
    if (c == 0.0) continue;
    const double dh =
        hit[i * m + k] - what_if.hit_ratio(static_cast<std::uint32_t>(k));
    b -= dh * demand.requests(server, static_cast<sys::SiteIndex>(k)) * c;
  }

  // Relative benefit (lines 14-17): other servers' misses for j.
  for (std::size_t k = 0; k < n; ++k) {
    const auto other = static_cast<sys::ServerIndex>(k);
    if (other == server || placement.is_replicated(other, site)) continue;
    const double delta =
        nearest.cost(other, site) - dist.server_to_server(other, server);
    if (delta > 0.0) {
      b += delta * (1.0 - hit[k * m + j]) * demand.requests(other, site);
    }
  }
  return b;
}

HybridBenefitParts hybrid_candidate_benefit_parts(
    const sys::CdnSystem& system, const sys::ReplicaPlacement& placement,
    const sys::NearestReplicaIndex& nearest,
    const model::ServerCacheState& state, const std::vector<double>& hit,
    sys::ServerIndex server, sys::SiteIndex site) {
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  const auto& demand = system.demand();
  const auto& dist = system.distances();
  const std::size_t i = server;
  const std::size_t j = site;

  HybridBenefitParts parts;
  parts.local_gain = (1.0 - hit[i * m + j]) * demand.requests(server, site) *
                     nearest.cost(server, site);

  const auto what_if = state.what_if_replicate(static_cast<std::uint32_t>(j));
  for (std::size_t k = 0; k < m; ++k) {
    if (k == j || state.is_replicated(static_cast<std::uint32_t>(k))) {
      continue;
    }
    const double c = nearest.cost(server, static_cast<sys::SiteIndex>(k));
    if (c == 0.0) continue;
    const double dh =
        hit[i * m + k] - what_if.hit_ratio(static_cast<std::uint32_t>(k));
    parts.cache_penalty +=
        dh * demand.requests(server, static_cast<sys::SiteIndex>(k)) * c;
  }

  for (std::size_t k = 0; k < n; ++k) {
    const auto other = static_cast<sys::ServerIndex>(k);
    if (other == server || placement.is_replicated(other, site)) continue;
    const double delta =
        nearest.cost(other, site) - dist.server_to_server(other, server);
    if (delta > 0.0) {
      parts.relative_gain +=
          delta * (1.0 - hit[k * m + j]) * demand.requests(other, site);
    }
  }
  return parts;
}

PlacementResult hybrid_greedy(const sys::CdnSystem& system,
                              const HybridGreedyOptions& options) {
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  const auto& demand = system.demand();

  obs::Registry* const metrics = options.metrics;
  const std::string& pfx = options.metrics_prefix;
  obs::TimerStat* const t_total =
      metrics ? &metrics->timer(pfx + "phase/total") : nullptr;
  obs::TimerStat* const t_eval =
      metrics ? &metrics->timer(pfx + "phase/eval") : nullptr;
  obs::TimerStat* const t_commit =
      metrics ? &metrics->timer(pfx + "phase/commit") : nullptr;
  obs::Table* const iteration_log =
      metrics ? &metrics->table(
                    pfx + "iterations",
                    {"iteration", "server", "site", "candidates", "benefit",
                     "local_gain", "relative_gain", "cache_penalty",
                     "bytes_committed", "cost_after", "eval_ms"})
              : nullptr;
  obs::ScopedTimer total_timer(t_total);

  ModelContext context(system, options.pb_mode);
  std::vector<model::ServerCacheState> states = context.make_states();

  sys::ReplicaPlacement placement(system.server_storage(),
                                  system.site_bytes());
  if (options.seed != nullptr) {
    CDN_EXPECT(options.seed->server_count() == n &&
                   options.seed->site_count() == m,
               "seed placement dimensions must match the system");
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        const auto server = static_cast<sys::ServerIndex>(i);
        const auto site = static_cast<sys::SiteIndex>(j);
        if (options.seed->is_replicated(server, site)) {
          placement.add(server, site);
          states[i].replicate(static_cast<std::uint32_t>(j));
        }
      }
    }
  }
  sys::NearestReplicaIndex nearest(system.distances(), placement);

  PlacementResult result{.algorithm = "hybrid-greedy",
                         .placement = std::move(placement),
                         .nearest = std::move(nearest)};

  // Current modelled hit ratios, refreshed once per iteration and shared by
  // every candidate evaluation (lines 2-5 of Figure 2 for the initial D).
  std::vector<double> hit = modeled_hit_matrix(states);
  auto current_cost = [&] {
    return sys::total_remote_cost(demand, result.nearest, hit_fn(hit, m));
  };
  result.cost_trajectory.push_back(current_cost());

  const std::size_t seeded = result.placement.replica_count();
  std::vector<Candidate> best_per_server(n);
  std::uint64_t total_candidates = 0;
  std::size_t iteration = 0;
  for (;;) {
    if (options.max_replicas != 0 &&
        result.placement.replica_count() >= seeded + options.max_replicas) {
      break;
    }
    std::chrono::steady_clock::time_point eval_start;
    if (t_eval != nullptr) eval_start = std::chrono::steady_clock::now();
    util::parallel_for(0, n, [&](std::size_t i) {
      const auto server = static_cast<sys::ServerIndex>(i);
      Candidate best;
      std::uint64_t evaluated = 0;
      for (std::size_t j = 0; j < m; ++j) {
        const auto site = static_cast<sys::SiteIndex>(j);
        if (!result.placement.can_add(server, site)) continue;
        CDN_DCHECK(states[i].can_fit(static_cast<std::uint32_t>(j)),
                   "placement and model state disagree on free space");
        ++evaluated;
        const double b =
            hybrid_candidate_benefit(system, result.placement, result.nearest,
                                     states[i], hit, server, site) -
            options.add_cost_per_byte *
                static_cast<double>(system.site_bytes()[j]);
        if (!best.valid || b > best.benefit) {
          best = {b, server, site, true, 0};
        }
      }
      best.evaluated = evaluated;
      best_per_server[i] = best;
    });
    double eval_ms = 0.0;
    if (t_eval != nullptr) {
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - eval_start)
              .count());
      t_eval->record_ns(ns);
      eval_ms = static_cast<double>(ns) * 1e-6;
    }

    Candidate winner;
    std::uint64_t iteration_candidates = 0;
    for (const Candidate& c : best_per_server) {
      iteration_candidates += c.evaluated;
      if (c.valid && (!winner.valid || c.benefit > winner.benefit)) {
        winner = c;
      }
    }
    total_candidates += iteration_candidates;
    if (!winner.valid || winner.benefit <= 0.0) break;

    // Benefit decomposition of the winner, against the pre-commit state
    // (the same inputs the benefit above saw).
    HybridBenefitParts parts;
    if (iteration_log != nullptr) {
      parts = hybrid_candidate_benefit_parts(
          system, result.placement, result.nearest, states[winner.server],
          hit, winner.server, winner.site);
    }

    {
      // Lines 18-25: materialise the winner and update the books.
      obs::ScopedTimer commit_timer(t_commit);
      result.placement.add(winner.server, winner.site);
      result.nearest.on_replica_added(winner.server, winner.site);
      states[winner.server].replicate(winner.site);

      // Refresh the winner server's modelled hit row; other rows are
      // unchanged (their caches did not move).
      for (std::size_t j = 0; j < m; ++j) {
        hit[static_cast<std::size_t>(winner.server) * m + j] =
            states[winner.server].hit_ratio(static_cast<std::uint32_t>(j));
      }
      result.cost_trajectory.push_back(current_cost());
    }

    if (iteration_log != nullptr) {
      iteration_log->add_row(
          {static_cast<double>(iteration),
           static_cast<double>(winner.server),
           static_cast<double>(winner.site),
           static_cast<double>(iteration_candidates), winner.benefit,
           parts.local_gain, parts.relative_gain, parts.cache_penalty,
           static_cast<double>(system.site_bytes()[winner.site]),
           result.cost_trajectory.back(), eval_ms});
    }
    ++iteration;
  }

  finalize_result(system, states, result);

  if (metrics != nullptr) {
    metrics->counter(pfx + "candidates_evaluated").add(total_candidates);
    metrics->gauge(pfx + "replicas_created")
        .set(static_cast<double>(result.replicas_created));
    metrics->gauge(pfx + "predicted_cost_per_request")
        .set(result.predicted_cost_per_request);
    obs::Series& cost = metrics->series(pfx + "cost");
    for (const double c : result.cost_trajectory) cost.push(c);
  }
  return result;
}

}  // namespace cdn::placement
