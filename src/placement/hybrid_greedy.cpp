#include "src/placement/hybrid_greedy.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>

#include "src/cdn/cost.h"
#include "src/obs/scoped_timer.h"
#include "src/placement/hybrid_internal.h"
#include "src/placement/model_support.h"
#include "src/placement/tier_evaluator.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace cdn::placement {

namespace {

struct Candidate {
  double benefit = 0.0;
  sys::ServerIndex server = 0;
  sys::SiteIndex site = 0;
  bool valid = false;
  std::uint64_t evaluated = 0;  // candidates this server considered
};

}  // namespace

std::vector<double> miss_flow_matrix(const sys::CdnSystem& system,
                                     const std::vector<double>& hit) {
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  std::vector<double> flow(n * m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    refresh_miss_flow_row(system, hit, static_cast<sys::ServerIndex>(i), flow);
  }
  return flow;
}

void refresh_miss_flow_row(const sys::CdnSystem& system,
                           const std::vector<double>& hit,
                           sys::ServerIndex server,
                           std::vector<double>& flow) {
  const std::size_t m = system.site_count();
  const auto& demand = system.demand();
  const std::size_t i = server;
  for (std::size_t j = 0; j < m; ++j) {
    // Must stay the elementwise twin of the miss_flow == nullptr fallback in
    // hybrid_candidate_benefit_parts: the engines rely on the two producing
    // bit-identical doubles.
    flow[i * m + j] = (1.0 - hit[i * m + j]) *
                      demand.requests(server, static_cast<sys::SiteIndex>(j));
  }
}

namespace detail {

double hybrid_cache_penalty(const sys::CdnSystem& system,
                            const sys::NearestReplicaIndex& nearest,
                            const model::ServerCacheState& state,
                            const std::vector<double>& hit,
                            sys::ServerIndex server, sys::SiteIndex site,
                            double* terms) {
  const std::size_t m = system.site_count();
  const auto& demand = system.demand();
  const std::size_t i = server;
  const std::size_t j = site;

  // Cache penalty (lines 10-13): smaller buffer for everyone else.  Skipped
  // sites contribute exactly +0.0, and no term or partial sum is ever -0.0
  // (terms are dh*d*c with d, c >= 0 and IEEE cancellation yielding +0.0),
  // so re-summing a captured `terms` array over ALL sites in ascending order
  // reproduces this accumulation bit for bit.
  double penalty = 0.0;
  const auto what_if = state.what_if_replicate(static_cast<std::uint32_t>(j));
  for (std::size_t k = 0; k < m; ++k) {
    double term = 0.0;
    if (k != j && !state.is_replicated(static_cast<std::uint32_t>(k))) {
      const double c = nearest.cost(server, static_cast<sys::SiteIndex>(k));
      if (c != 0.0) {
        const double dh =
            hit[i * m + k] - what_if.hit_ratio(static_cast<std::uint32_t>(k));
        term = dh * demand.requests(server, static_cast<sys::SiteIndex>(k)) * c;
        penalty += term;
      }
    }
    if (terms != nullptr) terms[k] = term;
  }
  return penalty;
}

double hybrid_relative_gain(const sys::CdnSystem& system,
                            const sys::ReplicaPlacement& placement,
                            const sys::NearestReplicaIndex& nearest,
                            const std::vector<double>& hit,
                            const double* miss_flow, sys::ServerIndex server,
                            sys::SiteIndex site) {
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  const auto& demand = system.demand();
  const auto& dist = system.distances();
  const std::size_t j = site;

  // Relative benefit (lines 14-17): other servers' misses for j.
  double gain = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const auto other = static_cast<sys::ServerIndex>(k);
    if (other == server || placement.is_replicated(other, site)) continue;
    const double delta =
        nearest.cost(other, site) - dist.server_to_server(other, server);
    if (delta > 0.0) {
      const double f =
          miss_flow != nullptr
              ? miss_flow[k * m + j]
              : (1.0 - hit[k * m + j]) * demand.requests(other, site);
      gain += delta * f;
    }
  }
  return gain;
}

HybridBenefitParts hybrid_benefit_parts_capture(
    const sys::CdnSystem& system, const sys::ReplicaPlacement& placement,
    const sys::NearestReplicaIndex& nearest,
    const model::ServerCacheState& state, const std::vector<double>& hit,
    const double* miss_flow, sys::ServerIndex server, sys::SiteIndex site,
    double* penalty_terms) {
  const std::size_t m = system.site_count();
  const std::size_t i = server;
  const std::size_t j = site;

  HybridBenefitParts parts;

  // Local benefit (line 9): former misses for j become local.
  const double local_flow =
      miss_flow != nullptr
          ? miss_flow[i * m + j]
          : (1.0 - hit[i * m + j]) * system.demand().requests(server, site);
  parts.local_gain = local_flow * nearest.cost(server, site);

  parts.cache_penalty = hybrid_cache_penalty(system, nearest, state, hit,
                                             server, site, penalty_terms);
  parts.relative_gain = hybrid_relative_gain(system, placement, nearest, hit,
                                             miss_flow, server, site);
  return parts;
}

}  // namespace detail

HybridBenefitParts hybrid_candidate_benefit_parts(
    const sys::CdnSystem& system, const sys::ReplicaPlacement& placement,
    const sys::NearestReplicaIndex& nearest,
    const model::ServerCacheState& state, const std::vector<double>& hit,
    const double* miss_flow, sys::ServerIndex server, sys::SiteIndex site) {
  return detail::hybrid_benefit_parts_capture(system, placement, nearest,
                                              state, hit, miss_flow, server,
                                              site, nullptr);
}

HybridBenefitParts hybrid_candidate_benefit_parts(
    const sys::CdnSystem& system, const sys::ReplicaPlacement& placement,
    const sys::NearestReplicaIndex& nearest,
    const model::ServerCacheState& state, const std::vector<double>& hit,
    sys::ServerIndex server, sys::SiteIndex site) {
  return hybrid_candidate_benefit_parts(system, placement, nearest, state, hit,
                                        nullptr, server, site);
}

double hybrid_candidate_benefit(const sys::CdnSystem& system,
                                const sys::ReplicaPlacement& placement,
                                const sys::NearestReplicaIndex& nearest,
                                const model::ServerCacheState& state,
                                const std::vector<double>& hit,
                                const double* miss_flow,
                                sys::ServerIndex server, sys::SiteIndex site) {
  return hybrid_candidate_benefit_parts(system, placement, nearest, state, hit,
                                        miss_flow, server, site)
      .total();
}

double hybrid_candidate_benefit(const sys::CdnSystem& system,
                                const sys::ReplicaPlacement& placement,
                                const sys::NearestReplicaIndex& nearest,
                                const model::ServerCacheState& state,
                                const std::vector<double>& hit,
                                sys::ServerIndex server,
                                sys::SiteIndex site) {
  return hybrid_candidate_benefit(system, placement, nearest, state, hit,
                                  nullptr, server, site);
}

namespace detail {

PlacementResult hybrid_greedy_reference(const sys::CdnSystem& system,
                                        const HybridGreedyOptions& options) {
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  const auto& demand = system.demand();

  obs::Registry* const metrics = options.metrics;
  const std::string& pfx = options.metrics_prefix;
  obs::TimerStat* const t_total =
      metrics ? &metrics->timer(pfx + "phase/total") : nullptr;
  obs::TimerStat* const t_eval =
      metrics ? &metrics->timer(pfx + "phase/eval") : nullptr;
  obs::TimerStat* const t_commit =
      metrics ? &metrics->timer(pfx + "phase/commit") : nullptr;
  obs::Table* const iteration_log =
      metrics ? &metrics->table(
                    pfx + "iterations",
                    {"iteration", "server", "site", "candidates", "benefit",
                     "local_gain", "relative_gain", "cache_penalty",
                     "bytes_committed", "cost_after", "eval_ms"})
              : nullptr;
  obs::SpanTracer* const spans = options.spans;
  const char* sp_total = nullptr;
  const char* sp_iter = nullptr;
  if (spans != nullptr) {
    sp_total = spans->intern(pfx + "total");
    sp_iter = spans->intern(pfx + "iteration");
  }
  obs::ScopedTimer total_timer(t_total);
  obs::ScopedSpan total_span(spans, sp_total, "placement");

  ModelContext context(system, options.pb_mode, options.placement_model);
  std::vector<model::ServerCacheState> states = context.make_states();

  sys::ReplicaPlacement placement(system.server_storage(),
                                  system.site_bytes());
  apply_seed(system, options, placement, states);
  sys::NearestReplicaIndex nearest(system.distances(), placement);

  PlacementResult result{.algorithm = "hybrid-greedy",
                         .placement = std::move(placement),
                         .nearest = std::move(nearest)};

  // Current modelled hit ratios, refreshed once per iteration and shared by
  // every candidate evaluation (lines 2-5 of Figure 2 for the initial D).
  std::vector<double> hit = modeled_hit_matrix(states);
  std::vector<double> flow = miss_flow_matrix(system, hit);
  auto current_cost = [&] {
    return sys::total_remote_cost(demand, result.nearest, hit_fn(hit, m));
  };
  result.cost_trajectory.push_back(current_cost());

  // Tier fast path (kClosedForm / kChe): candidates are priced from shared
  // per-server tables; the exact-model branch below stays literally
  // untouched under kExact (byte-identity gate).
  const bool tiered = options.placement_model != PlacementModel::kExact;
  std::optional<TierEvaluator> tier;
  std::optional<RelativeColumns> columns;
  if (tiered) {
    tier.emplace(system, states, result.nearest, context.curve(),
                 context.occupancy(), options.placement_model);
    columns.emplace();
    columns->build(system, result.placement, result.nearest, flow);
  }
  std::uint64_t tier_fallbacks = 0;
  std::uint64_t tier_margin_hits = 0;

  const std::size_t seeded = result.placement.replica_count();
  std::vector<Candidate> best_per_server(n);
  std::uint64_t total_candidates = 0;
  std::size_t iteration = 0;
  for (;;) {
    if (options.max_replicas != 0 &&
        result.placement.replica_count() >= seeded + options.max_replicas) {
      break;
    }
    obs::ScopedSpan iter_span(spans, sp_iter, "placement");
    iter_span.arg("iteration", static_cast<double>(iteration));
    std::chrono::steady_clock::time_point eval_start;
    if (t_eval != nullptr) eval_start = std::chrono::steady_clock::now();
    util::parallel_for(0, n, [&](std::size_t i) {
      const auto server = static_cast<sys::ServerIndex>(i);
      Candidate best;
      std::uint64_t evaluated = 0;
      for (std::size_t j = 0; j < m; ++j) {
        const auto site = static_cast<sys::SiteIndex>(j);
        if (!result.placement.can_add(server, site)) continue;
        CDN_DCHECK(states[i].can_fit(static_cast<std::uint32_t>(j)),
                   "placement and model state disagree on free space");
        ++evaluated;
        const double budget_cost =
            options.add_cost_per_byte *
            static_cast<double>(system.site_bytes()[j]);
        const double b =
            tiered
                ? flow[i * m + j] * result.nearest.cost(server, site) +
                      columns->relative_gain(server, site) -
                      tier->penalty(server, site) - budget_cost
                : hybrid_candidate_benefit(system, result.placement,
                                           result.nearest, states[i], hit,
                                           flow.data(), server, site) -
                      budget_cost;
        if (!best.valid || b > best.benefit) {
          best = {b, server, site, true, 0};
        }
      }
      best.evaluated = evaluated;
      best_per_server[i] = best;
    });
    double eval_ms = 0.0;
    if (t_eval != nullptr) {
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - eval_start)
              .count());
      t_eval->record_ns(ns);
      eval_ms = static_cast<double>(ns) * 1e-6;
    }

    Candidate winner;
    std::uint64_t iteration_candidates = 0;
    for (const Candidate& c : best_per_server) {
      iteration_candidates += c.evaluated;
      if (c.valid && (!winner.valid || c.benefit > winner.benefit)) {
        winner = c;
      }
    }
    total_candidates += iteration_candidates;

    // Error-gated exact fallback: the tier prices only RANK candidates —
    // the winner plus every candidate whose tier benefit lands within the
    // margin band of it is re-priced with the exact Eq. 1/Eq. 2 penalty,
    // and the exact values pick the committed candidate and make the stop
    // decision.  The band absorbs tier mis-ranking of near-winners; it is
    // relative to the current top benefit, so it tightens as the frontier
    // decays instead of sweeping the whole tail into exact re-pricing.
    std::optional<HybridBenefitParts> winner_parts;
    if (tiered && winner.valid) {
      const double band =
          options.tier_fallback_margin * std::abs(winner.benefit);
      Candidate exact_best;
      HybridBenefitParts exact_parts;
      for (const Candidate& c : best_per_server) {
        if (!c.valid || c.benefit < winner.benefit - band) continue;
        ++tier_fallbacks;
        if (c.server != winner.server || c.site != winner.site) {
          ++tier_margin_hits;
        }
        HybridBenefitParts p;
        p.local_gain =
            flow[static_cast<std::size_t>(c.server) * m + c.site] *
            result.nearest.cost(c.server, c.site);
        p.relative_gain = columns->relative_gain(c.server, c.site);
        p.cache_penalty =
            hybrid_cache_penalty(system, result.nearest, states[c.server],
                                 hit, c.server, c.site, nullptr);
        const double b =
            p.total() - options.add_cost_per_byte *
                            static_cast<double>(system.site_bytes()[c.site]);
        if (!exact_best.valid || b > exact_best.benefit) {
          exact_best = {b, c.server, c.site, true, 0};
          exact_parts = p;
        }
      }
      winner = exact_best;
      winner_parts = exact_parts;
    }
    if (!winner.valid || winner.benefit <= 0.0) break;

    // Benefit decomposition of the winner, against the pre-commit state
    // (the same inputs the benefit above saw).
    HybridBenefitParts parts;
    if (iteration_log != nullptr) {
      if (!tiered) {
        parts = hybrid_candidate_benefit_parts(
            system, result.placement, result.nearest, states[winner.server],
            hit, flow.data(), winner.server, winner.site);
      } else if (winner_parts) {
        parts = *winner_parts;
      } else {
        parts.local_gain =
            flow[static_cast<std::size_t>(winner.server) * m + winner.site] *
            result.nearest.cost(winner.server, winner.site);
        parts.relative_gain =
            columns->relative_gain(winner.server, winner.site);
        parts.cache_penalty = tier->penalty(winner.server, winner.site);
      }
    }

    {
      // Lines 18-25: materialise the winner and update the books.
      obs::ScopedTimer commit_timer(t_commit);
      result.placement.add(winner.server, winner.site);
      const std::vector<sys::ServerIndex> changed =
          result.nearest.on_replica_added(winner.server, winner.site);
      states[winner.server].replicate(winner.site);

      // Refresh the winner server's modelled hit row; other rows are
      // unchanged (their caches did not move).
      for (std::size_t j = 0; j < m; ++j) {
        hit[static_cast<std::size_t>(winner.server) * m + j] =
            states[winner.server].hit_ratio(static_cast<std::uint32_t>(j));
      }
      refresh_miss_flow_row(system, hit, winner.server, flow);
      if (tiered) {
        for (const sys::ServerIndex k : changed) {
          if (k != winner.server) tier->on_cost_changed(k, winner.site);
        }
        columns->on_commit(result.nearest, flow, winner.server, winner.site,
                           changed);
      }
      result.cost_trajectory.push_back(current_cost());
    }

    if (iteration_log != nullptr) {
      iteration_log->add_row(
          {static_cast<double>(iteration),
           static_cast<double>(winner.server),
           static_cast<double>(winner.site),
           static_cast<double>(iteration_candidates), winner.benefit,
           parts.local_gain, parts.relative_gain, parts.cache_penalty,
           static_cast<double>(system.site_bytes()[winner.site]),
           result.cost_trajectory.back(), eval_ms});
    }
    ++iteration;
  }

  finalize_result(system, states, result);

  if (metrics != nullptr) {
    metrics->counter(pfx + "candidates_evaluated").add(total_candidates);
    metrics->counter("model/curve_clamped")
        .add(context.curve().clamped_evaluations());
    metrics->gauge(pfx + "replicas_created")
        .set(static_cast<double>(result.replicas_created));
    metrics->gauge(pfx + "predicted_cost_per_request")
        .set(result.predicted_cost_per_request);
    if (tiered) {
      metrics->counter(pfx + "tier_evaluations").add(tier->evaluations());
      metrics->counter(pfx + "tier_fallbacks").add(tier_fallbacks);
      metrics->counter(pfx + "tier_margin_hits").add(tier_margin_hits);
      if (options.placement_model == PlacementModel::kChe) {
        metrics->counter("model/che/fixed_point_iterations")
            .add(tier->che_iterations());
      }
    }
    obs::Series& cost = metrics->series(pfx + "cost");
    for (const double c : result.cost_trajectory) cost.push(c);
  }
  return result;
}

}  // namespace detail

PlacementResult hybrid_greedy(const sys::CdnSystem& system,
                              const HybridGreedyOptions& options) {
  switch (options.engine) {
    case PlacementEngine::kReference:
      return detail::hybrid_greedy_reference(system, options);
    case PlacementEngine::kIncremental:
      return detail::hybrid_greedy_incremental(system, options);
  }
  CDN_EXPECT(false, "unknown placement engine");
  return detail::hybrid_greedy_reference(system, options);
}

}  // namespace cdn::placement
