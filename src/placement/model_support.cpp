#include "src/placement/model_support.h"

#include "src/util/error.h"

namespace cdn::placement {

PlacementModel parse_placement_model(const std::string& name) {
  if (name == "exact") return PlacementModel::kExact;
  if (name == "closed-form") return PlacementModel::kClosedForm;
  if (name == "che") return PlacementModel::kChe;
  CDN_EXPECT(false,
             "unknown placement model '" + name +
                 "' (expected exact, closed-form, or che)");
  return PlacementModel::kExact;
}

const char* placement_model_name(PlacementModel model) {
  switch (model) {
    case PlacementModel::kExact:
      return "exact";
    case PlacementModel::kClosedForm:
      return "closed-form";
    case PlacementModel::kChe:
      return "che";
  }
  return "exact";
}

ModelContext::ModelContext(const sys::CdnSystem& system,
                           model::PbMode pb_mode,
                           PlacementModel placement_model)
    : system_(&system),
      curve_(system.catalog().object_popularity()),
      pb_mode_(pb_mode),
      placement_model_(placement_model),
      lambdas_(system.uncacheable_fractions()) {
  if (placement_model_ == PlacementModel::kChe) {
    occupancy_.emplace(system.catalog().object_popularity());
  }
}

std::vector<model::ServerCacheState> ModelContext::make_states(
    const sys::ReplicaPlacement* existing) const {
  const auto& sys_ref = *system_;
  std::vector<model::ServerCacheState> states;
  states.reserve(sys_ref.server_count());
  for (std::size_t i = 0; i < sys_ref.server_count(); ++i) {
    const auto server = static_cast<sys::ServerIndex>(i);
    states.emplace_back(sys_ref.demand().row(server), sys_ref.site_bytes(),
                        lambdas_, sys_ref.server_storage(server),
                        sys_ref.catalog().mean_object_bytes(),
                        sys_ref.catalog().object_popularity(), curve_,
                        pb_mode_);
    if (existing != nullptr) {
      for (std::size_t j = 0; j < sys_ref.site_count(); ++j) {
        if (existing->is_replicated(server,
                                    static_cast<sys::SiteIndex>(j))) {
          states.back().replicate(static_cast<std::uint32_t>(j));
        }
      }
    }
  }
  return states;
}

model::ServerCacheState ModelContext::make_state(
    sys::ServerIndex server, const sys::ReplicaPlacement* existing) const {
  const auto& sys_ref = *system_;
  model::ServerCacheState state(
      sys_ref.demand().row(server), sys_ref.site_bytes(), lambdas_,
      sys_ref.server_storage(server), sys_ref.catalog().mean_object_bytes(),
      sys_ref.catalog().object_popularity(), curve_, pb_mode_);
  if (existing != nullptr) {
    for (std::size_t j = 0; j < sys_ref.site_count(); ++j) {
      if (existing->is_replicated(server, static_cast<sys::SiteIndex>(j))) {
        state.replicate(static_cast<std::uint32_t>(j));
      }
    }
  }
  return state;
}

std::vector<double> modeled_hit_matrix(
    const std::vector<model::ServerCacheState>& states) {
  CDN_EXPECT(!states.empty(), "no server states");
  const std::size_t m = states.front().site_count();
  std::vector<double> hit(states.size() * m, 0.0);
  for (std::size_t i = 0; i < states.size(); ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      hit[i * m + j] = states[i].hit_ratio(static_cast<std::uint32_t>(j));
    }
  }
  return hit;
}

sys::HitRatioFn hit_fn(const std::vector<double>& hit_matrix,
                       std::size_t site_count) {
  return [&hit_matrix, site_count](sys::ServerIndex i, sys::SiteIndex j) {
    return hit_matrix[static_cast<std::size_t>(i) * site_count + j];
  };
}

void finalize_result(const sys::CdnSystem& system,
                     const std::vector<model::ServerCacheState>& states,
                     PlacementResult& result) {
  result.modeled_hit = modeled_hit_matrix(states);
  result.predicted_total_cost =
      sys::total_remote_cost(system.demand(), result.nearest,
                             hit_fn(result.modeled_hit, system.site_count()));
  result.predicted_cost_per_request =
      result.predicted_total_cost / system.demand().total();
  result.replicas_created = result.placement.replica_count();
}

}  // namespace cdn::placement
