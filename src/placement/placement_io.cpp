#include "src/placement/placement_io.h"

#include <fstream>
#include <sstream>

#include "src/util/error.h"
#include "src/util/serial.h"
#include "src/util/text_parse.h"

namespace cdn::placement {

namespace {

const std::string kWhat = "placement file";

/// Whitespace tokenizer with 1-based column tracking, mirroring the fault
/// schedule and endpoint map parsers so every error carries an exact
/// location.
class LineTokens {
 public:
  LineTokens(const std::string& line, std::size_t line_no)
      : line_(line), line_no_(line_no) {}

  std::string where() const {
    return kWhat + " line " + std::to_string(line_no_) + ", col " +
           std::to_string(
               util::text_column(std::min(next_start(), line_.size())));
  }

  bool at_end() const { return next_start() >= line_.size(); }

  std::string expect(const char* what) {
    const std::size_t start = next_start();
    CDN_EXPECT(start < line_.size(),
               where() + ": expected " + what + ", but the line ended");
    std::size_t end = start;
    while (end < line_.size() && !is_space(line_[end])) ++end;
    token_where_ = kWhat + " line " + std::to_string(line_no_) + ", col " +
                   std::to_string(util::text_column(start));
    pos_ = end;
    return line_.substr(start, end - start);
  }

  std::uint32_t u32(const char* what) {
    const std::string tok = expect(what);
    return util::parse_u32_token(tok, token_where_);
  }

  void done() const {
    CDN_EXPECT(at_end(), where() + ": unexpected trailing token");
  }

  const std::string& last_where() const { return token_where_; }

 private:
  static bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }
  std::size_t next_start() const {
    std::size_t p = pos_;
    while (p < line_.size() && is_space(line_[p])) ++p;
    return p;
  }

  const std::string& line_;
  std::size_t line_no_;
  std::size_t pos_ = 0;
  std::string token_where_;
};

}  // namespace

std::string serialize_placement(const sys::ReplicaPlacement& placement) {
  std::ostringstream os;
  os << "placement " << placement.server_count() << ' '
     << placement.site_count() << '\n';
  for (std::size_t i = 0; i < placement.server_count(); ++i) {
    for (std::size_t j = 0; j < placement.site_count(); ++j) {
      if (placement.is_replicated(static_cast<sys::ServerIndex>(i),
                                  static_cast<sys::SiteIndex>(j))) {
        os << "replica " << i << ' ' << j << '\n';
      }
    }
  }
  return os.str();
}

void save_placement(const sys::ReplicaPlacement& placement,
                    const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  CDN_EXPECT(out.good(), "cannot open placement file for writing: " + path);
  out << serialize_placement(placement);
  out.flush();
  CDN_EXPECT(out.good(), "I/O error writing placement file: " + path);
}

std::uint64_t placement_digest(const sys::ReplicaPlacement& placement) {
  const std::string text = serialize_placement(placement);
  return util::fnv1a(text.data(), text.size());
}

PlacementResult parse_placement_result(const std::string& text,
                                       const sys::CdnSystem& system,
                                       const std::string& algorithm) {
  const std::size_t servers = system.server_count();
  const std::size_t sites = system.site_count();

  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  sys::ReplicaPlacement placement(system.server_storage(),
                                  system.site_bytes());
  std::size_t replicas = 0;

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    LineTokens tokens(line, line_no);
    if (tokens.at_end()) continue;
    const std::string verb = tokens.expect("'placement' or 'replica'");
    if (!saw_header) {
      CDN_EXPECT(verb == "placement",
                 tokens.last_where() +
                     ": expected the 'placement <servers> <sites>' header "
                     "first (got '" +
                     verb + "')");
      const std::uint32_t file_servers = tokens.u32("a server count");
      const std::uint32_t file_sites = tokens.u32("a site count");
      tokens.done();
      CDN_EXPECT(file_servers == servers && file_sites == sites,
                 tokens.last_where() + ": placement shape " +
                     std::to_string(file_servers) + "x" +
                     std::to_string(file_sites) +
                     " does not match the system's " +
                     std::to_string(servers) + "x" + std::to_string(sites));
      saw_header = true;
      continue;
    }
    CDN_EXPECT(verb == "replica",
               tokens.last_where() + ": unknown directive '" + verb +
                   "' (expected 'replica')");
    const std::uint32_t server = tokens.u32("a server index");
    const std::uint32_t site = tokens.u32("a site index");
    const std::string where = tokens.last_where();
    tokens.done();
    CDN_EXPECT(server < servers, where + ": server index " +
                                     std::to_string(server) +
                                     " is out of range (fleet has " +
                                     std::to_string(servers) + " servers)");
    CDN_EXPECT(site < sites, where + ": site index " + std::to_string(site) +
                                 " is out of range (catalogue has " +
                                 std::to_string(sites) + " sites)");
    CDN_EXPECT(!placement.is_replicated(server, site),
               where + ": duplicate replica (" + std::to_string(server) +
                   ", " + std::to_string(site) + ")");
    CDN_EXPECT(placement.can_add(server, site),
               where + ": replica (" + std::to_string(server) + ", " +
                   std::to_string(site) + ") exceeds server " +
                   std::to_string(server) + "'s storage budget");
    placement.add(server, site);
    ++replicas;
  }
  CDN_EXPECT(saw_header,
             kWhat + ": missing 'placement <servers> <sites>' header");
  CDN_EXPECT(replicas > 0,
             kWhat + ": no replicas — an empty placement cannot serve");

  sys::NearestReplicaIndex nearest(system.distances(), placement);
  return PlacementResult{algorithm,
                         std::move(placement),
                         std::move(nearest),
                         std::vector<double>(servers * sites, 0.0),
                         0.0,
                         0.0,
                         {},
                         replicas,
                         true};
}

PlacementResult load_placement_result(const std::string& path,
                                      const sys::CdnSystem& system,
                                      const std::string& algorithm) {
  std::ifstream in(path);
  CDN_EXPECT(in.good(), "cannot open placement file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  CDN_EXPECT(!in.bad(), "I/O error reading placement file: " + path);
  return parse_placement_result(buffer.str(), system, algorithm);
}

}  // namespace cdn::placement
