#include "src/placement/update_aware.h"

#include "src/cdn/cost.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace cdn::placement {

double update_propagation_cost(const sys::CdnSystem& system,
                               const sys::ReplicaPlacement& placement,
                               std::span<const double> update_rates) {
  if (update_rates.empty()) return 0.0;
  CDN_EXPECT(update_rates.size() == system.site_count(),
             "one update rate per site is required");
  double cost = 0.0;
  for (std::size_t j = 0; j < system.site_count(); ++j) {
    if (update_rates[j] == 0.0) continue;
    const auto site = static_cast<sys::SiteIndex>(j);
    for (const auto holder : placement.replicators(site)) {
      cost += update_rates[j] *
              system.distances().server_to_primary(holder, site);
    }
  }
  return cost;
}

PlacementResult update_aware_greedy(const sys::CdnSystem& system,
                                    const UpdateAwareOptions& options) {
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  std::vector<double> rates = options.update_rates;
  if (rates.empty()) rates.assign(m, 0.0);
  CDN_EXPECT(rates.size() == m, "one update rate per site is required");
  for (double r : rates) {
    CDN_EXPECT(r >= 0.0, "update rates must be non-negative");
  }

  sys::ReplicaPlacement placement(system.server_storage(),
                                  system.site_bytes());
  sys::NearestReplicaIndex nearest(system.distances(), placement);
  PlacementResult result{.algorithm = "update-aware-greedy",
                         .placement = std::move(placement),
                         .nearest = std::move(nearest)};
  double current = sys::total_remote_cost(system.demand(), result.nearest);
  result.cost_trajectory.push_back(current);

  struct Candidate {
    double benefit = 0.0;
    sys::ServerIndex server = 0;
    sys::SiteIndex site = 0;
    bool valid = false;
  };
  std::vector<Candidate> best_per_server(n);
  const auto& demand = system.demand();
  const auto& dist = system.distances();

  for (;;) {
    util::parallel_for(0, n, [&](std::size_t i) {
      const auto server = static_cast<sys::ServerIndex>(i);
      Candidate best;
      for (std::size_t j = 0; j < m; ++j) {
        const auto site = static_cast<sys::SiteIndex>(j);
        if (!result.placement.can_add(server, site)) continue;
        // Read benefit (as in greedy-global).
        double b =
            demand.requests(server, site) * result.nearest.cost(server, site);
        for (std::size_t k = 0; k < n; ++k) {
          const auto other = static_cast<sys::ServerIndex>(k);
          if (other == server || result.placement.is_replicated(other, site)) {
            continue;
          }
          const double delta = result.nearest.cost(other, site) -
                               dist.server_to_server(other, server);
          if (delta > 0.0) b += delta * demand.requests(other, site);
        }
        // Update penalty: the new copy must receive every modification.
        b -= rates[j] * dist.server_to_primary(server, site);
        if (!best.valid || b > best.benefit) best = {b, server, site, true};
      }
      best_per_server[i] = best;
    });

    Candidate winner;
    for (const Candidate& c : best_per_server) {
      if (c.valid && (!winner.valid || c.benefit > winner.benefit)) {
        winner = c;
      }
    }
    if (!winner.valid || winner.benefit <= 0.0) break;
    result.placement.add(winner.server, winner.site);
    result.nearest.on_replica_added(winner.server, winner.site);
    result.cost_trajectory.push_back(
        sys::total_remote_cost(demand, result.nearest) +
        update_propagation_cost(system, result.placement, rates));
  }

  result.modeled_hit.assign(n * m, 0.0);
  result.caching_enabled = false;
  result.predicted_total_cost =
      sys::total_remote_cost(demand, result.nearest) +
      update_propagation_cost(system, result.placement, rates);
  result.predicted_cost_per_request =
      result.predicted_total_cost / demand.total();
  result.replicas_created = result.placement.replica_count();
  return result;
}

}  // namespace cdn::placement
