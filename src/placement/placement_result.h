// Common output contract of every placement algorithm.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/cdn/nearest_replica.h"
#include "src/cdn/replication.h"

namespace cdn::placement {

/// Which candidate-evaluation engine a greedy placement algorithm runs.
/// Both engines produce byte-identical placements, cost trajectories and
/// commit orders under the shared tie-break rule (largest benefit, then
/// lowest server index, then lowest site index); they differ only in how
/// much work each iteration performs.
enum class PlacementEngine {
  /// Re-evaluate every feasible (server, site) candidate from scratch on
  /// every iteration — the original Figure-2 code path, kept as the
  /// equivalence oracle and the baseline of bench_placement_scaling.
  kReference,
  /// Lazy max-heap of cached candidate benefits with per-entry staleness
  /// epochs: after a commit only the candidates whose inputs actually
  /// changed are re-evaluated (in parallel batches), everything else keeps
  /// its cached value.  The default.
  kIncremental,
};

/// What an algorithm hands to the simulator and the reporting layer: the
/// replica placement, the consistent nearest-replica index, the modelled
/// cache hit ratios (zero for pure replication), and the predicted cost.
struct PlacementResult {
  std::string algorithm;
  sys::ReplicaPlacement placement;
  sys::NearestReplicaIndex nearest;

  /// Modelled h_j^(i), N x M row-major; already scaled by (1 - lambda_j).
  std::vector<double> modeled_hit;

  /// Predicted aggregate cost D under the model.
  double predicted_total_cost = 0.0;
  /// D / total requests — comparable to the simulator's measured hops.
  double predicted_cost_per_request = 0.0;

  /// D after each replica creation (index 0 = before any replica).
  std::vector<double> cost_trajectory;

  std::size_t replicas_created = 0;

  /// Whether the mechanism runs a proxy cache in the storage left over by
  /// replicas.  Pure replication (the paper's stand-alone baseline) leaves
  /// its slack space unused; every other mechanism caches in it.
  bool caching_enabled = true;

  /// Modelled hit ratio accessor.
  double hit(sys::ServerIndex server, sys::SiteIndex site) const {
    return modeled_hit[static_cast<std::size_t>(server) *
                           placement.site_count() +
                       site];
  }

  /// Bytes available to the server's cache: the storage replicas did not
  /// consume, or 0 when the mechanism does not cache.
  std::uint64_t cache_bytes(sys::ServerIndex server) const {
    return caching_enabled ? placement.free_bytes(server) : 0;
  }
};

}  // namespace cdn::placement
