#include "src/placement/tier_evaluator.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace cdn::placement {

TierEvaluator::TierEvaluator(const sys::CdnSystem& system,
                             const std::vector<model::ServerCacheState>& states,
                             const sys::NearestReplicaIndex& nearest,
                             const model::HitRatioCurve& curve,
                             const model::OccupancyCurve* occupancy,
                             PlacementModel tier)
    : system_(&system),
      states_(&states),
      nearest_(&nearest),
      curve_(&curve),
      occupancy_(occupancy),
      tier_(tier),
      mean_bytes_(system.catalog().mean_object_bytes()),
      tables_(system.server_count()) {
  CDN_EXPECT(tier_ != PlacementModel::kExact,
             "the exact tier has no evaluator; use the engine's exact path");
  if (tier_ == PlacementModel::kChe) {
    CDN_EXPECT(occupancy_ != nullptr, "the Che tier needs an OccupancyCurve");
    for (std::size_t i = 0; i < states.size(); ++i) {
      CDN_EXPECT(states[i].buffer_slots() > 0,
                 "placement-model=che requires every server to start with at "
                 "least one LRU slot (server " +
                     std::to_string(i) +
                     " has none); use exact or closed-form");
    }
  }
}

double TierEvaluator::grid_x(const Table& t, std::size_t point) const {
  return std::exp(t.log_x_lo + t.log_step * static_cast<double>(point));
}

double TierEvaluator::interpolate(const std::vector<double>& values,
                                  const Table& t, double x) const {
  if (x <= t.x_lo) return values.front();
  const double pos = (std::log(x) - t.log_x_lo) / t.log_step;
  if (pos >= static_cast<double>(values.size() - 1)) return values.back();
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[lo + 1] - values[lo]);
}

void TierEvaluator::rebuild(std::size_t server) const {
  Table& t = tables_[server];
  const model::ServerCacheState& state = (*states_)[server];
  const std::size_t m = system_->site_count();
  if (!t.built) {
    t.g.assign(m, 0.0);
    t.phi.assign(kGridPoints, 0.0);
    if (tier_ == PlacementModel::kChe) t.psi.assign(kGridPoints, 0.0);
    t.kappa_new.assign(m, 0.0);
    t.kappa_epoch.assign(m, 0);
    t.built = true;
  }
  t.epoch = state.mutation_epoch();

  const auto pops = state.popularities();
  const auto lambdas = state.site_lambdas();
  const auto repl = state.replicated_flags();
  const auto row = system_->demand().row(
      static_cast<sys::ServerIndex>(server));
  const double w = state.unreplicated_mass();

  t.cacheable = 0;
  for (std::size_t j = 0; j < m; ++j) {
    double g = 0.0;
    if (repl[j] == 0) {
      if (pops[j] > 0.0) ++t.cacheable;
      const double c = nearest_->cost(static_cast<sys::ServerIndex>(server),
                                      static_cast<sys::SiteIndex>(j));
      if (c != 0.0) g = (1.0 - lambdas[j]) * row[j] * c;
    }
    t.g[j] = g;
  }

  double k = 0.0;
  if (tier_ == PlacementModel::kClosedForm) {
    k = state.characteristic_time();
  } else if (w > 0.0) {
    std::vector<double> weights(m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      if (repl[j] == 0) weights[j] = pops[j] / w;
    }
    const model::CheSolveResult solve = model::che_characteristic_time_warm(
        weights, *occupancy_, state.buffer_slots(), t.che_k);
    t.che_iterations += solve.iterations;
    t.che_k = solve.k;
    k = solve.k;
  }
  t.kappa = (w > 0.0 && k > 0.0) ? k / w : 0.0;
  t.degenerate = !(t.kappa > 0.0);
  if (t.degenerate) return;

  t.x_lo = t.kappa * kSpanLo;
  t.log_x_lo = std::log(t.x_lo);
  t.log_step = std::log(kSpanHi / kSpanLo) /
               static_cast<double>(kGridPoints - 1);
  for (std::size_t p = 0; p < kGridPoints; ++p) {
    const double x = grid_x(t, p);
    double phi = 0.0;
    double psi = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      if (t.g[j] != 0.0) phi += t.g[j] * curve_->evaluate_z(pops[j] * x);
      if (tier_ == PlacementModel::kChe && repl[j] == 0 && pops[j] > 0.0) {
        psi += occupancy_->evaluate_z(pops[j] * x);
      }
    }
    t.phi[p] = phi;
    if (tier_ == PlacementModel::kChe) t.psi[p] = psi;
  }
  double a = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    if (t.g[j] != 0.0) a += t.g[j] * curve_->evaluate_z(pops[j] * t.kappa);
  }
  t.a_at_kappa = a;
}

double TierEvaluator::solve_che_candidate(const Table& t, std::size_t server,
                                          std::size_t site) const {
  const model::ServerCacheState& state = (*states_)[server];
  const double pj = state.popularities()[site];
  const std::uint64_t bytes_j = system_->site_bytes()[site];
  if (bytes_j > state.cache_bytes()) return 0.0;
  const auto slots_new = static_cast<std::uint64_t>(
      static_cast<double>(state.cache_bytes() - bytes_j) / mean_bytes_);
  const std::size_t cacheable_new = t.cacheable - (pj > 0.0 ? 1 : 0);
  if (slots_new == 0 || cacheable_new == 0) return 0.0;
  const double limit = occupancy_->objects_per_site() *
                       static_cast<double>(cacheable_new);
  if (static_cast<double>(slots_new) >= limit) {
    // Everything cacheable fits: no eviction pressure, push to the grid's
    // saturated edge (the exact model's z_max regime).
    return grid_x(t, kGridPoints - 1);
  }
  const double target = std::min(static_cast<double>(slots_new), limit);
  // Post-commit fixed point in scale units y = K'/w':
  //   Psi(y) - N(p_j y) = target, strictly increasing in y.
  const auto occupied = [&](double y) {
    const double drop = pj > 0.0 ? occupancy_->evaluate_z(pj * y) : 0.0;
    return interpolate(t.psi, t, y) - drop;
  };
  double lo = t.x_lo;
  double hi = grid_x(t, kGridPoints - 1);
  if (occupied(hi) <= target) return hi;
  if (occupied(lo) >= target) return lo;
  for (int iter = 0; iter < 48 && hi - lo > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (occupied(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double TierEvaluator::candidate_scale(Table& t, std::size_t server,
                                      std::size_t site) const {
  if (t.kappa_epoch[site] == t.epoch) return t.kappa_new[site];
  double scale = 0.0;
  const model::ServerCacheState& state = (*states_)[server];
  if (tier_ == PlacementModel::kClosedForm) {
    const double w_new = std::max(
        0.0, state.unreplicated_mass() - state.popularities()[site]);
    if (w_new > 0.0) {
      const double k_new =
          state.what_if_replicate(static_cast<std::uint32_t>(site))
              .characteristic_time();
      if (k_new > 0.0) scale = k_new / w_new;
    }
  } else {
    scale = solve_che_candidate(t, server, site);
  }
  t.kappa_new[site] = scale;
  t.kappa_epoch[site] = t.epoch;
  return scale;
}

double TierEvaluator::penalty(sys::ServerIndex server,
                              sys::SiteIndex site) const {
  Table& t = tables_[server];
  const model::ServerCacheState& state = (*states_)[server];
  if (!t.built || t.epoch != state.mutation_epoch()) rebuild(server);
  ++t.evaluations;
  if (t.degenerate) return 0.0;
  const std::size_t j = site;
  const double pj = state.popularities()[j];
  const double gj = t.g[j];
  const double now =
      t.a_at_kappa -
      (gj != 0.0 ? gj * curve_->evaluate_z(pj * t.kappa) : 0.0);
  const double scale = candidate_scale(t, server, j);
  double after = 0.0;
  if (scale > 0.0) {
    after = interpolate(t.phi, t, scale) -
            (gj != 0.0 ? gj * curve_->evaluate_z(pj * scale) : 0.0);
  }
  return now - after;
}

void TierEvaluator::on_cost_changed(sys::ServerIndex server,
                                    sys::SiteIndex site) {
  Table& t = tables_[server];
  const model::ServerCacheState& state = (*states_)[server];
  // A stale table re-reads the fresh costs at its next rebuild anyway.
  if (!t.built || t.epoch != state.mutation_epoch()) return;
  const std::size_t j = site;
  double g = 0.0;
  if (state.replicated_flags()[j] == 0) {
    const double c = nearest_->cost(server, site);
    if (c != 0.0) {
      g = (1.0 - state.site_lambdas()[j]) *
          system_->demand().row(server)[j] * c;
    }
  }
  const double dg = g - t.g[j];
  if (dg == 0.0) return;
  t.g[j] = g;
  if (t.degenerate) return;
  const double pj = state.popularities()[j];
  for (std::size_t p = 0; p < kGridPoints; ++p) {
    t.phi[p] += dg * curve_->evaluate_z(pj * grid_x(t, p));
  }
  t.a_at_kappa += dg * curve_->evaluate_z(pj * t.kappa);
  // kappa'_j memo entries stay valid: costs never enter the scale solves.
}

std::uint64_t TierEvaluator::evaluations() const noexcept {
  std::uint64_t total = 0;
  for (const Table& t : tables_) total += t.evaluations;
  return total;
}

std::uint64_t TierEvaluator::che_iterations() const noexcept {
  std::uint64_t total = 0;
  for (const Table& t : tables_) total += t.che_iterations;
  return total;
}

void RelativeColumns::build(const sys::CdnSystem& system,
                            const sys::ReplicaPlacement& placement,
                            const sys::NearestReplicaIndex& nearest,
                            const std::vector<double>& miss_flow) {
  n = system.server_count();
  m = system.site_count();
  cost.assign(m * n, 0.0);
  flow.assign(m * n, 0.0);
  repl.assign(m * n, 0);
  dist_to.assign(n * n, 0.0);
  const auto& dist = system.distances();
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      const auto server = static_cast<sys::ServerIndex>(k);
      const auto site = static_cast<sys::SiteIndex>(j);
      cost[j * n + k] = nearest.cost(server, site);
      flow[j * n + k] = miss_flow[k * m + j];
      repl[j * n + k] = placement.is_replicated(server, site) ? 1 : 0;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      dist_to[i * n + k] = dist.server_to_server(
          static_cast<sys::ServerIndex>(k), static_cast<sys::ServerIndex>(i));
    }
  }
}

void RelativeColumns::on_commit(
    const sys::NearestReplicaIndex& nearest,
    const std::vector<double>& miss_flow, sys::ServerIndex server,
    sys::SiteIndex site, const std::vector<sys::ServerIndex>& changed_servers) {
  const std::size_t js = site;
  const std::size_t ws = server;
  for (const sys::ServerIndex k : changed_servers) {
    cost[js * n + k] = nearest.cost(k, site);
  }
  cost[js * n + ws] = nearest.cost(server, site);
  repl[js * n + ws] = 1;
  for (std::size_t j = 0; j < m; ++j) {
    flow[j * n + ws] = miss_flow[ws * m + j];
  }
}

double RelativeColumns::relative_gain(sys::ServerIndex server,
                                      sys::SiteIndex site) const {
  const double* const c = &cost[static_cast<std::size_t>(site) * n];
  const double* const f = &flow[static_cast<std::size_t>(site) * n];
  const std::uint8_t* const r = &repl[static_cast<std::size_t>(site) * n];
  const double* const d = &dist_to[static_cast<std::size_t>(server) * n];
  const std::size_t self = server;
  double gain = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    if (k == self || r[k] != 0) continue;
    const double delta = c[k] - d[k];
    if (delta > 0.0) gain += delta * f[k];
  }
  return gain;
}

}  // namespace cdn::placement
