#include "src/placement/local_search.h"

#include <algorithm>
#include <numeric>

#include "src/cdn/cost.h"
#include "src/obs/scoped_timer.h"
#include "src/placement/greedy_global.h"
#include "src/util/error.h"

namespace cdn::placement {

namespace {

double replication_cost(const sys::CdnSystem& system,
                        const sys::ReplicaPlacement& placement) {
  sys::NearestReplicaIndex nearest(system.distances(), placement);
  return sys::total_remote_cost(system.demand(), nearest);
}

/// Computes column `site` of the redirection-cost matrix from the
/// placement's holder list into out[0], out[stride], ... — the same scan
/// NearestReplicaIndex::rebuild runs for one column, so the values are
/// identical doubles (pure selection, no arithmetic).  Pass stride = M with
/// out = &costs[site] to refresh a matrix column in place, stride = 1 for a
/// dense scratch column.
void compute_cost_column(const sys::CdnSystem& system,
                         const sys::ReplicaPlacement& placement,
                         sys::SiteIndex site, double* out,
                         std::size_t stride) {
  const std::size_t n = system.server_count();
  const auto& dist = system.distances();
  const auto holders = placement.replicators(site);
  for (std::size_t i = 0; i < n; ++i) {
    const auto server = static_cast<sys::ServerIndex>(i);
    double best = dist.server_to_primary(server, site);
    for (const sys::ServerIndex holder : holders) {
      const double c = dist.server_to_server(server, holder);
      if (c < best) best = c;
    }
    out[i * stride] = best;
  }
}

/// The incremental engine behind LocalSearchOptions::engine == kIncremental.
///
/// The reference evaluates each trial swap by building a fresh
/// NearestReplicaIndex and summing the remote cost — O(N*M*holders) setup
/// per trial.  But a swap only changes two site columns of the redirection
/// costs: removing (i, j) touches column j, adding (i', j') touches column
/// j'.  This engine maintains the exact cost matrix, derives the trial's two
/// columns on the fly (a column recompute for the removal, a min() against
/// the inserted holder for the addition), and accumulates the total in the
/// same row-major order with the same `c == 0` skip as total_remote_cost —
/// every cell value and the accumulation order are identical, so the trial
/// costs, the chosen swaps and the stop decision are bit-identical.
LocalSearchStats local_search_refine_incremental(
    const sys::CdnSystem& system, PlacementResult& result,
    const LocalSearchOptions& options) {
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  const auto& demand = system.demand();
  const auto& dist = system.distances();

  obs::Registry* const metrics = options.metrics;
  const std::string& pfx = options.metrics_prefix;
  obs::TimerStat* const t_total =
      metrics ? &metrics->timer(pfx + "phase/total") : nullptr;
  obs::Table* const swap_log =
      metrics ? &metrics->table(pfx + "swaps",
                                {"swap", "out_server", "out_site",
                                 "in_server", "in_site", "cost_before",
                                 "cost_after"})
              : nullptr;
  obs::SpanTracer* const spans = options.spans;
  const char* sp_total =
      spans != nullptr ? spans->intern(pfx + "total") : nullptr;
  obs::ScopedTimer total_timer(t_total);
  obs::ScopedSpan total_span(spans, sp_total, "placement");

  std::vector<double> costs(n * m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    compute_cost_column(system, result.placement,
                        static_cast<sys::SiteIndex>(j), &costs[j], m);
  }
  auto matrix_cost = [&] {
    // Mirrors total_remote_cost with no hit function: (1 - 0) * r * c
    // collapses to r * c exactly, in the same row-major order.
    double d = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        const double c = costs[i * m + j];
        if (c == 0.0) continue;  // replicated locally
        d += demand.requests(static_cast<sys::ServerIndex>(i),
                             static_cast<sys::SiteIndex>(j)) *
             c;
      }
    }
    return d;
  };

  LocalSearchStats stats;
  stats.initial_cost = matrix_cost();
  double current = stats.initial_cost;

  std::vector<double> removed_col(n, 0.0);
  for (;;) {
    if (options.max_swaps != 0 && stats.swaps_applied >= options.max_swaps) {
      break;
    }
    double best_cost = current;
    sys::ServerIndex best_out_server = 0, best_in_server = 0;
    sys::SiteIndex best_out_site = 0, best_in_site = 0;
    bool found = false;

    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        const auto out_server = static_cast<sys::ServerIndex>(i);
        const auto out_site = static_cast<sys::SiteIndex>(j);
        if (!result.placement.is_replicated(out_server, out_site)) continue;
        result.placement.remove(out_server, out_site);
        compute_cost_column(system, result.placement, out_site,
                            removed_col.data(), 1);

        for (std::size_t i2 = 0; i2 < n; ++i2) {
          for (std::size_t j2 = 0; j2 < m; ++j2) {
            const auto in_server = static_cast<sys::ServerIndex>(i2);
            const auto in_site = static_cast<sys::SiteIndex>(j2);
            if (in_server == out_server && in_site == out_site) continue;
            if (!result.placement.can_add(in_server, in_site)) continue;
            double cost = 0.0;
            for (std::size_t k = 0; k < n; ++k) {
              const auto row = static_cast<sys::ServerIndex>(k);
              for (std::size_t jj = 0; jj < m; ++jj) {
                double c;
                if (jj == j2) {
                  const double base =
                      jj == j ? removed_col[k] : costs[k * m + jj];
                  const double added = dist.server_to_server(row, in_server);
                  c = added < base ? added : base;
                } else if (jj == j) {
                  c = removed_col[k];
                } else {
                  c = costs[k * m + jj];
                }
                if (c == 0.0) continue;
                cost += demand.requests(row,
                                        static_cast<sys::SiteIndex>(jj)) *
                        c;
              }
            }
            if (cost < best_cost) {
              best_cost = cost;
              best_out_server = out_server;
              best_out_site = out_site;
              best_in_server = in_server;
              best_in_site = in_site;
              found = true;
            }
          }
        }
        result.placement.add(out_server, out_site);
      }
    }

    if (!found ||
        current - best_cost <= options.min_relative_gain * current) {
      break;
    }
    result.placement.remove(best_out_server, best_out_site);
    result.placement.add(best_in_server, best_in_site);
    compute_cost_column(system, result.placement, best_out_site,
                        &costs[best_out_site], m);
    compute_cost_column(system, result.placement, best_in_site,
                        &costs[best_in_site], m);
    if (swap_log != nullptr) {
      swap_log->add_row({static_cast<double>(stats.swaps_applied),
                         static_cast<double>(best_out_server),
                         static_cast<double>(best_out_site),
                         static_cast<double>(best_in_server),
                         static_cast<double>(best_in_site), current,
                         best_cost});
    }
    current = best_cost;
    ++stats.swaps_applied;
  }

  result.nearest.rebuild(result.placement);
  result.predicted_total_cost = current;
  result.predicted_cost_per_request = current / system.demand().total();
  result.replicas_created = result.placement.replica_count();
  result.cost_trajectory.push_back(current);
  stats.final_cost = current;

  if (metrics != nullptr) {
    metrics->gauge(pfx + "swaps_applied")
        .set(static_cast<double>(stats.swaps_applied));
    metrics->gauge(pfx + "initial_cost").set(stats.initial_cost);
    metrics->gauge(pfx + "final_cost").set(stats.final_cost);
  }
  return stats;
}

LocalSearchStats local_search_refine_reference(
    const sys::CdnSystem& system, PlacementResult& result,
    const LocalSearchOptions& options) {
  CDN_EXPECT(options.min_relative_gain >= 0.0,
             "minimum gain must be non-negative");
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();

  obs::Registry* const metrics = options.metrics;
  const std::string& pfx = options.metrics_prefix;
  obs::TimerStat* const t_total =
      metrics ? &metrics->timer(pfx + "phase/total") : nullptr;
  obs::Table* const swap_log =
      metrics ? &metrics->table(pfx + "swaps",
                                {"swap", "out_server", "out_site",
                                 "in_server", "in_site", "cost_before",
                                 "cost_after"})
              : nullptr;
  obs::SpanTracer* const spans = options.spans;
  const char* sp_total =
      spans != nullptr ? spans->intern(pfx + "total") : nullptr;
  obs::ScopedTimer total_timer(t_total);
  obs::ScopedSpan total_span(spans, sp_total, "placement");

  LocalSearchStats stats;
  stats.initial_cost = replication_cost(system, result.placement);
  double current = stats.initial_cost;

  for (;;) {
    if (options.max_swaps != 0 && stats.swaps_applied >= options.max_swaps) {
      break;
    }
    // Best single swap: remove (i, j), insert (i', j') that then fits.
    double best_cost = current;
    sys::ServerIndex best_out_server = 0, best_in_server = 0;
    sys::SiteIndex best_out_site = 0, best_in_site = 0;
    bool found = false;

    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        const auto out_server = static_cast<sys::ServerIndex>(i);
        const auto out_site = static_cast<sys::SiteIndex>(j);
        if (!result.placement.is_replicated(out_server, out_site)) continue;
        result.placement.remove(out_server, out_site);

        for (std::size_t i2 = 0; i2 < n; ++i2) {
          for (std::size_t j2 = 0; j2 < m; ++j2) {
            const auto in_server = static_cast<sys::ServerIndex>(i2);
            const auto in_site = static_cast<sys::SiteIndex>(j2);
            if (in_server == out_server && in_site == out_site) continue;
            if (!result.placement.can_add(in_server, in_site)) continue;
            result.placement.add(in_server, in_site);
            const double cost = replication_cost(system, result.placement);
            if (cost < best_cost) {
              best_cost = cost;
              best_out_server = out_server;
              best_out_site = out_site;
              best_in_server = in_server;
              best_in_site = in_site;
              found = true;
            }
            result.placement.remove(in_server, in_site);
          }
        }
        result.placement.add(out_server, out_site);
      }
    }

    if (!found ||
        current - best_cost <= options.min_relative_gain * current) {
      break;
    }
    result.placement.remove(best_out_server, best_out_site);
    result.placement.add(best_in_server, best_in_site);
    if (swap_log != nullptr) {
      swap_log->add_row({static_cast<double>(stats.swaps_applied),
                         static_cast<double>(best_out_server),
                         static_cast<double>(best_out_site),
                         static_cast<double>(best_in_server),
                         static_cast<double>(best_in_site), current,
                         best_cost});
    }
    current = best_cost;
    ++stats.swaps_applied;
  }

  // Re-derive the dependent fields of the result.
  result.nearest.rebuild(result.placement);
  result.predicted_total_cost = current;
  result.predicted_cost_per_request = current / system.demand().total();
  result.replicas_created = result.placement.replica_count();
  result.cost_trajectory.push_back(current);
  stats.final_cost = current;

  if (metrics != nullptr) {
    metrics->gauge(pfx + "swaps_applied")
        .set(static_cast<double>(stats.swaps_applied));
    metrics->gauge(pfx + "initial_cost").set(stats.initial_cost);
    metrics->gauge(pfx + "final_cost").set(stats.final_cost);
  }
  return stats;
}

}  // namespace

LocalSearchStats local_search_refine(const sys::CdnSystem& system,
                                     PlacementResult& result,
                                     const LocalSearchOptions& options) {
  CDN_EXPECT(options.min_relative_gain >= 0.0,
             "minimum gain must be non-negative");
  if (options.engine == PlacementEngine::kReference) {
    return local_search_refine_reference(system, result, options);
  }
  return local_search_refine_incremental(system, result, options);
}

PlacementResult greedy_with_backtracking(const sys::CdnSystem& system,
                                         const LocalSearchOptions& options) {
  PlacementResult result = greedy_global(system);
  local_search_refine(system, result, options);
  result.algorithm = "greedy-backtracking";
  return result;
}

PlacementResult topology_informed_placement(const sys::CdnSystem& system) {
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();

  // Rank servers by total distance to all other servers (proxy for the
  // "highest-connectivity nodes first" rule of [25]).
  std::vector<sys::ServerIndex> server_order(n);
  std::iota(server_order.begin(), server_order.end(), 0);
  std::vector<double> centrality(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      centrality[i] += system.distances().server_to_server(
          static_cast<sys::ServerIndex>(i), static_cast<sys::ServerIndex>(k));
    }
  }
  std::sort(server_order.begin(), server_order.end(),
            [&](sys::ServerIndex a, sys::ServerIndex b) {
              return centrality[a] < centrality[b];
            });

  std::vector<sys::SiteIndex> site_order(m);
  std::iota(site_order.begin(), site_order.end(), 0);
  std::sort(site_order.begin(), site_order.end(),
            [&](sys::SiteIndex a, sys::SiteIndex b) {
              return system.demand().site_total(a) >
                     system.demand().site_total(b);
            });

  sys::ReplicaPlacement placement(system.server_storage(),
                                  system.site_bytes());
  // Round-robin the hottest sites over the most central servers.
  std::size_t server_cursor = 0;
  for (sys::SiteIndex site : site_order) {
    std::size_t attempts = 0;
    while (attempts < n) {
      const sys::ServerIndex server = server_order[server_cursor];
      server_cursor = (server_cursor + 1) % n;
      ++attempts;
      if (placement.can_add(server, site)) {
        placement.add(server, site);
        break;
      }
    }
  }

  sys::NearestReplicaIndex nearest(system.distances(), placement);
  PlacementResult result{.algorithm = "topology-informed",
                         .placement = std::move(placement),
                         .nearest = std::move(nearest)};
  result.modeled_hit.assign(n * m, 0.0);
  result.caching_enabled = false;
  result.predicted_total_cost =
      sys::total_remote_cost(system.demand(), result.nearest);
  result.predicted_cost_per_request =
      result.predicted_total_cost / system.demand().total();
  result.replicas_created = result.placement.replica_count();
  result.cost_trajectory.push_back(result.predicted_total_cost);
  return result;
}

}  // namespace cdn::placement
