// Read + update cost replica placement — the classic FAP objective.
//
// Section 2.2: several of the formulations the paper builds on ([19, 28],
// also [2]) minimise read AND update cost: every object modification at the
// primary must be propagated to each replica, so replicas are not free even
// when storage is.  This module extends greedy-global with that term:
//
//   benefit(i, j) = read_benefit(i, j) - update_rate_j * C(i, SP_j)
//
// (each update travels primary -> new replica).  With update_rate = 0 it
// degenerates to greedy_global exactly.

#pragma once

#include <span>
#include <vector>

#include "src/cdn/system.h"
#include "src/placement/placement_result.h"

namespace cdn::placement {

struct UpdateAwareOptions {
  /// Expected update (write) volume per site over the same period as the
  /// demand matrix's read counts.  Length must equal the site count; an
  /// empty span means all-zero (pure reads).
  std::vector<double> update_rates;
};

/// Greedy-global under the read+update objective.  The returned
/// predicted_total_cost includes the update-propagation term
/// sum_j update_rate_j * sum_{i: X_ij} C(i, SP_j).
PlacementResult update_aware_greedy(const sys::CdnSystem& system,
                                    const UpdateAwareOptions& options);

/// The update-propagation cost of a placement under the given rates.
double update_propagation_cost(const sys::CdnSystem& system,
                               const sys::ReplicaPlacement& placement,
                               std::span<const double> update_rates);

}  // namespace cdn::placement
