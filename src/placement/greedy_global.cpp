#include "src/placement/greedy_global.h"

#include <algorithm>
#include <chrono>

#include "src/cdn/cost.h"
#include "src/obs/scoped_timer.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace cdn::placement {

namespace {

struct Candidate {
  double benefit = 0.0;
  sys::ServerIndex server = 0;
  sys::SiteIndex site = 0;
  bool valid = false;
  std::uint64_t evaluated = 0;  // candidates this server considered
};

/// Benefit of replicating `site` at `server` under pure replication.
/// Reads only column `site` of the nearest index and the placement, which
/// is what lets the incremental engine invalidate one column per commit.
double replication_benefit(const sys::CdnSystem& system,
                           const sys::ReplicaPlacement& placement,
                           const sys::NearestReplicaIndex& nearest,
                           sys::ServerIndex server, sys::SiteIndex site) {
  const auto& demand = system.demand();
  const auto& dist = system.distances();
  double b = demand.requests(server, site) * nearest.cost(server, site);
  for (std::size_t k = 0; k < system.server_count(); ++k) {
    const auto other = static_cast<sys::ServerIndex>(k);
    if (other == server || placement.is_replicated(other, site)) continue;
    const double delta =
        nearest.cost(other, site) - dist.server_to_server(other, server);
    if (delta > 0.0) {
      b += delta * demand.requests(other, site);
    }
  }
  return b;
}

void finalize_replication_result(const sys::CdnSystem& system,
                                 PlacementResult& result) {
  result.modeled_hit.assign(
      system.server_count() * system.site_count(), 0.0);
  result.caching_enabled = false;  // stand-alone replication: no proxy cache
  result.predicted_total_cost = result.cost_trajectory.back();
  result.predicted_cost_per_request =
      result.predicted_total_cost / system.demand().total();
  result.replicas_created = result.placement.replica_count();
}

PlacementResult greedy_global_reference(
    const sys::CdnSystem& system,
    const std::vector<std::uint64_t>& replica_budgets,
    const GreedyGlobalOptions& options) {
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();

  sys::ReplicaPlacement placement(replica_budgets, system.site_bytes());
  sys::NearestReplicaIndex nearest(system.distances(), placement);

  obs::Registry* const metrics = options.metrics;
  const std::string& pfx = options.metrics_prefix;
  obs::TimerStat* const t_total =
      metrics ? &metrics->timer(pfx + "phase/total") : nullptr;
  obs::TimerStat* const t_eval =
      metrics ? &metrics->timer(pfx + "phase/eval") : nullptr;
  obs::Table* const iteration_log =
      metrics ? &metrics->table(pfx + "iterations",
                                {"iteration", "server", "site", "candidates",
                                 "benefit", "bytes_committed", "cost_after",
                                 "eval_ms"})
              : nullptr;
  obs::SpanTracer* const spans = options.spans;
  const char* sp_total = nullptr;
  const char* sp_iter = nullptr;
  if (spans != nullptr) {
    sp_total = spans->intern(pfx + "total");
    sp_iter = spans->intern(pfx + "iteration");
  }
  obs::ScopedTimer total_timer(t_total);
  obs::ScopedSpan total_span(spans, sp_total, "placement");

  PlacementResult result{.algorithm = "greedy-global",
                         .placement = std::move(placement),
                         .nearest = std::move(nearest)};
  result.cost_trajectory.push_back(
      sys::total_remote_cost(system.demand(), result.nearest));

  std::vector<Candidate> best_per_server(n);
  std::uint64_t total_candidates = 0;
  std::size_t iteration = 0;
  for (;;) {
    if (options.max_replicas != 0 &&
        result.placement.replica_count() >= options.max_replicas) {
      break;
    }
    obs::ScopedSpan iter_span(spans, sp_iter, "placement");
    iter_span.arg("iteration", static_cast<double>(iteration));
    std::chrono::steady_clock::time_point eval_start;
    if (t_eval != nullptr) eval_start = std::chrono::steady_clock::now();
    util::parallel_for(0, n, [&](std::size_t i) {
      const auto server = static_cast<sys::ServerIndex>(i);
      Candidate best;
      std::uint64_t evaluated = 0;
      for (std::size_t j = 0; j < m; ++j) {
        const auto site = static_cast<sys::SiteIndex>(j);
        if (!result.placement.can_add(server, site)) continue;
        ++evaluated;
        const double b = replication_benefit(system, result.placement,
                                             result.nearest, server, site);
        if (!best.valid || b > best.benefit) {
          best = {b, server, site, true, 0};
        }
      }
      best.evaluated = evaluated;
      best_per_server[i] = best;
    });
    double eval_ms = 0.0;
    if (t_eval != nullptr) {
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - eval_start)
              .count());
      t_eval->record_ns(ns);
      eval_ms = static_cast<double>(ns) * 1e-6;
    }
    Candidate winner;
    std::uint64_t iteration_candidates = 0;
    for (const Candidate& c : best_per_server) {
      iteration_candidates += c.evaluated;
      if (c.valid && (!winner.valid || c.benefit > winner.benefit)) {
        winner = c;
      }
    }
    total_candidates += iteration_candidates;
    if (!winner.valid || winner.benefit <= 0.0) break;
    result.placement.add(winner.server, winner.site);
    result.nearest.on_replica_added(winner.server, winner.site);
    result.cost_trajectory.push_back(
        sys::total_remote_cost(system.demand(), result.nearest));
    if (iteration_log != nullptr) {
      iteration_log->add_row(
          {static_cast<double>(iteration),
           static_cast<double>(winner.server),
           static_cast<double>(winner.site),
           static_cast<double>(iteration_candidates), winner.benefit,
           static_cast<double>(system.site_bytes()[winner.site]),
           result.cost_trajectory.back(), eval_ms});
    }
    ++iteration;
  }

  finalize_replication_result(system, result);

  if (metrics != nullptr) {
    metrics->counter(pfx + "candidates_evaluated").add(total_candidates);
    metrics->gauge(pfx + "replicas_created")
        .set(static_cast<double>(result.replicas_created));
    metrics->gauge(pfx + "predicted_cost_per_request")
        .set(result.predicted_cost_per_request);
    obs::Series& cost = metrics->series(pfx + "cost");
    for (const double c : result.cost_trajectory) cost.push(c);
  }
  return result;
}

struct HeapEntry {
  double benefit = 0.0;
  sys::ServerIndex server = 0;
  sys::SiteIndex site = 0;
  std::uint32_t version = 0;
};

// Max element = highest benefit, ties by lowest server then lowest site —
// the order the reference's two-stage scan induces.
struct WorseThan {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.benefit != b.benefit) return a.benefit < b.benefit;
    if (a.server != b.server) return a.server > b.server;
    return a.site > b.site;
  }
};

// Lazy-heap engine.  replication_benefit(i, j) reads only column j of the
// nearest index and the placement, so a commit of (i*, j*) invalidates
// exactly column j* (N re-evaluations) plus the feasibility of row i*
// (budget shrank; benefit values there are untouched, the entries just die
// when the candidate stops fitting).  Cached benefits come from the same
// function on the same inputs, so results are byte-identical.
PlacementResult greedy_global_incremental(
    const sys::CdnSystem& system,
    const std::vector<std::uint64_t>& replica_budgets,
    const GreedyGlobalOptions& options) {
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();

  sys::ReplicaPlacement placement(replica_budgets, system.site_bytes());
  sys::NearestReplicaIndex nearest(system.distances(), placement);

  obs::Registry* const metrics = options.metrics;
  const std::string& pfx = options.metrics_prefix;
  obs::TimerStat* const t_total =
      metrics ? &metrics->timer(pfx + "phase/total") : nullptr;
  obs::TimerStat* const t_eval =
      metrics ? &metrics->timer(pfx + "phase/eval") : nullptr;
  obs::Table* const iteration_log =
      metrics ? &metrics->table(pfx + "iterations",
                                {"iteration", "server", "site", "candidates",
                                 "benefit", "bytes_committed", "cost_after",
                                 "eval_ms"})
              : nullptr;
  obs::Series* const inval_series =
      metrics ? &metrics->series(pfx + "heap/invalidated_per_commit")
              : nullptr;
  obs::SpanTracer* const spans = options.spans;
  const char* sp_total = nullptr;
  const char* sp_iter = nullptr;
  const char* sp_inval = nullptr;
  if (spans != nullptr) {
    sp_total = spans->intern(pfx + "total");
    sp_iter = spans->intern(pfx + "iteration");
    sp_inval = spans->intern(pfx + "heap/invalidate");
  }
  obs::ScopedTimer total_timer(t_total);
  obs::ScopedSpan total_span(spans, sp_total, "placement");

  PlacementResult result{.algorithm = "greedy-global",
                         .placement = std::move(placement),
                         .nearest = std::move(nearest)};
  result.cost_trajectory.push_back(
      sys::total_remote_cost(system.demand(), result.nearest));

  std::vector<double> val(n * m, 0.0);
  std::vector<std::uint32_t> version(n * m, 1);
  std::vector<std::uint8_t> dead(n * m, 0);
  std::vector<std::uint8_t> alive_scratch(n * m, 0);
  std::vector<HeapEntry> heap;
  const WorseThan worse{};
  const std::size_t compact_threshold = 2 * n * m + 1024;

  std::chrono::steady_clock::time_point eval_start;
  if (t_eval != nullptr) eval_start = std::chrono::steady_clock::now();
  util::parallel_for(0, n, [&](std::size_t i) {
    const auto server = static_cast<sys::ServerIndex>(i);
    for (std::size_t j = 0; j < m; ++j) {
      const auto site = static_cast<sys::SiteIndex>(j);
      if (!result.placement.can_add(server, site)) {
        alive_scratch[i * m + j] = 0;
        continue;
      }
      alive_scratch[i * m + j] = 1;
      val[i * m + j] = replication_benefit(system, result.placement,
                                           result.nearest, server, site);
    }
  });
  std::uint64_t pending_candidates = 0;
  heap.reserve(n * m);
  for (std::size_t idx = 0; idx < n * m; ++idx) {
    if (!alive_scratch[idx]) {
      dead[idx] = 1;
      continue;
    }
    ++pending_candidates;
    heap.push_back({val[idx], static_cast<sys::ServerIndex>(idx / m),
                    static_cast<sys::SiteIndex>(idx % m), version[idx]});
  }
  std::make_heap(heap.begin(), heap.end(), worse);
  double pending_eval_ms = 0.0;
  if (t_eval != nullptr) {
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - eval_start)
            .count());
    t_eval->record_ns(ns);
    pending_eval_ms = static_cast<double>(ns) * 1e-6;
  }

  std::uint64_t total_candidates = pending_candidates;
  std::uint64_t reevaluations = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t stale_discarded = 0;
  std::size_t peak_heap = heap.size();
  std::size_t iteration = 0;

  for (;;) {
    if (options.max_replicas != 0 &&
        result.placement.replica_count() >= options.max_replicas) {
      break;
    }
    obs::ScopedSpan iter_span(spans, sp_iter, "placement");
    iter_span.arg("iteration", static_cast<double>(iteration));
    while (!heap.empty()) {
      const HeapEntry& top = heap.front();
      const std::size_t idx =
          static_cast<std::size_t>(top.server) * m + top.site;
      if (top.version != version[idx]) {
        std::pop_heap(heap.begin(), heap.end(), worse);
        heap.pop_back();
        ++stale_discarded;
        continue;
      }
      break;
    }
    if (heap.empty()) break;
    const HeapEntry winner = heap.front();
    if (winner.benefit <= 0.0) break;
    std::pop_heap(heap.begin(), heap.end(), worse);
    heap.pop_back();
    const auto ws = winner.server;
    const auto js = winner.site;

    result.placement.add(ws, js);
    result.nearest.on_replica_added(ws, js);
    result.cost_trajectory.push_back(
        sys::total_remote_cost(system.demand(), result.nearest));
    if (iteration_log != nullptr) {
      iteration_log->add_row(
          {static_cast<double>(iteration), static_cast<double>(ws),
           static_cast<double>(js), static_cast<double>(pending_candidates),
           winner.benefit, static_cast<double>(system.site_bytes()[js]),
           result.cost_trajectory.back(), pending_eval_ms});
    }
    ++iteration;

    // Row ws: the budget shrank, so candidates there can die — their benefit
    // inputs are untouched, only feasibility is checked.
    std::uint64_t invalidated = 0;
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t idx = static_cast<std::size_t>(ws) * m + j;
      if (dead[idx] != 0) continue;
      if (!result.placement.can_add(ws, static_cast<sys::SiteIndex>(j))) {
        dead[idx] = 1;
        ++version[idx];
        ++invalidated;
      }
    }
    // Column js: every candidate's benefit referenced the old nearest
    // column / placement cell; re-evaluate them all.
    if (t_eval != nullptr) eval_start = std::chrono::steady_clock::now();
    std::uint64_t batch_alive = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = i * m + js;
      if (dead[idx] != 0) continue;
      const auto server = static_cast<sys::ServerIndex>(i);
      ++version[idx];
      ++invalidated;
      if (!result.placement.can_add(server, js)) {
        dead[idx] = 1;
        continue;
      }
      val[idx] = replication_benefit(system, result.placement, result.nearest,
                                     server, js);
      ++batch_alive;
      heap.push_back({val[idx], server, js, version[idx]});
      std::push_heap(heap.begin(), heap.end(), worse);
    }
    invalidations += invalidated;
    if (inval_series != nullptr) {
      inval_series->push(static_cast<double>(invalidated));
    }
    if (spans != nullptr) {
      spans->instant(sp_inval, "placement", "invalidated",
                     static_cast<double>(invalidated));
    }
    pending_candidates = batch_alive;
    reevaluations += batch_alive;
    total_candidates += batch_alive;
    if (t_eval != nullptr) {
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - eval_start)
              .count());
      t_eval->record_ns(ns);
      pending_eval_ms = static_cast<double>(ns) * 1e-6;
    }
    peak_heap = std::max(peak_heap, heap.size());

    if (heap.size() > compact_threshold) {
      std::erase_if(heap, [&](const HeapEntry& e) {
        return e.version !=
               version[static_cast<std::size_t>(e.server) * m + e.site];
      });
      std::make_heap(heap.begin(), heap.end(), worse);
    }
  }

  finalize_replication_result(system, result);

  if (metrics != nullptr) {
    metrics->counter(pfx + "candidates_evaluated").add(total_candidates);
    metrics->counter(pfx + "heap/reevaluations").add(reevaluations);
    metrics->counter(pfx + "heap/invalidations").add(invalidations);
    metrics->counter(pfx + "heap/stale_discarded").add(stale_discarded);
    metrics->gauge(pfx + "heap/peak_size")
        .set(static_cast<double>(peak_heap));
    metrics->gauge(pfx + "replicas_created")
        .set(static_cast<double>(result.replicas_created));
    metrics->gauge(pfx + "predicted_cost_per_request")
        .set(result.predicted_cost_per_request);
    obs::Series& cost = metrics->series(pfx + "cost");
    for (const double c : result.cost_trajectory) cost.push(c);
  }
  return result;
}

}  // namespace

PlacementResult greedy_global_with_budgets(
    const sys::CdnSystem& system,
    const std::vector<std::uint64_t>& replica_budgets,
    const GreedyGlobalOptions& options) {
  CDN_EXPECT(replica_budgets.size() == system.server_count(),
             "one replica budget per server is required");
  if (options.engine == PlacementEngine::kReference) {
    return greedy_global_reference(system, replica_budgets, options);
  }
  return greedy_global_incremental(system, replica_budgets, options);
}

PlacementResult greedy_global(const sys::CdnSystem& system,
                              const GreedyGlobalOptions& options) {
  return greedy_global_with_budgets(system, system.server_storage(), options);
}

}  // namespace cdn::placement
