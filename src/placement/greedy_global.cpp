#include "src/placement/greedy_global.h"

#include <algorithm>
#include <chrono>

#include "src/cdn/cost.h"
#include "src/obs/scoped_timer.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace cdn::placement {

namespace {

struct Candidate {
  double benefit = 0.0;
  sys::ServerIndex server = 0;
  sys::SiteIndex site = 0;
  bool valid = false;
  std::uint64_t evaluated = 0;  // candidates this server considered
};

/// Benefit of replicating `site` at `server` under pure replication.
double replication_benefit(const sys::CdnSystem& system,
                           const sys::ReplicaPlacement& placement,
                           const sys::NearestReplicaIndex& nearest,
                           sys::ServerIndex server, sys::SiteIndex site) {
  const auto& demand = system.demand();
  const auto& dist = system.distances();
  double b = demand.requests(server, site) * nearest.cost(server, site);
  for (std::size_t k = 0; k < system.server_count(); ++k) {
    const auto other = static_cast<sys::ServerIndex>(k);
    if (other == server || placement.is_replicated(other, site)) continue;
    const double delta =
        nearest.cost(other, site) - dist.server_to_server(other, server);
    if (delta > 0.0) {
      b += delta * demand.requests(other, site);
    }
  }
  return b;
}

}  // namespace

PlacementResult greedy_global_with_budgets(
    const sys::CdnSystem& system,
    const std::vector<std::uint64_t>& replica_budgets,
    const GreedyGlobalOptions& options) {
  CDN_EXPECT(replica_budgets.size() == system.server_count(),
             "one replica budget per server is required");
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();

  sys::ReplicaPlacement placement(replica_budgets, system.site_bytes());
  sys::NearestReplicaIndex nearest(system.distances(), placement);

  obs::Registry* const metrics = options.metrics;
  const std::string& pfx = options.metrics_prefix;
  obs::TimerStat* const t_total =
      metrics ? &metrics->timer(pfx + "phase/total") : nullptr;
  obs::TimerStat* const t_eval =
      metrics ? &metrics->timer(pfx + "phase/eval") : nullptr;
  obs::Table* const iteration_log =
      metrics ? &metrics->table(pfx + "iterations",
                                {"iteration", "server", "site", "candidates",
                                 "benefit", "bytes_committed", "cost_after",
                                 "eval_ms"})
              : nullptr;
  obs::ScopedTimer total_timer(t_total);

  PlacementResult result{.algorithm = "greedy-global",
                         .placement = std::move(placement),
                         .nearest = std::move(nearest)};
  result.cost_trajectory.push_back(
      sys::total_remote_cost(system.demand(), result.nearest));

  std::vector<Candidate> best_per_server(n);
  std::uint64_t total_candidates = 0;
  std::size_t iteration = 0;
  for (;;) {
    if (options.max_replicas != 0 &&
        result.placement.replica_count() >= options.max_replicas) {
      break;
    }
    std::chrono::steady_clock::time_point eval_start;
    if (t_eval != nullptr) eval_start = std::chrono::steady_clock::now();
    util::parallel_for(0, n, [&](std::size_t i) {
      const auto server = static_cast<sys::ServerIndex>(i);
      Candidate best;
      std::uint64_t evaluated = 0;
      for (std::size_t j = 0; j < m; ++j) {
        const auto site = static_cast<sys::SiteIndex>(j);
        if (!result.placement.can_add(server, site)) continue;
        ++evaluated;
        const double b = replication_benefit(system, result.placement,
                                             result.nearest, server, site);
        if (!best.valid || b > best.benefit) {
          best = {b, server, site, true, 0};
        }
      }
      best.evaluated = evaluated;
      best_per_server[i] = best;
    });
    double eval_ms = 0.0;
    if (t_eval != nullptr) {
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - eval_start)
              .count());
      t_eval->record_ns(ns);
      eval_ms = static_cast<double>(ns) * 1e-6;
    }
    Candidate winner;
    std::uint64_t iteration_candidates = 0;
    for (const Candidate& c : best_per_server) {
      iteration_candidates += c.evaluated;
      if (c.valid && (!winner.valid || c.benefit > winner.benefit)) {
        winner = c;
      }
    }
    total_candidates += iteration_candidates;
    if (!winner.valid || winner.benefit <= 0.0) break;
    result.placement.add(winner.server, winner.site);
    result.nearest.on_replica_added(winner.server, winner.site);
    result.cost_trajectory.push_back(
        sys::total_remote_cost(system.demand(), result.nearest));
    if (iteration_log != nullptr) {
      iteration_log->add_row(
          {static_cast<double>(iteration),
           static_cast<double>(winner.server),
           static_cast<double>(winner.site),
           static_cast<double>(iteration_candidates), winner.benefit,
           static_cast<double>(system.site_bytes()[winner.site]),
           result.cost_trajectory.back(), eval_ms});
    }
    ++iteration;
  }

  result.modeled_hit.assign(n * m, 0.0);
  result.caching_enabled = false;  // stand-alone replication: no proxy cache
  result.predicted_total_cost = result.cost_trajectory.back();
  result.predicted_cost_per_request =
      result.predicted_total_cost / system.demand().total();
  result.replicas_created = result.placement.replica_count();

  if (metrics != nullptr) {
    metrics->counter(pfx + "candidates_evaluated").add(total_candidates);
    metrics->gauge(pfx + "replicas_created")
        .set(static_cast<double>(result.replicas_created));
    metrics->gauge(pfx + "predicted_cost_per_request")
        .set(result.predicted_cost_per_request);
    obs::Series& cost = metrics->series(pfx + "cost");
    for (const double c : result.cost_trajectory) cost.push(c);
  }
  return result;
}

PlacementResult greedy_global(const sys::CdnSystem& system,
                              const GreedyGlobalOptions& options) {
  return greedy_global_with_budgets(system, system.server_storage(), options);
}

}  // namespace cdn::placement
