// Greedy-global replica placement — the stand-alone "Replication" baseline
// ([13, 15, 23]; the paper's Section 5.2 mechanism #1).
//
// Each iteration evaluates every (server, site) candidate replica and
// materialises the one with the largest positive benefit:
//
//   benefit(i, j) = r_j^(i) * C(i, SN_j^(i))                      (local)
//                 + sum_{k != i, X_kj = 0} max(0, C(k, SN_j^(k)) - C(k, i))
//                   * r_j^(k)                                     (relative)
//
// It terminates when every server is full or no candidate improves the cost.

#pragma once

#include "src/cdn/system.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/placement/model_support.h"
#include "src/placement/placement_result.h"

namespace cdn::placement {

struct GreedyGlobalOptions {
  /// Accepted for CLI symmetry with hybrid_greedy, but a documented no-op:
  /// the greedy-global objective is model-free (no Eq. 1/Eq. 2 in the
  /// benefit), so every tier prices candidates identically
  /// (invariance is test-enforced).
  PlacementModel placement_model = PlacementModel::kExact;
  /// Candidate-evaluation engine.  A commit of (i*, j*) only changes the
  /// inputs of column-j* candidates (the benefit reads nothing outside its
  /// own site column), so the incremental engine re-evaluates N candidates
  /// per commit instead of N*M; byte-identical results (test-enforced).
  PlacementEngine engine = PlacementEngine::kIncremental;

  /// Optional cap on replicas per run (0 = unlimited); used by tests and
  /// by the fixed-split scheme indirectly through storage budgets.
  std::size_t max_replicas = 0;

  /// Metric sink (non-owning; null = no instrumentation).  Emits
  /// "<metrics_prefix>iterations" (one row per committed replica), the
  /// "<metrics_prefix>cost" series, and phase timers.
  obs::Registry* metrics = nullptr;
  std::string metrics_prefix = "placement/greedy_global/";

  /// Span tracer (non-owning; null = no spans).  Emits a total span plus
  /// one span per committed replica.
  obs::SpanTracer* spans = nullptr;
};

/// Runs greedy-global with each server's full storage budget available for
/// replicas.  The returned result has all-zero modelled hit ratios (pure
/// replication serves only from replicas).
PlacementResult greedy_global(const sys::CdnSystem& system,
                              const GreedyGlobalOptions& options = {});

/// Variant with explicit per-server replica budgets (bytes).  Used by the
/// ad-hoc fixed-split scheme, which reserves part of each server's storage
/// for caching before running greedy-global on the rest.
PlacementResult greedy_global_with_budgets(
    const sys::CdnSystem& system,
    const std::vector<std::uint64_t>& replica_budgets,
    const GreedyGlobalOptions& options = {});

}  // namespace cdn::placement
