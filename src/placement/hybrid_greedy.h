// The hybrid replica-placement + cache-allocation algorithm — Figure 2 of
// the paper, the primary contribution being reproduced.
//
// Starting from a network where only primary copies exist (all CDN storage
// is cache), each iteration evaluates every (server, site) candidate
// replica.  A candidate's benefit combines:
//
//   * the local gain     (1 - h_j^(i)) * r_j^(i) * C(i, SN_j^(i))
//     — the site's former cache misses now served locally (lines 9);
//   * the cache penalty  sum_k [h_k^(i) - h_k,new^(i)] * r_k^(i) *
//     C(i, SN_k^(i)) — every other site's hit ratio drops because the LRU
//     buffer shrinks by o_j bytes (lines 10-13), partially offset by the
//     renormalised popularity boost of removing site j from the cacheable
//     mix;
//   * the relative gain  sum_{k != i} max(0, C(k, SN_j^(k)) - C(k, i)) *
//     (1 - h_j^(k)) * r_j^(k) — other servers' cache-missed requests for
//     site j now travel to a closer replica (lines 14-17).
//
// The best positive candidate is materialised (lines 18-25) and the model
// state is updated; the algorithm stops when no candidate has positive
// benefit or nothing fits.

#pragma once

#include "src/cdn/system.h"
#include "src/model/server_cache_state.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/placement/model_support.h"
#include "src/placement/placement_result.h"

namespace cdn::placement {

struct HybridGreedyOptions {
  /// When the top-B probability p_B of Eq. 2 is recomputed (paper default:
  /// once at initialisation; see DESIGN.md ablation A1).
  model::PbMode pb_mode = model::PbMode::kAtInit;

  /// Model tier pricing candidate evaluations (docs/PERFORMANCE.md,
  /// "Placement model tiers").  kExact keeps today's byte-identical paths;
  /// kClosedForm / kChe price candidates from shared per-server tables in
  /// O(1) per candidate and re-verify near-threshold winners with the exact
  /// Eq. 1/Eq. 2 model before commit.  The hit matrix, miss flows, cost
  /// trajectory and final states stay exact in every tier.
  PlacementModel placement_model = PlacementModel::kExact;

  /// Width of the exact-verification band for the cheap tiers, as a
  /// fraction of the current iteration's top tier benefit.
  /// Tier prices only RANK candidates: every iteration the winner is
  /// re-priced with the exact model before commit, together with every
  /// contender whose tier benefit lands within this margin of the top (so
  /// a tier mis-ranking inside the band cannot pick the wrong replica).
  /// Larger margins verify more contenders (slower, closer to exact); 0
  /// still exact-verifies the winner and the stop decision, trusting the
  /// tier's ordering everywhere else.  Ignored under kExact.
  double tier_fallback_margin = 0.1;

  /// Candidate-evaluation engine.  kIncremental (default) runs the lazy
  /// heap + sound-invalidation engine; kReference re-evaluates everything
  /// every iteration.  The two are byte-identical in placement, cost
  /// trajectory and commit order (test-enforced); kReference exists as the
  /// oracle and the bench baseline.
  PlacementEngine engine = PlacementEngine::kIncremental;

  /// Optional cap on replicas (0 = unlimited).
  std::size_t max_replicas = 0;

  /// Optional starting placement whose replicas are materialised for free
  /// before the greedy loop (adaptive replanning).  Must match the system's
  /// dimensions; replicas that exceed the system's budgets are rejected.
  const sys::ReplicaPlacement* seed = nullptr;

  /// Benefit threshold per byte of a NEW replica: a candidate is accepted
  /// only when benefit > add_cost_per_byte * o_j (models the transfer cost
  /// of replica creation; 0 reproduces Figure 2 exactly).
  double add_cost_per_byte = 0.0;

  /// Metric sink (non-owning; null = no instrumentation).  When set, the
  /// run emits "<metrics_prefix>iterations" (one row per committed replica
  /// with its benefit decomposition), the "<metrics_prefix>cost" series
  /// (D after each replica), per-phase timers, and summary gauges.
  obs::Registry* metrics = nullptr;
  std::string metrics_prefix = "placement/hybrid/";

  /// Span tracer (non-owning; null = no spans).  Each committed replica
  /// gets an iteration span; the incremental engine also emits heap
  /// re-evaluation/repair spans, invalidation instants and a heap-size
  /// counter track (see docs/OBSERVABILITY.md).
  obs::SpanTracer* spans = nullptr;
};

/// The three terms of a Figure-2 candidate benefit (see the header comment).
/// total() reproduces hybrid_candidate_benefit exactly.
struct HybridBenefitParts {
  double local_gain = 0.0;     // line 9
  double cache_penalty = 0.0;  // lines 10-13, as a positive magnitude
  double relative_gain = 0.0;  // lines 14-17
  double total() const noexcept {
    return local_gain + relative_gain - cache_penalty;
  }
};

/// The N x M miss-flow matrix F[i][j] = (1 - h_j^(i)) * r_j^(i): the demand
/// a server still sends upstream for a site after its modelled cache hits.
/// Local and relative gains are linear in these products, so the engines
/// precompute the matrix once and refresh only the committed server's row
/// per iteration (the row is the only one whose hit ratios move) instead of
/// re-deriving every product inside each of the O(N*M) candidate
/// evaluations.  Values are elementwise functions of (hit, demand), so a
/// full rebuild and a row refresh are bitwise interchangeable.
std::vector<double> miss_flow_matrix(const sys::CdnSystem& system,
                                     const std::vector<double>& hit);

/// Recomputes row `server` of `flow` from the current hit matrix.
void refresh_miss_flow_row(const sys::CdnSystem& system,
                           const std::vector<double>& hit,
                           sys::ServerIndex server,
                           std::vector<double>& flow);

/// The canonical Figure-2 candidate evaluation (lines 9-17) with the three
/// terms kept apart — the single source of truth every variant below is
/// computed from.  `state` must be `server`'s model state, `hit` the N x M
/// modelled hit matrix consistent with all servers' states, and `miss_flow`
/// either null or miss_flow_matrix(system, hit) (the two are bitwise
/// equivalent; the matrix just amortises the products across candidates).
HybridBenefitParts hybrid_candidate_benefit_parts(
    const sys::CdnSystem& system, const sys::ReplicaPlacement& placement,
    const sys::NearestReplicaIndex& nearest,
    const model::ServerCacheState& state, const std::vector<double>& hit,
    const double* miss_flow, sys::ServerIndex server, sys::SiteIndex site);

/// Convenience overload without a miss-flow matrix.
HybridBenefitParts hybrid_candidate_benefit_parts(
    const sys::CdnSystem& system, const sys::ReplicaPlacement& placement,
    const sys::NearestReplicaIndex& nearest,
    const model::ServerCacheState& state, const std::vector<double>& hit,
    sys::ServerIndex server, sys::SiteIndex site);

/// Benefit of creating a replica of `site` at `server`: local gain +
/// other-server relative gains - cache shrink penalty.  Computed from
/// hybrid_candidate_benefit_parts (it IS parts.total()), so the scalar and
/// the decomposition cannot diverge.  Exposed for the adaptive replanner's
/// keep/drop evaluation.
double hybrid_candidate_benefit(const sys::CdnSystem& system,
                                const sys::ReplicaPlacement& placement,
                                const sys::NearestReplicaIndex& nearest,
                                const model::ServerCacheState& state,
                                const std::vector<double>& hit,
                                sys::ServerIndex server, sys::SiteIndex site);

/// Hot-path variant taking the precomputed miss-flow matrix.
double hybrid_candidate_benefit(const sys::CdnSystem& system,
                                const sys::ReplicaPlacement& placement,
                                const sys::NearestReplicaIndex& nearest,
                                const model::ServerCacheState& state,
                                const std::vector<double>& hit,
                                const double* miss_flow,
                                sys::ServerIndex server, sys::SiteIndex site);

/// Runs the hybrid algorithm on the system.  The result's modelled hit
/// matrix describes the final cache allocation; predicted costs come from
/// the same model the algorithm optimised.
PlacementResult hybrid_greedy(const sys::CdnSystem& system,
                              const HybridGreedyOptions& options = {});

}  // namespace cdn::placement
