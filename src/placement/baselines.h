// Sanity baselines beyond the paper: random and popularity-ranked replica
// placement.  Useful for tests (greedy must beat them) and extensions.

#pragma once

#include "src/cdn/system.h"
#include "src/placement/placement_result.h"
#include "src/util/rng.h"

namespace cdn::placement {

/// Fills each server's storage with uniformly random feasible replicas.
/// The leftover space is modelled as cache, so the comparison against the
/// hybrid algorithm isolates *where* replicas go, not whether caching runs.
PlacementResult random_placement(const sys::CdnSystem& system,
                                 util::Rng& rng);

/// Every server replicates the globally most-requested sites that still
/// fit, in descending demand order.  The classic "cache the head of the
/// Zipf" strawman: ignores distance and duplicates the same sites
/// everywhere.
PlacementResult popularity_placement(const sys::CdnSystem& system);

}  // namespace cdn::placement
