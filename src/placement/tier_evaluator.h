// Tiered candidate pricing for the hybrid placement fast path.
//
// The exact cache-penalty term of a Figure-2 candidate (i, j) costs O(M)
// H(z) evaluations — one what-if hit ratio per other site — and dominates
// candidate-evaluation wall time.  Both cheap tiers collapse it to O(1) per
// candidate by factoring the penalty through per-server tables shared by
// every candidate of the server:
//
//   penalty(i, j) = [A_i(kappa)     - g_j H(p_j kappa)]
//                 - [Phi_i(kappa'_j) - g_j H(p_j kappa'_j)]
//
// where g_k = (1 - lambda_k) r_k^(i) C(i, SN_k^(i)) (0 for replicated or
// zero-cost sites), kappa = K/w is the server's current characteristic
// scale, kappa'_j = K'_j/w'_j the scale after hypothetically replicating j,
// A_i(kappa) = sum_k g_k H(p_k kappa) an exact cached scalar, and Phi_i a
// log-grid tabulation of x -> sum_k g_k H(p_k x) around kappa.  Each
// candidate then needs one grid interpolation plus two H evaluations.
//
// The tiers differ only in where kappa'_j comes from:
//   * kClosedForm — the state's memoized Eq. 2 digamma solve (exact K');
//     the tier error is purely Phi interpolation plus the dropped
//     min(p/w, 1) clamp of the exact path (only reachable when one site
//     carries more than the whole unreplicated mass — a p -> 1 edge);
//   * kChe        — a per-candidate occupancy fixed point
//     Psi_i(y) - N(p_j y) = target_j solved by bisection over the SAME
//     grid (Psi_i tabulates sum_k N(p_k x)), with the server's current
//     kappa solved by a warm-started Che iteration across commits.
//
// Tier prices are used for candidate *ranking only*; near-threshold winners
// are re-verified with the exact model before commit (the engines own that
// logic), and the hit matrix / cost trajectory stay exact in every tier.
//
// Thread safety: tables are per-server and lazily rebuilt from mutable
// state, so the evaluator is non-reentrant for the SAME server — exactly
// the ServerCacheState::WhatIf contract the engines already honour by
// partitioning candidate batches by server.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/cdn/nearest_replica.h"
#include "src/cdn/replication.h"
#include "src/cdn/system.h"
#include "src/model/server_cache_state.h"
#include "src/model/steady_state.h"
#include "src/placement/model_support.h"

namespace cdn::placement {

class TierEvaluator {
 public:
  /// `occupancy` is required for kChe (the shared N(z) table from
  /// ModelContext) and ignored otherwise.  kChe additionally requires every
  /// server to start with at least one LRU slot — a zero-slot cache has no
  /// occupancy fixed point to anchor the tier (rejected loudly here rather
  /// than silently pricing garbage).
  TierEvaluator(const sys::CdnSystem& system,
                const std::vector<model::ServerCacheState>& states,
                const sys::NearestReplicaIndex& nearest,
                const model::HitRatioCurve& curve,
                const model::OccupancyCurve* occupancy, PlacementModel tier);

  /// Tier-priced cache penalty of replicating `site` at `server` (the
  /// drop-in replacement for detail::hybrid_cache_penalty in the fast
  /// path).  Requires can_fit; rebuilds the server's tables lazily when its
  /// state epoch moved.
  double penalty(sys::ServerIndex server, sys::SiteIndex site) const;

  /// Notifies the evaluator that C(server, SN_site) changed because of a
  /// commit elsewhere (the changed_servers list of on_replica_added): the
  /// affected g term is patched into A and Phi in O(grid) instead of a full
  /// O(M * grid) rebuild.  Must be called before the server's candidates
  /// are re-priced, from the (serial) commit path.
  void on_cost_changed(sys::ServerIndex server, sys::SiteIndex site);

  /// Tier-priced penalty evaluations across all servers.
  std::uint64_t evaluations() const noexcept;

  /// Occupancy-sum iterations spent by warm-started Che solves (kChe only).
  std::uint64_t che_iterations() const noexcept;

 private:
  static constexpr std::size_t kGridPoints = 64;
  // The grid spans kappa * [2^-6, 2^6]: a replica removes at most one
  // site's bytes and mass, so the post-commit scale stays well inside two
  // orders of magnitude of the current one; outside the span the tables
  // clamp flat and the margin fallback re-verifies exactly.
  static constexpr double kSpanLo = 1.0 / 64.0;
  static constexpr double kSpanHi = 64.0;

  struct Table {
    std::uint64_t epoch = 0;  // states[i].mutation_epoch() it was built at
    bool built = false;
    bool degenerate = false;  // no mass or no characteristic time: penalty 0
    double kappa = 0.0;       // current K/w
    double a_at_kappa = 0.0;  // exact A(kappa)
    double x_lo = 0.0;
    double log_x_lo = 0.0;
    double log_step = 0.0;
    std::size_t cacheable = 0;  // unreplicated sites with p > 0
    double che_k = 0.0;         // warm start for the next current-K solve
    std::vector<double> g;      // per-site penalty weights
    std::vector<double> phi;    // sum_k g_k H(p_k x) on the grid
    std::vector<double> psi;    // kChe: sum_k N(p_k x) on the grid
    std::vector<double> kappa_new;           // per-site kappa'_j memo
    std::vector<std::uint64_t> kappa_epoch;  // memo validity (== epoch)
    std::uint64_t evaluations = 0;
    std::uint64_t che_iterations = 0;
  };

  void rebuild(std::size_t server) const;
  double grid_x(const Table& t, std::size_t point) const;
  double interpolate(const std::vector<double>& values, const Table& t,
                     double x) const;
  double candidate_scale(Table& t, std::size_t server, std::size_t site) const;
  double solve_che_candidate(const Table& t, std::size_t server,
                             std::size_t site) const;

  const sys::CdnSystem* system_;
  const std::vector<model::ServerCacheState>* states_;
  const sys::NearestReplicaIndex* nearest_;
  const model::HitRatioCurve* curve_;
  const model::OccupancyCurve* occupancy_;
  PlacementModel tier_;
  double mean_bytes_;
  mutable std::vector<Table> tables_;
};

/// Transposed (site-major) copies of the relative-gain inputs.  The exact
/// relative loop strides by M through four row-major matrices; these
/// site-major columns make it a contiguous, vectorisable sweep over k — the
/// other half of the per-candidate budget once the penalty is O(1).
/// Maintained incrementally per commit: a commit of (ws, js) moves column
/// js of the nearest costs (changed_servers rows only), row ws of the miss
/// flows (one scatter across columns), and one replication bit.
struct RelativeColumns {
  std::size_t n = 0;
  std::size_t m = 0;
  std::vector<double> cost;        // [j*n + k] = C(k, SN_j^(k))
  std::vector<double> flow;        // [j*n + k] = miss_flow[k*m + j]
  std::vector<std::uint8_t> repl;  // [j*n + k] = is_replicated(k, j)
  std::vector<double> dist_to;     // [i*n + k] = C(k, i)

  void build(const sys::CdnSystem& system,
             const sys::ReplicaPlacement& placement,
             const sys::NearestReplicaIndex& nearest,
             const std::vector<double>& miss_flow);

  /// Applies one commit of (server, site); `changed_servers` is
  /// on_replica_added's list and `miss_flow` the already-refreshed matrix.
  void on_commit(const sys::NearestReplicaIndex& nearest,
                 const std::vector<double>& miss_flow,
                 sys::ServerIndex server, sys::SiteIndex site,
                 const std::vector<sys::ServerIndex>& changed_servers);

  /// The relative-gain term (lines 14-17) of candidate (server, site):
  /// sum over k != server, unreplicated, of
  /// max(0, C(k, SN_j) - C(k, server)) * flow.  Equals
  /// detail::hybrid_relative_gain up to floating-point summation order
  /// (columns accumulate in the same ascending-k order, so it is in fact
  /// bitwise identical).
  double relative_gain(sys::ServerIndex server, sys::SiteIndex site) const;
};

}  // namespace cdn::placement
