// Ad-hoc fixed cache/replica storage splits (Figure 5's comparators).
//
// "What if we allocate a fixed percentage of the storage space to caching
// and run the greedy global replication algorithm for the remaining part?"
// The paper tests 20% and 80% cache (plus 40%/60% mentioned in the text)
// and shows the hybrid algorithm beats all of them.

#pragma once

#include "src/cdn/system.h"
#include "src/placement/placement_result.h"

namespace cdn::placement {

/// Reserves `cache_fraction` of every server's storage for caching, runs
/// greedy-global replication on the rest, then models the leftover caches
/// post-hoc (so the result carries comparable hit ratios and predictions).
/// cache_fraction in [0, 1]; 0 degenerates to pure replication with a
/// cache only in the slack space, 1 to pure caching.
PlacementResult fixed_split(const sys::CdnSystem& system,
                            double cache_fraction);

/// Pure caching — all storage is cache, no replicas beyond the primaries
/// (Section 5.2 mechanism #2).
PlacementResult pure_caching(const sys::CdnSystem& system);

}  // namespace cdn::placement
