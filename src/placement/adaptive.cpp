#include "src/placement/adaptive.h"

#include "src/obs/scoped_timer.h"
#include "src/placement/hybrid_greedy.h"
#include "src/placement/model_support.h"
#include "src/util/error.h"

namespace cdn::placement {

namespace {

/// Marginal benefit of KEEPING replica (server, site): the Figure 2 benefit
/// it would have if it were a fresh candidate in the placement without it.
double keep_benefit(const sys::CdnSystem& system, const ModelContext& context,
                    sys::ReplicaPlacement& placement,
                    sys::ServerIndex server, sys::SiteIndex site,
                    std::vector<double>& hit) {
  // Temporarily remove the replica and evaluate it as a candidate.
  placement.remove(server, site);
  sys::NearestReplicaIndex nearest(system.distances(), placement);
  const auto state = context.make_state(server, &placement);
  // Refresh the server's hit row for the without-replica state.
  const std::size_t m = system.site_count();
  std::vector<double> saved(hit.begin() + static_cast<std::ptrdiff_t>(
                                               server * m),
                            hit.begin() + static_cast<std::ptrdiff_t>(
                                              (server + 1) * m));
  for (std::size_t j = 0; j < m; ++j) {
    hit[server * m + j] = state.hit_ratio(static_cast<std::uint32_t>(j));
  }
  const double b = hybrid_candidate_benefit(system, placement, nearest, state,
                                            hit, server, site);
  // Restore.
  std::copy(saved.begin(), saved.end(),
            hit.begin() + static_cast<std::ptrdiff_t>(server * m));
  placement.add(server, site);
  return b;
}

}  // namespace

AdaptiveOutcome adaptive_hybrid_replan(const sys::CdnSystem& system,
                                       const PlacementResult& previous,
                                       const AdaptiveOptions& options) {
  CDN_EXPECT(options.transfer_cost_per_byte >= 0.0,
             "transfer cost must be non-negative");
  CDN_EXPECT(options.drop_hysteresis >= 0.0,
             "hysteresis must be non-negative");
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  CDN_EXPECT(previous.placement.server_count() == n &&
                 previous.placement.site_count() == m,
             "previous placement dimensions must match the system");

  const std::size_t previous_count = previous.placement.replica_count();
  std::size_t replicas_dropped = 0;

  obs::Registry* const metrics = options.metrics;
  const std::string& pfx = options.metrics_prefix;
  obs::TimerStat* const t_drop =
      metrics ? &metrics->timer(pfx + "phase/drop") : nullptr;
  obs::TimerStat* const t_add =
      metrics ? &metrics->timer(pfx + "phase/add") : nullptr;
  obs::ScopedTimer drop_timer(t_drop);

  // --- Drop phase: evict replicas whose keep-benefit under the NEW demand
  // is clearly negative (beyond the hysteresis band). ---
  ModelContext context(system, model::PbMode::kPerIteration);
  sys::ReplicaPlacement working(system.server_storage(), system.site_bytes());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const auto server = static_cast<sys::ServerIndex>(i);
      const auto site = static_cast<sys::SiteIndex>(j);
      if (previous.placement.is_replicated(server, site)) {
        working.add(server, site);
      }
    }
  }

  bool dropped_any = true;
  while (dropped_any) {
    dropped_any = false;
    // Hit matrix consistent with the current working placement.
    const auto states = context.make_states(&working);
    std::vector<double> hit = modeled_hit_matrix(states);
    double worst = 0.0;
    sys::ServerIndex worst_server = 0;
    sys::SiteIndex worst_site = 0;
    bool found = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        const auto server = static_cast<sys::ServerIndex>(i);
        const auto site = static_cast<sys::SiteIndex>(j);
        if (!working.is_replicated(server, site)) continue;
        const double b =
            keep_benefit(system, context, working, server, site, hit);
        // Hysteresis: require the margin to be clearly negative relative to
        // the traffic the replica still serves.
        const double local_value =
            system.demand().requests(server, site);
        if (b < -options.drop_hysteresis * local_value &&
            (!found || b < worst)) {
          worst = b;
          worst_server = server;
          worst_site = site;
          found = true;
        }
      }
    }
    if (found) {
      working.remove(worst_server, worst_site);
      ++replicas_dropped;
      dropped_any = true;
    }
  }

  drop_timer.stop();

  // --- Add phase: hybrid greedy seeded with the kept replicas, charging
  // new replicas their transfer cost. ---
  obs::ScopedTimer add_timer(t_add);
  HybridGreedyOptions greedy;
  greedy.pb_mode = options.pb_mode;
  greedy.seed = &working;
  greedy.add_cost_per_byte = options.transfer_cost_per_byte;
  greedy.metrics = metrics;
  greedy.metrics_prefix = pfx + "hybrid/";
  AdaptiveOutcome outcome{.result = hybrid_greedy(system, greedy)};
  outcome.result.algorithm = "adaptive-hybrid";
  add_timer.stop();
  outcome.replicas_dropped = replicas_dropped;
  outcome.replicas_kept = previous_count - replicas_dropped;

  outcome.replicas_added =
      outcome.result.placement.replica_count() - outcome.replicas_kept;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const auto server = static_cast<sys::ServerIndex>(i);
      const auto site = static_cast<sys::SiteIndex>(j);
      if (outcome.result.placement.is_replicated(server, site) &&
          !working.is_replicated(server, site)) {
        outcome.bytes_transferred += system.site_bytes()[j];
      }
    }
  }

  if (metrics != nullptr) {
    metrics->gauge(pfx + "replicas_kept")
        .set(static_cast<double>(outcome.replicas_kept));
    metrics->gauge(pfx + "replicas_added")
        .set(static_cast<double>(outcome.replicas_added));
    metrics->gauge(pfx + "replicas_dropped")
        .set(static_cast<double>(outcome.replicas_dropped));
    metrics->gauge(pfx + "bytes_transferred")
        .set(static_cast<double>(outcome.bytes_transferred));
  }
  return outcome;
}

AdaptiveOutcome failover_replan(const sys::CdnSystem& system,
                                const PlacementResult& previous,
                                const std::vector<std::uint8_t>& server_up,
                                const AdaptiveOptions& options) {
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  CDN_EXPECT(server_up.size() == n,
             "server health mask length must equal the server count");
  CDN_EXPECT(previous.placement.server_count() == n &&
                 previous.placement.site_count() == m,
             "previous placement dimensions must match the system");

  // Degraded fleet: a dead server offers no storage and keeps no replicas.
  std::vector<std::uint64_t> degraded_storage = system.server_storage();
  std::size_t dead = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (server_up[i] == 0) {
      degraded_storage[i] = 0;
      ++dead;
    }
  }
  if (dead == 0) {
    AdaptiveOutcome outcome =
        adaptive_hybrid_replan(system, previous, options);
    outcome.result.algorithm = "failover-replan";
    return outcome;
  }

  const sys::CdnSystem degraded(system.catalog(), system.demand(),
                                system.distances(), degraded_storage);

  // Seed = the previous placement minus everything a dead server held.
  sys::ReplicaPlacement live(degraded.server_storage(),
                             degraded.site_bytes());
  std::size_t replicas_stripped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const auto server = static_cast<sys::ServerIndex>(i);
      const auto site = static_cast<sys::SiteIndex>(j);
      if (!previous.placement.is_replicated(server, site)) continue;
      if (server_up[i] != 0) {
        live.add(server, site);
      } else {
        ++replicas_stripped;
      }
    }
  }
  PlacementResult seed = previous;
  seed.placement = live;
  seed.nearest.rebuild(live);

  AdaptiveOutcome outcome = adaptive_hybrid_replan(degraded, seed, options);
  outcome.result.algorithm = "failover-replan";
  outcome.replicas_dropped += replicas_stripped;
  if (options.metrics != nullptr) {
    options.metrics->gauge(options.metrics_prefix + "replicas_stripped")
        .set(static_cast<double>(replicas_stripped));
  }
  return outcome;
}

}  // namespace cdn::placement
