// Shared glue between the CDN system, the analytical LRU model, and the
// placement algorithms: building per-server ServerCacheState objects and
// deriving modelled hit-ratio matrices and predicted costs.

#pragma once

#include <vector>

#include "src/cdn/cost.h"
#include "src/cdn/system.h"
#include "src/model/hit_ratio_curve.h"
#include "src/model/server_cache_state.h"
#include "src/placement/placement_result.h"

namespace cdn::placement {

/// Owns the model machinery shared by all servers of one system: the H(z)
/// table (one per (theta, L)) and the model configuration.
class ModelContext {
 public:
  explicit ModelContext(const sys::CdnSystem& system,
                        model::PbMode pb_mode = model::PbMode::kAtInit);

  const sys::CdnSystem& system() const noexcept { return *system_; }
  const model::HitRatioCurve& curve() const noexcept { return curve_; }
  model::PbMode pb_mode() const noexcept { return pb_mode_; }

  /// Builds one ServerCacheState per server.  When `existing` is non-null
  /// its replicas are applied (replicate() per entry), so the states
  /// describe the caches left over by that placement.
  std::vector<model::ServerCacheState> make_states(
      const sys::ReplicaPlacement* existing = nullptr) const;

  /// Builds the state of one server only (adaptive keep/drop evaluation).
  model::ServerCacheState make_state(
      sys::ServerIndex server,
      const sys::ReplicaPlacement* existing = nullptr) const;

 private:
  const sys::CdnSystem* system_;
  model::HitRatioCurve curve_;
  model::PbMode pb_mode_;
  std::vector<double> lambdas_;
};

/// Extracts the N x M modelled hit-ratio matrix from per-server states
/// (0 for replicated sites).
std::vector<double> modeled_hit_matrix(
    const std::vector<model::ServerCacheState>& states);

/// Adapts a hit matrix to the cost layer's HitRatioFn.
sys::HitRatioFn hit_fn(const std::vector<double>& hit_matrix,
                       std::size_t site_count);

/// Fills the result's modelled hits and predicted costs from `states`.
void finalize_result(const sys::CdnSystem& system,
                     const std::vector<model::ServerCacheState>& states,
                     PlacementResult& result);

}  // namespace cdn::placement
