// Shared glue between the CDN system, the analytical LRU model, and the
// placement algorithms: building per-server ServerCacheState objects and
// deriving modelled hit-ratio matrices and predicted costs.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/cdn/cost.h"
#include "src/cdn/system.h"
#include "src/model/hit_ratio_curve.h"
#include "src/model/server_cache_state.h"
#include "src/model/steady_state.h"
#include "src/placement/placement_result.h"

namespace cdn::placement {

/// Which model tier prices per-candidate *placement* evaluations (the
/// simulation-side twin is sim::... --hit-model / SteadyStateModel).
///
///   * kExact      — every candidate runs the full Eq. 1/Eq. 2 what-if
///     (today's path, byte-identical to the pre-tier engines);
///   * kClosedForm — candidates are priced from per-server tabulated
///     penalty tables anchored to the O(1) closed-form characteristic time
///     (Laoutaris), with an error-gated exact fallback near the commit
///     threshold;
///   * kChe        — same tables, but the characteristic time comes from
///     the Che/TTL occupancy fixed point (Jiang/Nain/Towsley), warm-started
///     across commits.
///
/// In every tier the hit matrix, miss flows, cost trajectory and final
/// model states stay EXACT — tiers only price the candidate *ranking*, and
/// near-threshold winners are re-verified with the exact model before
/// commit (HybridGreedyOptions::tier_fallback_margin).
enum class PlacementModel {
  kExact,
  kClosedForm,
  kChe,
};

/// Parses "exact" / "closed-form" / "che" (the --placement-model CLI
/// values); throws PreconditionError on anything else.
PlacementModel parse_placement_model(const std::string& name);

/// The CLI name of a tier (inverse of parse_placement_model).
const char* placement_model_name(PlacementModel model);

/// Owns the model machinery shared by all servers of one system: the H(z)
/// table (one per (theta, L)), the N(z) occupancy table when the Che
/// placement tier needs it, and the model configuration.
class ModelContext {
 public:
  explicit ModelContext(const sys::CdnSystem& system,
                        model::PbMode pb_mode = model::PbMode::kAtInit,
                        PlacementModel placement_model = PlacementModel::kExact);

  const sys::CdnSystem& system() const noexcept { return *system_; }
  const model::HitRatioCurve& curve() const noexcept { return curve_; }
  model::PbMode pb_mode() const noexcept { return pb_mode_; }
  PlacementModel placement_model() const noexcept { return placement_model_; }

  /// Shared N(z) table; non-null iff placement_model() == kChe (built once
  /// in the constructor and reused across every candidate of the run).
  const model::OccupancyCurve* occupancy() const noexcept {
    return occupancy_ ? &*occupancy_ : nullptr;
  }

  /// Builds one ServerCacheState per server.  When `existing` is non-null
  /// its replicas are applied (replicate() per entry), so the states
  /// describe the caches left over by that placement.
  std::vector<model::ServerCacheState> make_states(
      const sys::ReplicaPlacement* existing = nullptr) const;

  /// Builds the state of one server only (adaptive keep/drop evaluation).
  model::ServerCacheState make_state(
      sys::ServerIndex server,
      const sys::ReplicaPlacement* existing = nullptr) const;

 private:
  const sys::CdnSystem* system_;
  model::HitRatioCurve curve_;
  model::PbMode pb_mode_;
  PlacementModel placement_model_;
  std::optional<model::OccupancyCurve> occupancy_;
  std::vector<double> lambdas_;
};

/// Extracts the N x M modelled hit-ratio matrix from per-server states
/// (0 for replicated sites).
std::vector<double> modeled_hit_matrix(
    const std::vector<model::ServerCacheState>& states);

/// Adapts a hit matrix to the cost layer's HitRatioFn.
sys::HitRatioFn hit_fn(const std::vector<double>& hit_matrix,
                       std::size_t site_count);

/// Fills the result's modelled hits and predicted costs from `states`.
void finalize_result(const sys::CdnSystem& system,
                     const std::vector<model::ServerCacheState>& states,
                     PlacementResult& result);

}  // namespace cdn::placement
