#include "src/placement/baselines.h"

#include <algorithm>
#include <numeric>

#include "src/placement/model_support.h"

namespace cdn::placement {

namespace {

PlacementResult finalize(const sys::CdnSystem& system,
                         sys::ReplicaPlacement placement,
                         std::string algorithm) {
  sys::NearestReplicaIndex nearest(system.distances(), placement);
  PlacementResult result{.algorithm = std::move(algorithm),
                         .placement = std::move(placement),
                         .nearest = std::move(nearest)};
  ModelContext context(system, model::PbMode::kPerIteration);
  const auto states = context.make_states(&result.placement);
  finalize_result(system, states, result);
  result.cost_trajectory.push_back(result.predicted_total_cost);
  return result;
}

}  // namespace

PlacementResult random_placement(const sys::CdnSystem& system,
                                 util::Rng& rng) {
  sys::ReplicaPlacement placement(system.server_storage(),
                                  system.site_bytes());
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();

  // Visit (server, site) cells in random order; add every one that fits.
  std::vector<std::size_t> cells(n * m);
  std::iota(cells.begin(), cells.end(), 0);
  for (std::size_t i = cells.size(); i > 1; --i) {
    std::swap(cells[i - 1], cells[rng.uniform_index(i)]);
  }
  for (std::size_t cell : cells) {
    const auto server = static_cast<sys::ServerIndex>(cell / m);
    const auto site = static_cast<sys::SiteIndex>(cell % m);
    if (placement.can_add(server, site)) placement.add(server, site);
  }
  return finalize(system, std::move(placement), "random");
}

PlacementResult popularity_placement(const sys::CdnSystem& system) {
  sys::ReplicaPlacement placement(system.server_storage(),
                                  system.site_bytes());
  const std::size_t m = system.site_count();

  std::vector<sys::SiteIndex> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](sys::SiteIndex a, sys::SiteIndex b) {
              return system.demand().site_total(a) >
                     system.demand().site_total(b);
            });
  for (std::size_t i = 0; i < system.server_count(); ++i) {
    const auto server = static_cast<sys::ServerIndex>(i);
    for (sys::SiteIndex site : order) {
      if (placement.can_add(server, site)) placement.add(server, site);
    }
  }
  return finalize(system, std::move(placement), "popularity");
}

}  // namespace cdn::placement
