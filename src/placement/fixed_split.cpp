#include "src/placement/fixed_split.h"

#include <string>

#include "src/cdn/cost.h"
#include "src/placement/greedy_global.h"
#include "src/placement/model_support.h"
#include "src/util/error.h"
#include "src/util/table.h"

namespace cdn::placement {

PlacementResult fixed_split(const sys::CdnSystem& system,
                            double cache_fraction) {
  CDN_EXPECT(cache_fraction >= 0.0 && cache_fraction <= 1.0,
             "cache fraction must be in [0, 1]");

  // Replication sees only the non-cache share of each server.
  std::vector<std::uint64_t> replica_budgets(system.server_count());
  for (std::size_t i = 0; i < replica_budgets.size(); ++i) {
    replica_budgets[i] = static_cast<std::uint64_t>(
        (1.0 - cache_fraction) *
        static_cast<double>(
            system.server_storage(static_cast<sys::ServerIndex>(i))));
  }
  PlacementResult greedy = greedy_global_with_budgets(system, replica_budgets);

  // Re-house the chosen replicas under the full storage budgets so that
  // free_bytes() reports the true cache space (reserved share + slack).
  sys::ReplicaPlacement placement(system.server_storage(),
                                  system.site_bytes());
  for (std::size_t i = 0; i < system.server_count(); ++i) {
    for (std::size_t j = 0; j < system.site_count(); ++j) {
      const auto server = static_cast<sys::ServerIndex>(i);
      const auto site = static_cast<sys::SiteIndex>(j);
      if (greedy.placement.is_replicated(server, site)) {
        placement.add(server, site);
      }
    }
  }
  sys::NearestReplicaIndex nearest(system.distances(), placement);

  PlacementResult result{
      .algorithm = "fixed-split-" +
                   util::format_double(100.0 * cache_fraction, 0) + "%cache",
      .placement = std::move(placement),
      .nearest = std::move(nearest)};
  result.cost_trajectory = std::move(greedy.cost_trajectory);

  // Model the leftover caches post-hoc.  kPerIteration keeps p_B consistent
  // with the actual (post-replica) cache sizes.
  ModelContext context(system, model::PbMode::kPerIteration);
  const auto states = context.make_states(&result.placement);
  finalize_result(system, states, result);
  return result;
}

PlacementResult pure_caching(const sys::CdnSystem& system) {
  sys::ReplicaPlacement placement(system.server_storage(),
                                  system.site_bytes());
  sys::NearestReplicaIndex nearest(system.distances(), placement);
  PlacementResult result{.algorithm = "caching",
                         .placement = std::move(placement),
                         .nearest = std::move(nearest)};
  ModelContext context(system, model::PbMode::kAtInit);
  const auto states = context.make_states();
  finalize_result(system, states, result);
  result.cost_trajectory.push_back(result.predicted_total_cost);
  return result;
}

}  // namespace cdn::placement
