// Text (de)serialization of replica placements for the live-reload path.
//
// A placement file is the minimal durable form of a placement algorithm's
// output — enough for the redirector daemon to swap its serving state at
// runtime without recomputing anything:
//
//   placement <server_count> <site_count>
//   replica <server> <site>
//   ...
//
// Lines are order-insensitive after the header; '#' starts a comment.
// Parsing is hardened exactly like the fault-schedule and endpoint-map
// formats: every malformed input throws PreconditionError with a line/col
// location (the rc_* adversarial corpus holds the regression inputs), and
// validation against the CdnSystem — header shape, index ranges, duplicate
// replicas, per-server storage capacity, and non-emptiness — happens at
// parse time so a bad file can never become serving state.

#pragma once

#include <cstdint>
#include <string>

#include "src/cdn/system.h"
#include "src/placement/placement_result.h"

namespace cdn::placement {

/// Canonical text form (ascending server-major replica order) — two
/// placements serialize identically iff they place the same replicas, so
/// the serialization doubles as the digest pre-image.
std::string serialize_placement(const sys::ReplicaPlacement& placement);

/// Writes `serialize_placement` to `path` (throws PreconditionError on I/O
/// failure).
void save_placement(const sys::ReplicaPlacement& placement,
                    const std::string& path);

/// FNV-1a over the canonical serialization: the generation digest the
/// daemon's STATUS command reports and the reload drill compares.
std::uint64_t placement_digest(const sys::ReplicaPlacement& placement);

/// Parses and fully validates a placement file against `system`:
///   * the header's server/site counts must match the system exactly;
///   * every replica index must be in range;
///   * duplicate replica lines are rejected;
///   * the per-server byte budgets must hold every assigned replica;
///   * an empty placement (zero replicas) is rejected — a replan that lost
///     everything is a corrupt file, not a plan.
/// Returns a complete PlacementResult (nearest-replica index rebuilt, no
/// modeled hit ratios — reloaded placements serve redirects, not the
/// simulator).  Throws PreconditionError with a line/col diagnostic on any
/// violation.
PlacementResult parse_placement_result(const std::string& text,
                                       const sys::CdnSystem& system,
                                       const std::string& algorithm =
                                           "reloaded");

/// `parse_placement_result` over a file's contents.
PlacementResult load_placement_result(const std::string& path,
                                      const sys::CdnSystem& system,
                                      const std::string& algorithm =
                                          "reloaded");

}  // namespace cdn::placement
