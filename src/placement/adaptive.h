// Adaptive replanning under demand drift — the dynamic side of the problem.
//
// Section 2.1 notes that replica "placement decisions should remain fairly
// static ... replica creation and migration incurs a high transfer cost",
// which is exactly why the paper pairs replication with caching.  The
// dynamic FAP literature it cites ([24, 28]) instead adapts the replica set
// online.  This module implements that comparator for the hybrid scheme:
// given an existing placement and NEW demand, it replans with the same
// model-driven benefit rule, but
//
//   * keeps existing replicas unless dropping them pays (hysteresis), and
//   * charges each new replica a transfer cost proportional to its bytes,
//     so marginal placements are suppressed.
//
// The flash-crowd example and bench_adaptive quantify how much replanning
// recovers vs a stale placement, and what the caches already absorbed.

#pragma once

#include "src/cdn/system.h"
#include "src/model/server_cache_state.h"
#include "src/obs/registry.h"
#include "src/placement/placement_result.h"

namespace cdn::placement {

struct AdaptiveOptions {
  /// Cost (in the objective's request*hop unit) charged per byte of a new
  /// replica transfer.  0 reduces to a fresh hybrid run seeded with the
  /// old replicas kept for free.
  double transfer_cost_per_byte = 0.0;

  /// A kept replica is dropped when its current benefit falls below this
  /// fraction of the drop's cache gain (hysteresis against flapping).
  double drop_hysteresis = 0.25;

  model::PbMode pb_mode = model::PbMode::kAtInit;

  /// Metric sink (non-owning; null = no instrumentation).  Emits drop/add
  /// phase timers and replica-churn gauges; the inner hybrid run logs under
  /// "<metrics_prefix>hybrid/".
  obs::Registry* metrics = nullptr;
  std::string metrics_prefix = "placement/adaptive/";
};

/// Statistics of one replanning step.
struct AdaptiveOutcome {
  PlacementResult result;
  std::size_t replicas_kept = 0;
  std::size_t replicas_added = 0;
  std::size_t replicas_dropped = 0;
  /// Bytes transferred to create the added replicas.
  std::uint64_t bytes_transferred = 0;
};

/// Replans the hybrid placement for `system` (carrying the NEW demand),
/// starting from `previous` (computed under the old demand).
AdaptiveOutcome adaptive_hybrid_replan(const sys::CdnSystem& system,
                                       const PlacementResult& previous,
                                       const AdaptiveOptions& options = {});

/// Failure-triggered replan: replans `previous` around dead servers.
/// `server_up` (length N, 1 = up) masks the fleet; dead servers lose their
/// replicas and contribute zero storage, so the greedy re-homes the lost
/// copies on the survivors (their demand still counts and spills to the
/// nearest remaining copy, which is what makes re-homing pay off).  The
/// stripped replicas count toward replicas_dropped.  With every server up
/// this is exactly adaptive_hybrid_replan.  The returned placement carries
/// the DEGRADED budgets — swap back to a full-fleet plan on recovery rather
/// than replanning forward from it.
AdaptiveOutcome failover_replan(const sys::CdnSystem& system,
                                const PlacementResult& previous,
                                const std::vector<std::uint8_t>& server_up,
                                const AdaptiveOptions& options = {});

}  // namespace cdn::placement
