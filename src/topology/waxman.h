// Waxman random-graph generator — the other classic Internet-topology model
// of the GT-ITM era, used here for topology-sensitivity studies (the paper
// evaluates on transit-stub only).
//
// Nodes are scattered uniformly in the unit square; an edge {u, v} exists
// with probability alpha * exp(-d(u,v) / (beta * d_max)).  A random spanning
// tree is superimposed so the returned graph is always connected (matching
// how GT-ITM outputs are post-processed for routing experiments).

#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/graph.h"
#include "src/util/rng.h"

namespace cdn::topology {

struct WaxmanParams {
  std::uint32_t nodes = 1560;
  /// Edge-density knob (higher = more edges).
  double alpha = 0.12;
  /// Locality knob (lower = only short edges survive).
  double beta = 0.15;
};

struct WaxmanTopology {
  Graph graph{0};
  /// Node coordinates in the unit square (index = node id).
  std::vector<std::pair<double, double>> coordinates;
  WaxmanParams params;
};

/// Generates a connected Waxman graph.  Requires nodes >= 1, alpha/beta in
/// (0, 1].
WaxmanTopology generate_waxman(const WaxmanParams& params, util::Rng& rng);

}  // namespace cdn::topology
