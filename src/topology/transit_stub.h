// GT-ITM-flavoured transit-stub topology generator.
//
// The paper generates "a random transit-stub graph with a total of 1560
// nodes" using the GT-ITM tool and places each CDN server and primary site
// inside a randomly selected stub domain.  GT-ITM itself is an external C
// program; this module reimplements its structural model (documented
// substitution, see DESIGN.md):
//
//   * T transit domains, each a connected random graph of Nt transit nodes;
//   * transit domains interconnected by a random tree plus extra edges;
//   * each transit node owns S stub domains, each a connected random graph
//     of Ns stub nodes, attached to its transit node by one edge (plus
//     optional extra stub-to-transit edges);
//
// Connectivity within a domain is guaranteed by seeding each domain with a
// random spanning tree before sprinkling extra edges — so the generated
// graph is always connected, matching GT-ITM's usable outputs.

#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/graph.h"
#include "src/util/rng.h"

namespace cdn::topology {

/// Parameters of the transit-stub generator.  Defaults reconstruct the
/// paper's 1560-node graph: 4 transit domains x 6 transit nodes, 4 stub
/// domains per transit node, 16 nodes per stub domain:
/// 24 + 24*4*16 = 1560 nodes.
struct TransitStubParams {
  std::uint32_t transit_domains = 4;
  std::uint32_t transit_nodes_per_domain = 6;
  std::uint32_t stub_domains_per_transit_node = 4;
  std::uint32_t nodes_per_stub_domain = 16;

  /// Probability of each extra (non-spanning-tree) edge inside a transit
  /// domain / stub domain, and of extra transit-to-transit domain links.
  double transit_edge_prob = 0.6;
  double stub_edge_prob = 0.3;
  double extra_transit_link_prob = 0.3;

  std::uint32_t total_nodes() const {
    const std::uint32_t transit = transit_domains * transit_nodes_per_domain;
    return transit + transit * stub_domains_per_transit_node *
                         nodes_per_stub_domain;
  }
};

/// One stub domain: the list of its node ids and its attachment transit node.
struct StubDomain {
  std::vector<NodeId> nodes;
  NodeId transit_attachment = 0;
};

/// A generated transit-stub topology.
struct TransitStubTopology {
  Graph graph{0};
  std::vector<NodeId> transit_nodes;
  std::vector<StubDomain> stub_domains;
  TransitStubParams params;
};

/// Generates a connected transit-stub topology.  Deterministic given `rng`
/// state.  Requires all counts >= 1 and probabilities in [0, 1].
TransitStubTopology generate_transit_stub(const TransitStubParams& params,
                                          util::Rng& rng);

/// Draws `count` node placements, each inside a randomly selected stub
/// domain (uniform over domains, then uniform over the domain's nodes) —
/// exactly the paper's placement rule for servers and primary sites.  When
/// `distinct_nodes` is true the same graph node is never returned twice
/// (requires count <= total stub nodes).
std::vector<NodeId> place_in_stub_domains(const TransitStubTopology& topo,
                                          std::size_t count, util::Rng& rng,
                                          bool distinct_nodes = true);

}  // namespace cdn::topology
