// Undirected graph with adjacency lists — the network substrate on which the
// CDN is laid out.  Edge weights default to 1 so that shortest paths measure
// hop counts, the paper's distance metric C(i, j).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cdn::topology {

using NodeId = std::uint32_t;

/// One directed half of an undirected edge.
struct Edge {
  NodeId to = 0;
  double weight = 1.0;
};

/// Simple undirected weighted graph.  Nodes are dense integers [0, n).
class Graph {
 public:
  /// Creates a graph with `nodes` isolated vertices.
  explicit Graph(std::size_t nodes);

  /// Adds an undirected edge {a, b} with positive weight.  Parallel edges
  /// are rejected; self-loops are rejected.
  void add_edge(NodeId a, NodeId b, double weight = 1.0);

  /// True if the undirected edge {a, b} exists.
  bool has_edge(NodeId a, NodeId b) const;

  std::size_t node_count() const noexcept { return adjacency_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  /// Neighbors of v with weights.
  std::span<const Edge> neighbors(NodeId v) const;

  std::size_t degree(NodeId v) const;

  /// True if every node is reachable from node 0 (or the graph is empty).
  bool is_connected() const;

 private:
  void check_node(NodeId v) const;

  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace cdn::topology
