#include "src/topology/transit_stub.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "src/util/error.h"

namespace cdn::topology {

namespace {

/// Connects `nodes` into a random spanning tree (random attachment order),
/// then adds each remaining pair as an edge with probability `extra_prob`.
void build_connected_random_subgraph(Graph& graph,
                                     std::span<const NodeId> nodes,
                                     double extra_prob, util::Rng& rng) {
  if (nodes.size() <= 1) return;
  // Random permutation; node k attaches to a uniformly chosen predecessor.
  std::vector<NodeId> order(nodes.begin(), nodes.end());
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  }
  for (std::size_t k = 1; k < order.size(); ++k) {
    const std::size_t parent = rng.uniform_index(k);
    graph.add_edge(order[k], order[parent]);
  }
  for (std::size_t a = 0; a < nodes.size(); ++a) {
    for (std::size_t b = a + 1; b < nodes.size(); ++b) {
      if (!graph.has_edge(nodes[a], nodes[b]) && rng.bernoulli(extra_prob)) {
        graph.add_edge(nodes[a], nodes[b]);
      }
    }
  }
}

}  // namespace

TransitStubTopology generate_transit_stub(const TransitStubParams& params,
                                          util::Rng& rng) {
  CDN_EXPECT(params.transit_domains >= 1, "need at least one transit domain");
  CDN_EXPECT(params.transit_nodes_per_domain >= 1,
             "need at least one transit node per domain");
  CDN_EXPECT(params.stub_domains_per_transit_node >= 1,
             "need at least one stub domain per transit node");
  CDN_EXPECT(params.nodes_per_stub_domain >= 1,
             "need at least one node per stub domain");
  for (double p : {params.transit_edge_prob, params.stub_edge_prob,
                   params.extra_transit_link_prob}) {
    CDN_EXPECT(p >= 0.0 && p <= 1.0, "probabilities must be in [0, 1]");
  }

  TransitStubTopology topo;
  topo.params = params;
  topo.graph = Graph(params.total_nodes());

  // --- Transit nodes come first in the id space, grouped by domain. ---
  NodeId next = 0;
  std::vector<std::vector<NodeId>> transit_by_domain(params.transit_domains);
  for (std::uint32_t d = 0; d < params.transit_domains; ++d) {
    for (std::uint32_t t = 0; t < params.transit_nodes_per_domain; ++t) {
      transit_by_domain[d].push_back(next);
      topo.transit_nodes.push_back(next);
      ++next;
    }
    build_connected_random_subgraph(topo.graph, transit_by_domain[d],
                                    params.transit_edge_prob, rng);
  }

  // --- Inter-domain links: random tree over domains + extras. ---
  auto random_node_of_domain = [&](std::uint32_t d) {
    const auto& nodes = transit_by_domain[d];
    return nodes[rng.uniform_index(nodes.size())];
  };
  for (std::uint32_t d = 1; d < params.transit_domains; ++d) {
    const auto other = static_cast<std::uint32_t>(rng.uniform_index(d));
    topo.graph.add_edge(random_node_of_domain(d), random_node_of_domain(other));
  }
  for (std::uint32_t a = 0; a < params.transit_domains; ++a) {
    for (std::uint32_t b = a + 1; b < params.transit_domains; ++b) {
      if (rng.bernoulli(params.extra_transit_link_prob)) {
        const NodeId na = random_node_of_domain(a);
        const NodeId nb = random_node_of_domain(b);
        if (!topo.graph.has_edge(na, nb)) topo.graph.add_edge(na, nb);
      }
    }
  }

  // --- Stub domains hang off each transit node. ---
  for (NodeId transit : topo.transit_nodes) {
    for (std::uint32_t s = 0; s < params.stub_domains_per_transit_node; ++s) {
      StubDomain stub;
      stub.transit_attachment = transit;
      for (std::uint32_t k = 0; k < params.nodes_per_stub_domain; ++k) {
        stub.nodes.push_back(next++);
      }
      build_connected_random_subgraph(topo.graph, stub.nodes,
                                      params.stub_edge_prob, rng);
      const NodeId gateway = stub.nodes[rng.uniform_index(stub.nodes.size())];
      topo.graph.add_edge(gateway, transit);
      topo.stub_domains.push_back(std::move(stub));
    }
  }

  CDN_CHECK(next == params.total_nodes(), "node id accounting mismatch");
  CDN_CHECK(topo.graph.is_connected(),
            "transit-stub construction must yield a connected graph");
  return topo;
}

std::vector<NodeId> place_in_stub_domains(const TransitStubTopology& topo,
                                          std::size_t count, util::Rng& rng,
                                          bool distinct_nodes) {
  CDN_EXPECT(!topo.stub_domains.empty(), "topology has no stub domains");
  if (distinct_nodes) {
    std::size_t stub_nodes = 0;
    for (const auto& d : topo.stub_domains) stub_nodes += d.nodes.size();
    CDN_EXPECT(count <= stub_nodes,
               "more distinct placements requested than stub nodes exist");
  }
  std::vector<NodeId> placed;
  placed.reserve(count);
  std::unordered_set<NodeId> used;
  while (placed.size() < count) {
    const auto& domain =
        topo.stub_domains[rng.uniform_index(topo.stub_domains.size())];
    const NodeId node = domain.nodes[rng.uniform_index(domain.nodes.size())];
    if (distinct_nodes && !used.insert(node).second) continue;
    placed.push_back(node);
  }
  return placed;
}

}  // namespace cdn::topology
