#include "src/topology/graph.h"

#include <algorithm>
#include <vector>

#include "src/util/error.h"

namespace cdn::topology {

Graph::Graph(std::size_t nodes) : adjacency_(nodes) {}

void Graph::check_node(NodeId v) const {
  CDN_EXPECT(v < adjacency_.size(), "node id out of range");
}

void Graph::add_edge(NodeId a, NodeId b, double weight) {
  check_node(a);
  check_node(b);
  CDN_EXPECT(a != b, "self-loops are not allowed");
  CDN_EXPECT(weight > 0.0, "edge weight must be positive");
  CDN_EXPECT(!has_edge(a, b), "parallel edges are not allowed");
  adjacency_[a].push_back({b, weight});
  adjacency_[b].push_back({a, weight});
  ++edge_count_;
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  const auto& adj = adjacency_[a];
  return std::any_of(adj.begin(), adj.end(),
                     [b](const Edge& e) { return e.to == b; });
}

std::span<const Edge> Graph::neighbors(NodeId v) const {
  check_node(v);
  return adjacency_[v];
}

std::size_t Graph::degree(NodeId v) const {
  check_node(v);
  return adjacency_[v].size();
}

bool Graph::is_connected() const {
  if (adjacency_.empty()) return true;
  std::vector<bool> seen(adjacency_.size(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const Edge& e : adjacency_[v]) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        ++visited;
        stack.push_back(e.to);
      }
    }
  }
  return visited == adjacency_.size();
}

}  // namespace cdn::topology
