// Single-source and multi-source shortest paths.
//
// The paper computes C(i, j) — the hop count of the shortest path — from each
// CDN server to every other server and primary site with Dijkstra's
// algorithm.  For unit weights we use BFS, which is equivalent and faster;
// Dijkstra remains available for weighted topologies.

#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/topology/graph.h"

namespace cdn::topology {

/// Sentinel hop count for unreachable nodes.
inline constexpr std::uint32_t kUnreachableHops =
    std::numeric_limits<std::uint32_t>::max();

/// Sentinel distance for unreachable nodes (weighted).
inline constexpr double kUnreachableDistance =
    std::numeric_limits<double>::infinity();

/// BFS hop counts from `source` to every node.
std::vector<std::uint32_t> bfs_hops(const Graph& graph, NodeId source);

/// Dijkstra weighted distances from `source` to every node.
std::vector<double> dijkstra(const Graph& graph, NodeId source);

/// Hop-count distance matrix from a fixed set of source nodes to all nodes.
/// Row s corresponds to sources[s].  Construction parallelises across
/// sources via the shared thread pool.
class HopMatrix {
 public:
  HopMatrix() = default;

  /// Computes BFS rows for every source.  Requires all sources in range.
  HopMatrix(const Graph& graph, std::span<const NodeId> sources);

  /// Hops from sources[source_index] to `node`.
  std::uint32_t hops(std::size_t source_index, NodeId node) const;

  /// Hops as double (kUnreachableDistance if unreachable).
  double cost(std::size_t source_index, NodeId node) const;

  std::size_t source_count() const noexcept { return sources_.size(); }
  std::size_t node_count() const noexcept { return nodes_; }
  std::span<const NodeId> sources() const noexcept { return sources_; }

  /// The graph node backing row `source_index`.
  NodeId source_node(std::size_t source_index) const;

 private:
  std::vector<NodeId> sources_;
  std::size_t nodes_ = 0;
  std::vector<std::uint32_t> rows_;  // sources x nodes, row-major
};

}  // namespace cdn::topology
