#include "src/topology/shortest_paths.h"

#include <queue>
#include <utility>

#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace cdn::topology {

std::vector<std::uint32_t> bfs_hops(const Graph& graph, NodeId source) {
  CDN_EXPECT(source < graph.node_count(), "BFS source out of range");
  std::vector<std::uint32_t> dist(graph.node_count(), kUnreachableHops);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (const Edge& e : graph.neighbors(v)) {
      if (dist[e.to] == kUnreachableHops) {
        dist[e.to] = dist[v] + 1;
        frontier.push(e.to);
      }
    }
  }
  return dist;
}

std::vector<double> dijkstra(const Graph& graph, NodeId source) {
  CDN_EXPECT(source < graph.node_count(), "Dijkstra source out of range");
  std::vector<double> dist(graph.node_count(), kUnreachableDistance);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;  // stale entry
    for (const Edge& e : graph.neighbors(v)) {
      const double nd = d + e.weight;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        heap.push({nd, e.to});
      }
    }
  }
  return dist;
}

HopMatrix::HopMatrix(const Graph& graph, std::span<const NodeId> sources)
    : sources_(sources.begin(), sources.end()), nodes_(graph.node_count()) {
  for (NodeId s : sources_) {
    CDN_EXPECT(s < nodes_, "HopMatrix source out of range");
  }
  rows_.resize(sources_.size() * nodes_);
  util::parallel_for(0, sources_.size(), [&](std::size_t s) {
    const auto dist = bfs_hops(graph, sources_[s]);
    std::copy(dist.begin(), dist.end(), rows_.begin() + static_cast<std::ptrdiff_t>(s * nodes_));
  });
}

std::uint32_t HopMatrix::hops(std::size_t source_index, NodeId node) const {
  CDN_EXPECT(source_index < sources_.size(), "source index out of range");
  CDN_EXPECT(node < nodes_, "node out of range");
  return rows_[source_index * nodes_ + node];
}

double HopMatrix::cost(std::size_t source_index, NodeId node) const {
  const std::uint32_t h = hops(source_index, node);
  return h == kUnreachableHops ? kUnreachableDistance
                               : static_cast<double>(h);
}

NodeId HopMatrix::source_node(std::size_t source_index) const {
  CDN_EXPECT(source_index < sources_.size(), "source index out of range");
  return sources_[source_index];
}

}  // namespace cdn::topology
