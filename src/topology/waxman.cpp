#include "src/topology/waxman.h"

#include <cmath>

#include "src/util/error.h"

namespace cdn::topology {

WaxmanTopology generate_waxman(const WaxmanParams& params, util::Rng& rng) {
  CDN_EXPECT(params.nodes >= 1, "need at least one node");
  CDN_EXPECT(params.alpha > 0.0 && params.alpha <= 1.0,
             "alpha must be in (0, 1]");
  CDN_EXPECT(params.beta > 0.0 && params.beta <= 1.0,
             "beta must be in (0, 1]");

  WaxmanTopology topo;
  topo.params = params;
  topo.graph = Graph(params.nodes);
  topo.coordinates.reserve(params.nodes);
  for (std::uint32_t v = 0; v < params.nodes; ++v) {
    topo.coordinates.emplace_back(rng.uniform(), rng.uniform());
  }

  const double d_max = std::sqrt(2.0);  // unit-square diameter
  auto distance = [&](NodeId a, NodeId b) {
    const double dx = topo.coordinates[a].first - topo.coordinates[b].first;
    const double dy = topo.coordinates[a].second - topo.coordinates[b].second;
    return std::sqrt(dx * dx + dy * dy);
  };

  // Connectivity backbone: random spanning tree with uniform attachment.
  for (std::uint32_t v = 1; v < params.nodes; ++v) {
    const auto parent = static_cast<NodeId>(rng.uniform_index(v));
    topo.graph.add_edge(v, parent);
  }

  // Waxman edges on top.
  for (std::uint32_t a = 0; a < params.nodes; ++a) {
    for (std::uint32_t b = a + 1; b < params.nodes; ++b) {
      if (topo.graph.has_edge(a, b)) continue;
      const double p =
          params.alpha * std::exp(-distance(a, b) / (params.beta * d_max));
      if (rng.bernoulli(p)) topo.graph.add_edge(a, b);
    }
  }

  CDN_CHECK(topo.graph.is_connected(), "Waxman graph must be connected");
  return topo;
}

}  // namespace cdn::topology
