#include "src/cluster/cluster_replication.h"

#include <queue>

#include "src/cdn/cost.h"
#include "src/cdn/system.h"
#include "src/util/error.h"

namespace cdn::cluster {

namespace {

/// Benefit of replicating `unit` at `server` (pure replication objective):
/// the holder's own redirected traffic plus every other server's saving
/// from a closer copy.
double unit_benefit(const workload::DemandMatrix& demand,
                    const sys::DistanceOracle& distances,
                    const sys::ReplicaPlacement& placement,
                    const sys::NearestReplicaIndex& nearest,
                    sys::ServerIndex server, sys::SiteIndex unit) {
  double b = demand.requests(server, unit) * nearest.cost(server, unit);
  for (std::size_t k = 0; k < demand.server_count(); ++k) {
    const auto other = static_cast<sys::ServerIndex>(k);
    if (other == server || placement.is_replicated(other, unit)) continue;
    const double delta =
        nearest.cost(other, unit) - distances.server_to_server(other, server);
    if (delta > 0.0) b += delta * demand.requests(other, unit);
  }
  return b;
}

struct HeapEntry {
  double benefit;
  sys::ServerIndex server;
  sys::SiteIndex unit;
  bool operator<(const HeapEntry& o) const { return benefit < o.benefit; }
};

}  // namespace

LazyGreedyOutput lazy_greedy_replication(
    const workload::DemandMatrix& unit_demand,
    const sys::DistanceOracle& unit_distances,
    const std::vector<std::uint64_t>& server_budgets,
    const std::vector<std::uint64_t>& unit_bytes) {
  const std::size_t n = unit_demand.server_count();
  const std::size_t u = unit_demand.site_count();
  CDN_EXPECT(unit_distances.server_count() == n &&
                 unit_distances.site_count() == u,
             "demand and distances disagree on dimensions");
  CDN_EXPECT(server_budgets.size() == n, "one budget per server required");
  CDN_EXPECT(unit_bytes.size() == u, "one size per unit required");

  sys::ReplicaPlacement placement(server_budgets, unit_bytes);
  sys::NearestReplicaIndex nearest(unit_distances, placement);
  LazyGreedyOutput out{.placement = std::move(placement),
                       .nearest = std::move(nearest),
                       .cost_trajectory = {}};
  out.cost_trajectory.push_back(
      sys::total_remote_cost(unit_demand, out.nearest));

  // Seed the heap with every candidate's initial (upper-bound) benefit.
  std::priority_queue<HeapEntry> heap;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < u; ++j) {
      const auto server = static_cast<sys::ServerIndex>(i);
      const auto unit = static_cast<sys::SiteIndex>(j);
      if (!out.placement.can_add(server, unit)) continue;
      const double b = unit_benefit(unit_demand, unit_distances,
                                    out.placement, out.nearest, server, unit);
      if (b > 0.0) heap.push({b, server, unit});
    }
  }

  double running_cost = out.cost_trajectory.front();
  while (!heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (!out.placement.can_add(top.server, top.unit)) continue;
    // Benefits only shrink over time, so a fresh value that still beats the
    // next-best stale bound is globally maximal.
    const double fresh =
        unit_benefit(unit_demand, unit_distances, out.placement, out.nearest,
                     top.server, top.unit);
    if (fresh <= 0.0) continue;
    if (!heap.empty() && fresh < heap.top().benefit) {
      top.benefit = fresh;
      heap.push(top);
      continue;
    }
    out.placement.add(top.server, top.unit);
    out.nearest.on_replica_added(top.server, top.unit);
    running_cost -= fresh;
    out.cost_trajectory.push_back(running_cost);
  }
  // Replace the incrementally tracked tail with an exact recomputation
  // (guards against floating-point drift over thousands of replicas).
  out.cost_trajectory.back() =
      sys::total_remote_cost(unit_demand, out.nearest);
  return out;
}

ClusterPlacementResult cluster_greedy_global(
    const sys::CdnSystem& system, std::uint32_t clusters_per_site) {
  ClusterScheme scheme(system.catalog(), clusters_per_site);
  const std::size_t n = system.server_count();
  const std::size_t total = scheme.cluster_count();

  // Expand demand and distances from sites to clusters.
  std::vector<double> demand_values;
  demand_values.reserve(n * total);
  for (std::size_t i = 0; i < n; ++i) {
    const auto server = static_cast<sys::ServerIndex>(i);
    for (ClusterId c = 0; c < total; ++c) {
      const Cluster& cl = scheme.cluster(c);
      demand_values.push_back(
          system.demand().requests(server, cl.site) * cl.mass);
    }
  }
  const auto cluster_demand =
      workload::DemandMatrix::from_values(n, total, demand_values);

  std::vector<double> ss(n * n);
  std::vector<double> sp(n * total);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      ss[i * n + k] = system.distances().server_to_server(
          static_cast<sys::ServerIndex>(i), static_cast<sys::ServerIndex>(k));
    }
    for (ClusterId c = 0; c < total; ++c) {
      sp[i * total + c] = system.distances().server_to_primary(
          static_cast<sys::ServerIndex>(i), scheme.cluster(c).site);
    }
  }
  auto cluster_distances = std::make_unique<sys::DistanceOracle>(
      n, total, std::move(ss), std::move(sp));

  auto greedy = lazy_greedy_replication(cluster_demand, *cluster_distances,
                                        system.server_storage(),
                                        scheme.cluster_bytes());

  ClusterPlacementResult result{.scheme = std::move(scheme),
                                .cluster_distances =
                                    std::move(cluster_distances),
                                .placement = std::move(greedy.placement),
                                .nearest = std::move(greedy.nearest)};
  result.predicted_total_cost = greedy.cost_trajectory.back();
  result.predicted_cost_per_request =
      result.predicted_total_cost / system.demand().total();
  result.replicas_created = result.placement.replica_count();
  return result;
}

}  // namespace cdn::cluster
