// Trace-driven simulation of a per-cluster replication scheme (pure
// replication at cluster granularity — no caching, matching [6]).

#pragma once

#include "src/cdn/system.h"
#include "src/cluster/cluster_replication.h"
#include "src/sim/simulator.h"

namespace cdn::cluster {

/// Replays synthetic traffic against a cluster placement: a request whose
/// cluster is replicated at the first-hop server is served locally; anything
/// else is redirected to the cluster's nearest copy.
sim::SimulationReport simulate_clusters(const sys::CdnSystem& system,
                                        const ClusterPlacementResult& result,
                                        const sim::SimulationConfig& config);

}  // namespace cdn::cluster
