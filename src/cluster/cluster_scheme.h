// Per-cluster replication granularity — the paper's future work.
//
// Section 5.3: "against a per-cluster replication scheme [6] hybrid will
// again be the winner with the latency reduction varying in between the
// per-site replication and the caching case ... Proving the validity of the
// above claim is left for future work."  This module implements that
// missing comparator: each site's objects are grouped into popularity
// clusters (contiguous Zipf-rank ranges, the natural popularity-based
// clustering of [6]), and replication is decided per cluster instead of per
// site.

#pragma once

#include <cstdint>
#include <vector>

#include "src/workload/site_catalog.h"

namespace cdn::cluster {

using ClusterId = std::uint32_t;

/// One cluster: a contiguous popularity-rank range of one site.
struct Cluster {
  workload::SiteId site = 0;
  std::uint32_t first_rank = 1;  // inclusive, 1-based
  std::uint32_t last_rank = 1;   // inclusive
  std::uint64_t bytes = 0;
  /// Fraction of the parent site's requests hitting this cluster
  /// (the Zipf mass of its rank range); sums to 1 per site.
  double mass = 0.0;
};

/// Partition of every site's catalogue into `clusters_per_site` clusters of
/// (near-)equal rank count.  Cluster ids are dense: site j's clusters are
/// [j*C, (j+1)*C).
class ClusterScheme {
 public:
  /// Requires 1 <= clusters_per_site <= objects_per_site.
  ClusterScheme(const workload::SiteCatalog& catalog,
                std::uint32_t clusters_per_site);

  std::size_t cluster_count() const noexcept { return clusters_.size(); }
  std::uint32_t clusters_per_site() const noexcept {
    return clusters_per_site_;
  }

  const Cluster& cluster(ClusterId id) const;

  /// Cluster holding (site, rank).
  ClusterId cluster_of(workload::SiteId site, std::uint32_t rank) const;

  /// Byte sizes of all clusters, in id order (for ReplicaPlacement).
  std::vector<std::uint64_t> cluster_bytes() const;

 private:
  std::uint32_t clusters_per_site_;
  std::uint32_t objects_per_site_;
  std::vector<Cluster> clusters_;
};

}  // namespace cdn::cluster
