#include "src/cluster/cluster_scheme.h"

#include "src/util/error.h"

namespace cdn::cluster {

ClusterScheme::ClusterScheme(const workload::SiteCatalog& catalog,
                             std::uint32_t clusters_per_site)
    : clusters_per_site_(clusters_per_site),
      objects_per_site_(
          static_cast<std::uint32_t>(catalog.objects_per_site())) {
  CDN_EXPECT(clusters_per_site >= 1, "need at least one cluster per site");
  CDN_EXPECT(clusters_per_site <= catalog.objects_per_site(),
             "cannot have more clusters than objects");

  const auto& zipf = catalog.object_popularity();
  const std::uint32_t L = objects_per_site_;
  clusters_.reserve(catalog.site_count() * clusters_per_site);
  for (workload::SiteId j = 0; j < catalog.site_count(); ++j) {
    for (std::uint32_t c = 0; c < clusters_per_site; ++c) {
      Cluster cl;
      cl.site = j;
      // Near-equal rank counts; remainders spread over the first clusters.
      cl.first_rank = 1 + c * L / clusters_per_site;
      cl.last_rank = (c + 1) * L / clusters_per_site;
      CDN_CHECK(cl.first_rank <= cl.last_rank, "empty cluster");
      for (std::uint32_t r = cl.first_rank; r <= cl.last_rank; ++r) {
        cl.bytes += catalog.object_bytes(j, r);
      }
      cl.mass = zipf.cdf(cl.last_rank) -
                (cl.first_rank > 1 ? zipf.cdf(cl.first_rank - 1) : 0.0);
      clusters_.push_back(cl);
    }
  }
}

const Cluster& ClusterScheme::cluster(ClusterId id) const {
  CDN_EXPECT(id < clusters_.size(), "cluster id out of range");
  return clusters_[id];
}

ClusterId ClusterScheme::cluster_of(workload::SiteId site,
                                    std::uint32_t rank) const {
  CDN_EXPECT(rank >= 1 && rank <= objects_per_site_, "rank out of range");
  // Invert the near-equal partition: candidate from the uniform split, then
  // adjust by one if the remainder spreading moved the boundary.
  const std::uint64_t base = static_cast<std::uint64_t>(site) *
                             clusters_per_site_;
  std::uint32_t c = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(rank - 1) * clusters_per_site_) /
      objects_per_site_);
  while (c > 0 && clusters_[base + c].first_rank > rank) --c;
  while (c + 1 < clusters_per_site_ && clusters_[base + c].last_rank < rank) {
    ++c;
  }
  const ClusterId id = static_cast<ClusterId>(base + c);
  CDN_DCHECK(clusters_[id].first_rank <= rank &&
                 rank <= clusters_[id].last_rank,
             "cluster_of inversion failed");
  return id;
}

std::vector<std::uint64_t> ClusterScheme::cluster_bytes() const {
  std::vector<std::uint64_t> out;
  out.reserve(clusters_.size());
  for (const auto& c : clusters_) out.push_back(c.bytes);
  return out;
}

}  // namespace cdn::cluster
