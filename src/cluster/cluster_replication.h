// Greedy-global replica placement at cluster granularity, via an
// accelerated ("lazy") greedy.
//
// For pure replication the candidate benefit is non-increasing as replicas
// appear (new replicas only lower nearest-copy costs and never raise
// anyone's marginal gain), so the CELF-style lazy evaluation is *exact*:
// keep candidates in a max-heap keyed by a possibly stale benefit; pop,
// re-evaluate, and accept iff the fresh value still dominates the heap.
// This is what makes cluster-granularity (M x C units) tractable — the
// exhaustive per-iteration sweep of greedy_global would cost
// O(R * N * MC * N).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cdn/nearest_replica.h"
#include "src/cdn/system.h"
#include "src/cdn/replication.h"
#include "src/cluster/cluster_scheme.h"
#include "src/workload/demand.h"

namespace cdn::cluster {

/// Output of the cluster-granularity placement.  Owns the expanded
/// (cluster-axis) distance oracle that `nearest` points into, so the struct
/// is safely movable but the oracle's heap address never changes.
struct ClusterPlacementResult {
  ClusterScheme scheme;
  std::unique_ptr<sys::DistanceOracle> cluster_distances;
  sys::ReplicaPlacement placement;   // over cluster units
  sys::NearestReplicaIndex nearest;  // over cluster units
  double predicted_total_cost = 0.0;
  double predicted_cost_per_request = 0.0;
  std::size_t replicas_created = 0;
};

/// Generic lazy greedy over arbitrary replication units.
///
/// `unit_demand` is N x U (expected requests per server and unit),
/// `unit_distances` an oracle whose "site" axis is the unit axis, and
/// `unit_bytes` the per-unit sizes.  Returns the placement, the consistent
/// nearest index and the cost trajectory.  Exact for the pure-replication
/// objective (see file comment).  `unit_distances` must outlive the
/// returned value (the nearest index points into it).
struct LazyGreedyOutput {
  sys::ReplicaPlacement placement;
  sys::NearestReplicaIndex nearest;
  std::vector<double> cost_trajectory;
};
LazyGreedyOutput lazy_greedy_replication(
    const workload::DemandMatrix& unit_demand,
    const sys::DistanceOracle& unit_distances,
    const std::vector<std::uint64_t>& server_budgets,
    const std::vector<std::uint64_t>& unit_bytes);

/// Per-cluster greedy-global on a CDN system: splits every site into
/// `clusters_per_site` popularity clusters and places cluster replicas.
/// Pure replication — no caching (the comparator of [6]).
ClusterPlacementResult cluster_greedy_global(const sys::CdnSystem& system,
                                             std::uint32_t clusters_per_site);

}  // namespace cdn::cluster
