#include "src/cluster/cluster_sim.h"

#include "src/util/error.h"
#include "src/workload/request_stream.h"

namespace cdn::cluster {

sim::SimulationReport simulate_clusters(const sys::CdnSystem& system,
                                        const ClusterPlacementResult& result,
                                        const sim::SimulationConfig& config) {
  CDN_EXPECT(config.total_requests > 0, "need at least one request");
  CDN_EXPECT(config.warmup_fraction >= 0.0 && config.warmup_fraction < 1.0,
             "warmup fraction must be in [0, 1)");

  workload::RequestStream stream(system.catalog(), system.demand(),
                                 config.seed, config.stream_locality);
  const std::uint64_t warmup = static_cast<std::uint64_t>(
      config.warmup_fraction * static_cast<double>(config.total_requests));

  sim::SimulationReport report;
  report.total_requests = config.total_requests;
  report.latency_cdf.reserve(config.total_requests - warmup);

  double hop_sum = 0.0;
  std::uint64_t local = 0;
  for (std::uint64_t t = 0; t < config.total_requests; ++t) {
    const workload::Request req = stream.next();
    const ClusterId cl = result.scheme.cluster_of(req.site, req.rank);
    const auto server = static_cast<sys::ServerIndex>(req.server);
    const auto unit = static_cast<sys::SiteIndex>(cl);

    double hops = 0.0;
    if (result.placement.is_replicated(server, unit)) {
      // Local cluster replica (always consistent, like site replicas).
    } else {
      hops = result.nearest.cost(server, unit);
    }
    if (t >= warmup) {
      report.latency_cdf.add(config.latency.latency_ms(hops));
      hop_sum += hops;
      if (hops == 0.0) ++local;
    }
  }

  report.measured_requests = config.total_requests - warmup;
  CDN_CHECK(report.measured_requests > 0, "warm-up consumed every request");
  const double measured = static_cast<double>(report.measured_requests);
  report.mean_latency_ms = report.latency_cdf.mean();
  report.mean_cost_hops = hop_sum / measured;
  report.local_ratio = static_cast<double>(local) / measured;
  report.cache_hit_ratio = 0.0;  // no caches in this scheme
  return report;
}

}  // namespace cdn::cluster
