#include "src/util/thread_pool.h"

#include <algorithm>

#include "src/util/error.h"

namespace cdn::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  CDN_EXPECT(task != nullptr, "null task");
  {
    std::unique_lock lock(mu_);
    CDN_EXPECT(!stop_, "submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace cdn::util
