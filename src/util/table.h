// Aligned plain-text tables and CSV emission for benchmark reports.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cdn::util {

/// Column-aligned text table builder.  All benchmark binaries print their
/// paper-figure data through this so the output is uniform and diffable.
class TextTable {
 public:
  /// Sets the header row and fixes the column count.
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Convenience for mixed string/double rows.
  void add_row_values(const std::vector<double>& values, int precision = 4);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return header_.size(); }

  /// Renders with padded columns and a rule under the header.
  std::string str() const;

  /// Renders as RFC-4180-ish CSV (quotes fields containing commas/quotes).
  std::string csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table rows).
std::string format_double(double v, int precision = 4);

}  // namespace cdn::util
