// Strict token-level parsing of untrusted text inputs (fault schedules,
// CSV traces).  Every function consumes exactly one whole token or throws
// PreconditionError with the caller-supplied location prefix and the
// offending token quoted — no silent wrap-around of negative numbers, no
// NaN/Inf smuggled through operator>>, no partially-consumed garbage.

#pragma once

#include <cstdint>
#include <string>

namespace cdn::util {

/// Parses `token` as a full unsigned 64-bit decimal integer.  Rejects empty
/// tokens, signs, hex/octal prefixes doing anything, trailing junk and
/// out-of-range values.  `where` prefixes the error, e.g.
/// "fault schedule line 3, col 8".
std::uint64_t parse_u64_token(const std::string& token,
                              const std::string& where);

/// parse_u64_token narrowed to 32 bits, same rejection rules.
std::uint32_t parse_u32_token(const std::string& token,
                              const std::string& where);

/// Parses `token` as a finite double (scientific notation allowed).
/// Rejects empty tokens, trailing junk, NaN, Inf and overflow.
double parse_finite_double_token(const std::string& token,
                                 const std::string& where);

/// 1-based column of `pos` within a line (for error messages).
inline std::size_t text_column(std::size_t pos) { return pos + 1; }

}  // namespace cdn::util
