#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace cdn::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile_sorted(std::span<const double> sorted_values, double q) {
  CDN_EXPECT(!sorted_values.empty(), "quantile of empty sample");
  CDN_EXPECT(q >= 0.0 && q <= 1.0, "quantile level must be in [0, 1]");
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_values[lo] + frac * (sorted_values[hi] - sorted_values[lo]);
}

std::vector<double> quantiles(std::span<const double> values,
                              std::span<const double> qs) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(quantile_sorted(sorted, q));
  return out;
}

double mean_relative_error(std::span<const double> reference,
                           std::span<const double> estimate) {
  CDN_EXPECT(reference.size() == estimate.size(),
             "series must have equal length");
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (reference[i] == 0.0) continue;
    acc += std::abs(estimate[i] - reference[i]) / std::abs(reference[i]);
    ++counted;
  }
  return counted ? acc / static_cast<double>(counted) : 0.0;
}

}  // namespace cdn::util
