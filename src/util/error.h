// Error handling primitives for hybridcdn.
//
// The library follows the C++ Core Guidelines convention of throwing on
// precondition violations in API boundaries (I.5/I.6 via CDN_EXPECT) and
// aborting on internal invariant corruption in debug builds (CDN_DCHECK).

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cdn {

/// Exception thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Exception thrown when an internal invariant fails at runtime in a way
/// that cannot be attributed to caller input (e.g. numeric breakdown).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_internal(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace detail

/// Validate a documented precondition on caller input; throws
/// cdn::PreconditionError when violated. Always on, also in release builds:
/// all uses are O(1) checks at API boundaries.
#define CDN_EXPECT(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::cdn::detail::throw_precondition(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                      \
  } while (0)

/// Validate an internal invariant; throws cdn::InternalError when violated.
#define CDN_CHECK(cond, msg)                                           \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::cdn::detail::throw_internal(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                  \
  } while (0)

#ifndef NDEBUG
/// Debug-only invariant check for hot paths (compiled out in release).
#define CDN_DCHECK(cond, msg) CDN_CHECK(cond, msg)
#else
#define CDN_DCHECK(cond, msg) \
  do {                        \
  } while (0)
#endif

}  // namespace cdn
