// Minimal work-stealing-free thread pool plus static-partition parallel loops.
//
// The hybrid greedy algorithm evaluates O(M*N) candidate replicas per
// iteration with identical per-candidate cost, so a static partition over a
// fixed pool (the OpenMP `parallel for schedule(static)` idiom) is the right
// shape; no dynamic load balancing is needed.  The loop drivers are
// templates: the body is invoked directly (inlinable), with type erasure
// paid once per submitted chunk — never per index.

#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace cdn::util {

/// Fixed-size thread pool executing void() tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Process-wide shared pool (lazily constructed, hardware concurrency).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::queue<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

namespace detail {

/// Static partition of [begin, end) into at most thread_count() chunks of at
/// least `grain` indices; chunk_body(lo, hi) runs on the pool (or inline
/// when the range is small or the pool has a single worker).  Blocks until
/// every chunk has finished, so capturing chunk_body by reference is safe.
template <typename ChunkBody>
void parallel_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                     std::size_t grain, const ChunkBody& chunk_body) {
  static_assert(
      std::is_invocable_v<const ChunkBody&, std::size_t, std::size_t>,
      "chunk body must be callable as body(lo, hi)");
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.thread_count();
  if (workers <= 1 || n <= grain) {
    chunk_body(begin, end);
    return;
  }
  const std::size_t chunks = std::min(workers, (n + grain - 1) / grain);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.submit([lo, hi, &chunk_body] { chunk_body(lo, hi); });
  }
  pool.wait_idle();
}

}  // namespace detail

/// Runs body(i) for i in [begin, end) across the pool with a static
/// partition; blocks until complete.  Falls back to the calling thread when
/// the range is small or the pool has a single worker.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const Body& body, std::size_t grain = 1) {
  static_assert(std::is_invocable_v<const Body&, std::size_t>,
                "loop body must be callable as body(i)");
  detail::parallel_chunks(pool, begin, end, grain,
                          [&body](std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i) body(i);
                          });
}

/// parallel_for over the shared pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  std::size_t grain = 1) {
  parallel_for(ThreadPool::shared(), begin, end, body, grain);
}

/// Chunked variant: body(lo, hi) receives one contiguous sub-range per
/// chunk, letting the caller hoist per-chunk state (accumulators, scratch
/// buffers) out of the index loop.
template <typename Body>
void parallel_for_chunked(ThreadPool& pool, std::size_t begin,
                          std::size_t end, const Body& body,
                          std::size_t grain = 1) {
  detail::parallel_chunks(pool, begin, end, grain, body);
}

/// parallel_for_chunked over the shared pool.
template <typename Body>
void parallel_for_chunked(std::size_t begin, std::size_t end, const Body& body,
                          std::size_t grain = 1) {
  detail::parallel_chunks(ThreadPool::shared(), begin, end, grain, body);
}

}  // namespace cdn::util
