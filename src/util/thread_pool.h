// Minimal work-stealing-free thread pool plus a static-partition parallel_for.
//
// The hybrid greedy algorithm evaluates O(M*N) candidate replicas per
// iteration with identical per-candidate cost, so a static partition over a
// fixed pool (the OpenMP `parallel for schedule(static)` idiom) is the right
// shape; no dynamic load balancing is needed.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cdn::util {

/// Fixed-size thread pool executing void() tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Process-wide shared pool (lazily constructed, hardware concurrency).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::queue<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs body(i) for i in [begin, end) across the pool with a static
/// partition; blocks until complete.  Falls back to the calling thread when
/// the range is small or the pool has a single worker.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// parallel_for over the shared pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace cdn::util
