// Zipf-like distribution over object ranks, and a generic O(1) alias-method
// sampler for arbitrary finite discrete distributions.
//
// The paper models per-site object popularity as Zipf-like with parameter
// theta: P(rank k) = alpha / k^theta, alpha = 1 / sum_{k=1..L} k^-theta.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.h"

namespace cdn::util {

/// Zipf-like distribution over ranks 1..size with exponent theta >= 0.
/// theta = 0 degenerates to uniform; theta = 1 is classic Zipf.
class ZipfDistribution {
 public:
  /// Requires size >= 1 and theta >= 0.
  ZipfDistribution(std::size_t size, double theta);

  /// Probability of rank k (1-based).  Requires 1 <= k <= size().
  double pmf(std::size_t k) const;

  /// Cumulative probability of ranks 1..k.  Requires 1 <= k <= size().
  double cdf(std::size_t k) const;

  /// Normalisation constant alpha = 1 / sum k^-theta.
  double alpha() const noexcept { return alpha_; }

  double theta() const noexcept { return theta_; }
  std::size_t size() const noexcept { return pmf_.size(); }

  /// Draws a rank in [1, size] by inverse-CDF binary search, O(log size).
  std::size_t sample(Rng& rng) const;

  /// Read-only view of the pmf, index 0 == rank 1.
  std::span<const double> probabilities() const noexcept { return pmf_; }

 private:
  double theta_;
  double alpha_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;
};

/// Walker alias method: O(n) construction, O(1) sampling from any finite
/// discrete distribution.  Used for the simulator's (server, site) request
/// mixture, which is sampled hundreds of millions of times.
class AliasSampler {
 public:
  AliasSampler() = default;

  /// Builds the table from non-negative weights (need not be normalised).
  /// Requires at least one strictly positive weight.
  explicit AliasSampler(std::span<const double> weights);

  /// Draws an index in [0, size()).
  std::size_t sample(Rng& rng) const;

  /// Normalised probability of index i (recomputed from stored weights).
  double probability(std::size_t i) const;

  std::size_t size() const noexcept { return prob_.size(); }
  bool empty() const noexcept { return prob_.empty(); }

 private:
  std::vector<double> prob_;           // threshold within each bucket
  std::vector<std::uint32_t> alias_;   // alternative outcome per bucket
  std::vector<double> normalized_;     // exact probabilities, for inspection
};

}  // namespace cdn::util
