#include "src/util/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace cdn::util {

namespace {

/// Values below this magnitude collapse into the shared zero bucket; a
/// first-hop latency of exactly 0 ms is the only simulator value that
/// lands there.
constexpr double kMinTrackable = 1e-9;

}  // namespace

QuantileSketch::QuantileSketch(double relative_error)
    : alpha_(relative_error),
      gamma_((1.0 + relative_error) / (1.0 - relative_error)),
      inv_log_gamma_(1.0 / std::log((1.0 + relative_error) /
                                    (1.0 - relative_error))) {
  CDN_EXPECT(relative_error > 0.0 && relative_error < 1.0,
             "sketch relative error must be in (0, 1)");
}

std::int32_t QuantileSketch::bucket_index(double x) const {
  return static_cast<std::int32_t>(std::ceil(std::log(x) * inv_log_gamma_));
}

double QuantileSketch::bucket_value(std::int32_t index) const {
  // Midpoint (in relative terms) of (gamma^{i-1}, gamma^i]: every sample in
  // the bucket is within alpha of this representative.
  return 2.0 * std::pow(gamma_, index) / (1.0 + gamma_);
}

void QuantileSketch::add(double x) {
  CDN_DCHECK(x >= 0.0, "quantile sketch samples must be non-negative");
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  if (x < kMinTrackable) {
    ++zero_count_;
  } else {
    ++buckets_[bucket_index(x)];
  }
}

void QuantileSketch::add(double x, std::uint64_t weight) {
  CDN_DCHECK(x >= 0.0, "quantile sketch samples must be non-negative");
  if (weight == 0) return;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_ += weight;
  sum_ += x * static_cast<double>(weight);
  if (x < kMinTrackable) {
    zero_count_ += weight;
  } else {
    buckets_[bucket_index(x)] += weight;
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  CDN_EXPECT(alpha_ == other.alpha_,
             "cannot merge sketches with different error bounds");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  zero_count_ += other.zero_count_;
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
}

double QuantileSketch::mean() const {
  CDN_EXPECT(count_ > 0, "mean of empty sketch");
  return sum_ / static_cast<double>(count_);
}

double QuantileSketch::min() const {
  CDN_EXPECT(count_ > 0, "min of empty sketch");
  return min_;
}

double QuantileSketch::max() const {
  CDN_EXPECT(count_ > 0, "max of empty sketch");
  return max_;
}

double QuantileSketch::quantile(double q) const {
  CDN_EXPECT(count_ > 0, "quantile of empty sketch");
  CDN_EXPECT(q >= 0.0 && q <= 1.0, "quantile requires q in [0, 1]");
  const double rank = q * static_cast<double>(count_ - 1);
  double cum = static_cast<double>(zero_count_);
  if (rank < cum) return std::clamp(0.0, min_, max_);
  for (const auto& [index, n] : buckets_) {
    cum += static_cast<double>(n);
    if (rank < cum) return std::clamp(bucket_value(index), min_, max_);
  }
  return max_;
}

double QuantileSketch::evaluate(double x) const {
  CDN_EXPECT(count_ > 0, "CDF of empty sketch");
  if (x < min_) return 0.0;
  if (x >= max_) return 1.0;
  std::uint64_t cum = zero_count_;
  if (x >= kMinTrackable) {
    const std::int32_t limit = bucket_index(x);
    for (const auto& [index, n] : buckets_) {
      if (index > limit) break;
      cum += n;
    }
  }
  return std::min(1.0, static_cast<double>(cum) /
                           static_cast<double>(count_));
}

std::vector<CdfPoint> QuantileSketch::grid(std::size_t points) const {
  CDN_EXPECT(points >= 2, "CDF grid needs at least 2 points");
  CDN_EXPECT(count_ > 0, "CDF of empty sketch");
  std::vector<CdfPoint> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = min_ + (max_ - min_) * static_cast<double>(i) /
                                static_cast<double>(points - 1);
    out.push_back({x, evaluate(x)});
  }
  return out;
}

std::vector<CdfPoint> QuantileSketch::at(std::span<const double> xs) const {
  std::vector<CdfPoint> out;
  out.reserve(xs.size());
  for (const double x : xs) out.push_back({x, evaluate(x)});
  return out;
}

void LatencyDistribution::use_sketch(double relative_error) {
  CDN_EXPECT(exact_.empty() && sketch_.empty(),
             "storage mode must be chosen before the first sample");
  sketch_ = QuantileSketch(relative_error);
  use_sketch_ = true;
}

void LatencyDistribution::add(double x, std::uint64_t weight) {
  CDN_EXPECT(use_sketch_,
             "weighted add requires sketch mode (call use_sketch first)");
  sketch_.add(x, weight);
}

void LatencyDistribution::merge(const LatencyDistribution& other) {
  CDN_EXPECT(use_sketch_ == other.use_sketch_,
             "cannot merge exact and sketched distributions");
  if (use_sketch_) {
    sketch_.merge(other.sketch_);
  } else {
    exact_.merge(other.exact_);
  }
}

const EmpiricalCdf& LatencyDistribution::exact() const {
  CDN_EXPECT(!use_sketch_, "distribution is sketched");
  return exact_;
}

const QuantileSketch& LatencyDistribution::sketch() const {
  CDN_EXPECT(use_sketch_, "distribution stores exact samples");
  return sketch_;
}

}  // namespace cdn::util
