// Bounds-checked binary (de)serialisation primitives for crash-safe state
// snapshots (src/recover) and the trace formats.
//
// ByteWriter appends little-endian fixed-width fields to a growable buffer;
// ByteReader walks a read-only view of such a buffer and throws
// PreconditionError — never reads out of bounds, never crashes — when the
// data is truncated or a declared length exceeds what is actually there.
// Both are deliberately dumb: framing, versioning and checksums live in the
// layers above (src/recover/checkpoint.h, workload/trace_io.cpp).

#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/util/error.h"

namespace cdn::util {

/// FNV-1a over a byte range; `seed` chains incremental runs.
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept;

/// Append-only little-endian buffer writer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { raw_int(v); }
  void u64(std::uint64_t v) { raw_int(v); }
  void i64(std::int64_t v) { raw_int(static_cast<std::uint64_t>(v)); }
  /// Doubles travel as their exact bit pattern — round-trips are identity.
  void f64(double v) { raw_int(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  void raw(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + bytes);
  }

  const std::vector<std::uint8_t>& buffer() const noexcept { return buf_; }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  template <typename T>
  void raw_int(T v) {
    std::uint8_t bytes[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    raw(bytes, sizeof(T));
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a serialized byte range (non-owning).  Every
/// read validates the remaining length first and throws PreconditionError
/// on truncation, so corrupt or hostile inputs produce a clean error.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1, "u8");
    return data_[pos_++];
  }
  std::uint32_t u32() { return read_int<std::uint32_t>("u32"); }
  std::uint64_t u64() { return read_int<std::uint64_t>("u64"); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(read_int<std::uint64_t>("f64")); }
  std::string str() {
    const std::uint64_t n = u64();
    need(n, "string body");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  void raw(void* out, std::size_t bytes) {
    need(bytes, "raw bytes");
    std::memcpy(out, data_.data() + pos_, bytes);
    pos_ += bytes;
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }
  std::size_t position() const noexcept { return pos_; }

  /// Validates that `n` more bytes exist (used before bulk reads whose size
  /// comes from the data itself, e.g. `count * record_size`).
  void need(std::uint64_t n, const char* what) const {
    CDN_EXPECT(n <= remaining(),
               "serialized data truncated: need " + std::to_string(n) +
                   " bytes for " + what + " at offset " +
                   std::to_string(pos_) + ", only " +
                   std::to_string(remaining()) + " left");
  }

 private:
  template <typename T>
  T read_int(const char* what) {
    need(sizeof(T), what);
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace cdn::util
