// Bounded-memory quantile estimation for parallel simulation shards.
//
// QuantileSketch is a DDSketch-style log-bucketed summary: values land in
// geometrically spaced buckets chosen so every reported quantile carries a
// guaranteed relative error of at most `relative_error`.  Memory is bounded
// by the number of occupied buckets (a few hundred for any latency range
// this repo produces) instead of one double per sample, and two sketches
// with the same error bound merge exactly — the primitive that lets the
// sharded simulator combine per-shard latency distributions
// deterministically without ever materialising the full sample vector.
//
// LatencyDistribution wraps the two storage strategies behind one query
// interface: exact sample storage (EmpiricalCdf — the sequential
// simulator's bit-identical reference path) or the sketch (parallel runs).

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/util/cdf.h"

namespace cdn::util {

/// Log-bucketed quantile sketch with a relative-error guarantee:
/// |quantile(q) - exact_quantile(q)| <= relative_error * exact_quantile(q)
/// for every q, at O(log(max/min) / relative_error) memory.
class QuantileSketch {
 public:
  /// `relative_error` (alpha) in (0, 1); buckets grow by
  /// gamma = (1 + alpha) / (1 - alpha) per step.
  explicit QuantileSketch(double relative_error = 0.005);

  /// Adds one sample.  Requires x >= 0 (latencies never go negative);
  /// values below the minimum trackable magnitude share one zero bucket.
  void add(double x);

  /// Adds `weight` identical samples of value x in O(1) — the primitive the
  /// flow-level engine uses to materialise an analytically computed latency
  /// mix without a per-request loop.  Equivalent to calling add(x) `weight`
  /// times; weight 0 is a no-op.
  void add(double x, std::uint64_t weight);

  /// Exact merge; both sketches must share the same relative_error.
  /// Deterministic: merging B into A equals having added B's samples to A.
  void merge(const QuantileSketch& other);

  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Exact (not sketched) streaming aggregates.
  double sum() const noexcept { return sum_; }
  double mean() const;
  double min() const;
  double max() const;

  /// Inverse CDF within the relative-error bound.  Requires at least one
  /// sample and q in [0, 1].
  double quantile(double q) const;

  /// F(x): fraction of samples <= x (error confined to x's bucket).
  double evaluate(double x) const;

  /// Evaluates the CDF on an evenly spaced grid spanning [min, max]
  /// (points >= 2) — same contract as EmpiricalCdf::grid.
  std::vector<CdfPoint> grid(std::size_t points) const;

  /// Evaluates the CDF at caller-chosen x-values.
  std::vector<CdfPoint> at(std::span<const double> xs) const;

  double relative_error() const noexcept { return alpha_; }
  /// Occupied buckets — the sketch's actual memory footprint.
  std::size_t bucket_count() const noexcept {
    return buckets_.size() + (zero_count_ > 0 ? 1 : 0);
  }

  /// Checkpointing.  alpha travels with the state so a restored sketch is
  /// indistinguishable from the original regardless of how the receiving
  /// object was constructed.
  void save_state(ByteWriter& w) const {
    w.f64(alpha_);
    w.u64(zero_count_);
    w.u64(count_);
    w.f64(sum_);
    w.f64(min_);
    w.f64(max_);
    w.u64(buckets_.size());
    for (const auto& [index, n] : buckets_) {
      w.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(index)));
      w.u64(n);
    }
  }
  void restore_state(ByteReader& r) {
    *this = QuantileSketch(r.f64());
    zero_count_ = r.u64();
    count_ = r.u64();
    sum_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
    const std::uint64_t n = r.u64();
    r.need(n * 16, "sketch buckets");
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto index =
          static_cast<std::int32_t>(static_cast<std::int64_t>(r.u64()));
      buckets_[index] = r.u64();
    }
  }

 private:
  std::int32_t bucket_index(double x) const;
  double bucket_value(std::int32_t index) const;

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  // Sparse bucket index -> sample count; std::map keeps ascending order for
  // deterministic quantile walks and merges.
  std::map<std::int32_t, std::uint64_t> buckets_;
  std::uint64_t zero_count_ = 0;  // samples below the trackable minimum
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Response-time distribution of one simulation run.  Exact mode (the
/// default) stores every sample like EmpiricalCdf and is what the
/// sequential simulator reports — bit-identical to the pre-parallel
/// engine.  Sketch mode (parallel runs) bounds memory and supports the
/// deterministic shard merge.  The query surface is shared so reporting
/// code never cares which engine produced the run.
class LatencyDistribution {
 public:
  LatencyDistribution() = default;

  /// Switches to sketch storage.  Must be called before the first add().
  void use_sketch(double relative_error);
  bool sketched() const noexcept { return use_sketch_; }

  void reserve(std::size_t n) {
    if (!use_sketch_) exact_.reserve(n);
  }
  void add(double x) {
    if (use_sketch_) {
      sketch_.add(x);
    } else {
      exact_.add(x);
    }
  }
  /// Weighted insertion; requires sketch mode (exact storage would need
  /// `weight` copies, defeating the point of a weighted add).
  void add(double x, std::uint64_t weight);
  /// Merges another distribution of the same mode.
  void merge(const LatencyDistribution& other);

  std::uint64_t count() const noexcept {
    return use_sketch_ ? sketch_.count()
                       : static_cast<std::uint64_t>(exact_.count());
  }
  bool empty() const noexcept {
    return use_sketch_ ? sketch_.empty() : exact_.empty();
  }
  double mean() const { return use_sketch_ ? sketch_.mean() : exact_.mean(); }
  double min() const { return use_sketch_ ? sketch_.min() : exact_.min(); }
  double max() const { return use_sketch_ ? sketch_.max() : exact_.max(); }
  double quantile(double q) const {
    return use_sketch_ ? sketch_.quantile(q) : exact_.quantile(q);
  }
  double evaluate(double x) const {
    return use_sketch_ ? sketch_.evaluate(x) : exact_.evaluate(x);
  }
  std::vector<CdfPoint> grid(std::size_t points) const {
    return use_sketch_ ? sketch_.grid(points) : exact_.grid(points);
  }
  std::vector<CdfPoint> at(std::span<const double> xs) const {
    return use_sketch_ ? sketch_.at(xs) : exact_.at(xs);
  }

  const EmpiricalCdf& exact() const;
  const QuantileSketch& sketch() const;

  /// Checkpointing: mode flag plus whichever storage is active.
  void save_state(ByteWriter& w) const {
    w.u8(use_sketch_ ? 1 : 0);
    if (use_sketch_) {
      sketch_.save_state(w);
    } else {
      exact_.save_state(w);
    }
  }
  void restore_state(ByteReader& r) {
    use_sketch_ = r.u8() != 0;
    if (use_sketch_) {
      sketch_.restore_state(r);
      exact_ = EmpiricalCdf();
    } else {
      exact_.restore_state(r);
      sketch_ = QuantileSketch();
    }
  }

 private:
  EmpiricalCdf exact_;
  QuantileSketch sketch_;
  bool use_sketch_ = false;
};

}  // namespace cdn::util
