// Continuous distributions used by the SURGE-like workload generator and the
// site-popularity model of Section 5.1 of the paper.

#pragma once

#include <cstdint>

#include "src/util/rng.h"

namespace cdn::util {

/// Standard normal variate (Marsaglia polar method; caches the spare value).
class NormalSampler {
 public:
  NormalSampler() = default;

  /// Draws N(mean, stddev).  Requires stddev >= 0.
  double sample(Rng& rng, double mean, double stddev);

 private:
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Normal distribution truncated to [lo, hi] by rejection.  The paper limits
/// per-server site popularity to mu +/- 3 sigma, where rejection is cheap
/// (acceptance probability ~99.7%).
class TruncatedNormal {
 public:
  /// Requires stddev > 0 and lo < hi with non-empty overlap around the mean.
  TruncatedNormal(double mean, double stddev, double lo, double hi);

  double sample(Rng& rng);

  double mean() const noexcept { return mean_; }
  double stddev() const noexcept { return stddev_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

 private:
  double mean_, stddev_, lo_, hi_;
  NormalSampler normal_;
};

/// Lognormal distribution parameterised by the underlying normal's
/// (mu, sigma) — SURGE's model for the body of web object sizes.
class Lognormal {
 public:
  /// Requires sigma >= 0.
  Lognormal(double mu, double sigma);

  double sample(Rng& rng);

  /// E[X] = exp(mu + sigma^2/2).
  double mean() const noexcept;

  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }

 private:
  double mu_, sigma_;
  NormalSampler normal_;
};

/// Bounded Pareto distribution on [lo, hi] with shape alpha — SURGE's model
/// for the heavy tail of web object sizes.  Bounding keeps synthetic site
/// sizes finite-variance and experiment-to-experiment comparable.
class BoundedPareto {
 public:
  /// Requires alpha > 0 and 0 < lo < hi.
  BoundedPareto(double alpha, double lo, double hi);

  double sample(Rng& rng);

  /// Exact mean of the bounded distribution.
  double mean() const noexcept;

  double alpha() const noexcept { return alpha_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

 private:
  double alpha_, lo_, hi_;
  double lo_pow_, hi_pow_;  // lo^alpha, hi^alpha cached for inversion
};

}  // namespace cdn::util
