// Empirical CDF construction — Figures 3–5 of the paper are response-time
// CDFs, so this is the primary reporting primitive.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/util/serial.h"

namespace cdn::util {

/// One evaluated point of an empirical CDF: F(x) = fraction of samples <= x.
struct CdfPoint {
  double x = 0.0;
  double f = 0.0;
};

/// Accumulates raw samples and evaluates the empirical CDF at chosen grids.
/// Storage is the raw sample vector; for the simulation scales in this repo
/// (tens of millions of doubles at most) this is cheaper and more precise
/// than a fixed-bin histogram.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;

  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  /// F(x): fraction of samples <= x.  O(log n) after the first call
  /// (lazy sort).  Requires at least one sample.
  double evaluate(double x) const;

  /// Inverse CDF (quantile).  Requires at least one sample, q in [0,1].
  double quantile(double q) const;

  /// Evaluates the CDF on an evenly spaced grid of `points` x-values
  /// spanning [min, max].  Requires points >= 2 and a non-empty sample.
  std::vector<CdfPoint> grid(std::size_t points) const;

  /// Evaluates the CDF at caller-chosen x-values (need not be sorted).
  std::vector<CdfPoint> at(std::span<const double> xs) const;

  double mean() const;
  double min() const;
  double max() const;

  /// Merges another CDF's samples into this one.
  void merge(const EmpiricalCdf& other);

  /// Checkpointing.  Samples are stored in their current in-memory order
  /// (insertion order while the simulator is mid-run — mean() sums floats
  /// in that order, so preserving it keeps resumed reports byte-identical).
  void save_state(ByteWriter& w) const {
    w.u8(sorted_ ? 1 : 0);
    w.u64(samples_.size());
    for (double s : samples_) w.f64(s);
  }
  void restore_state(ByteReader& r) {
    sorted_ = r.u8() != 0;
    const std::uint64_t n = r.u64();
    r.need(n * 8, "cdf samples");
    samples_.clear();
    samples_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) samples_.push_back(r.f64());
  }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Renders one or more named CDFs on a shared grid as an aligned text table —
/// the textual equivalent of the paper's figure panels.
std::string format_cdf_table(
    std::span<const std::string> names,
    std::span<const std::vector<CdfPoint>> curves);

}  // namespace cdn::util
