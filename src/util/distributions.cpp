#include "src/util/distributions.h"

#include <cmath>

#include "src/util/error.h"

namespace cdn::util {

double NormalSampler::sample(Rng& rng, double mean, double stddev) {
  CDN_EXPECT(stddev >= 0.0, "normal stddev must be non-negative");
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u, v, s;
  do {
    u = rng.uniform(-1.0, 1.0);
    v = rng.uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return mean + stddev * (u * factor);
}

TruncatedNormal::TruncatedNormal(double mean, double stddev, double lo,
                                 double hi)
    : mean_(mean), stddev_(stddev), lo_(lo), hi_(hi) {
  CDN_EXPECT(stddev > 0.0, "truncated normal stddev must be positive");
  CDN_EXPECT(lo < hi, "truncated normal requires lo < hi");
  // Rejection sampling needs non-negligible mass inside [lo, hi]; require the
  // interval to intersect mean +/- 6 sigma.
  CDN_EXPECT(hi > mean - 6.0 * stddev && lo < mean + 6.0 * stddev,
             "truncation interval carries negligible probability mass");
}

double TruncatedNormal::sample(Rng& rng) {
  for (;;) {
    const double x = normal_.sample(rng, mean_, stddev_);
    if (x >= lo_ && x <= hi_) return x;
  }
}

Lognormal::Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  CDN_EXPECT(sigma >= 0.0, "lognormal sigma must be non-negative");
}

double Lognormal::sample(Rng& rng) {
  return std::exp(normal_.sample(rng, mu_, sigma_));
}

double Lognormal::mean() const noexcept {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

BoundedPareto::BoundedPareto(double alpha, double lo, double hi)
    : alpha_(alpha), lo_(lo), hi_(hi) {
  CDN_EXPECT(alpha > 0.0, "Pareto shape must be positive");
  CDN_EXPECT(lo > 0.0 && lo < hi, "Pareto bounds must satisfy 0 < lo < hi");
  lo_pow_ = std::pow(lo_, alpha_);
  hi_pow_ = std::pow(hi_, alpha_);
}

double BoundedPareto::sample(Rng& rng) {
  // Inverse-CDF of the bounded Pareto.
  const double u = rng.uniform();
  const double denom = 1.0 - u * (1.0 - lo_pow_ / hi_pow_);
  return lo_ / std::pow(denom, 1.0 / alpha_);
}

double BoundedPareto::mean() const noexcept {
  if (alpha_ == 1.0) {
    return std::log(hi_ / lo_) / (1.0 / lo_ - 1.0 / hi_);
  }
  const double num = alpha_ / (alpha_ - 1.0) *
                     (std::pow(lo_, 1.0 - alpha_) - std::pow(hi_, 1.0 - alpha_));
  const double den = std::pow(lo_, -alpha_) - std::pow(hi_, -alpha_);
  return num / den;
}

}  // namespace cdn::util
