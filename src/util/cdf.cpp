#include "src/util/cdf.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "src/util/error.h"
#include "src/util/stats.h"

namespace cdn::util {

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::evaluate(double x) const {
  CDN_EXPECT(!samples_.empty(), "CDF of empty sample");
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  CDN_EXPECT(!samples_.empty(), "quantile of empty sample");
  ensure_sorted();
  return quantile_sorted(samples_, q);
}

std::vector<CdfPoint> EmpiricalCdf::grid(std::size_t points) const {
  CDN_EXPECT(points >= 2, "CDF grid needs at least 2 points");
  CDN_EXPECT(!samples_.empty(), "CDF of empty sample");
  ensure_sorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  std::vector<CdfPoint> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back({x, evaluate(x)});
  }
  return out;
}

std::vector<CdfPoint> EmpiricalCdf::at(std::span<const double> xs) const {
  std::vector<CdfPoint> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back({x, evaluate(x)});
  return out;
}

double EmpiricalCdf::mean() const {
  CDN_EXPECT(!samples_.empty(), "mean of empty sample");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::min() const {
  CDN_EXPECT(!samples_.empty(), "min of empty sample");
  ensure_sorted();
  return samples_.front();
}

double EmpiricalCdf::max() const {
  CDN_EXPECT(!samples_.empty(), "max of empty sample");
  ensure_sorted();
  return samples_.back();
}

void EmpiricalCdf::merge(const EmpiricalCdf& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

std::string format_cdf_table(std::span<const std::string> names,
                             std::span<const std::vector<CdfPoint>> curves) {
  CDN_EXPECT(names.size() == curves.size(),
             "one name per curve is required");
  CDN_EXPECT(!curves.empty(), "no curves to format");
  const std::size_t rows = curves[0].size();
  for (const auto& c : curves) {
    CDN_EXPECT(c.size() == rows, "curves must share a grid");
  }
  std::ostringstream os;
  os << std::setw(12) << "x";
  for (const auto& n : names) os << std::setw(14) << n;
  os << '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    os << std::setw(12) << std::fixed << std::setprecision(2)
       << curves[0][r].x;
    for (const auto& c : curves) {
      os << std::setw(14) << std::fixed << std::setprecision(4) << c[r].f;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace cdn::util
