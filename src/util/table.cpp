#include "src/util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/util/error.h"

namespace cdn::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CDN_EXPECT(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  CDN_EXPECT(row.size() == header_.size(),
             "row width must match header width");
  rows_.push_back(std::move(row));
}

void TextTable::add_row_values(const std::vector<double>& values,
                               int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace cdn::util
