// Streaming summary statistics and percentile utilities.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cdn::util {

/// Welford streaming accumulator: mean / variance / min / max in O(1) space.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction support; also used by
  /// obs::Histogram/TimerStat merging).  Empty sides are identities: merging
  /// an empty `other` is a no-op, merging INTO an empty accumulator copies
  /// `other` wholesale, and merging two empties stays empty — in particular
  /// min()/max() never pick up the 0.0 placeholder an empty accumulator
  /// reports, so negative-only samples survive a merge chain intact.
  void merge(const RunningStats& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Raw second central moment, for checkpointing (variance() loses the
  /// exact bit pattern through the division).
  double m2() const noexcept { return m2_; }
  /// Restores the exact internal state captured by count/mean/m2/min/max.
  void restore(std::uint64_t n, double mean, double m2, double min,
               double max) noexcept {
    n_ = n;
    mean_ = mean;
    m2_ = m2;
    min_ = min;
    max_ = max;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample by linear interpolation between order statistics
/// (type-7, the numpy/R default).  `sorted_values` must be ascending and
/// non-empty; q in [0, 1].
double quantile_sorted(std::span<const double> sorted_values, double q);

/// Convenience: copies, sorts, and evaluates several quantiles at once.
std::vector<double> quantiles(std::span<const double> values,
                              std::span<const double> qs);

/// Mean absolute relative error between two equally-sized series, ignoring
/// entries whose reference value is 0.  Used for model-vs-simulation checks
/// (Figure 6 reports < 7%).
double mean_relative_error(std::span<const double> reference,
                           std::span<const double> estimate);

}  // namespace cdn::util
