// Minimal command-line flag parsing for the CLI driver and examples.
//
// Supports --key=value, --key value, and bare --flag booleans.  Unknown
// flags are an error (catches typos in experiment scripts); positional
// arguments are collected in order.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace cdn::util {

/// One registered flag's description, for --help output.
struct FlagSpec {
  std::string name;
  std::string help;
  std::string default_value;
};

/// Declarative flag registry + parser.
class CliParser {
 public:
  /// `program_summary` is printed at the top of --help.
  explicit CliParser(std::string program_summary);

  /// Registers a flag with a default value (all flags are strings
  /// internally; typed getters convert on access).
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv.  Returns false (after printing usage) on --help or on a
  /// parse error; the caller should exit.
  bool parse(int argc, const char* const* argv);

  /// Typed access.  Throws PreconditionError on unknown flag names or
  /// malformed numeric values.
  std::string get_string(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True when the user passed the flag explicitly (even with its default
  /// value) — lets callers reject nonsensical explicit values like
  /// `--checkpoint-every-requests 0` while keeping 0 as the "off" default.
  bool is_set(const std::string& name) const noexcept {
    return set_flags_.contains(name);
  }

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Rendered usage text.
  std::string usage() const;

 private:
  std::string summary_;
  std::vector<FlagSpec> specs_;                 // declaration order
  std::map<std::string, std::string> values_;   // current values
  std::set<std::string> set_flags_;             // explicitly passed flags
  std::vector<std::string> positional_;
};

}  // namespace cdn::util
