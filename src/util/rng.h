// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (topology generation, workload
// synthesis, trace simulation) consume cdn::util::Rng so that every
// experiment is reproducible from a single 64-bit seed.  The generator is
// xoshiro256**, seeded through SplitMix64 as recommended by its authors;
// it is an order of magnitude faster than std::mt19937_64 and passes BigCrush.

#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "src/util/error.h"

namespace cdn::util {

/// SplitMix64 step; used for seeding and for cheap stateless hashing of
/// (seed, stream-id) pairs into independent generator states.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies std::uniform_random_bit_generator so it
/// can also drive <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a seed; distinct seeds give independent
  /// streams for all practical purposes (seeded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    reseed(seed);
  }

  /// Re-initialises the state from `seed`.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent sub-stream generator, e.g. one per server or per
  /// site, so that parallel components do not share state.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept {
    std::uint64_t mix = state_[0] ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    return Rng(splitmix64(mix));
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  Requires n > 0.  Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t uniform_index(std::uint64_t n) {
    CDN_DCHECK(n > 0, "uniform_index requires n > 0");
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    CDN_EXPECT(lo <= hi, "uniform_int requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_index(span));
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Raw generator state, for checkpointing.  A generator restored via
  /// set_state() produces the exact same sequence as the original.
  const std::array<std::uint64_t, 4>& state() const noexcept { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cdn::util
