#include "src/util/serial.h"

namespace cdn::util {

std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace cdn::util
