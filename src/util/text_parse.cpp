#include "src/util/text_parse.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "src/util/error.h"

namespace cdn::util {

namespace {

[[noreturn]] void fail(const std::string& where, const std::string& expected,
                       const std::string& token) {
  CDN_EXPECT(false,
             where + ": expected " + expected + " (got '" + token + "')");
  std::abort();  // unreachable; CDN_EXPECT(false, ...) always throws
}

bool all_digits(const std::string& token) {
  if (token.empty()) return false;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace

std::uint64_t parse_u64_token(const std::string& token,
                              const std::string& where) {
  // strtoull would skip whitespace, accept a sign (wrapping negatives!) and
  // stop at trailing junk — pre-filtering to pure digits closes all three.
  if (!all_digits(token)) fail(where, "an unsigned integer", token);
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (errno == ERANGE || end != token.c_str() + token.size()) {
    fail(where, "an unsigned integer in range", token);
  }
  return static_cast<std::uint64_t>(value);
}

std::uint32_t parse_u32_token(const std::string& token,
                              const std::string& where) {
  const std::uint64_t value = parse_u64_token(token, where);
  if (value > std::numeric_limits<std::uint32_t>::max()) {
    fail(where, "an unsigned 32-bit integer", token);
  }
  return static_cast<std::uint32_t>(value);
}

double parse_finite_double_token(const std::string& token,
                                 const std::string& where) {
  if (token.empty() || std::isspace(static_cast<unsigned char>(token[0]))) {
    fail(where, "a finite number", token);
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (errno == ERANGE || end != token.c_str() + token.size() ||
      !std::isfinite(value)) {
    fail(where, "a finite number", token);
  }
  return value;
}

}  // namespace cdn::util
