#include "src/util/zipf.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/error.h"

namespace cdn::util {

ZipfDistribution::ZipfDistribution(std::size_t size, double theta)
    : theta_(theta) {
  CDN_EXPECT(size >= 1, "Zipf distribution needs at least one rank");
  CDN_EXPECT(theta >= 0.0, "Zipf exponent must be non-negative");
  pmf_.resize(size);
  cdf_.resize(size);
  double norm = 0.0;
  for (std::size_t k = 1; k <= size; ++k) {
    const double w = std::pow(static_cast<double>(k), -theta);
    pmf_[k - 1] = w;
    norm += w;
  }
  alpha_ = 1.0 / norm;
  double acc = 0.0;
  for (std::size_t k = 0; k < size; ++k) {
    pmf_[k] *= alpha_;
    acc += pmf_[k];
    cdf_[k] = acc;
  }
  cdf_.back() = 1.0;  // guard against rounding drift
}

double ZipfDistribution::pmf(std::size_t k) const {
  CDN_EXPECT(k >= 1 && k <= pmf_.size(), "Zipf rank out of range");
  return pmf_[k - 1];
}

double ZipfDistribution::cdf(std::size_t k) const {
  CDN_EXPECT(k >= 1 && k <= cdf_.size(), "Zipf rank out of range");
  return cdf_[k - 1];
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

AliasSampler::AliasSampler(std::span<const double> weights) {
  CDN_EXPECT(!weights.empty(), "alias sampler needs at least one weight");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    CDN_EXPECT(w >= 0.0, "alias sampler weights must be non-negative");
    total += w;
  }
  CDN_EXPECT(total > 0.0, "alias sampler needs positive total weight");

  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;  // rounding leftovers
}

std::size_t AliasSampler::sample(Rng& rng) const {
  CDN_DCHECK(!prob_.empty(), "sampling from empty alias table");
  const std::size_t bucket = rng.uniform_index(prob_.size());
  return rng.uniform() < prob_[bucket] ? bucket : alias_[bucket];
}

double AliasSampler::probability(std::size_t i) const {
  CDN_EXPECT(i < normalized_.size(), "alias index out of range");
  return normalized_[i];
}

}  // namespace cdn::util
