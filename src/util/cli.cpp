#include "src/util/cli.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "src/util/error.h"

namespace cdn::util {

CliParser::CliParser(std::string program_summary)
    : summary_(std::move(program_summary)) {}

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  CDN_EXPECT(!name.empty() && name[0] != '-',
             "flag names are registered without dashes");
  CDN_EXPECT(!values_.contains(name), "duplicate flag: " + name);
  specs_.push_back({name, help, default_value});
  values_[name] = default_value;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = values_.find(arg);
    if (it == values_.end()) {
      std::cerr << "unknown flag --" << arg << "\n\n" << usage();
      return false;
    }
    if (!has_value) {
      // `--flag value` when the next token is not a flag; bare `--flag`
      // otherwise (boolean shorthand).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second = value;
    set_flags_.insert(arg);
  }
  return true;
}

std::string CliParser::get_string(const std::string& name) const {
  const auto it = values_.find(name);
  CDN_EXPECT(it != values_.end(), "unregistered flag: " + name);
  return it->second;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get_string(name);
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  CDN_EXPECT(end != v.c_str() && *end == '\0',
             "flag --" + name + " expects a number, got '" + v + "'");
  return parsed;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string v = get_string(name);
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  CDN_EXPECT(end != v.c_str() && *end == '\0',
             "flag --" + name + " expects an integer, got '" + v + "'");
  return parsed;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no" || v.empty()) return false;
  CDN_EXPECT(false, "flag --" + name + " expects a boolean, got '" + v + "'");
  return false;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << summary_ << "\n\nflags:\n";
  for (const auto& spec : specs_) {
    os << "  --" << spec.name;
    if (!spec.default_value.empty()) {
      os << " (default: " << spec.default_value << ")";
    }
    os << "\n      " << spec.help << '\n';
  }
  os << "  --help\n      print this message\n";
  return os.str();
}

}  // namespace cdn::util
