// Server-selection policies for redirected (cache-miss) traffic.
//
// Section 2.2's second design axis: "where to redirect a client request".
// The paper always picks the nearest copy SN_j^(i); [9] (Fei et al.) showed
// that folding server load into the choice improves response time.  This
// module implements flow-level load-aware selection: each server has a
// service capacity, a queueing penalty grows with its assigned flow, and
// miss traffic is (re)assigned to the holder minimising
//
//     C(i, holder) + queue_weight * rho / (1 - rho),   rho = load/capacity
//
// by iterating to a fixed point (the M/M/1 waiting-time shape).

#pragma once

#include <cstdint>
#include <vector>

#include "src/cdn/system.h"
#include "src/placement/placement_result.h"

namespace cdn::redirect {

enum class SelectionPolicy {
  kNearest,    // the paper's rule: always SN_j^(i)
  kLoadAware,  // [9]-style: distance + queueing penalty
};

struct SelectionParams {
  SelectionPolicy policy = SelectionPolicy::kLoadAware;
  /// Service capacity per server, in the demand matrix's request unit.
  /// 0 = auto: 1.5x the load the nearest-copy rule would put on the most
  /// loaded server (a mildly provisioned fleet), clamped to a positive
  /// floor so a zero-load fleet cannot yield a zero capacity (and a
  /// divide-by-zero utilisation).
  double server_capacity = 0.0;
  /// Capacity of each primary origin (they also serve misses).  0 = auto,
  /// same rule.
  double primary_capacity = 0.0;
  /// Weight converting utilisation penalty into hop units.
  double queue_weight = 2.0;
  /// Fixed-point iterations (each pass reassigns all flows).
  std::size_t iterations = 12;

  /// Optional fleet health masks (non-owning; null = fully healthy).
  /// `server_up` has length N (1 = up), `origin_up` length M.  Dead
  /// servers are excluded as redirect holders, and the FULL demand of a
  /// dead first-hop server becomes redirect flow (its warm cache is
  /// unreachable, so even would-be hits spill to the next-best copy).
  const std::vector<std::uint8_t>* server_up = nullptr;
  const std::vector<std::uint8_t>* origin_up = nullptr;
};

/// Where each (server, site) miss flow is sent and what it costs.
struct SelectionResult {
  /// Hop cost plus queueing penalty, averaged over all redirected requests.
  double mean_response_cost = 0.0;
  /// Pure network component of the same average.
  double mean_network_hops = 0.0;
  /// Max and mean utilisation over servers (assigned flow / capacity).
  double max_server_utilization = 0.0;
  double mean_server_utilization = 0.0;
  /// Assigned miss flow per server (length N) and per primary (length M).
  std::vector<double> server_flow;
  std::vector<double> primary_flow;

  /// Flow that originated at a dead first-hop server and was spilled to
  /// other holders (0 without a health mask).
  double failed_over_flow = 0.0;
  /// Flow with no live holder at all — the modelled availability gap.
  double unserved_flow = 0.0;
};

/// Assigns every miss flow of `result` (placement + modelled hit ratios) to
/// a copy holder under the given policy.  Flows are demand * (1 - h).
SelectionResult assign_miss_traffic(const sys::CdnSystem& system,
                                    const placement::PlacementResult& result,
                                    const SelectionParams& params = {});

}  // namespace cdn::redirect
