// Client populations and DNS-style first-hop mapping.
//
// Section 3: "Whenever a client issues an HTTP request ... the DNS resolver
// at the client side will reply with the IP address of the nearest, in
// terms of network distance, server.  We will call this server a first hop
// server."  The paper then abstracts clients into the demand matrix via a
// truncated normal.  This module provides the explicit alternative: client
// mass lives at stub nodes, every node is DNS-mapped to its nearest CDN
// server, and the demand matrix is *derived* from the topology — so
// per-server demand skew emerges from where servers sit instead of being
// sampled.

#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/shortest_paths.h"
#include "src/util/rng.h"
#include "src/workload/demand.h"
#include "src/workload/site_catalog.h"

namespace cdn::redirect {

/// Client mass per graph node plus the DNS node->server assignment.
class ClientPopulation {
 public:
  /// Assigns every node its nearest server (ties break to the lower server
  /// index, like a deterministic DNS).  `weights[v]` is the client mass at
  /// node v; pass an empty span for uniform mass on all non-server nodes.
  ClientPopulation(const topology::HopMatrix& server_hops,
                   std::vector<double> weights = {});

  std::size_t node_count() const noexcept { return assignment_.size(); }
  std::size_t server_count() const noexcept { return server_mass_.size(); }

  /// First-hop server of node v.
  std::uint32_t first_hop(topology::NodeId v) const;

  /// Client mass at node v.
  double weight(topology::NodeId v) const;

  /// Aggregated client mass behind server i (sums to ~1).
  double server_share(std::uint32_t server) const;

  /// Mean client-to-first-hop distance in hops (the access-side latency the
  /// paper folds into its fixed first-hop term).
  double mean_access_hops() const noexcept { return mean_access_hops_; }

  /// Derives the demand matrix: site j's volume (from its class weight) is
  /// split over servers by their client shares, optionally perturbed per
  /// (server, site) by a +/- `jitter` relative uniform factor so sites keep
  /// individual geographic profiles.
  workload::DemandMatrix derive_demand(const workload::SiteCatalog& catalog,
                                       double total_requests,
                                       util::Rng& rng,
                                       double jitter = 0.25) const;

 private:
  std::vector<std::uint32_t> assignment_;  // node -> server index
  std::vector<double> weights_;            // node -> client mass (normalised)
  std::vector<double> server_mass_;        // server -> aggregated mass
  double mean_access_hops_ = 0.0;
};

}  // namespace cdn::redirect
