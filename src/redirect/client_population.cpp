#include "src/redirect/client_population.h"

#include <numeric>

#include "src/util/error.h"

namespace cdn::redirect {

ClientPopulation::ClientPopulation(const topology::HopMatrix& server_hops,
                                   std::vector<double> weights) {
  const std::size_t nodes = server_hops.node_count();
  const std::size_t servers = server_hops.source_count();
  CDN_EXPECT(servers >= 1, "need at least one server");

  if (weights.empty()) {
    weights.assign(nodes, 1.0);
    // Servers host no clients of their own by default.
    for (std::size_t s = 0; s < servers; ++s) {
      weights[server_hops.source_node(s)] = 0.0;
    }
  }
  CDN_EXPECT(weights.size() == nodes, "one weight per node is required");
  double total = 0.0;
  for (double w : weights) {
    CDN_EXPECT(w >= 0.0, "client weights must be non-negative");
    total += w;
  }
  CDN_EXPECT(total > 0.0, "client population must have positive mass");
  for (double& w : weights) w /= total;
  weights_ = std::move(weights);

  assignment_.resize(nodes);
  server_mass_.assign(servers, 0.0);
  double access = 0.0;
  for (topology::NodeId v = 0; v < nodes; ++v) {
    std::uint32_t best = 0;
    std::uint32_t best_hops = server_hops.hops(0, v);
    for (std::uint32_t s = 1; s < servers; ++s) {
      const std::uint32_t h = server_hops.hops(s, v);
      if (h < best_hops) {
        best = s;
        best_hops = h;
      }
    }
    CDN_EXPECT(best_hops != topology::kUnreachableHops,
               "every client node must reach a server");
    assignment_[v] = best;
    server_mass_[best] += weights_[v];
    access += weights_[v] * static_cast<double>(best_hops);
  }
  mean_access_hops_ = access;
}

std::uint32_t ClientPopulation::first_hop(topology::NodeId v) const {
  CDN_EXPECT(v < assignment_.size(), "node out of range");
  return assignment_[v];
}

double ClientPopulation::weight(topology::NodeId v) const {
  CDN_EXPECT(v < weights_.size(), "node out of range");
  return weights_[v];
}

double ClientPopulation::server_share(std::uint32_t server) const {
  CDN_EXPECT(server < server_mass_.size(), "server out of range");
  return server_mass_[server];
}

workload::DemandMatrix ClientPopulation::derive_demand(
    const workload::SiteCatalog& catalog, double total_requests,
    util::Rng& rng, double jitter) const {
  CDN_EXPECT(total_requests > 0.0, "total request volume must be positive");
  CDN_EXPECT(jitter >= 0.0 && jitter < 1.0, "jitter must be in [0, 1)");
  const std::size_t servers = server_mass_.size();
  const std::size_t sites = catalog.site_count();

  double weight_sum = 0.0;
  for (workload::SiteId j = 0; j < sites; ++j) {
    weight_sum += catalog.volume_weight(j);
  }

  std::vector<double> values(servers * sites, 0.0);
  std::vector<double> shares(servers);
  for (workload::SiteId j = 0; j < sites; ++j) {
    const double site_volume =
        total_requests * catalog.volume_weight(j) / weight_sum;
    double share_total = 0.0;
    for (std::size_t i = 0; i < servers; ++i) {
      const double factor =
          jitter > 0.0 ? 1.0 + rng.uniform(-jitter, jitter) : 1.0;
      shares[i] = server_mass_[i] * factor;
      share_total += shares[i];
    }
    for (std::size_t i = 0; i < servers; ++i) {
      values[i * sites + j] = site_volume * shares[i] / share_total;
    }
  }
  return workload::DemandMatrix::from_values(servers, sites, values);
}

}  // namespace cdn::redirect
