#include "src/redirect/server_selection.h"

#include <algorithm>

#include "src/util/error.h"

namespace cdn::redirect {

namespace {

struct Flow {
  sys::ServerIndex source;
  sys::SiteIndex site;
  double volume;
  // Current holder: server index, or kPrimary for the site's origin.
  static constexpr std::uint32_t kPrimary = 0xffffffffu;
  std::uint32_t holder = kPrimary;
};

double queue_penalty(double load, double capacity, double weight) {
  if (capacity <= 0.0) return 0.0;
  const double rho = std::min(load / capacity, 0.99);
  return weight * rho / (1.0 - rho);
}

}  // namespace

SelectionResult assign_miss_traffic(const sys::CdnSystem& system,
                                    const placement::PlacementResult& result,
                                    const SelectionParams& params) {
  CDN_EXPECT(params.queue_weight >= 0.0,
             "queue weight must be non-negative");
  CDN_EXPECT(params.iterations >= 1, "need at least one assignment pass");
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  const auto& dist = system.distances();
  CDN_EXPECT(params.server_up == nullptr || params.server_up->size() == n,
             "server health mask length must equal the server count");
  CDN_EXPECT(params.origin_up == nullptr || params.origin_up->size() == m,
             "origin health mask length must equal the site count");
  const auto server_ok = [&](sys::ServerIndex i) {
    return params.server_up == nullptr || (*params.server_up)[i] != 0;
  };
  const auto origin_ok = [&](sys::SiteIndex j) {
    return params.origin_up == nullptr || (*params.origin_up)[j] != 0;
  };

  SelectionResult out;
  out.server_flow.assign(n, 0.0);
  out.primary_flow.assign(m, 0.0);

  // Collect miss flows and per-site LIVE holder lists.
  std::vector<Flow> flows;
  std::vector<std::vector<sys::ServerIndex>> holders(m);
  for (std::size_t j = 0; j < m; ++j) {
    for (const sys::ServerIndex h :
         result.placement.replicators(static_cast<sys::SiteIndex>(j))) {
      if (server_ok(h)) holders[j].push_back(h);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const auto server = static_cast<sys::ServerIndex>(i);
      const auto site = static_cast<sys::SiteIndex>(j);
      double volume;
      const bool source_dead = !server_ok(server);
      if (source_dead) {
        // Dead first-hop: its replicas and warm cache are unreachable, so
        // the site's FULL demand at this server spills to other holders.
        volume = system.demand().requests(server, site);
      } else {
        if (result.placement.is_replicated(server, site)) continue;
        volume = system.demand().requests(server, site) *
                 (1.0 - result.hit(server, site));
      }
      if (volume <= 0.0) continue;
      if (holders[j].empty() && !origin_ok(site)) {
        out.unserved_flow += volume;  // no live copy anywhere
        continue;
      }
      if (source_dead) out.failed_over_flow += volume;
      flows.push_back({server, site, volume});
    }
  }

  auto holder_cost = [&](const Flow& f, std::uint32_t holder) {
    return holder == Flow::kPrimary
               ? dist.server_to_primary(f.source, f.site)
               : dist.server_to_server(f.source,
                                       static_cast<sys::ServerIndex>(holder));
  };

  // Pass 0: nearest-LIVE-copy assignment (the paper's rule under a health
  // mask) — also the baseline from which auto-capacities are derived.
  for (Flow& f : flows) {
    // The unserved check above guarantees at least one candidate exists.
    std::uint32_t best;
    double best_cost;
    if (origin_ok(f.site)) {
      best = Flow::kPrimary;
      best_cost = holder_cost(f, Flow::kPrimary);
    } else {
      best = holders[f.site].front();
      best_cost = holder_cost(f, best);
    }
    for (const sys::ServerIndex h : holders[f.site]) {
      const double c = holder_cost(f, h);
      if (c < best_cost) {
        best_cost = c;
        best = h;
      }
    }
    f.holder = best;
    if (best == Flow::kPrimary) {
      out.primary_flow[f.site] += f.volume;
    } else {
      out.server_flow[best] += f.volume;
    }
  }

  // Auto capacity is clamped to a positive floor: a placement whose
  // nearest-copy rule puts zero load on every server (or every primary)
  // must not produce capacity 0 and rho = 0/0 below.
  constexpr double kAutoCapacityFloor = 1.0;
  double server_capacity = params.server_capacity;
  double primary_capacity = params.primary_capacity;
  if (server_capacity <= 0.0) {
    const double peak =
        *std::max_element(out.server_flow.begin(), out.server_flow.end());
    server_capacity = std::max(1.5 * peak, kAutoCapacityFloor);
  }
  if (primary_capacity <= 0.0) {
    const double peak =
        *std::max_element(out.primary_flow.begin(), out.primary_flow.end());
    primary_capacity = std::max(1.5 * peak, kAutoCapacityFloor);
  }
  CDN_CHECK(server_capacity > 0.0 && primary_capacity > 0.0,
            "selection capacities must be positive");

  if (params.policy == SelectionPolicy::kLoadAware) {
    for (std::size_t pass = 0; pass < params.iterations; ++pass) {
      bool moved = false;
      for (Flow& f : flows) {
        // Detach.
        if (f.holder == Flow::kPrimary) {
          out.primary_flow[f.site] -= f.volume;
        } else {
          out.server_flow[f.holder] -= f.volume;
        }
        // Choose the holder minimising network + queueing after adding.
        auto total_cost = [&](std::uint32_t holder) {
          const double net = holder_cost(f, holder);
          const double load = holder == Flow::kPrimary
                                  ? out.primary_flow[f.site] + f.volume
                                  : out.server_flow[holder] + f.volume;
          const double cap = holder == Flow::kPrimary ? primary_capacity
                                                      : server_capacity;
          return net + queue_penalty(load, cap, params.queue_weight);
        };
        std::uint32_t best = Flow::kPrimary;
        double best_cost = total_cost(Flow::kPrimary);
        for (const sys::ServerIndex h : holders[f.site]) {
          const double c = total_cost(h);
          if (c < best_cost) {
            best_cost = c;
            best = h;
          }
        }
        if (best != f.holder) moved = true;
        f.holder = best;
        if (best == Flow::kPrimary) {
          out.primary_flow[f.site] += f.volume;
        } else {
          out.server_flow[best] += f.volume;
        }
      }
      if (!moved) break;
    }
  }

  // Aggregate the report.
  double volume_total = 0.0, cost_total = 0.0, net_total = 0.0;
  for (const Flow& f : flows) {
    const double net = holder_cost(f, f.holder);
    const double load = f.holder == Flow::kPrimary
                            ? out.primary_flow[f.site]
                            : out.server_flow[f.holder];
    const double cap =
        f.holder == Flow::kPrimary ? primary_capacity : server_capacity;
    volume_total += f.volume;
    net_total += f.volume * net;
    cost_total +=
        f.volume * (net + queue_penalty(load, cap, params.queue_weight));
  }
  if (volume_total > 0.0) {
    out.mean_response_cost = cost_total / volume_total;
    out.mean_network_hops = net_total / volume_total;
  }
  double util_sum = 0.0;
  for (double flow : out.server_flow) {
    const double rho = flow / server_capacity;
    out.max_server_utilization = std::max(out.max_server_utilization, rho);
    util_sum += rho;
  }
  out.mean_server_utilization = util_sum / static_cast<double>(n);
  return out;
}

}  // namespace cdn::redirect
