#include "src/recover/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/util/error.h"

namespace cdn::recover {

namespace {

constexpr char kMagic[8] = {'C', 'D', 'N', 'C', 'K', 'P', 'T', '1'};

}  // namespace

std::uint64_t write_file(const std::string& path, const Checkpoint& ckpt) {
  util::ByteWriter w;
  w.raw(kMagic, sizeof(kMagic));
  w.u32(kCheckpointVersion);
  w.u64(ckpt.fingerprint.size());
  for (const auto& [name, hash] : ckpt.fingerprint) {
    w.str(name);
    w.u64(hash);
  }
  w.u64(ckpt.payload.size());
  w.raw(ckpt.payload.data(), ckpt.payload.size());
  w.u64(util::fnv1a(w.buffer().data(), w.size()));

  // Atomic publish: serialise to a sibling tmp file, flush it, rename over
  // the target.  POSIX rename() replaces atomically, so readers only ever
  // see the old complete file or the new complete file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    CDN_EXPECT(out.good(), "cannot open checkpoint temp file: " + tmp);
    out.write(reinterpret_cast<const char*>(w.buffer().data()),
              static_cast<std::streamsize>(w.size()));
    out.flush();
    CDN_EXPECT(out.good(), "failed writing checkpoint temp file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    CDN_EXPECT(false, "cannot rename checkpoint into place: " + path);
  }
  return w.size();
}

Checkpoint read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  CDN_EXPECT(in.good(), "cannot open checkpoint file: " + path);
  const std::streamoff size = in.tellg();
  // Smallest valid file: magic + version + two counts + trailer.
  constexpr std::streamoff kMinSize = 8 + 4 + 8 + 8 + 8;
  CDN_EXPECT(size >= kMinSize,
             "checkpoint file truncated: " + path + " is " +
                 std::to_string(size) + " bytes, need at least " +
                 std::to_string(kMinSize));
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  CDN_EXPECT(in.good(), "failed reading checkpoint file: " + path);

  // Checksum first: a torn or bit-flipped file is rejected before any of
  // its contents are interpreted.
  const std::size_t body = bytes.size() - 8;
  std::uint64_t stored = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(bytes[body + i]) << (8 * i);
  }
  const std::uint64_t computed = util::fnv1a(bytes.data(), body);
  CDN_EXPECT(stored == computed,
             "checkpoint checksum mismatch in " + path +
                 " (torn write or corruption)");

  util::ByteReader r({bytes.data(), body});
  char magic[8];
  r.raw(magic, sizeof(magic));
  CDN_EXPECT(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
             "not a checkpoint file (bad magic): " + path);
  const std::uint32_t version = r.u32();
  CDN_EXPECT(version == kCheckpointVersion,
             "unsupported checkpoint version " + std::to_string(version) +
                 " in " + path + " (this build reads version " +
                 std::to_string(kCheckpointVersion) + ")");

  Checkpoint ckpt;
  const std::uint64_t sections = r.u64();
  CDN_EXPECT(sections <= 64, "implausible checkpoint section count");
  for (std::uint64_t i = 0; i < sections; ++i) {
    std::string name = r.str();
    const std::uint64_t hash = r.u64();
    ckpt.fingerprint.emplace_back(std::move(name), hash);
  }
  const std::uint64_t payload_size = r.u64();
  r.need(payload_size, "checkpoint payload");
  ckpt.payload.resize(static_cast<std::size_t>(payload_size));
  r.raw(ckpt.payload.data(), ckpt.payload.size());
  CDN_EXPECT(r.done(), "checkpoint file has trailing bytes: " + path);
  return ckpt;
}

void check_fingerprint(const Checkpoint& ckpt,
                       const std::vector<FingerprintSection>& expected) {
  std::string changed;
  std::string missing;
  std::string extra;
  const auto append = [](std::string& list, const std::string& name) {
    if (!list.empty()) list += ", ";
    list += name;
  };
  for (const auto& [name, hash] : expected) {
    bool found = false;
    for (const auto& [fname, fhash] : ckpt.fingerprint) {
      if (fname != name) continue;
      found = true;
      if (fhash != hash) append(changed, name);
      break;
    }
    if (!found) append(missing, name);
  }
  for (const auto& [fname, fhash] : ckpt.fingerprint) {
    bool found = false;
    for (const auto& [name, hash] : expected) {
      if (name == fname) {
        found = true;
        break;
      }
    }
    if (!found) append(extra, fname);
  }
  if (changed.empty() && missing.empty() && extra.empty()) return;
  std::string msg = "checkpoint fingerprint mismatch — resume requires the "
                    "exact configuration that wrote the checkpoint.";
  if (!changed.empty()) msg += " Changed: " + changed + ".";
  if (!missing.empty()) msg += " Missing from file: " + missing + ".";
  if (!extra.empty()) msg += " Unexpected in file: " + extra + ".";
  CDN_EXPECT(false, msg);
}

}  // namespace cdn::recover
