// Crash-safe checkpoint files (see docs/RECOVERY.md).
//
// A checkpoint is one self-describing file holding everything a
// deterministic simulation is a function of mid-run: a fingerprint of the
// immutable inputs (config, system, placement, fault schedule, engine
// shape) as named 64-bit hashes, plus an opaque payload of the engine's
// mutable state.  The file is written atomically — serialised to
// `<path>.tmp`, flushed, then renamed over `<path>` — so a crash mid-write
// can never leave a half-written file at the target path, and it ends with
// an FNV-1a trailer over every preceding byte so a torn or corrupted file
// is rejected with a clean PreconditionError, never parsed.
//
// Resume refuses a checkpoint whose fingerprint disagrees with the present
// run and names exactly which sections changed, so "I resumed with a
// different seed" is a one-line diagnosis instead of silent nonsense.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/util/serial.h"

namespace cdn::recover {

/// File format version; bump on any layout change.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Process exit code of a run that was interrupted by SIGINT/SIGTERM and
/// flushed a final checkpoint (EX_TEMPFAIL: rerun with --resume to finish).
inline constexpr int kInterruptedExitCode = 75;

/// One named fingerprint section: a hash of an immutable input domain.
using FingerprintSection = std::pair<std::string, std::uint64_t>;

/// In-memory form of a checkpoint file.
struct Checkpoint {
  std::vector<FingerprintSection> fingerprint;
  std::vector<std::uint8_t> payload;
};

/// Serialises `ckpt` and writes it atomically to `path` (tmp + rename).
/// Returns the file size in bytes.  Throws PreconditionError on I/O error.
std::uint64_t write_file(const std::string& path, const Checkpoint& ckpt);

/// Reads and validates a checkpoint file: size, checksum trailer, magic,
/// version, framing.  Every corruption mode (truncation, bit flips, torn
/// writes, wrong file type) throws PreconditionError with a description.
Checkpoint read_file(const std::string& path);

/// Verifies that the checkpoint's fingerprint matches `expected` exactly.
/// On mismatch throws PreconditionError listing every section that changed,
/// was added, or disappeared.
void check_fingerprint(const Checkpoint& ckpt,
                       const std::vector<FingerprintSection>& expected);

/// Thrown by the simulation engines after a stop request has been honoured
/// and the final checkpoint (if configured) flushed.  The CLI catches it,
/// writes the metric/trace exports, and exits with kInterruptedExitCode.
class Interrupted : public std::runtime_error {
 public:
  Interrupted(std::uint64_t request_index, std::string checkpoint_path)
      : std::runtime_error(
            "simulation interrupted at request " +
            std::to_string(request_index) +
            (checkpoint_path.empty()
                 ? std::string(" (no checkpoint path configured)")
                 : "; checkpoint written to " + checkpoint_path)),
        request_index_(request_index),
        checkpoint_path_(std::move(checkpoint_path)) {}

  std::uint64_t request_index() const noexcept { return request_index_; }
  const std::string& checkpoint_path() const noexcept {
    return checkpoint_path_;
  }

 private:
  std::uint64_t request_index_;
  std::string checkpoint_path_;
};

}  // namespace cdn::recover
