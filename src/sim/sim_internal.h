// Internals shared by the sequential simulator (simulator.cpp) and the
// parallel sharded engine (shard_engine.cpp): the measured-window
// accumulator and its series flush, the healthy-mode per-request step, the
// end-of-run metric publication, and the seed derivation of per-shard RNG
// substreams.  Not part of the public sim API.

#pragma once

#include <cstdint>
#include <string>
#include <thread>

#include "src/cache/cache_policy.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/placement/placement_result.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/workload/request_stream.h"
#include "src/workload/site_catalog.h"

namespace cdn::sim::detail {

/// Measured-window accumulator, flushed into the registry's per-window
/// series every measured/metrics_windows requests.  The parallel engine
/// keeps one vector of these per shard and sums them per window index.
struct WindowAccumulator {
  std::uint64_t requests = 0;
  std::uint64_t local = 0;
  std::uint64_t eligible = 0;
  std::uint64_t eligible_hits = 0;
  double hops = 0.0;
  double latency_ms = 0.0;
  // Degraded-mode extras (stay zero on a healthy run).
  std::uint64_t failed = 0;
  std::uint64_t failover = 0;
  double degraded_latency_ms = 0.0;  // latency sum of failover requests

  WindowAccumulator& operator+=(const WindowAccumulator& o) {
    requests += o.requests;
    local += o.local;
    eligible += o.eligible;
    eligible_hits += o.eligible_hits;
    hops += o.hops;
    latency_ms += o.latency_ms;
    failed += o.failed;
    failover += o.failover;
    degraded_latency_ms += o.degraded_latency_ms;
    return *this;
  }
};

/// Resolved series pointers of the per-window time series (all null when
/// metrics are disabled; the fault series are additionally null when no
/// fault schedule is active, keeping healthy snapshots unchanged).
struct WindowSeries {
  obs::Series* requests = nullptr;
  obs::Series* local = nullptr;
  obs::Series* eligible = nullptr;
  obs::Series* eligible_hits = nullptr;
  obs::Series* hops = nullptr;
  obs::Series* hit_ratio = nullptr;
  obs::Series* local_ratio = nullptr;
  obs::Series* mean_hops = nullptr;
  obs::Series* mean_latency_ms = nullptr;
  obs::Series* failed = nullptr;
  obs::Series* failover = nullptr;
  obs::Series* availability = nullptr;
  obs::Series* degraded_mean_latency_ms = nullptr;

  /// Resolves the healthy-run series under `prefix` in `metrics`.
  void resolve(obs::Registry& metrics, const std::string& prefix) {
    requests = &metrics.series(prefix + "window/requests");
    local = &metrics.series(prefix + "window/local");
    eligible = &metrics.series(prefix + "window/eligible");
    eligible_hits = &metrics.series(prefix + "window/eligible_hits");
    hops = &metrics.series(prefix + "window/hops");
    hit_ratio = &metrics.series(prefix + "window/hit_ratio");
    local_ratio = &metrics.series(prefix + "window/local_ratio");
    mean_hops = &metrics.series(prefix + "window/mean_hops");
    mean_latency_ms = &metrics.series(prefix + "window/mean_latency_ms");
  }

  void flush(const WindowAccumulator& win) const {
    const double n = static_cast<double>(win.requests);
    // Failed requests never complete, so they are excluded from the mean
    // latency (they are 0 on a healthy run, keeping the division intact).
    const double completed = static_cast<double>(win.requests - win.failed);
    requests->push(n);
    local->push(static_cast<double>(win.local));
    eligible->push(static_cast<double>(win.eligible));
    eligible_hits->push(static_cast<double>(win.eligible_hits));
    hops->push(win.hops);
    hit_ratio->push(win.eligible ? static_cast<double>(win.eligible_hits) /
                                       static_cast<double>(win.eligible)
                                 : 0.0);
    local_ratio->push(win.requests ? static_cast<double>(win.local) / n : 0.0);
    mean_hops->push(win.requests ? win.hops / n : 0.0);
    mean_latency_ms->push(completed > 0.0 ? win.latency_ms / completed : 0.0);
    if (failed != nullptr) {
      failed->push(static_cast<double>(win.failed));
      failover->push(static_cast<double>(win.failover));
      availability->push(
          win.requests ? 1.0 - static_cast<double>(win.failed) / n : 1.0);
      degraded_mean_latency_ms->push(
          win.failover ? win.degraded_latency_ms /
                             static_cast<double>(win.failover)
                       : 0.0);
    }
  }
};

/// Outcome of one healthy-mode (no faults) request.
struct HealthyOutcome {
  double hops = 0.0;
  bool served_locally = false;
  bool cache_eligible = false;
  bool cache_hit = false;
  obs::EventCause cause = obs::EventCause::kReplica;
};

/// Serves one request when every server is up: a replicated site or a cache
/// hit stays local, anything else pays the precomputed redirect cost.  The
/// RNG draw order (one bernoulli per non-replicated request, nothing for
/// replicated ones) is the contract that keeps the sequential path
/// bit-identical and the shard decomposition exact.
inline HealthyOutcome healthy_step(const workload::SiteCatalog& catalog,
                                   const placement::PlacementResult& result,
                                   cache::CachePolicy& cache,
                                   util::Rng& lambda_rng,
                                   const workload::Request& req,
                                   StalenessMode staleness) {
  const auto server = static_cast<sys::ServerIndex>(req.server);
  const auto site = static_cast<sys::SiteIndex>(req.site);
  HealthyOutcome o;
  if (result.placement.is_replicated(server, site)) {
    // Replicas are always consistent (the CDN pushes invalidations to
    // them); even flagged requests are served locally.
    o.served_locally = true;
    return o;
  }
  const bool flagged =
      lambda_rng.bernoulli(catalog.uncacheable_fraction(req.site));
  const cache::ObjectKey key = catalog.object_id(req.site, req.rank);
  const std::uint64_t bytes = catalog.object_bytes(req.site, req.rank);
  const double redirect = result.nearest.cost(server, site);
  if (flagged && staleness == StalenessMode::kUncacheable) {
    // Never cached; straight to the nearest copy.
    o.hops = redirect;
    o.cause = obs::EventCause::kUncacheable;
  } else if (flagged) {
    // kRefresh: must touch the remote copy; the (re-)fetched object stays
    // cached with updated recency.
    cache.access(key, bytes);
    o.hops = redirect;
    o.cause = obs::EventCause::kStaleRefresh;
  } else {
    o.cache_eligible = true;
    o.cache_hit = cache.access(key, bytes);
    if (o.cache_hit) {
      o.served_locally = true;
      o.cause = obs::EventCause::kCacheHit;
    } else {
      o.hops = redirect;
      o.cause = obs::EventCause::kCacheMiss;
    }
  }
  return o;
}

/// End-of-run summary metrics, shared verbatim by both engines so a
/// parallel snapshot has the same layout as a sequential one.
inline void publish_summary_metrics(obs::Registry& metrics,
                                    const std::string& prefix,
                                    const SimulationConfig& config,
                                    const SimulationReport& report,
                                    bool slo_active, bool faults_active) {
  metrics.counter(prefix + "requests_total").add(report.total_requests);
  metrics.counter(prefix + "requests_measured").add(report.measured_requests);
  metrics.gauge(prefix + "cache_hit_ratio").set(report.cache_hit_ratio);
  metrics.gauge(prefix + "local_ratio").set(report.local_ratio);
  metrics.gauge(prefix + "mean_cost_hops").set(report.mean_cost_hops);
  metrics.gauge(prefix + "mean_latency_ms").set(report.mean_latency_ms);
  metrics.counter(prefix + "cache/hits").add(report.cache_totals.hits());
  metrics.counter(prefix + "cache/misses").add(report.cache_totals.misses());
  metrics.counter(prefix + "cache/admissions")
      .add(report.cache_totals.admissions());
  metrics.counter(prefix + "cache/evictions")
      .add(report.cache_totals.evictions());
  metrics.counter(prefix + "cache/bytes_churned")
      .add(report.cache_totals.bytes_churned());
  if (slo_active) {
    metrics.gauge(prefix + "slo_violation_fraction")
        .set(report.slo_violation_fraction);
  }
  if (faults_active) {
    metrics.gauge(prefix + "availability").set(report.availability);
    metrics.counter(prefix + "fault/failed").add(report.failed_requests);
    metrics.counter(prefix + "fault/failover").add(report.failover_requests);
    metrics.counter(prefix + "fault/cold_restarts").add(report.cold_restarts);
    metrics.counter(prefix + "fault/transitions")
        .add(report.fault_transitions);
  }
  if (config.per_server_metrics) {
    for (std::size_t i = 0; i < report.server_cache_stats.size(); ++i) {
      metrics.gauge(prefix + "server/" + std::to_string(i) + "/hit_ratio")
          .set(report.server_cache_stats[i].hit_ratio());
    }
  }
}

/// Resolves the configured thread count (0 = one per hardware thread).
inline std::size_t resolve_threads(std::size_t configured) {
  if (configured != 0) return configured;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

/// Independent substream seed for (seed, shard, salt) — SplitMix64 over a
/// salted mix, the same construction as util::Rng::fork but reproducible
/// from the plain config seed.
inline std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t stream,
                                    std::uint64_t salt) noexcept {
  std::uint64_t mix = seed ^ (salt * (stream + 1));
  return util::splitmix64(mix);
}

}  // namespace cdn::sim::detail
