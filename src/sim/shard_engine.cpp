#include "src/sim/shard_engine.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/scoped_timer.h"
#include "src/recover/checkpoint.h"
#include "src/sim/sim_checkpoint.h"
#include "src/sim/sim_internal.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "src/util/zipf.h"
#include "src/workload/request_stream.h"

namespace cdn::sim {

namespace {

// Distinct salts keep the plan, per-shard stream and per-shard lambda RNG
// substreams independent of each other for any (seed, shard).
constexpr std::uint64_t kPlanSalt = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kStreamSalt = 0xbf58476d1ce4e5b9ull;
constexpr std::uint64_t kLambdaSalt = 0x94d049bb133111ebull;

/// Everything one shard produces; plain data merged on the main thread in
/// shard-index order (obs::Registry is single-threaded by design, so no
/// shard ever touches it).
struct ShardResult {
  std::uint64_t measured = 0;
  double hop_sum = 0.0;
  std::uint64_t local = 0;
  std::uint64_t eligible = 0;
  std::uint64_t eligible_hits = 0;
  std::uint64_t slo_violations = 0;
  util::LatencyDistribution latency;  // sketch mode
  std::array<std::uint64_t, obs::kEventCauseCount> causes{};
  std::vector<detail::WindowAccumulator> windows;  // size = window count
  std::vector<cache::CacheStats> cache_stats;      // per owned server
  std::vector<obs::Histogram> server_latency;      // per owned server
};

/// Mutable per-shard engine state that must survive checkpoint barriers:
/// the caches, the substream RNGs and the shard-local request index.
struct ShardState {
  std::vector<std::unique_ptr<cache::CachePolicy>> caches;
  std::optional<workload::RequestStream> stream;
  util::Rng lambda_rng{0};
  std::uint64_t t = 0;  // next shard-local request index
};

/// Per-shard interval target for barrier k of `intervals`: proportional
/// progress, exact at the last barrier.  128-bit intermediate so huge runs
/// cannot overflow.
std::uint64_t interval_target(std::uint64_t shard_total, std::size_t k,
                              std::size_t intervals) {
  if (k + 1 >= intervals) return shard_total;
  return static_cast<std::uint64_t>(static_cast<unsigned __int128>(shard_total) *
                                    (k + 1) / intervals);
}

}  // namespace

std::size_t resolve_shard_count(std::size_t configured, std::size_t threads,
                                std::size_t server_count) {
  const std::size_t want = configured != 0 ? configured : 4 * threads;
  return std::max<std::size_t>(1, std::min(want, server_count));
}

ShardPlan plan_shards(const workload::DemandMatrix& demand,
                      std::uint64_t total, std::size_t shards,
                      std::uint64_t seed) {
  CDN_EXPECT(shards >= 1 && shards <= demand.server_count(),
             "shard count must be in [1, server count]");
  ShardPlan plan;
  plan.servers.resize(shards);
  plan.requests.assign(shards, 0);
  std::vector<double> mass(shards, 0.0);
  for (std::size_t i = 0; i < demand.server_count(); ++i) {
    const std::size_t s = i % shards;
    plan.servers[s].push_back(static_cast<workload::ServerId>(i));
    for (const double d : demand.row(static_cast<workload::ServerId>(i))) {
      mass[s] += d;
    }
  }
  // Exact multinomial split: `total` categorical draws over the shard
  // masses.  O(total) with an alias table — a percent or two of the run —
  // and deterministic in (seed, shards) alone.
  util::AliasSampler sampler(mass);
  util::Rng rng(detail::substream_seed(seed, 0, kPlanSalt));
  for (std::uint64_t t = 0; t < total; ++t) {
    ++plan.requests[sampler.sample(rng)];
  }
  return plan;
}

SimulationReport simulate_parallel(const sys::CdnSystem& system,
                                   const placement::PlacementResult& result,
                                   const SimulationConfig& config,
                                   std::size_t threads) {
  const auto& catalog = system.catalog();
  const std::size_t n = system.server_count();

  obs::Registry* const metrics = config.metrics;
  const std::string& prefix = config.metrics_prefix;
  obs::TimerStat* const t_setup =
      metrics ? &metrics->timer(prefix + "phase/setup") : nullptr;
  obs::TimerStat* const t_run =
      metrics ? &metrics->timer(prefix + "phase/run") : nullptr;
  obs::TimerStat* const t_report =
      metrics ? &metrics->timer(prefix + "phase/report") : nullptr;

  // Span names are interned once; workers then record per-interval shard
  // spans lock-free into their own thread buffers.
  obs::SpanTracer* const spans = config.spans;
  const char* sp_setup = nullptr;
  const char* sp_run = nullptr;
  const char* sp_report = nullptr;
  const char* sp_shard = nullptr;
  const char* sp_barrier = nullptr;
  const char* sp_merge = nullptr;
  const char* sp_checkpoint = nullptr;
  const char* sp_resume = nullptr;
  if (spans != nullptr) {
    sp_setup = spans->intern(prefix + "setup");
    sp_run = spans->intern(prefix + "run");
    sp_report = spans->intern(prefix + "report");
    sp_shard = spans->intern(prefix + "shard/run");
    sp_barrier = spans->intern(prefix + "barrier");
    sp_merge = spans->intern(prefix + "merge");
    sp_checkpoint = spans->intern(prefix + "checkpoint/write");
    sp_resume = spans->intern(prefix + "checkpoint/resume");
  }

  obs::ScopedTimer setup_timer(t_setup);
  obs::ScopedSpan setup_span(spans, sp_setup, "sim");

  const std::size_t shards = resolve_shard_count(config.shards, threads, n);
  const std::uint64_t total = config.total_requests;
  const ShardPlan plan =
      plan_shards(system.demand(), total, shards, config.seed);

  // Per-shard warm-up mirrors the sequential engine's fraction; summing the
  // per-shard measured counts gives the run's measured total.
  std::vector<std::uint64_t> shard_warmup(shards, 0);
  std::uint64_t measured_total = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    shard_warmup[s] = static_cast<std::uint64_t>(
        config.warmup_fraction * static_cast<double>(plan.requests[s]));
    measured_total += plan.requests[s] - shard_warmup[s];
  }
  CDN_CHECK(measured_total > 0, "warm-up consumed every request");

  const bool instrumented = metrics != nullptr;
  const bool slo_active = config.slo_ms > 0.0;
  // Same window count rule as the sequential engine; every shard uses the
  // same count so window indices align in the merge.
  const std::size_t window_count =
      instrumented ? std::max<std::size_t>(
                         1, std::min<std::size_t>(config.metrics_windows,
                                                  measured_total))
                   : 0;
  const bool per_server = instrumented && config.per_server_metrics;

  // Hoisted per-site lambda lookups for the batched hot loop below — the
  // exact doubles uncacheable_fraction returns, so the per-shard bernoulli
  // draws stay bit-identical to healthy_step's.
  std::vector<double> site_lambda(system.site_count());
  for (std::size_t j = 0; j < site_lambda.size(); ++j) {
    site_lambda[j] =
        catalog.uncacheable_fraction(static_cast<workload::SiteId>(j));
  }
  const bool uncacheable_mode =
      config.staleness == StalenessMode::kUncacheable;

  std::vector<ShardResult> results(shards);
  std::vector<ShardState> states(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    if (plan.requests[s] == 0) continue;  // zero-demand shard: nothing to do
    const std::vector<workload::ServerId>& owned = plan.servers[s];
    ShardResult& out = results[s];
    out.latency.use_sketch(config.latency_sketch_error);
    if (window_count > 0) out.windows.resize(window_count);
    if (per_server) {
      out.server_latency.reserve(owned.size());
      for (std::size_t l = 0; l < owned.size(); ++l) {
        out.server_latency.emplace_back(obs::default_latency_bounds_ms());
      }
    }
    ShardState& st = states[s];
    st.caches.reserve(owned.size());
    for (const workload::ServerId server : owned) {
      st.caches.push_back(cache::make_cache(
          config.policy,
          result.cache_bytes(static_cast<sys::ServerIndex>(server))));
    }
    // The shard stream samples the conditional cell distribution given
    // "first hop in this shard" — together with the multinomial split this
    // reproduces the full i.i.d. stream's law exactly.
    st.stream.emplace(catalog, system.demand(),
                      detail::substream_seed(config.seed, s, kStreamSalt),
                      config.stream_locality, 256, owned);
    st.lambda_rng =
        util::Rng(detail::substream_seed(config.seed, s, kLambdaSalt));
  }

  // --- Crash safety (see docs/RECOVERY.md).  Checkpoints are taken at
  // shard-merge barriers: the interval loop below pauses every worker,
  // serialises each shard's state on the main thread, then resumes. ---
  const bool recovery_active = !config.checkpoint_path.empty() ||
                               !config.resume_path.empty() ||
                               config.stop != nullptr;
  std::vector<recover::FingerprintSection> fingerprint;
  if (recovery_active) {
    fingerprint = detail::checkpoint_fingerprint(
        system, result, config, detail::EngineKind::kParallel, shards);
  }

  const auto save_engine_state = [&](util::ByteWriter& w) {
    w.u64(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      if (plan.requests[s] == 0) continue;
      const ShardState& st = states[s];
      const ShardResult& out = results[s];
      w.u64(st.t);
      st.stream->save_state(w);
      detail::save_rng(w, st.lambda_rng);
      w.u64(st.caches.size());
      for (const auto& c : st.caches) c->save_state(w);
      w.f64(out.hop_sum);
      w.u64(out.local);
      w.u64(out.eligible);
      w.u64(out.eligible_hits);
      w.u64(out.slo_violations);
      out.latency.save_state(w);
      for (const std::uint64_t c : out.causes) w.u64(c);
      w.u64(out.windows.size());
      for (const auto& win : out.windows) detail::save_window(w, win);
      w.u64(out.server_latency.size());
      for (const obs::Histogram& h : out.server_latency) h.save_state(w);
    }
  };

  const auto restore_engine_state = [&](util::ByteReader& r) {
    CDN_EXPECT(r.u64() == shards, "checkpoint shard count mismatch");
    for (std::size_t s = 0; s < shards; ++s) {
      if (plan.requests[s] == 0) continue;
      ShardState& st = states[s];
      ShardResult& out = results[s];
      st.t = r.u64();
      CDN_EXPECT(st.t <= plan.requests[s],
                 "checkpoint shard request index exceeds the shard's plan");
      st.stream->restore_state(r);
      detail::restore_rng(r, st.lambda_rng);
      CDN_EXPECT(r.u64() == st.caches.size(),
                 "checkpoint shard cache count mismatch");
      for (auto& c : st.caches) c->restore_state(r);
      out.hop_sum = r.f64();
      out.local = r.u64();
      out.eligible = r.u64();
      out.eligible_hits = r.u64();
      out.slo_violations = r.u64();
      out.latency.restore_state(r);
      for (std::uint64_t& c : out.causes) c = r.u64();
      CDN_EXPECT(r.u64() == out.windows.size(),
                 "checkpoint shard window count mismatch");
      for (auto& win : out.windows) detail::restore_window(r, win);
      CDN_EXPECT(r.u64() == out.server_latency.size(),
                 "checkpoint per-shard histogram count mismatch");
      for (obs::Histogram& h : out.server_latency) h.restore_state(r);
    }
    CDN_EXPECT(r.done(), "checkpoint payload has trailing bytes");
  };

  obs::Counter* rc_written = nullptr;
  obs::Counter* rc_bytes = nullptr;
  obs::Gauge* rc_last_ms = nullptr;
  if (instrumented && recovery_active) {
    rc_written = &metrics->counter(prefix + "recover/checkpoints_written");
    rc_bytes = &metrics->counter(prefix + "recover/bytes");
    rc_last_ms = &metrics->gauge(prefix + "recover/last_checkpoint_ms");
  }
  auto last_checkpoint_time = std::chrono::steady_clock::now();
  const auto write_checkpoint = [&] {
    obs::ScopedSpan ckpt_span(spans, sp_checkpoint, "recover");
    const auto write_start = std::chrono::steady_clock::now();
    recover::Checkpoint ckpt;
    ckpt.fingerprint = fingerprint;
    util::ByteWriter w;
    save_engine_state(w);
    ckpt.payload = w.buffer();
    const std::uint64_t bytes =
        recover::write_file(config.checkpoint_path, ckpt);
    last_checkpoint_time = std::chrono::steady_clock::now();
    if (rc_written != nullptr) {
      rc_written->add();
      rc_bytes->add(bytes);
      rc_last_ms->set(std::chrono::duration<double, std::milli>(
                          last_checkpoint_time - write_start)
                          .count());
    }
  };

  std::uint64_t last_written_done = 0;
  if (!config.resume_path.empty()) {
    obs::ScopedSpan resume_span(spans, sp_resume, "recover");
    const recover::Checkpoint ckpt = recover::read_file(config.resume_path);
    recover::check_fingerprint(ckpt, fingerprint);
    util::ByteReader reader(ckpt.payload);
    restore_engine_state(reader);
    for (const ShardState& st : states) last_written_done += st.t;
    if (instrumented) {
      metrics->gauge(prefix + "recover/resumed").set(1.0);
      metrics->gauge(prefix + "recover/resume_request_index")
          .set(static_cast<double>(last_written_done));
    }
    resume_span.arg("request", static_cast<double>(last_written_done));
  }

  // One barrier per checkpoint cadence; 64 give a stop flag or a time
  // cadence reasonable latency; a plain run keeps today's single pass.
  // Progress reporting also needs barriers to observe the shard clocks,
  // but is capped so a tight cadence cannot drown the run in joins.
  const bool progress_active =
      config.progress_every > 0 && config.progress != nullptr;
  std::size_t intervals =
      config.checkpoint_every_requests > 0
          ? static_cast<std::size_t>((total + config.checkpoint_every_requests -
                                      1) /
                                     config.checkpoint_every_requests)
          : (recovery_active ? std::size_t{64} : std::size_t{1});
  if (progress_active) {
    const std::size_t wanted = static_cast<std::size_t>(
        std::min<std::uint64_t>(256, total / config.progress_every));
    intervals = std::max<std::size_t>(intervals, std::max<std::size_t>(
                                                     1, wanted));
  }
  const bool poll_stop = config.stop != nullptr;
  std::uint64_t warmup_total = 0;
  for (const std::uint64_t w : shard_warmup) warmup_total += w;
  const std::uint64_t resume_base = last_written_done;
  std::uint64_t next_progress =
      progress_active ? resume_base + config.progress_every
                      : std::numeric_limits<std::uint64_t>::max();
  std::uint64_t checkpoints_written = 0;
  std::uint64_t last_checkpoint_request = 0;

  setup_timer.stop();
  setup_span.stop();
  obs::ScopedTimer run_timer(t_run);
  obs::ScopedSpan run_span(spans, sp_run, "sim");
  const auto run_start = std::chrono::steady_clock::now();

  {
    // A dedicated pool sized to the run; shards >> threads gives the static
    // partition slack to balance uneven shard masses.
    util::ThreadPool pool(std::min(threads, shards));
    for (std::size_t interval = 0; interval < intervals; ++interval) {
      const auto run_interval = [&](std::size_t s) {
        const std::uint64_t shard_total = plan.requests[s];
        if (shard_total == 0) return;
        const std::uint64_t end =
            interval_target(shard_total, interval, intervals);
        ShardState& st = states[s];
        if (st.t >= end) return;  // already past this barrier (resume)
        obs::ScopedSpan shard_span(spans, sp_shard, "sim");
        shard_span.arg("shard", static_cast<double>(s));
        ShardResult& out = results[s];
        workload::RequestStream& stream = *st.stream;
        const std::uint64_t warmup = shard_warmup[s];
        const std::uint64_t measured = shard_total - warmup;
        // Data-oriented chunked loop (docs/PERFORMANCE.md): SoA request
        // batches served by a tight loop with the rare-event boundaries —
        // stop-poll points, the warm-up edge, window-index changes —
        // hoisted into the chunking, so the per-request path carries no
        // boundary compares.  Accounting accumulates per request in the
        // reference order (floating-point sums included); the sequential
        // digest-equality tests transitively pin this loop bit-identical.
        workload::RequestBatch batch;
        std::uint64_t t = st.t;
        while (t < end) {
          // Shutdown probe at the same 4096-aligned points as the old
          // per-request loop: a worker may bail mid-interval; the per-shard
          // position is saved individually, so determinism holds.  t == 0
          // is exempt so even a pre-set flag checkpoints progress.
          if (poll_stop && (t & 0xfffu) == 0 && t != 0 &&
              config.stop->load(std::memory_order_relaxed)) {
            break;
          }
          if (t == warmup) {
            for (auto& c : st.caches) c->reset_stats();
          }
          // Chunk end: the next poll point, the warm-up edge, or the next
          // measured-window boundary, whichever comes first.
          std::uint64_t cend =
              std::min(end, static_cast<std::uint64_t>((t | 0xfff) + 1));
          if (t < warmup) cend = std::min(cend, warmup);
          detail::WindowAccumulator* win = nullptr;
          if (t >= warmup && window_count > 0) {
            const std::uint64_t widx = (t - warmup) * window_count / measured;
            win = &out.windows[static_cast<std::size_t>(widx)];
            const auto next_k = static_cast<std::uint64_t>(
                ((static_cast<unsigned __int128>(widx) + 1) * measured +
                 window_count - 1) /
                window_count);
            cend = std::min(cend, warmup + next_k);
          }
          const auto count = static_cast<std::size_t>(cend - t);
          stream.next_batch(batch, count);
          const bool measured_chunk = t >= warmup;
          for (std::size_t i = 0; i < count; ++i) {
            const workload::ServerId sid = batch.server[i];
            const workload::SiteId site_id = batch.site[i];
            const std::uint32_t rank = batch.rank[i];
            const auto server = static_cast<sys::ServerIndex>(sid);
            const auto site = static_cast<sys::SiteIndex>(site_id);
            double hops = 0.0;
            bool served_locally = false;
            bool cache_eligible = false;
            bool cache_hit = false;
            auto cause = obs::EventCause::kReplica;
            if (result.placement.is_replicated(server, site)) {
              served_locally = true;
            } else {
              // Same draw order as healthy_step: one bernoulli per
              // non-replicated request.
              const bool flagged =
                  st.lambda_rng.bernoulli(site_lambda[site_id]);
              const cache::ObjectKey key = catalog.object_id(site_id, rank);
              const std::uint64_t bytes =
                  catalog.object_bytes(site_id, rank);
              // Round-robin ownership makes the cache index a division.
              cache::CachePolicy& cache = *st.caches[sid / shards];
              if (flagged && uncacheable_mode) {
                hops = result.nearest.cost(server, site);
                cause = obs::EventCause::kUncacheable;
              } else if (flagged) {
                cache.access(key, bytes);  // refreshed copy stays cached
                hops = result.nearest.cost(server, site);
                cause = obs::EventCause::kStaleRefresh;
              } else {
                cache_eligible = true;
                cache_hit = cache.access(key, bytes);
                if (cache_hit) {
                  served_locally = true;
                  cause = obs::EventCause::kCacheHit;
                } else {
                  hops = result.nearest.cost(server, site);
                  cause = obs::EventCause::kCacheMiss;
                }
              }
            }
            if (!measured_chunk) continue;

            const double latency_ms = config.latency.latency_ms(hops);
            out.latency.add(latency_ms);
            out.hop_sum += hops;
            if (served_locally) ++out.local;
            if (cache_eligible) {
              ++out.eligible;
              if (cache_hit) ++out.eligible_hits;
            }
            if (slo_active && latency_ms > config.slo_ms) {
              ++out.slo_violations;
            }
            ++out.causes[static_cast<std::size_t>(cause)];
            if (win != nullptr) {
              ++win->requests;
              win->hops += hops;
              win->latency_ms += latency_ms;
              if (served_locally) ++win->local;
              if (cache_eligible) {
                ++win->eligible;
                if (cache_hit) ++win->eligible_hits;
              }
            }
            if (per_server) {
              out.server_latency[sid / shards].observe(latency_ms);
            }
          }
          t = cend;
        }
        st.t = t;
      };
      util::parallel_for(pool, 0, shards, run_interval);

      if (!recovery_active && !progress_active) continue;
      obs::ScopedSpan barrier_span(spans, sp_barrier, "sim");
      std::uint64_t done = 0;
      for (const ShardState& st : states) done += st.t;
      if (recovery_active) {
        const bool stop_requested =
            poll_stop && config.stop->load(std::memory_order_relaxed);
        bool write = !config.checkpoint_path.empty() &&
                     (config.checkpoint_every_requests > 0 || stop_requested);
        if (!write && !config.checkpoint_path.empty() &&
            config.checkpoint_every_seconds > 0.0) {
          write =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            last_checkpoint_time)
                  .count() >= config.checkpoint_every_seconds;
        }
        if (write && done > last_written_done) {
          write_checkpoint();
          last_written_done = done;
          ++checkpoints_written;
          last_checkpoint_request = done;
        }
        if (stop_requested) {
          throw recover::Interrupted(done, config.checkpoint_path);
        }
      }
      if (progress_active && done >= next_progress) {
        next_progress = done + config.progress_every;
        SimulationProgress p;
        p.completed = done;
        p.total = total;
        p.warming_up = done < warmup_total;
        std::uint64_t el = 0;
        std::uint64_t el_hits = 0;
        for (const ShardResult& r : results) {
          el += r.eligible;
          el_hits += r.eligible_hits;
        }
        p.hit_ratio_known = el > 0;
        if (p.hit_ratio_known) {
          p.hit_ratio =
              static_cast<double>(el_hits) / static_cast<double>(el);
        }
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          run_start)
                .count();
        if (elapsed > 0.0 && done > resume_base) {
          p.requests_per_sec =
              static_cast<double>(done - resume_base) / elapsed;
          p.eta_seconds =
              static_cast<double>(total - done) / p.requests_per_sec;
        }
        p.checkpoints_written = checkpoints_written;
        p.last_checkpoint_request = last_checkpoint_request;
        config.progress(p);
      }
    }
  }

  for (std::size_t s = 0; s < shards; ++s) {
    if (plan.requests[s] == 0) continue;
    ShardResult& out = results[s];
    out.measured = plan.requests[s] - shard_warmup[s];
    out.cache_stats.reserve(states[s].caches.size());
    for (const auto& c : states[s].caches) out.cache_stats.push_back(c->stats());
  }

  run_timer.stop();
  run_span.stop();
  obs::ScopedTimer report_timer(t_report);
  obs::ScopedSpan report_span(spans, sp_report, "sim");
  obs::ScopedSpan merge_span(spans, sp_merge, "sim");

  // --- Deterministic merge, fixed shard-index order 0..S-1. ---
  SimulationReport report;
  report.total_requests = total;
  report.shards_used = shards;
  report.latency_cdf.use_sketch(config.latency_sketch_error);

  double hop_sum = 0.0;
  std::uint64_t local = 0;
  std::uint64_t eligible = 0;
  std::uint64_t eligible_hits = 0;
  std::uint64_t slo_violations = 0;
  std::array<std::uint64_t, obs::kEventCauseCount> causes{};
  std::vector<detail::WindowAccumulator> windows(window_count);
  report.server_cache_stats.resize(n);
  for (std::size_t s = 0; s < shards; ++s) {
    const ShardResult& r = results[s];
    if (plan.requests[s] == 0) continue;
    report.measured_requests += r.measured;
    report.latency_cdf.merge(r.latency);
    hop_sum += r.hop_sum;
    local += r.local;
    eligible += r.eligible;
    eligible_hits += r.eligible_hits;
    slo_violations += r.slo_violations;
    for (std::size_t c = 0; c < causes.size(); ++c) causes[c] += r.causes[c];
    for (std::size_t w = 0; w < window_count; ++w) windows[w] += r.windows[w];
    for (std::size_t l = 0; l < plan.servers[s].size(); ++l) {
      report.server_cache_stats[plan.servers[s][l]] = r.cache_stats[l];
    }
  }
  // Fleet totals in global server order, matching the sequential engine.
  for (const cache::CacheStats& stats : report.server_cache_stats) {
    report.cache_totals.merge(stats);
  }
  merge_span.stop();

  const double measured = static_cast<double>(report.measured_requests);
  report.mean_latency_ms =
      report.latency_cdf.empty() ? 0.0 : report.latency_cdf.mean();
  report.mean_cost_hops = hop_sum / measured;
  report.local_ratio = static_cast<double>(local) / measured;
  report.cache_hit_ratio =
      eligible ? static_cast<double>(eligible_hits) /
                     static_cast<double>(eligible)
               : 0.0;
  report.slo_violation_fraction =
      slo_active ? static_cast<double>(slo_violations) / measured : 0.0;

  if (instrumented) {
    detail::WindowSeries win_series;
    win_series.resolve(*metrics, prefix);
    for (const detail::WindowAccumulator& win : windows) {
      if (win.requests > 0) win_series.flush(win);
    }
    for (const auto cause :
         {obs::EventCause::kReplica, obs::EventCause::kCacheHit,
          obs::EventCause::kCacheMiss, obs::EventCause::kStaleRefresh,
          obs::EventCause::kUncacheable}) {
      metrics->counter(prefix + "cause/" + obs::to_string(cause))
          .add(causes[static_cast<std::size_t>(cause)]);
    }
    if (per_server) {
      // Global server order, one histogram per server even when its shard
      // saw no traffic — the same snapshot layout as the sequential engine.
      for (std::size_t i = 0; i < n; ++i) {
        obs::Histogram& h = metrics->histogram(
            prefix + "server/" + std::to_string(i) + "/latency_ms",
            obs::default_latency_bounds_ms());
        const std::size_t s = i % shards;
        if (plan.requests[s] > 0) {
          h.merge(results[s].server_latency[i / shards]);
        }
      }
    }
    metrics->gauge(prefix + "parallel/threads")
        .set(static_cast<double>(threads));
    metrics->gauge(prefix + "parallel/shards")
        .set(static_cast<double>(shards));
    for (std::size_t s = 0; s < shards; ++s) {
      metrics->counter(prefix + "shard/" + std::to_string(s) + "/requests")
          .add(plan.requests[s]);
    }
    detail::publish_summary_metrics(*metrics, prefix, config, report,
                                    slo_active, /*faults_active=*/false);
  }
  return report;
}

}  // namespace cdn::sim
