#include "src/sim/shard_engine.h"

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/scoped_timer.h"
#include "src/sim/sim_internal.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "src/util/zipf.h"
#include "src/workload/request_stream.h"

namespace cdn::sim {

namespace {

// Distinct salts keep the plan, per-shard stream and per-shard lambda RNG
// substreams independent of each other for any (seed, shard).
constexpr std::uint64_t kPlanSalt = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kStreamSalt = 0xbf58476d1ce4e5b9ull;
constexpr std::uint64_t kLambdaSalt = 0x94d049bb133111ebull;

/// Everything one shard produces; plain data merged on the main thread in
/// shard-index order (obs::Registry is single-threaded by design, so no
/// shard ever touches it).
struct ShardResult {
  std::uint64_t measured = 0;
  double hop_sum = 0.0;
  std::uint64_t local = 0;
  std::uint64_t eligible = 0;
  std::uint64_t eligible_hits = 0;
  std::uint64_t slo_violations = 0;
  util::LatencyDistribution latency;  // sketch mode
  std::array<std::uint64_t, obs::kEventCauseCount> causes{};
  std::vector<detail::WindowAccumulator> windows;  // size = window count
  std::vector<cache::CacheStats> cache_stats;      // per owned server
  std::vector<obs::Histogram> server_latency;      // per owned server
};

}  // namespace

std::size_t resolve_shard_count(std::size_t configured, std::size_t threads,
                                std::size_t server_count) {
  const std::size_t want = configured != 0 ? configured : 4 * threads;
  return std::max<std::size_t>(1, std::min(want, server_count));
}

ShardPlan plan_shards(const workload::DemandMatrix& demand,
                      std::uint64_t total, std::size_t shards,
                      std::uint64_t seed) {
  CDN_EXPECT(shards >= 1 && shards <= demand.server_count(),
             "shard count must be in [1, server count]");
  ShardPlan plan;
  plan.servers.resize(shards);
  plan.requests.assign(shards, 0);
  std::vector<double> mass(shards, 0.0);
  for (std::size_t i = 0; i < demand.server_count(); ++i) {
    const std::size_t s = i % shards;
    plan.servers[s].push_back(static_cast<workload::ServerId>(i));
    for (const double d : demand.row(static_cast<workload::ServerId>(i))) {
      mass[s] += d;
    }
  }
  // Exact multinomial split: `total` categorical draws over the shard
  // masses.  O(total) with an alias table — a percent or two of the run —
  // and deterministic in (seed, shards) alone.
  util::AliasSampler sampler(mass);
  util::Rng rng(detail::substream_seed(seed, 0, kPlanSalt));
  for (std::uint64_t t = 0; t < total; ++t) {
    ++plan.requests[sampler.sample(rng)];
  }
  return plan;
}

SimulationReport simulate_parallel(const sys::CdnSystem& system,
                                   const placement::PlacementResult& result,
                                   const SimulationConfig& config,
                                   std::size_t threads) {
  const auto& catalog = system.catalog();
  const std::size_t n = system.server_count();

  obs::Registry* const metrics = config.metrics;
  const std::string& prefix = config.metrics_prefix;
  obs::TimerStat* const t_setup =
      metrics ? &metrics->timer(prefix + "phase/setup") : nullptr;
  obs::TimerStat* const t_run =
      metrics ? &metrics->timer(prefix + "phase/run") : nullptr;
  obs::TimerStat* const t_report =
      metrics ? &metrics->timer(prefix + "phase/report") : nullptr;

  obs::ScopedTimer setup_timer(t_setup);

  const std::size_t shards = resolve_shard_count(config.shards, threads, n);
  const std::uint64_t total = config.total_requests;
  const ShardPlan plan =
      plan_shards(system.demand(), total, shards, config.seed);

  // Per-shard warm-up mirrors the sequential engine's fraction; summing the
  // per-shard measured counts gives the run's measured total.
  std::vector<std::uint64_t> shard_warmup(shards, 0);
  std::uint64_t measured_total = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    shard_warmup[s] = static_cast<std::uint64_t>(
        config.warmup_fraction * static_cast<double>(plan.requests[s]));
    measured_total += plan.requests[s] - shard_warmup[s];
  }
  CDN_CHECK(measured_total > 0, "warm-up consumed every request");

  const bool instrumented = metrics != nullptr;
  const bool slo_active = config.slo_ms > 0.0;
  // Same window count rule as the sequential engine; every shard uses the
  // same count so window indices align in the merge.
  const std::size_t window_count =
      instrumented ? std::max<std::size_t>(
                         1, std::min<std::size_t>(config.metrics_windows,
                                                  measured_total))
                   : 0;
  const bool per_server = instrumented && config.per_server_metrics;

  std::vector<ShardResult> results(shards);

  setup_timer.stop();
  obs::ScopedTimer run_timer(t_run);

  const auto run_shard = [&](std::size_t s) {
    const std::uint64_t shard_total = plan.requests[s];
    if (shard_total == 0) return;  // zero-demand shard: nothing to simulate
    const std::vector<workload::ServerId>& owned = plan.servers[s];
    ShardResult& out = results[s];
    out.latency.use_sketch(config.latency_sketch_error);
    if (window_count > 0) out.windows.resize(window_count);
    if (per_server) {
      out.server_latency.reserve(owned.size());
      for (std::size_t l = 0; l < owned.size(); ++l) {
        out.server_latency.emplace_back(obs::default_latency_bounds_ms());
      }
    }

    std::vector<std::unique_ptr<cache::CachePolicy>> caches;
    caches.reserve(owned.size());
    for (const workload::ServerId server : owned) {
      caches.push_back(cache::make_cache(
          config.policy,
          result.cache_bytes(static_cast<sys::ServerIndex>(server))));
    }
    // The shard stream samples the conditional cell distribution given
    // "first hop in this shard" — together with the multinomial split this
    // reproduces the full i.i.d. stream's law exactly.
    workload::RequestStream stream(
        catalog, system.demand(),
        detail::substream_seed(config.seed, s, kStreamSalt),
        config.stream_locality, 256, owned);
    util::Rng lambda_rng(detail::substream_seed(config.seed, s, kLambdaSalt));

    const std::uint64_t warmup = shard_warmup[s];
    const std::uint64_t measured = shard_total - warmup;
    for (std::uint64_t t = 0; t < shard_total; ++t) {
      if (t == warmup) {
        for (auto& c : caches) c->reset_stats();
      }
      const workload::Request req = stream.next();
      // Round-robin ownership makes the local cache index a division.
      cache::CachePolicy& cache = *caches[req.server / shards];
      const detail::HealthyOutcome o = detail::healthy_step(
          catalog, result, cache, lambda_rng, req, config.staleness);
      if (t < warmup) continue;

      const double latency_ms = config.latency.latency_ms(o.hops);
      out.latency.add(latency_ms);
      out.hop_sum += o.hops;
      if (o.served_locally) ++out.local;
      if (o.cache_eligible) {
        ++out.eligible;
        if (o.cache_hit) ++out.eligible_hits;
      }
      if (slo_active && latency_ms > config.slo_ms) ++out.slo_violations;
      ++out.causes[static_cast<std::size_t>(o.cause)];
      if (window_count > 0) {
        const std::uint64_t k = t - warmup;
        detail::WindowAccumulator& win =
            out.windows[static_cast<std::size_t>(k * window_count / measured)];
        ++win.requests;
        win.hops += o.hops;
        win.latency_ms += latency_ms;
        if (o.served_locally) ++win.local;
        if (o.cache_eligible) {
          ++win.eligible;
          if (o.cache_hit) ++win.eligible_hits;
        }
      }
      if (per_server) {
        out.server_latency[req.server / shards].observe(latency_ms);
      }
    }
    out.measured = measured;
    out.cache_stats.reserve(owned.size());
    for (const auto& c : caches) out.cache_stats.push_back(c->stats());
  };

  {
    // A dedicated pool sized to the run; shards >> threads gives the static
    // partition slack to balance uneven shard masses.
    util::ThreadPool pool(std::min(threads, shards));
    util::parallel_for(pool, 0, shards, run_shard);
  }

  run_timer.stop();
  obs::ScopedTimer report_timer(t_report);

  // --- Deterministic merge, fixed shard-index order 0..S-1. ---
  SimulationReport report;
  report.total_requests = total;
  report.shards_used = shards;
  report.latency_cdf.use_sketch(config.latency_sketch_error);

  double hop_sum = 0.0;
  std::uint64_t local = 0;
  std::uint64_t eligible = 0;
  std::uint64_t eligible_hits = 0;
  std::uint64_t slo_violations = 0;
  std::array<std::uint64_t, obs::kEventCauseCount> causes{};
  std::vector<detail::WindowAccumulator> windows(window_count);
  report.server_cache_stats.resize(n);
  for (std::size_t s = 0; s < shards; ++s) {
    const ShardResult& r = results[s];
    if (plan.requests[s] == 0) continue;
    report.measured_requests += r.measured;
    report.latency_cdf.merge(r.latency);
    hop_sum += r.hop_sum;
    local += r.local;
    eligible += r.eligible;
    eligible_hits += r.eligible_hits;
    slo_violations += r.slo_violations;
    for (std::size_t c = 0; c < causes.size(); ++c) causes[c] += r.causes[c];
    for (std::size_t w = 0; w < window_count; ++w) windows[w] += r.windows[w];
    for (std::size_t l = 0; l < plan.servers[s].size(); ++l) {
      report.server_cache_stats[plan.servers[s][l]] = r.cache_stats[l];
    }
  }
  // Fleet totals in global server order, matching the sequential engine.
  for (const cache::CacheStats& stats : report.server_cache_stats) {
    report.cache_totals.merge(stats);
  }

  const double measured = static_cast<double>(report.measured_requests);
  report.mean_latency_ms =
      report.latency_cdf.empty() ? 0.0 : report.latency_cdf.mean();
  report.mean_cost_hops = hop_sum / measured;
  report.local_ratio = static_cast<double>(local) / measured;
  report.cache_hit_ratio =
      eligible ? static_cast<double>(eligible_hits) /
                     static_cast<double>(eligible)
               : 0.0;
  report.slo_violation_fraction =
      slo_active ? static_cast<double>(slo_violations) / measured : 0.0;

  if (instrumented) {
    detail::WindowSeries win_series;
    win_series.resolve(*metrics, prefix);
    for (const detail::WindowAccumulator& win : windows) {
      if (win.requests > 0) win_series.flush(win);
    }
    for (const auto cause :
         {obs::EventCause::kReplica, obs::EventCause::kCacheHit,
          obs::EventCause::kCacheMiss, obs::EventCause::kStaleRefresh,
          obs::EventCause::kUncacheable}) {
      metrics->counter(prefix + "cause/" + obs::to_string(cause))
          .add(causes[static_cast<std::size_t>(cause)]);
    }
    if (per_server) {
      // Global server order, one histogram per server even when its shard
      // saw no traffic — the same snapshot layout as the sequential engine.
      for (std::size_t i = 0; i < n; ++i) {
        obs::Histogram& h = metrics->histogram(
            prefix + "server/" + std::to_string(i) + "/latency_ms",
            obs::default_latency_bounds_ms());
        const std::size_t s = i % shards;
        if (plan.requests[s] > 0) {
          h.merge(results[s].server_latency[i / shards]);
        }
      }
    }
    metrics->gauge(prefix + "parallel/threads")
        .set(static_cast<double>(threads));
    metrics->gauge(prefix + "parallel/shards")
        .set(static_cast<double>(shards));
    for (std::size_t s = 0; s < shards; ++s) {
      metrics->counter(prefix + "shard/" + std::to_string(s) + "/requests")
          .add(plan.requests[s]);
    }
    detail::publish_summary_metrics(*metrics, prefix, config, report,
                                    slo_active, /*faults_active=*/false);
  }
  return report;
}

}  // namespace cdn::sim
