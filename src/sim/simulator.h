// Trace-driven simulation of the CDN (Section 5).
//
// Replays a synthetic request stream against a placement: each request hits
// its first-hop server; a locally replicated site or a cache hit is served
// at first-hop latency, anything else is redirected to the nearest copy
// SN_j^(i) and pays the hop cost.  A lambda_j fraction of each site's
// requests is stale/uncacheable and must touch the remote copy regardless
// (Section 3.3 and the Figure 4 experiment).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/cache_factory.h"
#include "src/cache/cache_stats.h"
#include "src/cdn/system.h"
#include "src/fault/fault_schedule.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/placement/placement_result.h"
#include "src/sim/latency_model.h"
#include "src/util/cdf.h"
#include "src/util/quantile_sketch.h"
#include "src/workload/trace_io.h"

namespace cdn::sim {

/// How lambda-flagged requests interact with the cache.
enum class StalenessMode {
  /// Strong consistency (Figure 4): the object may be cached, but a flagged
  /// request must refresh it from the nearest copy — full redirection
  /// latency; the refreshed object stays cached.
  kRefresh,
  /// Uncacheable content (Section 3.3's cgi-bin case): flagged requests
  /// bypass the cache entirely and are never admitted.
  kUncacheable,
};

/// Which evaluation engine simulate() runs.
enum class SimEngine {
  /// Per-request (event-level) simulation — sequential reference loop or
  /// the parallel sharded engine, per `threads`.  The default.
  kEvent,
  /// Flow-level analytical fast path: summary metrics computed from the
  /// demand matrix, the placement and a steady-state hit-ratio model with
  /// no per-request loop (src/sim/flow_engine.cpp).  Orders of magnitude
  /// faster; per-request features (trace replay/sinks, fault schedules,
  /// checkpointing, stream locality) are rejected by validate().
  kFlow,
};

/// Steady-state hit-ratio model tier of the flow engine (ignored by the
/// event engine).  Mirrors model::SteadyStateModel; duplicated here so the
/// public sim config does not pull in the model headers.
enum class HitModel {
  /// Reuse the hit matrix the placement computed (modeled_hit) — the
  /// paper's p_B-at-initialisation model.  Default.
  kEmpirical,
  /// Recompute per server from the final placement via the closed-form
  /// Eq. 1/Eq. 2 pipeline with p_B refreshed over the final cacheable set.
  kClosedForm,
  /// Che/TTL approximation: solve the occupancy fixed point for the
  /// characteristic time, then read Eq. 1's H(z) table.
  kChe,
};

/// Progress snapshot handed to SimulationConfig::progress.
struct SimulationProgress {
  std::uint64_t completed = 0;
  std::uint64_t total = 0;
  bool warming_up = false;
  /// Running measured hit ratio; meaningful only when hit_ratio_known.
  double hit_ratio = 0.0;
  bool hit_ratio_known = false;
  /// Requests per second this process has sustained since the run phase
  /// began (resumed runs count post-resume requests only).  0 until the
  /// first measurable interval has elapsed.
  double requests_per_sec = 0.0;
  /// Estimated seconds until completion at the current rate; 0 while the
  /// rate is unknown.
  double eta_seconds = 0.0;
  /// Checkpoints written so far by this process.
  std::uint64_t checkpoints_written = 0;
  /// Request index covered by the latest checkpoint (0 = none yet).
  std::uint64_t last_checkpoint_request = 0;
};

struct SimulationConfig {
  std::uint64_t total_requests = 2'000'000;
  /// Optional pre-recorded trace (non-owning).  When set, the whole trace
  /// is replayed instead of generating `total_requests` synthetic requests
  /// (warmup_fraction still applies).  The trace must fit the system's
  /// dimensions (see RecordedTrace::validate).
  const workload::RecordedTrace* trace = nullptr;
  /// Leading fraction of the stream excluded from measurement so caches
  /// reach steady state ("we allowed an appropriate warm-up period").
  double warmup_fraction = 0.3;
  cache::PolicyKind policy = cache::PolicyKind::kLru;
  StalenessMode staleness = StalenessMode::kRefresh;
  LatencyModel latency;
  std::uint64_t seed = 42;
  /// Temporal-locality knob of the request stream (0 = i.i.d., the model's
  /// assumption).
  double stream_locality = 0.0;

  /// Evaluation engine (see docs/PERFORMANCE.md for when to trust which).
  SimEngine engine = SimEngine::kEvent;
  /// Hit-ratio model tier of the flow engine.
  HitModel hit_model = HitModel::kEmpirical;

  // --- Parallel sharded engine (see docs/PERFORMANCE.md) ---

  /// Simulation worker threads.  1 (the default) runs the sequential
  /// reference engine, bit-identical to the pre-parallel simulator; 0 uses
  /// one thread per hardware thread.  Fault schedules, trace replay and
  /// trace sinks need the global request clock, so they force the
  /// sequential engine regardless of this knob.
  std::size_t threads = 1;
  /// First-hop shard count of the parallel engine.  0 = auto (4 threads'
  /// worth of shards, capped at the server count).  The parallel report is
  /// a deterministic function of (seed, shards) alone — the thread count
  /// only changes the execution schedule, never a result bit.
  std::size_t shards = 0;
  /// Relative error bound of the parallel engine's bounded-memory latency
  /// quantile sketch (the sequential engine keeps exact samples).
  double latency_sketch_error = 0.005;

  // --- Fault injection (see docs/FAULTS.md) ---

  /// Fault schedule (non-owning).  Null or empty keeps the request loop
  /// bit-identical to the healthy simulator.  With faults: requests whose
  /// first-hop server is down fail over to the nearest live holder with a
  /// retry/timeout penalty, requests whose every holder is down count as
  /// failed, and a recovering server restarts with a cold cache.
  const fault::FaultSchedule* faults = nullptr;
  /// Response-time SLO in ms; measured requests slower than this — and
  /// every failed request — count toward slo_violation_fraction.
  /// 0 disables the metric.
  double slo_ms = 0.0;

  // --- Crash safety (see docs/RECOVERY.md) ---

  /// Checkpoint target path.  Empty disables checkpointing entirely — the
  /// request loop then carries zero extra work (one sentinel compare per
  /// request, the same pattern as the progress probe).  Non-empty requires
  /// at least one trigger: a cadence below or a `stop` flag.
  std::string checkpoint_path;
  /// Write a checkpoint every this many requests (0 = no request cadence).
  /// The parallel engine rounds the cadence up to its shard-merge barriers.
  std::uint64_t checkpoint_every_requests = 0;
  /// Write a checkpoint when this much wall-clock has elapsed since the
  /// last one, checked at the request-loop probe points (0 = no time
  /// cadence).
  double checkpoint_every_seconds = 0.0;
  /// Resume from this checkpoint file (empty = fresh run).  The file's
  /// fingerprint must match the present configuration exactly — mismatches
  /// are refused with a diff of what changed.  For any kill point, the
  /// resumed run's SimulationReport is byte-identical to an uninterrupted
  /// run's.  Metric/trace sinks must be fresh (the checkpoint re-plays
  /// their pre-kill state into them).
  std::string resume_path;
  /// Graceful-shutdown flag (non-owning; typically set by a SIGINT/SIGTERM
  /// handler).  Polled at the probe points; when set, the engine writes a
  /// final checkpoint to `checkpoint_path` and throws recover::Interrupted.
  const std::atomic<bool>* stop = nullptr;

  /// Throws PreconditionError on an invalid configuration; called by
  /// simulate() before any work.
  void validate() const;

  // --- Observability (all optional; see docs/OBSERVABILITY.md) ---

  /// Metric sink (non-owning).  Null disables every metric below at the
  /// cost of a single pointer check before the request loop.
  obs::Registry* metrics = nullptr;
  /// Prefix of every metric name this run emits, e.g. "sim/hybrid/".
  std::string metrics_prefix = "sim/";
  /// The measured stream is split into this many equal windows; per-window
  /// hit-ratio / local-ratio / mean-hops series land in the registry.
  std::size_t metrics_windows = 50;
  /// Also keep one latency histogram per server ("server/<i>/latency_ms").
  /// Adds N histograms to the snapshot — disable for very large fleets.
  bool per_server_metrics = true;

  /// Sampled per-request event sink (non-owning).  Null disables tracing.
  obs::TraceSink* trace_sink = nullptr;

  /// Span tracer (non-owning; see docs/OBSERVABILITY.md).  Null disables
  /// span recording entirely.  Spans are phase-granular — engine phases,
  /// per-shard intervals, checkpoint writes, fault transitions — never
  /// per-request, so enabling them does not perturb the request loop, and
  /// the report stays bit-identical with or without a tracer attached.
  obs::SpanTracer* spans = nullptr;

  /// Invoke `progress` roughly every `progress_every` requests (0 = off).
  /// The sequential engine honours the cadence exactly; the parallel
  /// engine reports at its shard-merge barriers, so snapshots arrive at
  /// the nearest barrier boundary.  The callback owns the presentation —
  /// the simulator itself never touches a stream, keeping <iostream> out
  /// of the hot TU.
  std::uint64_t progress_every = 0;
  std::function<void(const SimulationProgress&)> progress;
};

struct SimulationReport {
  /// Response-time distribution of all measured requests: exact samples
  /// from the sequential engine, a bounded-memory quantile sketch from the
  /// parallel one (same query interface either way).
  util::LatencyDistribution latency_cdf;

  double mean_latency_ms = 0.0;
  /// Average redirection cost in hops per measured request — comparable to
  /// the model's predicted cost per request (Figure 6).
  double mean_cost_hops = 0.0;
  /// Fraction of measured requests satisfied at the first-hop server.
  double local_ratio = 0.0;
  /// Fraction of measured *cache-eligible* requests (unreplicated site,
  /// not flagged uncacheable) that hit the cache.
  double cache_hit_ratio = 0.0;

  std::uint64_t measured_requests = 0;
  std::uint64_t total_requests = 0;
  /// Shards the engine ran (1 = sequential reference engine).
  std::size_t shards_used = 1;

  // --- Degraded-mode accounting (all default on a healthy run) ---

  /// Measured requests for which no live copy existed — they were lost.
  /// Failed requests are excluded from latency_cdf (they never complete)
  /// but still count in measured_requests.
  std::uint64_t failed_requests = 0;
  /// Measured requests re-routed around a dead first-hop or holder.
  std::uint64_t failover_requests = 0;
  /// Failed connection attempts paid by measured requests.
  std::uint64_t retry_attempts = 0;
  /// Server recoveries over the whole run; each wiped that server's cache.
  std::uint64_t cold_restarts = 0;
  /// Fault-schedule transitions applied over the whole run.
  std::uint64_t fault_transitions = 0;
  /// 1 - failed_requests / measured_requests.
  double availability = 1.0;
  /// Fraction of measured requests over slo_ms or failed (0 when the SLO
  /// is disabled).
  double slo_violation_fraction = 0.0;

  /// Final per-server cache statistics (measured window only).
  std::vector<cache::CacheStats> server_cache_stats;

  /// All servers' cache statistics merged (measured window only).
  cache::CacheStats cache_totals;
};

/// Runs the simulation of `result` (a placement plus its implied per-server
/// cache sizes) against freshly generated synthetic traffic.
SimulationReport simulate(const sys::CdnSystem& system,
                          const placement::PlacementResult& result,
                          const SimulationConfig& config);

}  // namespace cdn::sim
