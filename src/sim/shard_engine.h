// Parallel sharded simulation engine.
//
// The reference stream is i.i.d. (Section 3.2), so it decomposes exactly by
// first-hop server: partition the servers into S shards, split the total
// request count multinomially over the shards' demand masses, and run each
// shard's conditional stream against shard-local state (caches, window
// accumulators, cause counters, latency sketch) on a thread pool.  Shard
// results merge in fixed shard-index order, so the report is a
// deterministic function of (seed, shards) — the thread count only changes
// the execution schedule, never a result bit.
//
// Healthy synthetic runs only: a fault schedule, trace replay or a trace
// sink needs the global request clock and stays on the sequential engine
// (simulate() dispatches).

#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/simulator.h"
#include "src/workload/demand.h"

namespace cdn::sim {

/// First-hop partition of one parallel run.
struct ShardPlan {
  /// servers[s] = ascending global ids owned by shard s (round-robin:
  /// server i belongs to shard i % S, so the local index is i / S).
  std::vector<std::vector<workload::ServerId>> servers;
  /// requests[s] = synthetic requests shard s generates; sums to the run's
  /// total.  An exact multinomial sample over the shards' demand masses.
  std::vector<std::uint64_t> requests;
};

/// Splits `total` requests over `shards` first-hop shards of the demand
/// matrix.  Deterministic in (seed, shards).
ShardPlan plan_shards(const workload::DemandMatrix& demand,
                      std::uint64_t total, std::size_t shards,
                      std::uint64_t seed);

/// Shard count of a run: the configured value, or 4 shards per thread when
/// auto (0) — enough slack for even static load balance — capped at the
/// server count (a shard needs at least one first-hop server).
std::size_t resolve_shard_count(std::size_t configured, std::size_t threads,
                                std::size_t server_count);

/// Runs the sharded engine.  Called by simulate() when threads > 1 and the
/// run is healthy + synthetic; not part of the public API.
SimulationReport simulate_parallel(const sys::CdnSystem& system,
                                   const placement::PlacementResult& result,
                                   const SimulationConfig& config,
                                   std::size_t threads);

}  // namespace cdn::sim
