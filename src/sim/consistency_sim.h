// Consistency-aware simulation: the Section 3.3 mechanisms made concrete.
//
// Compared to sim::simulate (which models staleness as the paper's flat
// lambda), this driver attaches a per-object modification process and
// per-server freshness tables, and implements TTL-based weak consistency
// or invalidation-based strong consistency.  Replicas are push-updated by
// the CDN and always fresh, matching the paper's assumption.

#pragma once

#include "src/sim/consistency.h"
#include "src/sim/simulator.h"

namespace cdn::sim {

struct ConsistencyReport {
  SimulationReport base;

  /// Requests served from cache with a copy older than its last
  /// modification (possible only under kTtl).
  std::uint64_t stale_served = 0;
  /// TTL-expired cache hits that were revalidated at the nearest copy.
  std::uint64_t validations = 0;
  /// Cache hits dropped because an invalidation had voided the copy
  /// (kInvalidation).
  std::uint64_t invalidation_misses = 0;

  /// Fraction of measured requests that returned stale content.
  double stale_ratio() const {
    return base.measured_requests
               ? static_cast<double>(stale_served) /
                     static_cast<double>(base.measured_requests)
               : 0.0;
  }
};

/// Runs the simulation under the given consistency mechanism.
/// kBernoulli delegates to sim::simulate (lambda comes from the catalog).
ConsistencyReport simulate_with_consistency(
    const sys::CdnSystem& system, const placement::PlacementResult& result,
    const SimulationConfig& sim_config,
    const ConsistencyConfig& consistency);

}  // namespace cdn::sim
