// Cache-consistency substrate (Section 3.3).
//
// The paper's experiments reduce consistency to a flat lambda: a fixed
// fraction of requests must touch the remote copy.  Section 3.3, however,
// discusses the real mechanisms — strong consistency via server-based
// invalidation [18] and weak consistency via TTLs — and cites [22] for
// object modification intervals between one and 24 hours.  This module
// implements that machinery so the simulator can run any of:
//
//   * kBernoulli   — the paper's lambda model (reference behaviour);
//   * kTtl         — weak consistency: a cached copy older than the TTL is
//                    revalidated at the nearest copy (remote latency); a
//                    younger copy is served even if stale (counted);
//   * kInvalidation— strong consistency: a modification instantly
//                    invalidates every cached copy, so the next request
//                    misses; served copies are never stale.
//
// Modification times are a deterministic pseudo-random renewal process per
// object (exponential inter-update times), so runs are reproducible and no
// per-object history needs storing: the process is evaluated lazily.

#pragma once

#include <cstdint>
#include <unordered_map>

#include "src/util/rng.h"
#include "src/workload/site_catalog.h"

namespace cdn::sim {

enum class ConsistencyMode {
  kBernoulli,     // the paper's lambda model
  kTtl,           // weak consistency
  kInvalidation,  // strong consistency (server-based invalidation)
};

/// Deterministic per-object modification process: exponential inter-update
/// times with a mean drawn per object from [min_interval, max_interval]
/// (uniformly in log space, matching the 1h..24h spread of [22]).
class ModificationProcess {
 public:
  /// Intervals are in the simulator's virtual-time unit (requests are
  /// assigned virtual timestamps by the caller).
  ModificationProcess(double min_mean_interval, double max_mean_interval,
                      std::uint64_t seed);

  /// Time of the last modification of `object` at or before `now`.
  /// O(expected number of updates in [0, now]) via per-object replay with
  /// a cached cursor — amortised O(1) for monotone `now` queries.
  double last_modification(workload::ObjectId object, double now);

  /// Mean inter-update interval of this object (deterministic per object).
  double mean_interval(workload::ObjectId object) const;

 private:
  struct Cursor {
    double last = 0.0;  // latest update time <= the last queried `now`
    double next = 0.0;  // first update time > `last`
    util::Rng rng{0};
    bool initialised = false;
  };

  double min_mean_, max_mean_;
  std::uint64_t seed_;
  std::unordered_map<workload::ObjectId, Cursor> cursors_;
};

/// Per-server record of when each cached object was fetched/validated.
/// Kept beside the cache policy (which stores no metadata).
class FreshnessTable {
 public:
  void on_fetch(workload::ObjectId object, double now) {
    fetched_[object] = now;
  }
  /// Fetch time, or -infinity when unknown (treat as maximally stale).
  double fetch_time(workload::ObjectId object) const;
  void erase(workload::ObjectId object) { fetched_.erase(object); }
  std::size_t size() const noexcept { return fetched_.size(); }

 private:
  std::unordered_map<workload::ObjectId, double> fetched_;
};

struct ConsistencyConfig {
  ConsistencyMode mode = ConsistencyMode::kBernoulli;
  /// TTL for kTtl mode, in virtual-time units.
  double ttl = 3600.0;
  /// Object modification process parameters (kTtl / kInvalidation),
  /// defaults spanning 1h..24h as reported by [22].
  double min_mean_update_interval = 3600.0;
  double max_mean_update_interval = 86400.0;
  /// Virtual seconds between consecutive requests (sets the wall-clock
  /// scale of the request stream).
  double seconds_per_request = 0.01;
  std::uint64_t seed = 1234;
};

}  // namespace cdn::sim
