#include "src/sim/flow_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/model/steady_state.h"
#include "src/obs/scoped_timer.h"
#include "src/sim/sim_internal.h"
#include "src/util/error.h"

namespace cdn::sim {

namespace {

// The flow engine builds its H(z)/N(z) tables per run (the tier may differ
// from the placement's), so the grid is kept small: 512 log-spaced points
// hold the interpolation error well below the model-vs-simulation gap while
// costing ~0.5M exp() calls at the paper's L=1000 — the dominant share of a
// flow run's setup.
constexpr std::size_t kCurveGridPoints = 512;

model::SteadyStateModel tier_of(HitModel hit_model) {
  switch (hit_model) {
    case HitModel::kEmpirical:
      return model::SteadyStateModel::kEmpirical;
    case HitModel::kClosedForm:
      return model::SteadyStateModel::kClosedForm;
    case HitModel::kChe:
      return model::SteadyStateModel::kChe;
  }
  return model::SteadyStateModel::kEmpirical;
}

}  // namespace

SimulationReport simulate_flow(const sys::CdnSystem& system,
                               const placement::PlacementResult& result,
                               const SimulationConfig& config) {
  const auto& catalog = system.catalog();
  const auto& demand = system.demand();
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();

  obs::Registry* const metrics = config.metrics;
  const std::string& prefix = config.metrics_prefix;
  obs::TimerStat* const t_setup =
      metrics ? &metrics->timer(prefix + "phase/setup") : nullptr;
  obs::TimerStat* const t_run =
      metrics ? &metrics->timer(prefix + "phase/run") : nullptr;
  obs::TimerStat* const t_report =
      metrics ? &metrics->timer(prefix + "phase/report") : nullptr;

  obs::SpanTracer* const spans = config.spans;
  const char* sp_setup = nullptr;
  const char* sp_run = nullptr;
  const char* sp_report = nullptr;
  if (spans != nullptr) {
    sp_setup = spans->intern(prefix + "setup");
    sp_run = spans->intern(prefix + "run");
    sp_report = spans->intern(prefix + "report");
  }

  obs::ScopedTimer setup_timer(t_setup);
  obs::ScopedSpan setup_span(spans, sp_setup, "sim");
  const auto run_start = std::chrono::steady_clock::now();

  // --- Hit-ratio model tier: an N x M matrix, (1 - lambda)-scaled. ---
  const model::SteadyStateModel tier = tier_of(config.hit_model);
  std::vector<double> hits;
  std::uint64_t curve_clamped = 0;
  if (tier == model::SteadyStateModel::kEmpirical) {
    hits = result.modeled_hit;
    CDN_EXPECT(hits.size() == n * m,
               "placement hit matrix does not match the system dimensions");
  } else {
    const util::ZipfDistribution& zipf = catalog.object_popularity();
    const model::HitRatioCurve curve(zipf, kCurveGridPoints);
    std::optional<model::OccupancyCurve> occupancy;
    if (tier == model::SteadyStateModel::kChe) {
      occupancy.emplace(zipf, kCurveGridPoints);
    }
    hits.assign(n * m, 0.0);
    const double mean_bytes = catalog.mean_object_bytes();
    std::vector<double> popularity(m, 0.0);
    std::vector<std::uint8_t> replicated(m, 0);
    std::vector<double> lambdas(m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      lambdas[j] =
          catalog.uncacheable_fraction(static_cast<workload::SiteId>(j));
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto server = static_cast<sys::ServerIndex>(i);
      const double row_total =
          demand.server_total(static_cast<workload::ServerId>(i));
      for (std::size_t j = 0; j < m; ++j) {
        popularity[j] =
            row_total > 0.0
                ? demand.requests(static_cast<workload::ServerId>(i),
                                  static_cast<workload::SiteId>(j)) /
                      row_total
                : 0.0;
        replicated[j] = result.placement.is_replicated(
                            server, static_cast<sys::SiteIndex>(j))
                            ? 1
                            : 0;
      }
      const auto slots = static_cast<std::uint64_t>(
          static_cast<double>(result.cache_bytes(server)) / mean_bytes);
      const std::vector<double> row = model::steady_state_hit_ratios(
          tier, popularity, replicated, lambdas, zipf, curve,
          occupancy ? &*occupancy : nullptr, slots);
      std::copy(row.begin(), row.end(), hits.begin() + i * m);
    }
    curve_clamped = curve.clamped_evaluations() +
                    (occupancy ? occupancy->clamped_evaluations() : 0);
  }

  setup_timer.stop();
  setup_span.stop();
  obs::ScopedTimer run_timer(t_run);
  obs::ScopedSpan run_span(spans, sp_run, "sim");

  const std::uint64_t total = config.total_requests;
  const double total_demand = demand.total();
  CDN_EXPECT(total_demand > 0.0, "demand matrix has no request mass");
  const double lat_local = config.latency.latency_ms(0.0);
  const bool slo_active = config.slo_ms > 0.0;

  SimulationReport report;
  report.latency_cdf.use_sketch(config.latency_sketch_error);

  // --- Split every demand cell's flow mass analytically. ---
  double mass = 0.0;                  // total processed flow (sums to ~1)
  double local_mass = 0.0;            // served at the first-hop server
  double replica_local_mass = 0.0;    //   of which: local replica
  double hit_mass = 0.0;              //   of which: modelled cache hit
  double eligible_mass = 0.0;         // unreplicated * (1 - lambda)
  double flagged_mass = 0.0;          // unreplicated * lambda
  double origin_mass = 0.0;           // redirected to the primary origin
  double replica_redirect_mass = 0.0; // redirected to a replica holder
  double hop_mass = 0.0;              // sum f * (1 - mh) * C(i, SN)
  double lat_sum = 0.0;               // mass-weighted latency
  double slo_mass = 0.0;              // mass with latency > slo_ms
  std::vector<double> served_share(n, 0.0);
  std::uint64_t cells = 0;

  // Weighted CDF insertion: one O(1) sketch add per latency value, with
  // flow mass converted to (rounded) request counts.
  const auto add_weighted = [&](double latency_ms, double flow) {
    const auto count = static_cast<std::uint64_t>(std::max<std::int64_t>(
        0, std::llround(flow * static_cast<double>(total))));
    report.latency_cdf.add(latency_ms, count);
  };
  double local_lat_mass = 0.0;  // everything at lat_local, added once below

  for (std::size_t i = 0; i < n; ++i) {
    const auto server = static_cast<sys::ServerIndex>(i);
    for (std::size_t j = 0; j < m; ++j) {
      const double d = demand.requests(static_cast<workload::ServerId>(i),
                                       static_cast<workload::SiteId>(j));
      if (d <= 0.0) continue;
      ++cells;
      const double f = d / total_demand;
      mass += f;
      const auto site = static_cast<sys::SiteIndex>(j);
      if (result.placement.is_replicated(server, site)) {
        local_mass += f;
        replica_local_mass += f;
        served_share[i] += f;
        local_lat_mass += f;
        lat_sum += f * lat_local;
        if (slo_active && lat_local > config.slo_ms) slo_mass += f;
        continue;
      }
      const double lambda =
          catalog.uncacheable_fraction(static_cast<workload::SiteId>(j));
      // Already (1 - lambda)-scaled; clamp against model round-off so the
      // redirected remainder can never go negative.
      const double mh = std::clamp(hits[i * m + j], 0.0, 1.0 - lambda);
      const double hit = f * mh;
      const double redirect = f - hit;  // flagged mass + cache misses
      eligible_mass += f * (1.0 - lambda);
      flagged_mass += f * lambda;
      hit_mass += hit;
      local_mass += hit;
      served_share[i] += hit;
      local_lat_mass += hit;
      lat_sum += hit * lat_local;
      if (slo_active && lat_local > config.slo_ms) slo_mass += hit;
      const sys::NearestCopy& copy = result.nearest.nearest(server, site);
      const double lat_redirect = config.latency.latency_ms(copy.cost);
      hop_mass += redirect * copy.cost;
      lat_sum += redirect * lat_redirect;
      if (slo_active && lat_redirect > config.slo_ms) slo_mass += redirect;
      if (copy.at_primary) {
        origin_mass += redirect;
      } else {
        replica_redirect_mass += redirect;
        served_share[copy.server] += redirect;
      }
      add_weighted(lat_redirect, redirect);
    }
  }
  add_weighted(lat_local, local_lat_mass);
  CDN_CHECK(mass > 0.0, "no demand cell carries positive mass");
  // Tiny runs can round every weight to zero; keep the CDF queryable.
  if (report.latency_cdf.empty()) report.latency_cdf.add(lat_sum / mass, 1);

  run_timer.stop();
  run_span.stop();
  obs::ScopedTimer report_timer(t_report);
  obs::ScopedSpan report_span(spans, sp_report, "sim");

  // Steady state has no warm-up: the whole run is measured.
  report.total_requests = total;
  report.measured_requests = total;
  report.shards_used = 1;
  report.mean_latency_ms = lat_sum / mass;
  report.mean_cost_hops = hop_mass / mass;
  report.local_ratio = local_mass / mass;
  report.cache_hit_ratio =
      eligible_mass > 0.0 ? hit_mass / eligible_mass : 0.0;
  report.slo_violation_fraction = slo_active ? slo_mass / mass : 0.0;

  if (metrics != nullptr) {
    detail::publish_summary_metrics(*metrics, prefix, config, report,
                                    slo_active, /*faults_active=*/false);
    // Expected per-cause request counts, mirroring the event engine's
    // cause/* counters (rounded from flow mass).
    const auto expected = [&](double flow) {
      return static_cast<std::uint64_t>(std::max<std::int64_t>(
          0, std::llround(flow / mass * static_cast<double>(total))));
    };
    metrics->counter(prefix + "cause/" + obs::to_string(obs::EventCause::kReplica))
        .add(expected(replica_local_mass));
    metrics->counter(prefix + "cause/" + obs::to_string(obs::EventCause::kCacheHit))
        .add(expected(hit_mass));
    metrics->counter(prefix + "cause/" + obs::to_string(obs::EventCause::kCacheMiss))
        .add(expected(eligible_mass - hit_mass));
    const auto flagged_cause = config.staleness == StalenessMode::kUncacheable
                                   ? obs::EventCause::kUncacheable
                                   : obs::EventCause::kStaleRefresh;
    metrics->counter(prefix + "cause/" + obs::to_string(flagged_cause))
        .add(expected(flagged_mass));
    // Flow-split gauges (all normalised shares of the total request mass).
    metrics->gauge(prefix + "flow/local_replica_share")
        .set(replica_local_mass / mass);
    metrics->gauge(prefix + "flow/cache_hit_share").set(hit_mass / mass);
    metrics->gauge(prefix + "flow/origin_share").set(origin_mass / mass);
    metrics->gauge(prefix + "flow/replica_redirect_share")
        .set(replica_redirect_mass / mass);
    metrics->gauge(prefix + "flow/uncacheable_share")
        .set(flagged_mass / mass);
    metrics->gauge(prefix + "flow/hit_model")
        .set(static_cast<double>(static_cast<int>(config.hit_model)));
    metrics->gauge(prefix + "flow/cells").set(static_cast<double>(cells));
    metrics->counter(prefix + "model/curve_clamped").add(curve_clamped);
    if (config.per_server_metrics) {
      for (std::size_t i = 0; i < n; ++i) {
        metrics->gauge(prefix + "server/" + std::to_string(i) + "/load_share")
            .set(served_share[i] / mass);
      }
      metrics->gauge(prefix + "flow/origin_load_share")
          .set(origin_mass / mass);
    }
  }

  if (config.progress_every > 0 && config.progress) {
    // One terminal snapshot: a flow run has no meaningful intermediate
    // progress (it completes in milliseconds).
    SimulationProgress p;
    p.completed = total;
    p.total = total;
    p.hit_ratio = report.cache_hit_ratio;
    p.hit_ratio_known = eligible_mass > 0.0;
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - run_start)
                               .count();
    if (elapsed > 0.0) {
      p.requests_per_sec = static_cast<double>(total) / elapsed;
    }
    config.progress(p);
  }
  return report;
}

}  // namespace cdn::sim
