#include "src/sim/sim_checkpoint.h"

#include <string>

#include "src/cdn/system.h"
#include "src/fault/fault_schedule.h"
#include "src/workload/trace_io.h"

namespace cdn::sim {

std::vector<std::uint8_t> serialize_report(const SimulationReport& report) {
  util::ByteWriter w;
  report.latency_cdf.save_state(w);
  w.f64(report.mean_latency_ms);
  w.f64(report.mean_cost_hops);
  w.f64(report.local_ratio);
  w.f64(report.cache_hit_ratio);
  w.u64(report.measured_requests);
  w.u64(report.total_requests);
  w.u64(report.shards_used);
  w.u64(report.failed_requests);
  w.u64(report.failover_requests);
  w.u64(report.retry_attempts);
  w.u64(report.cold_restarts);
  w.u64(report.fault_transitions);
  w.f64(report.availability);
  w.f64(report.slo_violation_fraction);
  w.u64(report.server_cache_stats.size());
  for (const cache::CacheStats& stats : report.server_cache_stats) {
    stats.save_state(w);
  }
  report.cache_totals.save_state(w);
  return w.buffer();
}

std::uint64_t report_digest(const SimulationReport& report) {
  const std::vector<std::uint8_t> bytes = serialize_report(report);
  return util::fnv1a(bytes.data(), bytes.size());
}

namespace detail {

namespace {

std::uint64_t hash_of(const util::ByteWriter& w) {
  return util::fnv1a(w.buffer().data(), w.size());
}

std::uint64_t config_hash(const SimulationConfig& config) {
  util::ByteWriter w;
  if (config.trace != nullptr) {
    w.u8(1);
    w.u64(config.trace->size());
    for (std::size_t i = 0; i < config.trace->size(); ++i) {
      const workload::Request& req = (*config.trace)[i];
      w.u32(req.server);
      w.u32(req.site);
      w.u32(req.rank);
    }
  } else {
    w.u8(0);
    w.u64(config.total_requests);
  }
  w.f64(config.warmup_fraction);
  w.u8(static_cast<std::uint8_t>(config.policy));
  w.u8(static_cast<std::uint8_t>(config.staleness));
  w.f64(config.latency.ms_per_hop);
  w.f64(config.latency.first_hop_ms);
  w.f64(config.latency.retry_timeout_ms);
  w.f64(config.latency.retry_backoff_ms);
  w.u64(config.seed);
  w.f64(config.stream_locality);
  w.f64(config.slo_ms);
  w.f64(config.latency_sketch_error);
  w.u64(config.metrics_windows);
  w.u8(config.per_server_metrics ? 1 : 0);
  // Observability shape matters to the payload layout: a checkpoint taken
  // with metrics (or a trace sink) holds window/cause/histogram (or sink)
  // state the resuming run must also expect.
  w.u8(config.metrics != nullptr ? 1 : 0);
  w.u8(config.trace_sink != nullptr ? 1 : 0);
  return hash_of(w);
}

std::uint64_t system_hash(const sys::CdnSystem& system) {
  util::ByteWriter w;
  const auto& catalog = system.catalog();
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  const std::size_t l = catalog.objects_per_site();
  w.u64(n);
  w.u64(m);
  w.u64(l);
  w.f64(catalog.object_popularity().theta());
  for (std::size_t j = 0; j < m; ++j) {
    const auto site = static_cast<workload::SiteId>(j);
    w.f64(catalog.uncacheable_fraction(site));
    for (std::size_t k = 1; k <= l; ++k) {
      w.u64(catalog.object_bytes(site, k));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    w.u64(system.server_storage(static_cast<sys::ServerIndex>(i)));
    for (const double d :
         system.demand().row(static_cast<workload::ServerId>(i))) {
      w.f64(d);
    }
  }
  return hash_of(w);
}

std::uint64_t placement_hash(const sys::CdnSystem& system,
                             const placement::PlacementResult& result) {
  util::ByteWriter w;
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();
  w.str(result.algorithm);
  w.u8(result.caching_enabled ? 1 : 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto server = static_cast<sys::ServerIndex>(i);
    w.u64(result.cache_bytes(server));
    for (std::size_t j = 0; j < m; ++j) {
      const auto site = static_cast<sys::SiteIndex>(j);
      w.u8(result.placement.is_replicated(server, site) ? 1 : 0);
      const sys::NearestCopy& copy = result.nearest.nearest(server, site);
      w.u8(copy.at_primary ? 1 : 0);
      w.u32(static_cast<std::uint32_t>(copy.server));
      w.f64(copy.cost);
    }
  }
  return hash_of(w);
}

std::uint64_t faults_hash(const SimulationConfig& config) {
  const std::string text =
      config.faults != nullptr ? config.faults->serialize() : std::string();
  return util::fnv1a(text.data(), text.size());
}

std::uint64_t engine_hash(EngineKind engine, std::size_t shards) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(engine));
  w.u64(shards);
  return hash_of(w);
}

}  // namespace

std::vector<recover::FingerprintSection> checkpoint_fingerprint(
    const sys::CdnSystem& system, const placement::PlacementResult& result,
    const SimulationConfig& config, EngineKind engine, std::size_t shards) {
  return {
      {"config", config_hash(config)},
      {"system", system_hash(system)},
      {"placement", placement_hash(system, result)},
      {"faults", faults_hash(config)},
      {"engine", engine_hash(engine, shards)},
  };
}

}  // namespace detail
}  // namespace cdn::sim
