// Flow-level analytical fast path (SimEngine::kFlow).
//
// Instead of replaying per-request events, the flow engine treats the run
// as its steady state: every (server, site) demand cell is a flow of
// fractional request mass, split analytically into
//
//   * locally replicated mass     -> served at first-hop latency,
//   * modelled cache-hit mass     -> served at first-hop latency,
//   * everything else             -> redirected to the nearest copy at
//                                    C(i, SN_j^(i)) hop cost.
//
// The per-(server, site) hit ratios come from a pluggable steady-state
// model tier (HitModel / model::SteadyStateModel): the placement's own
// modeled_hit matrix, the closed-form Eq. 1/Eq. 2 pipeline recomputed from
// the final placement, or the Che/TTL fixed-point approximation.  The
// result is a SimulationReport with the same summary surface as the event
// engines (mean latency, hop cost, flow split, hit ratios, a weighted
// latency CDF, SLO fraction), produced in O(N*M) — typically milliseconds
// where the event engine takes seconds — and cross-validated against the
// sharded engine by sim_flow_test and bench_flow.
//
// What a flow report does NOT contain: per-request artefacts.  The latency
// CDF is a weighted sketch (not samples), measured_requests == total
// (steady state has no warm-up), server_cache_stats are empty, and
// per-request options are rejected by SimulationConfig::validate().

#pragma once

#include "src/cdn/system.h"
#include "src/placement/placement_result.h"
#include "src/sim/simulator.h"

namespace cdn::sim {

/// Runs the flow-level evaluation.  `config` must already satisfy
/// validate() with engine == SimEngine::kFlow; simulate() dispatches here.
SimulationReport simulate_flow(const sys::CdnSystem& system,
                               const placement::PlacementResult& result,
                               const SimulationConfig& config);

}  // namespace cdn::sim
