// Checkpoint support of the simulation engines (see docs/RECOVERY.md):
// the fingerprint of a run's immutable inputs, shared state-serialisation
// helpers, and the canonical byte form of a SimulationReport used by the
// byte-identity tests and the CI kill-and-resume diff.

#pragma once

#include <cstdint>
#include <vector>

#include "src/recover/checkpoint.h"
#include "src/sim/sim_internal.h"
#include "src/sim/simulator.h"

namespace cdn::sim {

/// Canonical byte serialisation of a report: every double as its exact bit
/// pattern, every counter, the full latency distribution and per-server
/// cache statistics.  Two reports are byte-identical iff these buffers are.
std::vector<std::uint8_t> serialize_report(const SimulationReport& report);

/// FNV-1a digest of serialize_report() — a printable identity for CI diffs.
std::uint64_t report_digest(const SimulationReport& report);

namespace detail {

/// Which engine wrote a checkpoint.  Part of the fingerprint: a sequential
/// checkpoint cannot resume a parallel run or vice versa, and the parallel
/// shard count must match exactly (the thread count may differ — it never
/// affects a result bit).
enum class EngineKind : std::uint8_t { kSequential = 0, kParallel = 1 };

/// Computes the named fingerprint sections of one run: "config", "system",
/// "placement", "faults" and "engine".  Resume recomputes these and lets
/// recover::check_fingerprint diff them against the file's.
std::vector<recover::FingerprintSection> checkpoint_fingerprint(
    const sys::CdnSystem& system, const placement::PlacementResult& result,
    const SimulationConfig& config, EngineKind engine, std::size_t shards);

inline void save_rng(util::ByteWriter& w, const util::Rng& rng) {
  for (const std::uint64_t word : rng.state()) w.u64(word);
}

inline void restore_rng(util::ByteReader& r, util::Rng& rng) {
  std::array<std::uint64_t, 4> state;
  for (auto& word : state) word = r.u64();
  rng.set_state(state);
}

inline void save_window(util::ByteWriter& w, const WindowAccumulator& win) {
  w.u64(win.requests);
  w.u64(win.local);
  w.u64(win.eligible);
  w.u64(win.eligible_hits);
  w.f64(win.hops);
  w.f64(win.latency_ms);
  w.u64(win.failed);
  w.u64(win.failover);
  w.f64(win.degraded_latency_ms);
}

inline void restore_window(util::ByteReader& r, WindowAccumulator& win) {
  win.requests = r.u64();
  win.local = r.u64();
  win.eligible = r.u64();
  win.eligible_hits = r.u64();
  win.hops = r.f64();
  win.latency_ms = r.f64();
  win.failed = r.u64();
  win.failover = r.u64();
  win.degraded_latency_ms = r.f64();
}

}  // namespace detail
}  // namespace cdn::sim
