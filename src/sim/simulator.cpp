#include "src/sim/simulator.h"

#include <algorithm>
#include <iostream>
#include <limits>

#include "src/obs/scoped_timer.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/workload/request_stream.h"

namespace cdn::sim {

namespace {

/// Measured-window accumulator, flushed into the registry's per-window
/// series every measured/metrics_windows requests.
struct WindowAccumulator {
  std::uint64_t requests = 0;
  std::uint64_t local = 0;
  std::uint64_t eligible = 0;
  std::uint64_t eligible_hits = 0;
  double hops = 0.0;
  double latency_ms = 0.0;
};

/// Resolved series pointers of the per-window time series (all null when
/// metrics are disabled).
struct WindowSeries {
  obs::Series* requests = nullptr;
  obs::Series* local = nullptr;
  obs::Series* eligible = nullptr;
  obs::Series* eligible_hits = nullptr;
  obs::Series* hops = nullptr;
  obs::Series* hit_ratio = nullptr;
  obs::Series* local_ratio = nullptr;
  obs::Series* mean_hops = nullptr;
  obs::Series* mean_latency_ms = nullptr;

  void flush(const WindowAccumulator& win) const {
    const double n = static_cast<double>(win.requests);
    requests->push(n);
    local->push(static_cast<double>(win.local));
    eligible->push(static_cast<double>(win.eligible));
    eligible_hits->push(static_cast<double>(win.eligible_hits));
    hops->push(win.hops);
    hit_ratio->push(win.eligible ? static_cast<double>(win.eligible_hits) /
                                       static_cast<double>(win.eligible)
                                 : 0.0);
    local_ratio->push(win.requests ? static_cast<double>(win.local) / n : 0.0);
    mean_hops->push(win.requests ? win.hops / n : 0.0);
    mean_latency_ms->push(win.requests ? win.latency_ms / n : 0.0);
  }
};

}  // namespace

SimulationReport simulate(const sys::CdnSystem& system,
                          const placement::PlacementResult& result,
                          const SimulationConfig& config) {
  CDN_EXPECT(config.total_requests > 0, "need at least one request");
  CDN_EXPECT(config.warmup_fraction >= 0.0 && config.warmup_fraction < 1.0,
             "warmup fraction must be in [0, 1)");

  const auto& catalog = system.catalog();
  const std::size_t n = system.server_count();

  obs::Registry* const metrics = config.metrics;
  const std::string& prefix = config.metrics_prefix;
  obs::TimerStat* const t_setup =
      metrics ? &metrics->timer(prefix + "phase/setup") : nullptr;
  obs::TimerStat* const t_run =
      metrics ? &metrics->timer(prefix + "phase/run") : nullptr;
  obs::TimerStat* const t_report =
      metrics ? &metrics->timer(prefix + "phase/report") : nullptr;

  obs::ScopedTimer setup_timer(t_setup);

  // One cache per server, sized by what the placement left free.
  std::vector<std::unique_ptr<cache::CachePolicy>> caches;
  caches.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    caches.push_back(cache::make_cache(
        config.policy,
        result.cache_bytes(static_cast<sys::ServerIndex>(i))));
  }

  workload::RequestStream stream(catalog, system.demand(), config.seed,
                                 config.stream_locality);
  util::Rng lambda_rng(config.seed ^ 0x5bd1e995u);

  std::uint64_t total = config.total_requests;
  if (config.trace != nullptr) {
    CDN_EXPECT(!config.trace->empty(), "cannot replay an empty trace");
    config.trace->validate(n, catalog.site_count(),
                           catalog.objects_per_site());
    total = config.trace->size();
  }
  const std::uint64_t warmup = static_cast<std::uint64_t>(
      config.warmup_fraction * static_cast<double>(total));
  const std::uint64_t measured_total = total - warmup;
  CDN_CHECK(measured_total > 0, "warm-up consumed every request");

  SimulationReport report;
  report.total_requests = total;
  report.latency_cdf.reserve(measured_total);

  // --- Resolve every metric ONCE; the request loop only dereferences. ---
  const bool instrumented = metrics != nullptr;
  WindowSeries win_series;
  obs::Counter* cause_counter[5] = {nullptr, nullptr, nullptr, nullptr,
                                    nullptr};
  std::vector<obs::Histogram*> server_latency;
  std::uint64_t next_window_flush = total;  // sentinel: never inside the loop
  std::uint64_t window_index = 0;
  const std::size_t window_count =
      instrumented
          ? std::max<std::size_t>(
                1, std::min<std::size_t>(config.metrics_windows,
                                         measured_total))
          : 0;
  if (instrumented) {
    win_series = {
        &metrics->series(prefix + "window/requests"),
        &metrics->series(prefix + "window/local"),
        &metrics->series(prefix + "window/eligible"),
        &metrics->series(prefix + "window/eligible_hits"),
        &metrics->series(prefix + "window/hops"),
        &metrics->series(prefix + "window/hit_ratio"),
        &metrics->series(prefix + "window/local_ratio"),
        &metrics->series(prefix + "window/mean_hops"),
        &metrics->series(prefix + "window/mean_latency_ms")};
    for (const auto cause :
         {obs::EventCause::kReplica, obs::EventCause::kCacheHit,
          obs::EventCause::kCacheMiss, obs::EventCause::kStaleRefresh,
          obs::EventCause::kUncacheable}) {
      cause_counter[static_cast<std::size_t>(cause)] = &metrics->counter(
          prefix + "cause/" + obs::to_string(cause));
    }
    if (config.per_server_metrics) {
      server_latency.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        server_latency[i] = &metrics->histogram(
            prefix + "server/" + std::to_string(i) + "/latency_ms",
            obs::default_latency_bounds_ms());
      }
    }
    // Window w covers [warmup + w*M/W, warmup + (w+1)*M/W); the last
    // boundary is exactly `total`, so every measured request lands in a
    // window and the flushed series sum back to the aggregates.
    next_window_flush = warmup + measured_total / window_count;
  }
  WindowAccumulator win;

  obs::TraceSink* const trace_sink = config.trace_sink;
  std::uint64_t next_progress = config.progress_every > 0
                                    ? config.progress_every
                                    : std::numeric_limits<std::uint64_t>::max();

  setup_timer.stop();
  obs::ScopedTimer run_timer(t_run);

  double hop_sum = 0.0;
  std::uint64_t local = 0;
  std::uint64_t eligible = 0;
  std::uint64_t eligible_hits = 0;

  for (std::uint64_t t = 0; t < total; ++t) {
    // Reset measured-window statistics exactly at the end of warm-up.
    if (t == warmup) {
      for (auto& c : caches) c->reset_stats();
    }
    const workload::Request req =
        config.trace != nullptr ? (*config.trace)[t] : stream.next();
    const auto server = static_cast<sys::ServerIndex>(req.server);
    const auto site = static_cast<sys::SiteIndex>(req.site);
    const bool measured = t >= warmup;

    double hops = 0.0;
    bool served_locally = false;
    bool cache_eligible = false;
    bool cache_hit = false;
    auto cause = obs::EventCause::kReplica;

    if (result.placement.is_replicated(server, site)) {
      // Replicas are always consistent (the CDN pushes invalidations to
      // them); even flagged requests are served locally.
      served_locally = true;
    } else {
      const bool flagged =
          lambda_rng.bernoulli(catalog.uncacheable_fraction(req.site));
      const double redirect = result.nearest.cost(server, site);
      cache::CachePolicy& cache = *caches[server];
      const cache::ObjectKey key = catalog.object_id(req.site, req.rank);
      const std::uint64_t bytes = catalog.object_bytes(req.site, req.rank);

      if (flagged && config.staleness == StalenessMode::kUncacheable) {
        // Never cached; straight to the nearest copy.
        hops = redirect;
        cause = obs::EventCause::kUncacheable;
      } else if (flagged) {
        // kRefresh: must touch the remote copy; the (re-)fetched object
        // stays cached with updated recency.
        cache.access(key, bytes);
        hops = redirect;
        cause = obs::EventCause::kStaleRefresh;
      } else {
        cache_eligible = true;
        cache_hit = cache.access(key, bytes);
        if (cache_hit) {
          served_locally = true;
          cause = obs::EventCause::kCacheHit;
        } else {
          hops = redirect;
          cause = obs::EventCause::kCacheMiss;
        }
      }
    }

    const double latency_ms = config.latency.latency_ms(hops);
    if (measured) {
      report.latency_cdf.add(latency_ms);
      hop_sum += hops;
      if (served_locally) ++local;
      if (cache_eligible) {
        ++eligible;
        if (cache_hit) ++eligible_hits;
      }
    }

    if (instrumented) {
      if (measured) {
        cause_counter[static_cast<std::size_t>(cause)]->add();
        if (!server_latency.empty()) {
          server_latency[server]->observe(latency_ms);
        }
        ++win.requests;
        win.hops += hops;
        win.latency_ms += latency_ms;
        if (served_locally) ++win.local;
        if (cache_eligible) {
          ++win.eligible;
          if (cache_hit) ++win.eligible_hits;
        }
        if (t + 1 >= next_window_flush) {
          win_series.flush(win);
          win = WindowAccumulator{};
          ++window_index;
          next_window_flush =
              warmup + (window_index + 1) * measured_total / window_count;
        }
      }
    }

    if (trace_sink != nullptr && trace_sink->should_sample()) {
      obs::TraceEvent event;
      event.t = t;
      event.server = req.server;
      event.site = req.site;
      event.rank = req.rank;
      event.cause = cause;
      event.measured = measured;
      event.hops = hops;
      event.latency_ms = latency_ms;
      if (served_locally) {
        event.served_by = static_cast<std::int32_t>(req.server);
      } else {
        const sys::NearestCopy& copy = result.nearest.nearest(server, site);
        event.served_by =
            copy.at_primary ? -1 : static_cast<std::int32_t>(copy.server);
      }
      trace_sink->record(event);
    }

    if (t + 1 >= next_progress) {
      next_progress += config.progress_every;
      const double pct =
          100.0 * static_cast<double>(t + 1) / static_cast<double>(total);
      std::cerr << "sim: " << (t + 1) << "/" << total << " requests ("
                << static_cast<int>(pct) << "%)"
                << (measured && eligible
                        ? ", hit_ratio=" +
                              std::to_string(
                                  static_cast<double>(eligible_hits) /
                                  static_cast<double>(eligible))
                        : std::string(t < warmup ? ", warming up" : ""))
                << '\n';
    }
  }
  // Flush a final partial window (rounding can leave the last flush short).
  if (instrumented && win.requests > 0) win_series.flush(win);

  run_timer.stop();
  obs::ScopedTimer report_timer(t_report);

  report.measured_requests = measured_total;
  const double measured = static_cast<double>(report.measured_requests);
  report.mean_latency_ms = report.latency_cdf.mean();
  report.mean_cost_hops = hop_sum / measured;
  report.local_ratio = static_cast<double>(local) / measured;
  report.cache_hit_ratio =
      eligible ? static_cast<double>(eligible_hits) /
                     static_cast<double>(eligible)
               : 0.0;
  report.server_cache_stats.reserve(n);
  for (const auto& c : caches) {
    report.server_cache_stats.push_back(c->stats());
    report.cache_totals.merge(c->stats());
  }

  if (instrumented) {
    metrics->counter(prefix + "requests_total").add(total);
    metrics->counter(prefix + "requests_measured")
        .add(report.measured_requests);
    metrics->gauge(prefix + "cache_hit_ratio").set(report.cache_hit_ratio);
    metrics->gauge(prefix + "local_ratio").set(report.local_ratio);
    metrics->gauge(prefix + "mean_cost_hops").set(report.mean_cost_hops);
    metrics->gauge(prefix + "mean_latency_ms").set(report.mean_latency_ms);
    metrics->counter(prefix + "cache/hits").add(report.cache_totals.hits());
    metrics->counter(prefix + "cache/misses")
        .add(report.cache_totals.misses());
    metrics->counter(prefix + "cache/admissions")
        .add(report.cache_totals.admissions());
    metrics->counter(prefix + "cache/evictions")
        .add(report.cache_totals.evictions());
    metrics->counter(prefix + "cache/bytes_churned")
        .add(report.cache_totals.bytes_churned());
    if (config.per_server_metrics) {
      for (std::size_t i = 0; i < n; ++i) {
        metrics->gauge(prefix + "server/" + std::to_string(i) + "/hit_ratio")
            .set(report.server_cache_stats[i].hit_ratio());
      }
    }
  }
  return report;
}

}  // namespace cdn::sim
