#include "src/sim/simulator.h"

#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/workload/request_stream.h"

namespace cdn::sim {

SimulationReport simulate(const sys::CdnSystem& system,
                          const placement::PlacementResult& result,
                          const SimulationConfig& config) {
  CDN_EXPECT(config.total_requests > 0, "need at least one request");
  CDN_EXPECT(config.warmup_fraction >= 0.0 && config.warmup_fraction < 1.0,
             "warmup fraction must be in [0, 1)");

  const auto& catalog = system.catalog();
  const std::size_t n = system.server_count();

  // One cache per server, sized by what the placement left free.
  std::vector<std::unique_ptr<cache::CachePolicy>> caches;
  caches.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    caches.push_back(cache::make_cache(
        config.policy,
        result.cache_bytes(static_cast<sys::ServerIndex>(i))));
  }

  workload::RequestStream stream(catalog, system.demand(), config.seed,
                                 config.stream_locality);
  util::Rng lambda_rng(config.seed ^ 0x5bd1e995u);

  std::uint64_t total = config.total_requests;
  if (config.trace != nullptr) {
    CDN_EXPECT(!config.trace->empty(), "cannot replay an empty trace");
    config.trace->validate(n, catalog.site_count(),
                           catalog.objects_per_site());
    total = config.trace->size();
  }
  const std::uint64_t warmup = static_cast<std::uint64_t>(
      config.warmup_fraction * static_cast<double>(total));

  SimulationReport report;
  report.total_requests = total;
  report.latency_cdf.reserve(total - warmup);

  double hop_sum = 0.0;
  std::uint64_t local = 0;
  std::uint64_t eligible = 0;
  std::uint64_t eligible_hits = 0;

  for (std::uint64_t t = 0; t < total; ++t) {
    // Reset measured-window statistics exactly at the end of warm-up.
    if (t == warmup) {
      for (auto& c : caches) c->reset_stats();
    }
    const workload::Request req =
        config.trace != nullptr ? (*config.trace)[t] : stream.next();
    const auto server = static_cast<sys::ServerIndex>(req.server);
    const auto site = static_cast<sys::SiteIndex>(req.site);
    const bool measured = t >= warmup;

    double hops = 0.0;
    bool served_locally = false;
    bool cache_eligible = false;
    bool cache_hit = false;

    if (result.placement.is_replicated(server, site)) {
      // Replicas are always consistent (the CDN pushes invalidations to
      // them); even flagged requests are served locally.
      served_locally = true;
    } else {
      const bool flagged =
          lambda_rng.bernoulli(catalog.uncacheable_fraction(req.site));
      const double redirect = result.nearest.cost(server, site);
      cache::CachePolicy& cache = *caches[server];
      const cache::ObjectKey key = catalog.object_id(req.site, req.rank);
      const std::uint64_t bytes = catalog.object_bytes(req.site, req.rank);

      if (flagged && config.staleness == StalenessMode::kUncacheable) {
        // Never cached; straight to the nearest copy.
        hops = redirect;
      } else if (flagged) {
        // kRefresh: must touch the remote copy; the (re-)fetched object
        // stays cached with updated recency.
        cache.access(key, bytes);
        hops = redirect;
      } else {
        cache_eligible = true;
        cache_hit = cache.access(key, bytes);
        if (cache_hit) {
          served_locally = true;
        } else {
          hops = redirect;
        }
      }
    }

    if (measured) {
      report.latency_cdf.add(config.latency.latency_ms(hops));
      hop_sum += hops;
      if (served_locally) ++local;
      if (cache_eligible) {
        ++eligible;
        if (cache_hit) ++eligible_hits;
      }
    }
  }

  report.measured_requests = total - warmup;
  CDN_CHECK(report.measured_requests > 0, "warm-up consumed every request");
  const double measured = static_cast<double>(report.measured_requests);
  report.mean_latency_ms = report.latency_cdf.mean();
  report.mean_cost_hops = hop_sum / measured;
  report.local_ratio = static_cast<double>(local) / measured;
  report.cache_hit_ratio =
      eligible ? static_cast<double>(eligible_hits) /
                     static_cast<double>(eligible)
               : 0.0;
  report.server_cache_stats.reserve(n);
  for (const auto& c : caches) report.server_cache_stats.push_back(c->stats());
  return report;
}

}  // namespace cdn::sim
