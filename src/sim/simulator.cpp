#include "src/sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>

#include "src/obs/scoped_timer.h"
#include "src/recover/checkpoint.h"
#include "src/sim/flow_engine.h"
#include "src/sim/shard_engine.h"
#include "src/sim/sim_checkpoint.h"
#include "src/sim/sim_internal.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/workload/request_stream.h"

namespace cdn::sim {

void SimulationConfig::validate() const {
  CDN_EXPECT(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
             "warmup fraction must be in [0, 1)");
  CDN_EXPECT(metrics_windows >= 1, "need at least one metrics window");
  if (trace != nullptr) {
    CDN_EXPECT(!trace->empty(), "cannot replay an empty trace");
  } else {
    CDN_EXPECT(total_requests > 0, "need at least one request");
  }
  CDN_EXPECT(slo_ms >= 0.0, "SLO threshold must be non-negative");
  CDN_EXPECT(latency.retry_timeout_ms >= 0.0 && latency.retry_backoff_ms >= 0.0,
             "retry latency penalties must be non-negative");
  CDN_EXPECT(latency_sketch_error > 0.0 && latency_sketch_error < 1.0,
             "latency sketch relative error must be in (0, 1)");
  CDN_EXPECT(std::isfinite(checkpoint_every_seconds) &&
                 checkpoint_every_seconds >= 0.0,
             "checkpoint time cadence must be a non-negative finite number "
             "of seconds");
  const bool checkpoint_cadence =
      checkpoint_every_requests > 0 || checkpoint_every_seconds > 0.0;
  CDN_EXPECT(!checkpoint_cadence || !checkpoint_path.empty(),
             "a checkpoint cadence requires a checkpoint path "
             "(--checkpoint-out)");
  CDN_EXPECT(checkpoint_path.empty() || checkpoint_cadence || stop != nullptr,
             "a checkpoint path needs a trigger: a request or seconds "
             "cadence, or a stop flag");
  if (engine == SimEngine::kFlow) {
    // The flow engine has no per-request loop, so every per-request feature
    // is meaningless there.  Reject loudly instead of silently ignoring —
    // a user who asked for a trace or a checkpoint must not get a report
    // that quietly dropped it.
    CDN_EXPECT(trace == nullptr,
               "the flow engine computes steady-state flows and cannot "
               "replay a recorded trace; use --engine=event");
    CDN_EXPECT(faults == nullptr || faults->empty(),
               "fault schedules need per-request failover decisions; "
               "use --engine=event for fault-injection runs");
    CDN_EXPECT(trace_sink == nullptr,
               "per-request trace sampling needs the event engine; "
               "use --engine=event or drop --trace-out");
    CDN_EXPECT(checkpoint_path.empty() && resume_path.empty() &&
                   stop == nullptr && !checkpoint_cadence,
               "checkpoint/resume makes no sense for the flow engine (runs "
               "complete in milliseconds); use --engine=event");
    CDN_EXPECT(stream_locality == 0.0,
               "the flow model assumes the i.i.d. request stream; "
               "use --engine=event for temporal-locality studies");
  }
}

SimulationReport simulate(const sys::CdnSystem& system,
                          const placement::PlacementResult& result,
                          const SimulationConfig& config) {
  config.validate();

  if (config.engine == SimEngine::kFlow) {
    return simulate_flow(system, result, config);
  }

  // Healthy synthetic runs may shard; a fault schedule, trace replay or a
  // trace sink needs the global request clock and keeps the sequential
  // reference engine below.
  const bool faults_active =
      config.faults != nullptr && !config.faults->empty();
  const std::size_t threads = detail::resolve_threads(config.threads);
  if (threads > 1 && config.trace == nullptr && !faults_active &&
      config.trace_sink == nullptr) {
    return simulate_parallel(system, result, config, threads);
  }

  const auto& catalog = system.catalog();
  const std::size_t n = system.server_count();
  const std::size_t m = system.site_count();

  obs::Registry* const metrics = config.metrics;
  const std::string& prefix = config.metrics_prefix;
  obs::TimerStat* const t_setup =
      metrics ? &metrics->timer(prefix + "phase/setup") : nullptr;
  obs::TimerStat* const t_run =
      metrics ? &metrics->timer(prefix + "phase/run") : nullptr;
  obs::TimerStat* const t_report =
      metrics ? &metrics->timer(prefix + "phase/report") : nullptr;

  // Span names are interned once here; the loop only ever records on rare
  // events (checkpoint writes, fault transitions), never per request.
  obs::SpanTracer* const spans = config.spans;
  const char* sp_setup = nullptr;
  const char* sp_run = nullptr;
  const char* sp_report = nullptr;
  const char* sp_checkpoint = nullptr;
  const char* sp_resume = nullptr;
  const char* sp_fault = nullptr;
  if (spans != nullptr) {
    sp_setup = spans->intern(prefix + "setup");
    sp_run = spans->intern(prefix + "run");
    sp_report = spans->intern(prefix + "report");
    sp_checkpoint = spans->intern(prefix + "checkpoint/write");
    sp_resume = spans->intern(prefix + "checkpoint/resume");
    sp_fault = spans->intern(prefix + "fault/transition");
  }

  obs::ScopedTimer setup_timer(t_setup);
  obs::ScopedSpan setup_span(spans, sp_setup, "sim");

  // One cache per server, sized by what the placement left free.
  std::vector<std::unique_ptr<cache::CachePolicy>> caches;
  caches.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    caches.push_back(cache::make_cache(
        config.policy,
        result.cache_bytes(static_cast<sys::ServerIndex>(i))));
  }

  workload::RequestStream stream(catalog, system.demand(), config.seed,
                                 config.stream_locality);
  util::Rng lambda_rng(config.seed ^ 0x5bd1e995u);

  std::uint64_t total = config.total_requests;
  if (config.trace != nullptr) {
    config.trace->validate(n, catalog.site_count(),
                           catalog.objects_per_site());
    total = config.trace->size();
  }
  const std::uint64_t warmup = static_cast<std::uint64_t>(
      config.warmup_fraction * static_cast<double>(total));
  const std::uint64_t measured_total = total - warmup;
  CDN_CHECK(measured_total > 0, "warm-up consumed every request");

  // --- Fault-injection state (inactive = the healthy fast path). ---
  std::optional<fault::FaultTimeline> timeline;
  std::vector<std::vector<sys::ServerIndex>> holders;
  util::Rng surge_rng(config.seed ^ 0x9e3779b9u);
  if (faults_active) {
    timeline.emplace(*config.faults, n, m);
    holders.resize(m);
    for (std::size_t j = 0; j < m; ++j) {
      holders[j] =
          result.placement.replicators(static_cast<sys::SiteIndex>(j));
    }
  }
  const bool slo_active = config.slo_ms > 0.0;

  SimulationReport report;
  report.total_requests = total;
  report.latency_cdf.reserve(measured_total);

  // --- Resolve every metric ONCE; the request loop only dereferences. ---
  const bool instrumented = metrics != nullptr;
  detail::WindowSeries win_series;
  obs::Counter* cause_counter[obs::kEventCauseCount] = {};
  obs::Counter* c_retries = nullptr;
  std::vector<obs::Histogram*> server_latency;
  std::uint64_t next_window_flush = total;  // sentinel: never inside the loop
  std::uint64_t window_index = 0;
  const std::size_t window_count =
      instrumented
          ? std::max<std::size_t>(
                1, std::min<std::size_t>(config.metrics_windows,
                                         measured_total))
          : 0;
  if (instrumented) {
    win_series.resolve(*metrics, prefix);
    for (const auto cause :
         {obs::EventCause::kReplica, obs::EventCause::kCacheHit,
          obs::EventCause::kCacheMiss, obs::EventCause::kStaleRefresh,
          obs::EventCause::kUncacheable}) {
      cause_counter[static_cast<std::size_t>(cause)] = &metrics->counter(
          prefix + "cause/" + obs::to_string(cause));
    }
    if (faults_active) {
      // Fault metrics only exist when a schedule is active, so healthy
      // snapshots stay byte-identical to the pre-fault simulator's.
      for (const auto cause :
           {obs::EventCause::kFailover, obs::EventCause::kFailed}) {
        cause_counter[static_cast<std::size_t>(cause)] = &metrics->counter(
            prefix + "cause/" + obs::to_string(cause));
      }
      c_retries = &metrics->counter(prefix + "fault/retries");
      win_series.failed = &metrics->series(prefix + "window/failed");
      win_series.failover = &metrics->series(prefix + "window/failover");
      win_series.availability =
          &metrics->series(prefix + "window/availability");
      win_series.degraded_mean_latency_ms =
          &metrics->series(prefix + "window/degraded_mean_latency_ms");
    }
    if (config.per_server_metrics) {
      server_latency.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        server_latency[i] = &metrics->histogram(
            prefix + "server/" + std::to_string(i) + "/latency_ms",
            obs::default_latency_bounds_ms());
      }
    }
    // Window w covers [warmup + w*M/W, warmup + (w+1)*M/W); the last
    // boundary is exactly `total`, so every measured request lands in a
    // window and the flushed series sum back to the aggregates.
    next_window_flush = warmup + measured_total / window_count;
  }
  detail::WindowAccumulator win;

  obs::TraceSink* const trace_sink = config.trace_sink;
  std::uint64_t next_progress =
      config.progress_every > 0 && config.progress
          ? config.progress_every
          : std::numeric_limits<std::uint64_t>::max();

  setup_timer.stop();
  setup_span.stop();
  obs::ScopedTimer run_timer(t_run);
  obs::ScopedSpan run_span(spans, sp_run, "sim");

  double hop_sum = 0.0;
  std::uint64_t local = 0;
  std::uint64_t eligible = 0;
  std::uint64_t eligible_hits = 0;
  std::uint64_t failed_total = 0;
  std::uint64_t failover_total = 0;
  std::uint64_t retries_total = 0;
  std::uint64_t slo_violations = 0;

  // --- Crash safety (see docs/RECOVERY.md).  All of this is setup-time
  // work; with no checkpoint path, resume path, or stop flag the request
  // loop pays exactly one never-taken sentinel compare per request. ---
  const bool recovery_active = !config.checkpoint_path.empty() ||
                               !config.resume_path.empty() ||
                               config.stop != nullptr;
  std::vector<detail::WindowAccumulator> flushed_windows;
  std::vector<recover::FingerprintSection> fingerprint;
  if (recovery_active) {
    fingerprint = detail::checkpoint_fingerprint(
        system, result, config, detail::EngineKind::kSequential, 1);
  }
  obs::Counter* rc_written = nullptr;
  obs::Counter* rc_bytes = nullptr;
  obs::Gauge* rc_last_ms = nullptr;
  if (instrumented && recovery_active) {
    rc_written = &metrics->counter(prefix + "recover/checkpoints_written");
    rc_bytes = &metrics->counter(prefix + "recover/bytes");
    rc_last_ms = &metrics->gauge(prefix + "recover/last_checkpoint_ms");
  }

  const auto save_engine_state = [&](util::ByteWriter& w,
                                     std::uint64_t next_t) {
    w.u64(next_t);
    stream.save_state(w);
    detail::save_rng(w, lambda_rng);
    detail::save_rng(w, surge_rng);
    w.u64(report.cold_restarts);
    w.f64(hop_sum);
    w.u64(local);
    w.u64(eligible);
    w.u64(eligible_hits);
    w.u64(failed_total);
    w.u64(failover_total);
    w.u64(retries_total);
    w.u64(slo_violations);
    w.u64(caches.size());
    for (const auto& c : caches) c->save_state(w);
    report.latency_cdf.save_state(w);
    w.u8(instrumented ? 1 : 0);
    if (instrumented) {
      w.u64(window_index);
      detail::save_window(w, win);
      w.u64(flushed_windows.size());
      for (const auto& fw : flushed_windows) detail::save_window(w, fw);
      for (std::size_t c = 0; c < obs::kEventCauseCount; ++c) {
        w.u64(cause_counter[c] != nullptr ? cause_counter[c]->value() : 0);
      }
      w.u64(c_retries != nullptr ? c_retries->value() : 0);
      w.u8(server_latency.empty() ? 0 : 1);
      if (!server_latency.empty()) {
        w.u64(server_latency.size());
        for (const obs::Histogram* h : server_latency) h->save_state(w);
      }
    }
    w.u8(trace_sink != nullptr ? 1 : 0);
    if (trace_sink != nullptr) trace_sink->save_state(w);
  };

  const auto restore_engine_state =
      [&](util::ByteReader& r) -> std::uint64_t {
    const std::uint64_t resumed_t = r.u64();
    CDN_EXPECT(resumed_t <= total,
               "checkpoint request index exceeds the run length");
    stream.restore_state(r);
    detail::restore_rng(r, lambda_rng);
    detail::restore_rng(r, surge_rng);
    report.cold_restarts = r.u64();
    hop_sum = r.f64();
    local = r.u64();
    eligible = r.u64();
    eligible_hits = r.u64();
    failed_total = r.u64();
    failover_total = r.u64();
    retries_total = r.u64();
    slo_violations = r.u64();
    const std::uint64_t cache_count = r.u64();
    CDN_EXPECT(cache_count == caches.size(),
               "checkpoint server count mismatch");
    for (auto& c : caches) c->restore_state(r);
    report.latency_cdf.restore_state(r);
    const bool had_metrics = r.u8() != 0;
    CDN_EXPECT(had_metrics == instrumented,
               "checkpoint metrics presence mismatch");
    if (instrumented) {
      window_index = r.u64();
      detail::restore_window(r, win);
      const std::uint64_t flushed = r.u64();
      CDN_EXPECT(flushed <= window_count,
                 "checkpoint flushed-window count exceeds the window count");
      flushed_windows.clear();
      for (std::uint64_t i = 0; i < flushed; ++i) {
        detail::WindowAccumulator fw;
        detail::restore_window(r, fw);
        // Replay pre-kill flushes into the fresh registry so the final
        // per-window series match an uninterrupted run's.
        win_series.flush(fw);
        flushed_windows.push_back(fw);
      }
      next_window_flush =
          warmup + (window_index + 1) * measured_total / window_count;
      for (std::size_t c = 0; c < obs::kEventCauseCount; ++c) {
        const std::uint64_t v = r.u64();
        if (cause_counter[c] != nullptr && v > 0) cause_counter[c]->add(v);
      }
      const std::uint64_t saved_retries = r.u64();
      if (c_retries != nullptr && saved_retries > 0) {
        c_retries->add(saved_retries);
      }
      const bool had_server = r.u8() != 0;
      CDN_EXPECT(had_server == !server_latency.empty(),
                 "checkpoint per-server metrics mismatch");
      if (had_server) {
        const std::uint64_t histograms = r.u64();
        CDN_EXPECT(histograms == server_latency.size(),
                   "checkpoint per-server histogram count mismatch");
        for (obs::Histogram* h : server_latency) h->restore_state(r);
      }
    }
    const bool had_sink = r.u8() != 0;
    CDN_EXPECT(had_sink == (trace_sink != nullptr),
               "checkpoint trace sink presence mismatch");
    if (trace_sink != nullptr) trace_sink->restore_state(r);
    CDN_EXPECT(r.done(), "checkpoint payload has trailing bytes");
    return resumed_t;
  };

  auto last_checkpoint_time = std::chrono::steady_clock::now();
  std::uint64_t checkpoints_written = 0;
  std::uint64_t last_checkpoint_request = 0;
  const auto write_checkpoint = [&](std::uint64_t next_t) {
    obs::ScopedSpan ckpt_span(spans, sp_checkpoint, "recover");
    ckpt_span.arg("request", static_cast<double>(next_t));
    const auto write_start = std::chrono::steady_clock::now();
    recover::Checkpoint ckpt;
    ckpt.fingerprint = fingerprint;
    util::ByteWriter w;
    save_engine_state(w, next_t);
    ckpt.payload = w.buffer();
    const std::uint64_t bytes =
        recover::write_file(config.checkpoint_path, ckpt);
    last_checkpoint_time = std::chrono::steady_clock::now();
    ++checkpoints_written;
    last_checkpoint_request = next_t;
    if (rc_written != nullptr) {
      rc_written->add();
      rc_bytes->add(bytes);
      rc_last_ms->set(std::chrono::duration<double, std::milli>(
                          last_checkpoint_time - write_start)
                          .count());
    }
  };

  std::uint64_t t0 = 0;
  if (!config.resume_path.empty()) {
    obs::ScopedSpan resume_span(spans, sp_resume, "recover");
    const recover::Checkpoint ckpt = recover::read_file(config.resume_path);
    recover::check_fingerprint(ckpt, fingerprint);
    util::ByteReader reader(ckpt.payload);
    t0 = restore_engine_state(reader);
    // The fault timeline is a pure function of (schedule, t): one advance
    // re-derives the stepper position, depth counters and transition count.
    // Cold restarts up to t0 are already reflected in the restored caches,
    // so just_recovered() is deliberately ignored here.
    if (faults_active && t0 > 0) timeline->advance(t0 - 1);
    if (next_progress != std::numeric_limits<std::uint64_t>::max() &&
        t0 >= next_progress) {
      next_progress = (t0 / config.progress_every + 1) * config.progress_every;
    }
    if (instrumented) {
      metrics->gauge(prefix + "recover/resumed").set(1.0);
      metrics->gauge(prefix + "recover/resume_request_index")
          .set(static_cast<double>(t0));
    }
    resume_span.arg("request", static_cast<double>(t0));
  }
  const std::uint64_t probe_stride = config.checkpoint_every_requests > 0
                                         ? config.checkpoint_every_requests
                                         : 4096;
  std::uint64_t next_recovery_probe =
      !config.checkpoint_path.empty() || config.stop != nullptr
          ? (t0 / probe_stride + 1) * probe_stride
          : std::numeric_limits<std::uint64_t>::max();
  const auto run_start = std::chrono::steady_clock::now();

  if (config.trace == nullptr && !faults_active) {
    // --- Data-oriented healthy loop (docs/PERFORMANCE.md). ---
    //
    // Requests are generated in SoA batches and served by a tight loop with
    // every rare-event boundary (warm-up edge, window flush, recovery probe,
    // progress tick) hoisted out: a chunk always ends exactly at the next
    // boundary, so the per-request path carries no sentinel compares.
    // Accounting accumulates in the same order as the per-request reference
    // loop below — floating-point sums included — so the report and any
    // checkpoint stay byte-identical (sim_batch_parity_test; trace replay
    // keeps the reference loop and is the parity anchor).
    std::vector<double> site_lambda(m);
    for (std::size_t j = 0; j < m; ++j) {
      site_lambda[j] =
          catalog.uncacheable_fraction(static_cast<workload::SiteId>(j));
    }
    const bool uncacheable_mode =
        config.staleness == StalenessMode::kUncacheable;
    workload::RequestBatch batch;
    constexpr std::uint64_t kBatchMax = 4096;
    std::uint64_t cause_counts[obs::kEventCauseCount] = {};
    std::uint64_t t = t0;
    while (t < total) {
      if (t == warmup) {
        for (auto& c : caches) c->reset_stats();
      }
      std::uint64_t end = std::min(total, t + kBatchMax);
      if (t < warmup) end = std::min(end, warmup);
      end = std::min(
          {end, next_window_flush, next_recovery_probe, next_progress});
      const auto count = static_cast<std::size_t>(end - t);
      stream.next_batch(batch, count);
      const bool measured_chunk = t >= warmup;
      for (std::size_t i = 0; i < count; ++i) {
        const workload::ServerId sid = batch.server[i];
        const workload::SiteId site_id = batch.site[i];
        const std::uint32_t rank = batch.rank[i];
        const auto server = static_cast<sys::ServerIndex>(sid);
        const auto site = static_cast<sys::SiteIndex>(site_id);
        double hops = 0.0;
        bool served_locally = false;
        bool cache_eligible = false;
        bool cache_hit = false;
        auto cause = obs::EventCause::kReplica;
        if (result.placement.is_replicated(server, site)) {
          served_locally = true;
        } else {
          // Same RNG draw order as healthy_step: exactly one bernoulli per
          // non-replicated request (site_lambda holds the exact doubles
          // uncacheable_fraction returns, so the draws are bit-identical).
          const bool flagged = lambda_rng.bernoulli(site_lambda[site_id]);
          const cache::ObjectKey key = catalog.object_id(site_id, rank);
          const std::uint64_t bytes = catalog.object_bytes(site_id, rank);
          cache::CachePolicy& cache = *caches[sid];
          if (flagged && uncacheable_mode) {
            hops = result.nearest.cost(server, site);
            cause = obs::EventCause::kUncacheable;
          } else if (flagged) {
            cache.access(key, bytes);  // refreshed copy stays cached
            hops = result.nearest.cost(server, site);
            cause = obs::EventCause::kStaleRefresh;
          } else {
            cache_eligible = true;
            cache_hit = cache.access(key, bytes);
            if (cache_hit) {
              served_locally = true;
              cause = obs::EventCause::kCacheHit;
            } else {
              hops = result.nearest.cost(server, site);
              cause = obs::EventCause::kCacheMiss;
            }
          }
        }
        const double latency_ms = config.latency.latency_ms(hops);
        if (measured_chunk) {
          report.latency_cdf.add(latency_ms);
          hop_sum += hops;
          if (served_locally) ++local;
          if (cache_eligible) {
            ++eligible;
            if (cache_hit) ++eligible_hits;
          }
          if (slo_active && latency_ms > config.slo_ms) ++slo_violations;
          if (instrumented) {
            ++cause_counts[static_cast<std::size_t>(cause)];
            if (!server_latency.empty()) {
              server_latency[sid]->observe(latency_ms);
            }
            ++win.requests;
            win.hops += hops;
            win.latency_ms += latency_ms;
            if (served_locally) ++win.local;
            if (cache_eligible) {
              ++win.eligible;
              if (cache_hit) ++win.eligible_hits;
            }
          }
        }
        if (trace_sink != nullptr && trace_sink->should_sample()) {
          obs::TraceEvent event;
          event.t = t + i;
          event.server = sid;
          event.site = site_id;
          event.rank = rank;
          event.cause = cause;
          event.measured = measured_chunk;
          event.hops = hops;
          event.latency_ms = latency_ms;
          if (served_locally) {
            event.served_by = static_cast<std::int32_t>(sid);
          } else {
            const sys::NearestCopy& copy =
                result.nearest.nearest(server, site);
            event.served_by =
                copy.at_primary ? -1 : static_cast<std::int32_t>(copy.server);
          }
          trace_sink->record(event);
        }
      }
      t = end;
      // Boundary work, in the reference loop's order: window flush, then
      // recovery probe, then progress.  Chunks end exactly at boundaries,
      // so >= here matches the reference's per-request t + 1 >= checks.
      if (instrumented) {
        for (std::size_t c = 0; c < obs::kEventCauseCount; ++c) {
          if (cause_counts[c] > 0) {
            cause_counter[c]->add(cause_counts[c]);
            cause_counts[c] = 0;
          }
        }
        if (measured_chunk && t >= next_window_flush) {
          win_series.flush(win);
          if (recovery_active) flushed_windows.push_back(win);
          win = detail::WindowAccumulator{};
          ++window_index;
          next_window_flush =
              warmup + (window_index + 1) * measured_total / window_count;
        }
      }
      if (t >= next_recovery_probe) {
        next_recovery_probe += probe_stride;
        const bool stop_requested =
            config.stop != nullptr &&
            config.stop->load(std::memory_order_relaxed);
        bool write = !config.checkpoint_path.empty() &&
                     (config.checkpoint_every_requests > 0 || stop_requested);
        if (!write && !config.checkpoint_path.empty() &&
            config.checkpoint_every_seconds > 0.0) {
          write = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - last_checkpoint_time)
                      .count() >= config.checkpoint_every_seconds;
        }
        if (write) write_checkpoint(t);
        if (stop_requested) {
          throw recover::Interrupted(t, config.checkpoint_path);
        }
      }
      if (t >= next_progress) {
        next_progress += config.progress_every;
        SimulationProgress p;
        p.completed = t;
        p.total = total;
        p.warming_up = t <= warmup;
        p.hit_ratio_known = t > warmup && eligible > 0;
        if (p.hit_ratio_known) {
          p.hit_ratio = static_cast<double>(eligible_hits) /
                        static_cast<double>(eligible);
        }
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          run_start)
                .count();
        if (elapsed > 0.0) {
          p.requests_per_sec = static_cast<double>(t - t0) / elapsed;
          p.eta_seconds =
              static_cast<double>(total - t) / p.requests_per_sec;
        }
        p.checkpoints_written = checkpoints_written;
        p.last_checkpoint_request = last_checkpoint_request;
        config.progress(p);
      }
    }
  } else {
    for (std::uint64_t t = t0; t < total; ++t) {
      // Reset measured-window statistics exactly at the end of warm-up.
      if (t == warmup) {
        for (auto& c : caches) c->reset_stats();
      }
      if (faults_active && timeline->advance(t)) {
        // A recovered server restarts with a COLD cache: whatever it held
        // when it crashed is gone.  Its statistics survive (clear() keeps
        // them) so fleet totals stay consistent.
        for (const std::uint32_t s : timeline->just_recovered()) {
          caches[s]->clear();
          ++report.cold_restarts;
        }
        if (spans != nullptr) {
          spans->instant(sp_fault, "fault", "request", static_cast<double>(t));
        }
      }
      workload::Request req =
          config.trace != nullptr ? (*config.trace)[t] : stream.next();
      if (faults_active && config.trace == nullptr &&
          timeline->any_surge_active()) {
        // Flash-crowd reshaping: accept a drawn request with probability
        // proportional to its site's surge multiplier (rejection sampling
        // against the current max), which samples site j with probability
        // ∝ p_j * mult_j without touching the demand matrix.
        const double bound = timeline->max_demand_multiplier();
        while (surge_rng.uniform() * bound >
               timeline->demand_multiplier(req.site)) {
          req = stream.next();
        }
      }
      const auto server = static_cast<sys::ServerIndex>(req.server);
      const auto site = static_cast<sys::SiteIndex>(req.site);
      const bool measured = t >= warmup;

      double hops = 0.0;
      bool served_locally = false;
      bool cache_eligible = false;
      bool cache_hit = false;
      bool failed = false;
      std::uint32_t attempts = 0;
      auto cause = obs::EventCause::kReplica;
      // Where a redirected request actually landed (fault mode only; the
      // healthy path derives it from the nearest index when tracing).
      std::int32_t fault_served_by = -2;

      // Cheapest live holder after a failed attempt on the precomputed
      // target (or on the first-hop server itself).
      const auto find_live = [&]() {
        return result.nearest.nearest_live(server, site, holders[req.site],
                                           timeline->server_up_mask(),
                                           timeline->origin_up(req.site));
      };
      const bool first_hop_up = !faults_active || timeline->server_up(req.server);

      if (!faults_active) {
        // Healthy fast path, shared with the parallel sharded engine.
        const detail::HealthyOutcome o = detail::healthy_step(
            catalog, result, *caches[server], lambda_rng, req, config.staleness);
        hops = o.hops;
        served_locally = o.served_locally;
        cache_eligible = o.cache_eligible;
        cache_hit = o.cache_hit;
        cause = o.cause;
      } else if (first_hop_up && result.placement.is_replicated(server, site)) {
        // Replicas are always consistent (the CDN pushes invalidations to
        // them); even flagged requests are served locally.
        served_locally = true;
      } else if (!first_hop_up) {
        // First-hop crash: the client's connection times out and the
        // redirector re-routes it to the nearest live copy.  The dead
        // server's warm cache and its replicas are unreachable.
        attempts = 1;
        const auto live = find_live();
        if (live) {
          hops = live->cost;
          cause = obs::EventCause::kFailover;
          fault_served_by =
              live->at_primary ? -1 : static_cast<std::int32_t>(live->server);
        } else {
          failed = true;
          cause = obs::EventCause::kFailed;
        }
      } else {
        const bool flagged =
            lambda_rng.bernoulli(catalog.uncacheable_fraction(req.site));
        cache::CachePolicy& cache = *caches[server];
        const cache::ObjectKey key = catalog.object_id(req.site, req.rank);
        const std::uint64_t bytes = catalog.object_bytes(req.site, req.rank);

        // Fault-aware redirection: the precomputed nearest copy may be
        // dead; trying it costs one failed attempt before the
        // health-masked re-route.  No live copy at all fails the request.
        const auto resolve = [&]() -> std::optional<sys::NearestCopy> {
          const sys::NearestCopy& pre = result.nearest.nearest(server, site);
          const bool pre_live = pre.at_primary
                                    ? timeline->origin_up(req.site)
                                    : timeline->server_up(pre.server);
          if (pre_live) return pre;
          ++attempts;
          return find_live();
        };
        const auto redirect_to =
            [&](const std::optional<sys::NearestCopy>& live,
                obs::EventCause healthy_cause) {
              if (live) {
                hops = live->cost;
                cause = attempts > 0 ? obs::EventCause::kFailover
                                     : healthy_cause;
                fault_served_by = live->at_primary
                                      ? -1
                                      : static_cast<std::int32_t>(live->server);
              } else {
                failed = true;
                cause = obs::EventCause::kFailed;
              }
            };
        if (flagged && config.staleness == StalenessMode::kUncacheable) {
          redirect_to(resolve(), obs::EventCause::kUncacheable);
        } else if (flagged) {
          const auto live = resolve();
          if (live) cache.access(key, bytes);  // refreshed copy stays cached
          redirect_to(live, obs::EventCause::kStaleRefresh);
        } else {
          cache_eligible = true;
          // A hit never leaves the server, so no liveness check; a miss
          // only admits the object when a live source exists to fetch from.
          cache_hit = cache.access_no_admit(key, bytes);
          if (cache_hit) {
            served_locally = true;
            cause = obs::EventCause::kCacheHit;
          } else {
            const auto live = resolve();
            if (live) cache.admit(key, bytes);
            redirect_to(live, obs::EventCause::kCacheMiss);
          }
        }
      }

      double latency_ms;
      if (!faults_active) {
        latency_ms = config.latency.latency_ms(hops);
      } else if (failed) {
        // Time wasted before giving up; reported in the trace but excluded
        // from the latency CDF (the request never completed).
        latency_ms = config.latency.retry_penalty_ms(attempts);
      } else {
        latency_ms = config.latency.failover_latency_ms(
            hops * timeline->latency_multiplier(req.server), attempts);
      }
      if (measured) {
        if (!failed) {
          report.latency_cdf.add(latency_ms);
        } else {
          ++failed_total;
        }
        hop_sum += hops;
        if (served_locally) ++local;
        if (cache_eligible) {
          ++eligible;
          if (cache_hit) ++eligible_hits;
        }
        if (attempts > 0 && !failed) ++failover_total;
        retries_total += attempts;
        if (slo_active && (failed || latency_ms > config.slo_ms)) {
          ++slo_violations;
        }
      }

      if (instrumented) {
        if (measured) {
          cause_counter[static_cast<std::size_t>(cause)]->add();
          if (c_retries != nullptr && attempts > 0) c_retries->add(attempts);
          if (!server_latency.empty() && !failed) {
            server_latency[server]->observe(latency_ms);
          }
          ++win.requests;
          win.hops += hops;
          if (!failed) win.latency_ms += latency_ms;
          if (served_locally) ++win.local;
          if (cache_eligible) {
            ++win.eligible;
            if (cache_hit) ++win.eligible_hits;
          }
          if (failed) ++win.failed;
          if (attempts > 0 && !failed) {
            ++win.failover;
            win.degraded_latency_ms += latency_ms;
          }
          if (t + 1 >= next_window_flush) {
            win_series.flush(win);
            if (recovery_active) flushed_windows.push_back(win);
            win = detail::WindowAccumulator{};
            ++window_index;
            next_window_flush =
                warmup + (window_index + 1) * measured_total / window_count;
          }
        }
      }

      if (trace_sink != nullptr && trace_sink->should_sample()) {
        obs::TraceEvent event;
        event.t = t;
        event.server = req.server;
        event.site = req.site;
        event.rank = req.rank;
        event.cause = cause;
        event.measured = measured;
        event.hops = hops;
        event.latency_ms = latency_ms;
        if (served_locally) {
          event.served_by = static_cast<std::int32_t>(req.server);
        } else if (faults_active) {
          event.served_by = fault_served_by;  // -2 when the request failed
        } else {
          const sys::NearestCopy& copy = result.nearest.nearest(server, site);
          event.served_by =
              copy.at_primary ? -1 : static_cast<std::int32_t>(copy.server);
        }
        trace_sink->record(event);
      }

      if (t + 1 >= next_recovery_probe) {
        next_recovery_probe += probe_stride;
        const bool stop_requested =
            config.stop != nullptr && config.stop->load(std::memory_order_relaxed);
        bool write = !config.checkpoint_path.empty() &&
                     (config.checkpoint_every_requests > 0 || stop_requested);
        if (!write && !config.checkpoint_path.empty() &&
            config.checkpoint_every_seconds > 0.0) {
          write = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                last_checkpoint_time)
                      .count() >= config.checkpoint_every_seconds;
        }
        if (write) write_checkpoint(t + 1);
        if (stop_requested) {
          throw recover::Interrupted(t + 1, config.checkpoint_path);
        }
      }

      if (t + 1 >= next_progress) {
        next_progress += config.progress_every;
        SimulationProgress p;
        p.completed = t + 1;
        p.total = total;
        p.warming_up = t < warmup;
        p.hit_ratio_known = measured && eligible > 0;
        if (p.hit_ratio_known) {
          p.hit_ratio = static_cast<double>(eligible_hits) /
                        static_cast<double>(eligible);
        }
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          run_start)
                .count();
        if (elapsed > 0.0) {
          p.requests_per_sec =
              static_cast<double>(t + 1 - t0) / elapsed;
          p.eta_seconds =
              static_cast<double>(total - (t + 1)) / p.requests_per_sec;
        }
        p.checkpoints_written = checkpoints_written;
        p.last_checkpoint_request = last_checkpoint_request;
        config.progress(p);
      }
    }
  }
  // Flush a final partial window (rounding can leave the last flush short).
  if (instrumented && win.requests > 0) win_series.flush(win);

  run_timer.stop();
  run_span.stop();
  obs::ScopedTimer report_timer(t_report);
  obs::ScopedSpan report_span(spans, sp_report, "sim");

  report.measured_requests = measured_total;
  const double measured = static_cast<double>(report.measured_requests);
  report.mean_latency_ms =
      report.latency_cdf.empty() ? 0.0 : report.latency_cdf.mean();
  report.mean_cost_hops = hop_sum / measured;
  report.local_ratio = static_cast<double>(local) / measured;
  report.cache_hit_ratio =
      eligible ? static_cast<double>(eligible_hits) /
                     static_cast<double>(eligible)
               : 0.0;
  report.failed_requests = failed_total;
  report.failover_requests = failover_total;
  report.retry_attempts = retries_total;
  report.availability = 1.0 - static_cast<double>(failed_total) / measured;
  report.slo_violation_fraction =
      slo_active ? static_cast<double>(slo_violations) / measured : 0.0;
  if (faults_active) report.fault_transitions = timeline->transitions();
  report.server_cache_stats.reserve(n);
  for (const auto& c : caches) {
    report.server_cache_stats.push_back(c->stats());
    report.cache_totals.merge(c->stats());
  }

  if (instrumented) {
    detail::publish_summary_metrics(*metrics, prefix, config, report,
                                    slo_active, faults_active);
  }
  return report;
}

}  // namespace cdn::sim
