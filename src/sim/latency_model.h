// Response-time model of Section 5.1: "we set the propagation, queueing and
// processing delay inside the core network to be equal to 2 ms/hop"; the
// client-to-first-hop leg costs one hop, so requests satisfied at the first
// hop server (replica hit or cache hit) take exactly first_hop_ms — the
// leftmost step of the paper's CDF figures.
//
// The failure extension (docs/FAULTS.md): a request whose target is down
// pays a detection timeout per failed connection attempt plus a linearly
// growing backoff before the next try, then the redirect leg to the
// nearest live copy.

#pragma once

#include <cstdint>

namespace cdn::sim {

struct LatencyModel {
  double ms_per_hop = 2.0;
  /// Client -> first-hop-server leg.
  double first_hop_ms = 2.0;

  /// Cost of detecting one dead target (connection timeout / health-probe
  /// staleness) before the client retries elsewhere.
  double retry_timeout_ms = 150.0;
  /// Extra backoff before attempt k (1-based): k * retry_backoff_ms.
  double retry_backoff_ms = 50.0;

  /// Response time of a request redirected over `hops` additional hops
  /// (0 for a local hit).
  double latency_ms(double hops) const noexcept {
    return first_hop_ms + ms_per_hop * hops;
  }

  /// Penalty of `attempts` failed connection attempts: each pays the
  /// detection timeout, and attempt k adds k * retry_backoff_ms of backoff.
  double retry_penalty_ms(std::uint32_t attempts) const noexcept {
    const double a = static_cast<double>(attempts);
    return a * retry_timeout_ms + retry_backoff_ms * a * (a + 1.0) / 2.0;
  }

  /// Response time of a request that failed `attempts` targets before
  /// succeeding over `hops` redirect hops.
  double failover_latency_ms(double hops, std::uint32_t attempts)
      const noexcept {
    return latency_ms(hops) + retry_penalty_ms(attempts);
  }
};

}  // namespace cdn::sim
