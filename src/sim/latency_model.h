// Response-time model of Section 5.1: "we set the propagation, queueing and
// processing delay inside the core network to be equal to 2 ms/hop"; the
// client-to-first-hop leg costs one hop, so requests satisfied at the first
// hop server (replica hit or cache hit) take exactly first_hop_ms — the
// leftmost step of the paper's CDF figures.

#pragma once

namespace cdn::sim {

struct LatencyModel {
  double ms_per_hop = 2.0;
  /// Client -> first-hop-server leg.
  double first_hop_ms = 2.0;

  /// Response time of a request redirected over `hops` additional hops
  /// (0 for a local hit).
  double latency_ms(double hops) const noexcept {
    return first_hop_ms + ms_per_hop * hops;
  }
};

}  // namespace cdn::sim
