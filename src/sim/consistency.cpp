#include "src/sim/consistency.h"

#include <cmath>
#include <limits>

#include "src/util/error.h"

namespace cdn::sim {

ModificationProcess::ModificationProcess(double min_mean_interval,
                                         double max_mean_interval,
                                         std::uint64_t seed)
    : min_mean_(min_mean_interval), max_mean_(max_mean_interval), seed_(seed) {
  CDN_EXPECT(min_mean_interval > 0.0 &&
                 min_mean_interval <= max_mean_interval,
             "update intervals must satisfy 0 < min <= max");
}

double ModificationProcess::mean_interval(workload::ObjectId object) const {
  // Uniform in log space over [min, max], deterministic per object.
  std::uint64_t h = seed_ ^ (object * 0x9e3779b97f4a7c15ULL);
  const double u = static_cast<double>(util::splitmix64(h) >> 11) * 0x1.0p-53;
  return min_mean_ * std::exp(u * std::log(max_mean_ / min_mean_));
}

double ModificationProcess::last_modification(workload::ObjectId object,
                                              double now) {
  Cursor& cur = cursors_[object];
  if (!cur.initialised) {
    cur.rng = util::Rng(seed_ ^ (object * 0xbf58476d1ce4e5b9ULL));
    cur.last = 0.0;  // every object "born" at time 0
    const double mean = mean_interval(object);
    cur.next = -mean * std::log(1.0 - cur.rng.uniform());
    cur.initialised = true;
  }
  if (now < cur.last) {
    // Non-monotone query: restart the replay (rare; tests only).
    cursors_.erase(object);
    return last_modification(object, now);
  }
  const double mean = mean_interval(object);
  while (cur.next <= now) {
    cur.last = cur.next;
    cur.next += -mean * std::log(1.0 - cur.rng.uniform());
  }
  return cur.last;
}

double FreshnessTable::fetch_time(workload::ObjectId object) const {
  const auto it = fetched_.find(object);
  return it == fetched_.end()
             ? -std::numeric_limits<double>::infinity()
             : it->second;
}

}  // namespace cdn::sim
