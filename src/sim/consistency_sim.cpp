#include "src/sim/consistency_sim.h"

#include "src/util/error.h"
#include "src/workload/request_stream.h"

namespace cdn::sim {

ConsistencyReport simulate_with_consistency(
    const sys::CdnSystem& system, const placement::PlacementResult& result,
    const SimulationConfig& sim_config,
    const ConsistencyConfig& consistency) {
  ConsistencyReport out;
  if (consistency.mode == ConsistencyMode::kBernoulli) {
    out.base = simulate(system, result, sim_config);
    return out;
  }

  CDN_EXPECT(sim_config.total_requests > 0, "need at least one request");
  CDN_EXPECT(sim_config.warmup_fraction >= 0.0 &&
                 sim_config.warmup_fraction < 1.0,
             "warmup fraction must be in [0, 1)");
  CDN_EXPECT(consistency.seconds_per_request > 0.0,
             "virtual-time scale must be positive");
  CDN_EXPECT(consistency.ttl > 0.0, "TTL must be positive");

  const auto& catalog = system.catalog();
  const std::size_t n = system.server_count();

  std::vector<std::unique_ptr<cache::CachePolicy>> caches;
  std::vector<FreshnessTable> freshness(n);
  caches.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    caches.push_back(cache::make_cache(
        sim_config.policy,
        result.cache_bytes(static_cast<sys::ServerIndex>(i))));
  }

  workload::RequestStream stream(catalog, system.demand(), sim_config.seed,
                                 sim_config.stream_locality);
  ModificationProcess updates(consistency.min_mean_update_interval,
                              consistency.max_mean_update_interval,
                              consistency.seed);

  const std::uint64_t warmup = static_cast<std::uint64_t>(
      sim_config.warmup_fraction *
      static_cast<double>(sim_config.total_requests));

  out.base.total_requests = sim_config.total_requests;
  out.base.latency_cdf.reserve(sim_config.total_requests - warmup);

  double hop_sum = 0.0;
  std::uint64_t local = 0, eligible = 0, eligible_hits = 0;

  for (std::uint64_t t = 0; t < sim_config.total_requests; ++t) {
    if (t == warmup) {
      for (auto& c : caches) c->reset_stats();
    }
    const double now =
        static_cast<double>(t) * consistency.seconds_per_request;
    const workload::Request req = stream.next();
    const auto server = static_cast<sys::ServerIndex>(req.server);
    const auto site = static_cast<sys::SiteIndex>(req.site);
    const bool measured = t >= warmup;

    double hops = 0.0;
    bool served_locally = false;
    bool cache_hit = false;
    bool counted_eligible = false;

    if (result.placement.is_replicated(server, site)) {
      served_locally = true;  // replicas are push-updated, always fresh
    } else {
      counted_eligible = true;
      const double redirect = result.nearest.cost(server, site);
      cache::CachePolicy& cache = *caches[server];
      FreshnessTable& fresh = freshness[server];
      const cache::ObjectKey key = catalog.object_id(req.site, req.rank);
      const std::uint64_t bytes = catalog.object_bytes(req.site, req.rank);

      bool hit = cache.lookup(key);
      if (hit && consistency.mode == ConsistencyMode::kInvalidation) {
        // Server-based invalidation [18]: a modification voided the copy.
        if (updates.last_modification(key, now) > fresh.fetch_time(key)) {
          cache.erase(key);
          fresh.erase(key);
          hit = false;
          if (measured) ++out.invalidation_misses;
        }
      }

      if (hit && consistency.mode == ConsistencyMode::kTtl) {
        const double age = now - fresh.fetch_time(key);
        if (age > consistency.ttl) {
          // Expired: revalidate at the nearest copy (remote round).
          fresh.on_fetch(key, now);
          hops = redirect;
          if (measured) ++out.validations;
        } else {
          served_locally = true;
          cache_hit = true;
          if (updates.last_modification(key, now) > fresh.fetch_time(key) &&
              measured) {
            ++out.stale_served;  // weak consistency served a stale copy
          }
        }
      } else if (hit) {
        served_locally = true;
        cache_hit = true;
      } else {
        // Miss: fetch from the nearest copy and admit.
        cache.admit(key, bytes);
        if (cache.contains(key)) fresh.on_fetch(key, now);
        hops = redirect;
      }
      // Keep the embedded hit/miss statistics coherent.
      if (cache_hit) {
        // lookup() already refreshed recency; record the hit.
        // (Validated-but-expired hits count as remote service.)
      }
    }

    if (measured) {
      out.base.latency_cdf.add(sim_config.latency.latency_ms(hops));
      hop_sum += hops;
      if (served_locally) ++local;
      if (counted_eligible) {
        ++eligible;
        if (cache_hit) ++eligible_hits;
      }
    }
  }

  out.base.measured_requests = sim_config.total_requests - warmup;
  CDN_CHECK(out.base.measured_requests > 0,
            "warm-up consumed every request");
  const double measured =
      static_cast<double>(out.base.measured_requests);
  out.base.mean_latency_ms = out.base.latency_cdf.mean();
  out.base.mean_cost_hops = hop_sum / measured;
  out.base.local_ratio = static_cast<double>(local) / measured;
  out.base.cache_hit_ratio =
      eligible ? static_cast<double>(eligible_hits) /
                     static_cast<double>(eligible)
               : 0.0;
  out.base.server_cache_stats.reserve(n);
  for (const auto& c : caches) {
    out.base.server_cache_stats.push_back(c->stats());
  }
  return out;
}

}  // namespace cdn::sim
