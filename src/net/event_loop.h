// Single-threaded poll(2) event loop with monotonic deadline timers.
//
// The redirector daemon runs everything — listener, client sessions, race
// attempts, health probes, fault-timeline ticks, backoff sleeps — on one
// loop thread; the only cross-thread entry point is wakeup(), which is
// async-signal-safe (a self-pipe write) so SIGINT/SIGTERM handlers can
// nudge the loop into its drain path.
//
// Design notes:
//   * Callbacks fire on the loop thread.  A callback may add/modify/remove
//     fds and timers freely, including removing its own registration —
//     removals are deferred to the end of the dispatch pass.
//   * Timers are one-shot, keyed by steady_clock deadlines; periodic
//     behaviour is a callback re-arming itself.  Cancellation is O(1)
//     (tombstone; the heap entry is dropped lazily).
//   * poll(2), not epoll: fd counts here are tens (top-k race attempts +
//     sessions + probes), portability beats O(1) readiness.

#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/net/socket.h"

namespace cdn::net {

/// Readiness interest / event bits.
enum : std::uint32_t {
  kReadable = 1u << 0,
  kWritable = 1u << 1,
  kErrored = 1u << 2,  // POLLERR/POLLHUP/POLLNVAL; always reported
};

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using TimerId = std::uint64_t;

class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t events)>;
  using TimerCallback = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with an interest mask.  One registration per fd.
  void add_fd(int fd, std::uint32_t interest, FdCallback callback);
  /// Changes the interest mask of a registered fd.
  void set_interest(int fd, std::uint32_t interest);
  /// Unregisters (safe from inside any callback; deferred).
  void remove_fd(int fd);
  bool has_fd(int fd) const { return fds_.count(fd) != 0; }

  /// One-shot timer at an absolute monotonic deadline.
  TimerId add_timer(TimePoint deadline, TimerCallback callback);
  TimerId add_timer_after(std::chrono::nanoseconds delay,
                          TimerCallback callback) {
    return add_timer(Clock::now() + delay, std::move(callback));
  }
  /// Cancels; a no-op for already-fired or unknown ids.
  void cancel_timer(TimerId id);

  /// Dispatches ready fds and due timers, waiting at most `max_wait`
  /// (clamped by the nearest timer deadline).  Returns the number of
  /// callbacks dispatched.
  std::size_t run_once(std::chrono::milliseconds max_wait);

  /// Runs until stop() — or until the loop has nothing registered at all
  /// (no fds, no timers), which would otherwise sleep forever.
  void run();

  /// Requests run() to return after the current dispatch pass.  Loop
  /// thread only; from other threads or signal handlers call wakeup().
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  /// Async-signal-safe nudge: makes the current/next poll wake up and
  /// invokes the wakeup handler (if any) on the loop thread.
  void wakeup() noexcept;

  /// Handler invoked on the loop thread after each wakeup() burst.
  void set_wakeup_handler(std::function<void()> handler) {
    wakeup_handler_ = std::move(handler);
  }

  std::size_t fd_count() const { return fds_.size(); }
  std::size_t pending_timers() const { return timer_callbacks_.size(); }

 private:
  struct TimerEntry {
    TimePoint deadline;
    TimerId id;
    bool operator>(const TimerEntry& o) const {
      return deadline != o.deadline ? deadline > o.deadline : id > o.id;
    }
  };

  void drain_wakeup_pipe();
  void flush_deferred_removals();

  struct FdReg {
    std::uint32_t interest = 0;
    FdCallback callback;
    // Bumped on every add_fd.  Readiness captured by poll() is delivered
    // only to the registration that was polled: if a callback earlier in
    // the pass closed the fd and the number was reclaimed for a new
    // socket, the stale revents must not leak to the new registration.
    std::uint64_t generation = 0;
  };

  std::unordered_map<int, FdReg> fds_;
  std::uint64_t next_fd_generation_ = 1;
  std::vector<int> deferred_removals_;
  // Closures displaced by fd-number reuse within a dispatch pass; one of
  // them may be the callback currently executing, so destruction waits
  // until the pass ends.
  std::vector<FdCallback> displaced_callbacks_;
  bool dispatching_ = false;

  std::vector<TimerEntry> timer_heap_;  // min-heap via std::greater
  std::unordered_map<TimerId, TimerCallback> timer_callbacks_;
  TimerId next_timer_id_ = 1;

  Fd wakeup_read_;
  Fd wakeup_write_;
  std::function<void()> wakeup_handler_;
  bool stopped_ = false;
};

}  // namespace cdn::net
