// Minimal portable (POSIX) non-blocking TCP primitives for the redirector
// daemon and its tests: an RAII file descriptor, an ephemeral-port
// listener, and a non-blocking connector.
//
// Everything is IPv4/loopback-oriented and deliberately small: the daemon
// races connections and probes health over these sockets, and the
// integration suite builds its mock replica servers (listen-delay,
// forced-close, black-hole, slow-accept) on the same primitives, so the
// tests exercise exactly the code the daemon runs.
//
// All calls are non-blocking unless stated otherwise; would-block is
// reported as IoStatus::kWouldBlock, never by spinning.  Errors carry
// errno text but are values, not exceptions — socket failures are normal
// operation for a redirector (that is the entire point of racing).

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace cdn::net {

/// RAII owner of a file descriptor.  Move-only; -1 means empty.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  explicit operator bool() const noexcept { return valid(); }

  /// Closes the descriptor now (idempotent).
  void reset() noexcept;

  /// Relinquishes ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Outcome of a non-blocking read/write.
enum class IoStatus : std::uint8_t {
  kOk,          // >= 1 byte transferred
  kWouldBlock,  // EAGAIN/EWOULDBLOCK/EINPROGRESS — retry on readiness
  kClosed,      // orderly EOF (read) — the peer closed
  kError,       // hard error; see errno text
};

struct IoResult {
  IoStatus status = IoStatus::kError;
  std::size_t bytes = 0;  // transferred on kOk
  int error = 0;          // errno on kError
};

/// Human-readable errno text ("Connection refused (111)").
std::string errno_message(int err);

/// Makes the descriptor non-blocking + close-on-exec.  Returns false (and
/// sets errno) on failure.
bool set_nonblocking_cloexec(int fd);

/// Loopback TCP listener.  `port` 0 binds an ephemeral port; the chosen
/// port is readable afterwards.  `backlog` is passed to listen(2).
/// Throws PreconditionError when the socket cannot be created or bound —
/// a configuration error, unlike runtime peer failures.
class TcpListener {
 public:
  TcpListener() = default;

  static TcpListener bind(const std::string& host, std::uint16_t port,
                          int backlog = 64);

  bool valid() const noexcept { return fd_.valid(); }
  int fd() const noexcept { return fd_.get(); }
  std::uint16_t port() const noexcept { return port_; }
  const std::string& host() const noexcept { return host_; }

  /// Accepts one pending connection (already non-blocking + cloexec), or
  /// nullopt when none is pending.  Hard accept errors also return nullopt
  /// (the listener stays usable; transient per-connection failures are not
  /// the server's problem).
  std::optional<Fd> accept();

  /// Stops accepting: closes the listening socket.  Established
  /// connections are unaffected.
  void close() { fd_.reset(); }

 private:
  Fd fd_;
  std::string host_;
  std::uint16_t port_ = 0;
};

/// Starts a non-blocking connect to host:port.  On immediate failure the
/// result's fd is empty and `error` holds errno; otherwise the connect is
/// in flight (or already established) and the socket becomes writable when
/// it resolves — check `finish_connect` then.
struct ConnectStart {
  Fd fd;
  bool in_progress = false;  // false = established immediately
  int error = 0;             // errno when fd is empty
};
ConnectStart start_connect(const std::string& host, std::uint16_t port);

/// After writability (or to poll synchronously): 0 when the connect
/// succeeded, errno when it failed.
int finish_connect(int fd);

/// Non-blocking read/write wrappers.
IoResult read_some(int fd, void* buf, std::size_t len);
IoResult write_some(int fd, const void* buf, std::size_t len);

/// Blocking convenience used by tests and the load client: writes the
/// whole buffer, polling for writability up to `timeout_ms`.  Returns
/// false on error/timeout.
bool write_all(int fd, const void* buf, std::size_t len, int timeout_ms);

/// Blocking convenience: waits until the fd is writable — the readiness
/// signal that an in-progress connect has resolved (then check
/// `finish_connect`).  Returns false on poll error or timeout.
bool wait_writable(int fd, int timeout_ms);

/// Blocking convenience: reads until `\n` (kept) or EOF/timeout/limit.
/// Returns nullopt on error, timeout, or an over-limit line.
std::optional<std::string> read_line(int fd, int timeout_ms,
                                     std::size_t max_len = 4096);

}  // namespace cdn::net
