#include "src/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/util/error.h"

namespace cdn::net {

namespace {

/// Parses a dotted-quad IPv4 host into a sockaddr_in.  Throws on
/// malformed hosts — endpoint strings come from configuration, not peers.
sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  CDN_EXPECT(inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
             "not an IPv4 address: '" + host + "'");
  return addr;
}

int poll_one(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  return ::poll(&p, 1, timeout_ms);
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string errno_message(int err) {
  return std::string(std::strerror(err)) + " (" + std::to_string(err) + ")";
}

bool set_nonblocking_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  const int fdflags = ::fcntl(fd, F_GETFD, 0);
  return fdflags >= 0 && ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) >= 0;
}

TcpListener TcpListener::bind(const std::string& host, std::uint16_t port,
                              int backlog) {
  const sockaddr_in addr = make_addr(host, port);
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  CDN_EXPECT(fd.valid(), "socket(): " + errno_message(errno));
  CDN_EXPECT(set_nonblocking_cloexec(fd.get()),
             "fcntl(): " + errno_message(errno));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  CDN_EXPECT(::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0,
             "bind(" + host + ":" + std::to_string(port) +
                 "): " + errno_message(errno));
  CDN_EXPECT(::listen(fd.get(), backlog) == 0,
             "listen(): " + errno_message(errno));

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  CDN_EXPECT(::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                           &len) == 0,
             "getsockname(): " + errno_message(errno));

  TcpListener listener;
  listener.fd_ = std::move(fd);
  listener.host_ = host;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

std::optional<Fd> TcpListener::accept() {
  if (!fd_.valid()) return std::nullopt;
  const int client = ::accept(fd_.get(), nullptr, nullptr);
  if (client < 0) return std::nullopt;
  Fd conn(client);
  if (!set_nonblocking_cloexec(conn.get())) return std::nullopt;
  const int one = 1;
  ::setsockopt(conn.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

ConnectStart start_connect(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_addr(host, port);
  ConnectStart result;
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid() || !set_nonblocking_cloexec(fd.get())) {
    result.error = errno;
    return result;
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int rc = ::connect(
      fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    result.fd = std::move(fd);
    result.in_progress = false;
  } else if (errno == EINPROGRESS) {
    result.fd = std::move(fd);
    result.in_progress = true;
  } else {
    result.error = errno;
  }
  return result;
}

int finish_connect(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return errno;
  return err;
}

IoResult read_some(int fd, void* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, len);
    if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n), 0};
    if (n == 0) return {IoStatus::kClosed, 0, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0, 0};
    }
    return {IoStatus::kError, 0, errno};
  }
}

IoResult write_some(int fd, const void* buf, std::size_t len) {
  for (;;) {
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as EPIPE,
    // not kill the daemon with SIGPIPE.
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n), 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0, 0};
    }
    return {IoStatus::kError, 0, errno};
  }
}

bool write_all(int fd, const void* buf, std::size_t len, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  const char* p = static_cast<const char*>(buf);
  std::size_t left = len;
  while (left > 0) {
    const IoResult r = write_some(fd, p, left);
    if (r.status == IoStatus::kOk) {
      p += r.bytes;
      left -= r.bytes;
      continue;
    }
    if (r.status != IoStatus::kWouldBlock) return false;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - now)
                          .count();
    if (poll_one(fd, POLLOUT, static_cast<int>(wait)) <= 0) return false;
  }
  return true;
}

bool wait_writable(int fd, int timeout_ms) {
  return poll_one(fd, POLLOUT, timeout_ms) > 0;
}

std::optional<std::string> read_line(int fd, int timeout_ms,
                                     std::size_t max_len) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::string line;
  char c;
  for (;;) {
    const IoResult r = read_some(fd, &c, 1);
    if (r.status == IoStatus::kOk) {
      line.push_back(c);
      if (c == '\n') return line;
      if (line.size() >= max_len) return std::nullopt;
      continue;
    }
    if (r.status == IoStatus::kClosed) {
      return line.empty() ? std::nullopt : std::optional<std::string>(line);
    }
    if (r.status != IoStatus::kWouldBlock) return std::nullopt;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - now)
                          .count();
    if (poll_one(fd, POLLIN, static_cast<int>(wait)) <= 0) return std::nullopt;
  }
}

}  // namespace cdn::net
