#include "src/net/event_loop.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "src/util/error.h"

namespace cdn::net {

EventLoop::EventLoop() {
  int pipe_fds[2];
  CDN_EXPECT(::pipe(pipe_fds) == 0,
             "pipe(): " + errno_message(errno));
  wakeup_read_ = Fd(pipe_fds[0]);
  wakeup_write_ = Fd(pipe_fds[1]);
  CDN_EXPECT(set_nonblocking_cloexec(wakeup_read_.get()) &&
                 set_nonblocking_cloexec(wakeup_write_.get()),
             "fcntl(): " + errno_message(errno));
}

EventLoop::~EventLoop() = default;

void EventLoop::add_fd(int fd, std::uint32_t interest, FdCallback callback) {
  CDN_EXPECT(fd >= 0, "cannot register a negative fd");
  const auto it = fds_.find(fd);
  if (it != fds_.end()) {
    // A callback earlier in this pass closed this fd number and the OS
    // reused it for a new socket.  The stale entry is awaiting deferred
    // removal — reclaim it; its closure may be the one executing right
    // now, so park it until the pass ends instead of destroying it.
    const auto pending = std::find(deferred_removals_.begin(),
                                   deferred_removals_.end(), fd);
    CDN_EXPECT(pending != deferred_removals_.end(),
               "fd " + std::to_string(fd) + " is already registered");
    deferred_removals_.erase(pending);
    displaced_callbacks_.push_back(std::move(it->second.callback));
    it->second =
        FdReg{interest, std::move(callback), next_fd_generation_++};
    return;
  }
  fds_.emplace(fd,
               FdReg{interest, std::move(callback), next_fd_generation_++});
}

void EventLoop::set_interest(int fd, std::uint32_t interest) {
  const auto it = fds_.find(fd);
  CDN_EXPECT(it != fds_.end(),
             "fd " + std::to_string(fd) + " is not registered");
  it->second.interest = interest;
}

void EventLoop::remove_fd(int fd) {
  if (dispatching_) {
    deferred_removals_.push_back(fd);
    // Stop delivering events for it within this pass.
    const auto it = fds_.find(fd);
    if (it != fds_.end()) it->second.interest = 0;
    return;
  }
  fds_.erase(fd);
}

void EventLoop::flush_deferred_removals() {
  for (const int fd : deferred_removals_) fds_.erase(fd);
  deferred_removals_.clear();
  displaced_callbacks_.clear();
}

TimerId EventLoop::add_timer(TimePoint deadline, TimerCallback callback) {
  const TimerId id = next_timer_id_++;
  timer_callbacks_.emplace(id, std::move(callback));
  timer_heap_.push_back({deadline, id});
  std::push_heap(timer_heap_.begin(), timer_heap_.end(),
                 std::greater<TimerEntry>{});
  return id;
}

void EventLoop::cancel_timer(TimerId id) { timer_callbacks_.erase(id); }

void EventLoop::wakeup() noexcept {
  const char byte = 1;
  // Best-effort; a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n =
      ::write(wakeup_write_.get(), &byte, 1);
}

void EventLoop::drain_wakeup_pipe() {
  char buf[64];
  while (::read(wakeup_read_.get(), buf, sizeof(buf)) > 0) {
  }
}

std::size_t EventLoop::run_once(std::chrono::milliseconds max_wait) {
  // Clamp the wait by the earliest live timer deadline.
  const TimePoint now = Clock::now();
  std::chrono::milliseconds wait = max_wait;
  while (!timer_heap_.empty() &&
         timer_callbacks_.find(timer_heap_.front().id) ==
             timer_callbacks_.end()) {
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(),
                  std::greater<TimerEntry>{});
    timer_heap_.pop_back();  // drop cancelled tombstones
  }
  if (!timer_heap_.empty()) {
    const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
        timer_heap_.front().deadline - now);
    wait = std::clamp(until, std::chrono::milliseconds(0), max_wait);
  }

  std::vector<pollfd> pfds;
  // (fd, generation) at poll time: revents belong to that registration
  // only, never to a later one that reclaimed the same fd number.
  std::vector<std::pair<int, std::uint64_t>> order;
  pfds.reserve(fds_.size() + 1);
  order.reserve(fds_.size());
  {
    pollfd wk{};
    wk.fd = wakeup_read_.get();
    wk.events = POLLIN;
    pfds.push_back(wk);
  }
  for (const auto& [fd, reg] : fds_) {
    pollfd p{};
    p.fd = fd;
    if (reg.interest & kReadable) p.events |= POLLIN;
    if (reg.interest & kWritable) p.events |= POLLOUT;
    pfds.push_back(p);
    order.emplace_back(fd, reg.generation);
  }

  const int rc = ::poll(pfds.data(), pfds.size(),
                        static_cast<int>(wait.count()));
  std::size_t dispatched = 0;
  dispatching_ = true;

  if (rc > 0) {
    if (pfds[0].revents & POLLIN) {
      drain_wakeup_pipe();
      if (wakeup_handler_) {
        wakeup_handler_();
        ++dispatched;
      }
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
      const short revents = pfds[i + 1].revents;
      if (revents == 0) continue;
      const auto it = fds_.find(order[i].first);
      if (it == fds_.end() || it->second.interest == 0 ||
          it->second.generation != order[i].second) {
        continue;
      }
      std::uint32_t events = 0;
      if (revents & POLLIN) events |= kReadable;
      if (revents & POLLOUT) events |= kWritable;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) events |= kErrored;
      if (events == 0) continue;
      it->second.callback(events);
      ++dispatched;
    }
  }

  // Fire due timers (the callback may re-arm or add new ones; those run on
  // a later pass even if already due, keeping each pass bounded).
  const TimePoint after_poll = Clock::now();
  std::vector<TimerCallback> due;
  while (!timer_heap_.empty() &&
         timer_heap_.front().deadline <= after_poll) {
    const TimerEntry top = timer_heap_.front();
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(),
                  std::greater<TimerEntry>{});
    timer_heap_.pop_back();
    const auto it = timer_callbacks_.find(top.id);
    if (it == timer_callbacks_.end()) continue;  // cancelled
    due.push_back(std::move(it->second));
    timer_callbacks_.erase(it);
  }
  for (auto& cb : due) {
    cb();
    ++dispatched;
  }

  dispatching_ = false;
  flush_deferred_removals();
  return dispatched;
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_) {
    if (fds_.empty() && timer_callbacks_.empty()) break;
    run_once(std::chrono::milliseconds(100));
  }
}

}  // namespace cdn::net
