// Unit tests for the per-server model state driving the hybrid greedy.

#include <gtest/gtest.h>

#include <vector>

#include "src/model/server_cache_state.h"
#include "src/util/error.h"

namespace {

using cdn::model::HitRatioCurve;
using cdn::model::PbMode;
using cdn::model::ServerCacheState;
using cdn::util::ZipfDistribution;

struct Fixture {
  // L = 1000 objects per site so the 500-slot cache never fits the whole
  // 4000-object universe (otherwise every hit ratio saturates at 1).
  ZipfDistribution zipf{1000, 1.0};
  HitRatioCurve curve{zipf};
  std::vector<double> rates{1000.0, 500.0, 250.0, 250.0};
  std::vector<std::uint64_t> bytes{4000, 3000, 2000, 1000};
  std::vector<double> lambdas{0.0, 0.0, 0.0, 0.0};
  double mean_object = 10.0;

  ServerCacheState make(std::uint64_t storage,
                        PbMode mode = PbMode::kAtInit) {
    return ServerCacheState(rates, bytes, lambdas, storage, mean_object,
                            zipf, curve, mode);
  }
};

TEST(ServerCacheStateTest, InitialStateAllCache) {
  Fixture f;
  auto state = f.make(5000);
  EXPECT_EQ(state.cache_bytes(), 5000u);
  EXPECT_EQ(state.buffer_slots(), 500u);
  EXPECT_GT(state.characteristic_time(), 0.0);
  for (std::uint32_t j = 0; j < 4; ++j) {
    EXPECT_FALSE(state.is_replicated(j));
    EXPECT_GT(state.hit_ratio(j), 0.0);
    EXPECT_LE(state.hit_ratio(j), 1.0);
  }
}

TEST(ServerCacheStateTest, PopularityNormalised) {
  Fixture f;
  auto state = f.make(5000);
  EXPECT_DOUBLE_EQ(state.renormalized_popularity(0), 0.5);
  EXPECT_DOUBLE_EQ(state.renormalized_popularity(1), 0.25);
  double sum = 0.0;
  for (std::uint32_t j = 0; j < 4; ++j) {
    sum += state.renormalized_popularity(j);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ServerCacheStateTest, MorePopularSiteHasHigherHitRatio) {
  Fixture f;
  auto state = f.make(5000);
  EXPECT_GT(state.hit_ratio(0), state.hit_ratio(1));
  EXPECT_GT(state.hit_ratio(1), state.hit_ratio(2));
  // Sites 2 and 3 have equal rates -> equal hit ratios.
  EXPECT_DOUBLE_EQ(state.hit_ratio(2), state.hit_ratio(3));
}

TEST(ServerCacheStateTest, ReplicateShrinksCacheAndRenormalises) {
  Fixture f;
  auto state = f.make(5000);
  state.replicate(0);
  EXPECT_TRUE(state.is_replicated(0));
  EXPECT_EQ(state.cache_bytes(), 1000u);
  EXPECT_EQ(state.buffer_slots(), 100u);
  EXPECT_DOUBLE_EQ(state.hit_ratio(0), 0.0);
  // Remaining mass is 0.5; site 1's renormalised popularity doubles.
  EXPECT_DOUBLE_EQ(state.renormalized_popularity(1), 0.5);
}

TEST(ServerCacheStateTest, WhatIfMatchesActualReplication) {
  Fixture f;
  auto state = f.make(5000);
  const auto what_if = state.what_if_replicate(1);
  const double predicted_h0 = what_if.hit_ratio(0);
  const double predicted_h2 = what_if.hit_ratio(2);
  state.replicate(1);
  EXPECT_DOUBLE_EQ(state.hit_ratio(0), predicted_h0);
  EXPECT_DOUBLE_EQ(state.hit_ratio(2), predicted_h2);
  EXPECT_DOUBLE_EQ(state.characteristic_time(),
                   what_if.characteristic_time());
}

TEST(ServerCacheStateTest, WhatIfDoesNotMutate) {
  Fixture f;
  auto state = f.make(5000);
  const double h0 = state.hit_ratio(0);
  const auto bytes = state.cache_bytes();
  (void)state.what_if_replicate(2);
  EXPECT_DOUBLE_EQ(state.hit_ratio(0), h0);
  EXPECT_EQ(state.cache_bytes(), bytes);
}

TEST(ServerCacheStateTest, SmallerBufferLowersHitRatios) {
  // Replicating a site shrinks B; the OTHER sites' hit ratios must drop
  // when the lost slots outweigh the renormalisation boost.  Use a big
  // replica (site 0: 4000 of 5000 bytes) to force the drop.
  Fixture f;
  auto state = f.make(5000);
  const double h2_before = state.hit_ratio(2);
  state.replicate(0);
  EXPECT_LT(state.hit_ratio(2), h2_before);
}

TEST(ServerCacheStateTest, RenormalisationCanRaiseHitRatios) {
  // Conversely, replicating a *small but popular* site frees the cache from
  // its traffic: tiny byte loss, big popularity renormalisation.
  Fixture f;
  f.bytes = {50, 3000, 2000, 1000};  // site 0: high demand, tiny footprint
  auto state = f.make(5000);
  const double h1_before = state.hit_ratio(1);
  state.replicate(0);
  EXPECT_GT(state.hit_ratio(1), h1_before);
}

TEST(ServerCacheStateTest, LambdaScalesHitRatio) {
  Fixture plain;
  Fixture flagged;
  flagged.lambdas = {0.5, 0.0, 0.0, 0.0};
  auto a = plain.make(5000);
  auto b = flagged.make(5000);
  EXPECT_NEAR(b.hit_ratio(0), 0.5 * a.hit_ratio(0), 1e-12);
  EXPECT_DOUBLE_EQ(b.hit_ratio(1), a.hit_ratio(1));
}

TEST(ServerCacheStateTest, CanFitTracksCacheBytes) {
  Fixture f;
  auto state = f.make(5000);
  EXPECT_TRUE(state.can_fit(0));   // 4000 <= 5000
  state.replicate(0);
  EXPECT_FALSE(state.can_fit(1));  // 3000 > 1000 left
  EXPECT_TRUE(state.can_fit(3));   // 1000 <= 1000
}

TEST(ServerCacheStateTest, ZeroCacheMeansZeroHits) {
  Fixture f;
  f.bytes = {5000, 3000, 2000, 1000};
  auto state = f.make(5000);
  state.replicate(0);  // consumes everything
  EXPECT_EQ(state.cache_bytes(), 0u);
  EXPECT_EQ(state.buffer_slots(), 0u);
  for (std::uint32_t j = 1; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(state.hit_ratio(j), 0.0);
  }
}

TEST(ServerCacheStateTest, PerIterationModeRefreshesPb) {
  Fixture f;
  auto at_init = f.make(5000, PbMode::kAtInit);
  auto per_iter = f.make(5000, PbMode::kPerIteration);
  EXPECT_DOUBLE_EQ(at_init.top_b_probability(),
                   per_iter.top_b_probability());
  at_init.replicate(0);
  per_iter.replicate(0);
  // kAtInit froze p_B; kPerIteration recomputed it for the smaller buffer
  // and renormalised popularity set.  They should generally differ.
  EXPECT_NE(at_init.top_b_probability(), per_iter.top_b_probability());
  // The paper's claim: the difference is small (renormalisation roughly
  // cancels the shrink).  Allow a loose band.
  EXPECT_NEAR(at_init.top_b_probability(), per_iter.top_b_probability(),
              0.25);
}

TEST(ServerCacheStateTest, GuardsAgainstMisuse) {
  Fixture f;
  auto state = f.make(5000);
  EXPECT_THROW(state.hit_ratio(4), cdn::PreconditionError);
  state.replicate(0);
  EXPECT_THROW(state.replicate(0), cdn::PreconditionError);
  EXPECT_THROW(state.what_if_replicate(0), cdn::PreconditionError);
  EXPECT_THROW(state.what_if_replicate(1), cdn::PreconditionError);  // no fit
}

TEST(ServerCacheStateTest, RejectsInvalidConstruction) {
  Fixture f;
  const std::vector<double> short_rates{1.0};
  EXPECT_THROW(ServerCacheState(short_rates, f.bytes, f.lambdas, 1000, 10.0,
                                f.zipf, f.curve),
               cdn::PreconditionError);
  EXPECT_THROW(ServerCacheState(f.rates, f.bytes, f.lambdas, 1000, 0.0,
                                f.zipf, f.curve),
               cdn::PreconditionError);
}

}  // namespace
