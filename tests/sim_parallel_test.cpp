// Tests of the parallel sharded simulation engine: statistical equivalence
// with the sequential reference, deterministic merge for a fixed
// (seed, shards), engine auto-selection, and the shard plan itself.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "src/fault/fault_schedule.h"
#include "src/obs/registry.h"
#include "src/placement/fixed_split.h"
#include "src/placement/hybrid_greedy.h"
#include "src/sim/shard_engine.h"
#include "src/sim/simulator.h"
#include "src/util/error.h"
#include "src/workload/request_stream.h"
#include "src/workload/trace_io.h"
#include "tests/test_support.h"

namespace {

using cdn::fault::FaultSchedule;
using cdn::placement::hybrid_greedy;
using cdn::placement::pure_caching;
using cdn::sim::plan_shards;
using cdn::sim::resolve_shard_count;
using cdn::sim::simulate;
using cdn::sim::SimulationConfig;
using cdn::sim::SimulationReport;
using cdn::test::TestSystem;

SimulationConfig parallel_sim(std::uint64_t requests = 200'000,
                              std::size_t threads = 4,
                              std::size_t shards = 0) {
  SimulationConfig sc;
  sc.total_requests = requests;
  sc.warmup_fraction = 0.3;
  sc.seed = 17;
  sc.threads = threads;
  sc.shards = shards;
  return sc;
}

void expect_identical(const SimulationReport& a, const SimulationReport& b) {
  EXPECT_EQ(a.measured_requests, b.measured_requests);
  EXPECT_EQ(a.shards_used, b.shards_used);
  EXPECT_EQ(a.latency_cdf.count(), b.latency_cdf.count());
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.mean_cost_hops, b.mean_cost_hops);
  EXPECT_EQ(a.local_ratio, b.local_ratio);
  EXPECT_EQ(a.cache_hit_ratio, b.cache_hit_ratio);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.latency_cdf.quantile(q), b.latency_cdf.quantile(q));
  }
  ASSERT_EQ(a.server_cache_stats.size(), b.server_cache_stats.size());
  for (std::size_t i = 0; i < a.server_cache_stats.size(); ++i) {
    EXPECT_EQ(a.server_cache_stats[i].hits(), b.server_cache_stats[i].hits());
    EXPECT_EQ(a.server_cache_stats[i].misses(),
              b.server_cache_stats[i].misses());
  }
}

TEST(ShardPlanTest, CoversEveryServerAndRequest) {
  const auto t = TestSystem::make(7);
  const auto plan = plan_shards(t.system->demand(), 100'000, 3, 42);
  ASSERT_EQ(plan.servers.size(), 3u);
  ASSERT_EQ(plan.requests.size(), 3u);
  std::vector<bool> seen(7, false);
  for (std::size_t s = 0; s < 3; ++s) {
    for (const auto server : plan.servers[s]) {
      EXPECT_EQ(server % 3, s);  // round-robin ownership
      seen[server] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
  EXPECT_EQ(std::accumulate(plan.requests.begin(), plan.requests.end(),
                            std::uint64_t{0}),
            100'000u);
}

TEST(ShardPlanTest, DeterministicInSeedAndShards) {
  const auto t = TestSystem::make(8);
  const auto a = plan_shards(t.system->demand(), 50'000, 4, 7);
  const auto b = plan_shards(t.system->demand(), 50'000, 4, 7);
  EXPECT_EQ(a.requests, b.requests);
  const auto c = plan_shards(t.system->demand(), 50'000, 4, 8);
  EXPECT_NE(a.requests, c.requests);  // different seed, different split
}

TEST(ShardPlanTest, SplitTracksDemandMass) {
  // Shard request counts are multinomial over shard demand masses, so each
  // shard's share must track its mass within sampling noise.
  const auto t = TestSystem::make(6);
  const auto& demand = t.system->demand();
  const std::size_t shards = 3;
  const auto plan = plan_shards(demand, 300'000, shards, 11);
  double total_mass = 0.0;
  std::vector<double> mass(shards, 0.0);
  for (std::size_t i = 0; i < demand.server_count(); ++i) {
    for (const double d : demand.row(static_cast<std::uint32_t>(i))) {
      mass[i % shards] += d;
      total_mass += d;
    }
  }
  for (std::size_t s = 0; s < shards; ++s) {
    const double expected = mass[s] / total_mass;
    const double got =
        static_cast<double>(plan.requests[s]) / 300'000.0;
    EXPECT_NEAR(got, expected, 0.01);
  }
}

TEST(ShardEngineTest, ResolveShardCountClampsToServers) {
  EXPECT_EQ(resolve_shard_count(0, 4, 100), 16u);  // auto: 4x threads
  EXPECT_EQ(resolve_shard_count(0, 4, 10), 10u);   // capped at servers
  EXPECT_EQ(resolve_shard_count(32, 4, 10), 10u);  // explicit also capped
  EXPECT_EQ(resolve_shard_count(2, 8, 10), 2u);    // explicit wins
  EXPECT_EQ(resolve_shard_count(0, 1, 1), 1u);
}

TEST(ParallelSimTest, UsesParallelEngineOnHealthySyntheticRuns) {
  const auto t = TestSystem::make(8);
  const auto placement = pure_caching(*t.system);
  const auto report = simulate(*t.system, placement, parallel_sim());
  EXPECT_GT(report.shards_used, 1u);
  EXPECT_TRUE(report.latency_cdf.sketched());
  EXPECT_EQ(report.latency_cdf.count(), report.measured_requests);
}

TEST(ParallelSimTest, SequentialEngineWhenThreadsOne) {
  const auto t = TestSystem::make(8);
  const auto placement = pure_caching(*t.system);
  const auto report =
      simulate(*t.system, placement, parallel_sim(200'000, 1));
  EXPECT_EQ(report.shards_used, 1u);
  EXPECT_FALSE(report.latency_cdf.sketched());
}

TEST(ParallelSimTest, DeterministicForFixedSeedAndShards) {
  // The parallel report is a function of (seed, shards) alone: any thread
  // count produces byte-identical results.
  const auto t = TestSystem::make(8);
  const auto placement = hybrid_greedy(*t.system);
  const auto a = simulate(*t.system, placement, parallel_sim(200'000, 2, 8));
  const auto b = simulate(*t.system, placement, parallel_sim(200'000, 5, 8));
  const auto c = simulate(*t.system, placement, parallel_sim(200'000, 8, 8));
  expect_identical(a, b);
  expect_identical(a, c);
}

TEST(ParallelSimTest, MatchesSequentialStatistically) {
  // Same workload law, different decomposition: at 1M requests the two
  // engines must agree on every aggregate within tight sampling noise.
  const auto t = TestSystem::make(8);
  const auto placement = hybrid_greedy(*t.system);
  const auto seq =
      simulate(*t.system, placement, parallel_sim(1'000'000, 1));
  const auto par =
      simulate(*t.system, placement, parallel_sim(1'000'000, 4));
  EXPECT_NEAR(par.mean_latency_ms / seq.mean_latency_ms, 1.0, 0.02);
  EXPECT_NEAR(par.mean_cost_hops / seq.mean_cost_hops, 1.0, 0.02);
  EXPECT_NEAR(par.local_ratio, seq.local_ratio, 0.01);
  EXPECT_NEAR(par.cache_hit_ratio, seq.cache_hit_ratio, 0.02);
  // Quantiles agree within the sketch's relative-error bound plus noise.
  for (double q : {0.5, 0.9, 0.99}) {
    const double s = seq.latency_cdf.quantile(q);
    EXPECT_NEAR(par.latency_cdf.quantile(q) / s, 1.0, 0.05) << "q=" << q;
  }
}

TEST(ParallelSimTest, FaultScheduleForcesSequentialEngine) {
  const auto t = TestSystem::make(8);
  const auto placement = hybrid_greedy(*t.system);
  FaultSchedule faults;
  faults.add_server_outage(1, 40'000, 120'000);
  auto cfg = parallel_sim();
  cfg.faults = &faults;
  const auto with_threads = simulate(*t.system, placement, cfg);
  EXPECT_EQ(with_threads.shards_used, 1u);
  cfg.threads = 1;
  const auto sequential = simulate(*t.system, placement, cfg);
  expect_identical(with_threads, sequential);
}

TEST(ParallelSimTest, TraceReplayForcesSequentialEngine) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  cdn::workload::RequestStream stream(t.system->catalog(),
                                      t.system->demand(), 17);
  const auto trace = cdn::workload::RecordedTrace::record(stream, 50'000);
  auto cfg = parallel_sim(50'000);
  cfg.trace = &trace;
  const auto report = simulate(*t.system, placement, cfg);
  EXPECT_EQ(report.shards_used, 1u);
  EXPECT_FALSE(report.latency_cdf.sketched());
}

TEST(ParallelSimTest, WindowSeriesSumBackToAggregates) {
  const auto t = TestSystem::make(8);
  const auto placement = hybrid_greedy(*t.system);
  cdn::obs::Registry registry;
  auto cfg = parallel_sim();
  cfg.metrics = &registry;
  cfg.metrics_prefix = "par/";
  cfg.metrics_windows = 20;
  const auto report = simulate(*t.system, placement, cfg);
  ASSERT_GT(report.shards_used, 1u);
  const double requests = registry.series("par/window/requests").sum();
  const double local = registry.series("par/window/local").sum();
  const double eligible = registry.series("par/window/eligible").sum();
  const double hits = registry.series("par/window/eligible_hits").sum();
  EXPECT_DOUBLE_EQ(requests,
                   static_cast<double>(report.measured_requests));
  EXPECT_DOUBLE_EQ(local / requests, report.local_ratio);
  EXPECT_DOUBLE_EQ(hits / eligible, report.cache_hit_ratio);
}

TEST(ParallelSimTest, CauseCountersSumToMeasuredRequests) {
  const auto t = TestSystem::make(8);
  const auto placement = hybrid_greedy(*t.system);
  cdn::obs::Registry registry;
  auto cfg = parallel_sim();
  cfg.metrics = &registry;
  cfg.metrics_prefix = "par/";
  const auto report = simulate(*t.system, placement, cfg);
  std::uint64_t total = 0;
  for (const char* cause : {"replica", "cache-hit", "cache-miss",
                            "stale-refresh", "uncacheable"}) {
    total += registry.counter(std::string("par/cause/") + cause).value();
  }
  EXPECT_EQ(total, report.measured_requests);
  EXPECT_EQ(registry.gauge("par/parallel/shards").value(),
            static_cast<double>(report.shards_used));
}

TEST(ParallelSimTest, ShardRequestCountersCoverTheRun) {
  const auto t = TestSystem::make(8);
  const auto placement = pure_caching(*t.system);
  cdn::obs::Registry registry;
  auto cfg = parallel_sim(100'000, 4, 4);
  cfg.metrics = &registry;
  cfg.metrics_prefix = "par/";
  const auto report = simulate(*t.system, placement, cfg);
  EXPECT_EQ(report.shards_used, 4u);
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    total += registry.counter("par/shard/" + std::to_string(s) + "/requests")
                 .value();
  }
  EXPECT_EQ(total, 100'000u);
}

TEST(ParallelSimTest, InvalidSketchErrorRejected) {
  auto cfg = parallel_sim();
  cfg.latency_sketch_error = 0.0;
  EXPECT_THROW(cfg.validate(), cdn::PreconditionError);
  cfg.latency_sketch_error = 1.0;
  EXPECT_THROW(cfg.validate(), cdn::PreconditionError);
}

}  // namespace
