// Shared fixture: a small, fully deterministic CdnSystem for placement and
// simulator tests.  Owns all components (mirrors core::Scenario without the
// random topology).

#pragma once

#include <memory>
#include <vector>

#include "src/cdn/system.h"
#include "src/util/rng.h"
#include "src/workload/demand.h"
#include "src/workload/site_catalog.h"

namespace cdn::test {

/// A line of `servers` servers (C(i,k) = |i-k|), primaries `primary_hops`
/// away from every server, SURGE-like sites in two popularity classes.
struct TestSystem {
  std::unique_ptr<workload::SiteCatalog> catalog;
  std::unique_ptr<workload::DemandMatrix> demand;
  std::unique_ptr<sys::DistanceOracle> distances;
  std::unique_ptr<sys::CdnSystem> system;

  static TestSystem make(std::size_t servers = 4, std::size_t low_sites = 6,
                         std::size_t high_sites = 2,
                         std::size_t objects_per_site = 100,
                         double storage_fraction = 0.15,
                         double primary_hops = 6.0, std::uint64_t seed = 11) {
    TestSystem t;
    workload::SurgeParams params;
    params.objects_per_site = objects_per_site;
    const std::vector<workload::PopularityClass> classes{
        {low_sites, 1.0, "low"}, {high_sites, 8.0, "high"}};
    util::Rng rng(seed);
    t.catalog = std::make_unique<workload::SiteCatalog>(
        workload::SiteCatalog::generate(params, classes, rng));

    util::Rng demand_rng(seed + 1);
    t.demand = std::make_unique<workload::DemandMatrix>(
        workload::DemandMatrix::generate(*t.catalog, servers, 1e6,
                                         demand_rng));

    const std::size_t sites = t.catalog->site_count();
    std::vector<double> ss(servers * servers);
    for (std::size_t i = 0; i < servers; ++i) {
      for (std::size_t k = 0; k < servers; ++k) {
        ss[i * servers + k] =
            static_cast<double>(i > k ? i - k : k - i);
      }
    }
    std::vector<double> sp(servers * sites, primary_hops);
    t.distances = std::make_unique<sys::DistanceOracle>(
        static_cast<std::size_t>(servers), sites, std::move(ss),
        std::move(sp));

    t.system = std::make_unique<sys::CdnSystem>(*t.catalog, *t.demand,
                                                *t.distances,
                                                storage_fraction);
    return t;
  }
};

}  // namespace cdn::test
