// Unit tests for the trace-driven simulator.

#include <gtest/gtest.h>

#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/placement/fixed_split.h"
#include "src/placement/greedy_global.h"
#include "src/placement/hybrid_greedy.h"
#include "src/sim/simulator.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace {

using cdn::placement::greedy_global;
using cdn::placement::hybrid_greedy;
using cdn::placement::pure_caching;
using cdn::sim::simulate;
using cdn::sim::SimulationConfig;
using cdn::sim::StalenessMode;
using cdn::test::TestSystem;

SimulationConfig quick_sim(std::uint64_t requests = 200'000) {
  SimulationConfig sc;
  sc.total_requests = requests;
  sc.warmup_fraction = 0.3;
  sc.seed = 17;
  return sc;
}

TEST(SimulatorTest, CountsAddUp) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  const auto report = simulate(*t.system, placement, quick_sim());
  EXPECT_EQ(report.total_requests, 200'000u);
  EXPECT_EQ(report.measured_requests, 140'000u);
  EXPECT_EQ(report.latency_cdf.count(), report.measured_requests);
}

TEST(SimulatorTest, LatencyFloorIsFirstHop) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  auto cfg = quick_sim();
  cfg.latency.first_hop_ms = 2.0;
  const auto report = simulate(*t.system, placement, cfg);
  EXPECT_GE(report.latency_cdf.min(), 2.0);
}

TEST(SimulatorTest, PureReplicationHasNoCacheActivity) {
  const auto t = TestSystem::make();
  const auto placement = greedy_global(*t.system);
  const auto report = simulate(*t.system, placement, quick_sim());
  EXPECT_DOUBLE_EQ(report.cache_hit_ratio, 0.0);
  for (const auto& s : report.server_cache_stats) {
    EXPECT_EQ(s.hits(), 0u);
  }
}

TEST(SimulatorTest, CachingProducesHits) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  const auto report = simulate(*t.system, placement, quick_sim());
  EXPECT_GT(report.cache_hit_ratio, 0.05);
  EXPECT_GT(report.local_ratio, 0.05);
}

TEST(SimulatorTest, MeasuredCostTracksModelPrediction) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  const auto report = simulate(*t.system, placement, quick_sim(2'000'000));
  EXPECT_NEAR(report.mean_cost_hops /
                  placement.predicted_cost_per_request,
              1.0, 0.10);
}

TEST(SimulatorTest, DeterministicForSameSeed) {
  const auto t = TestSystem::make();
  const auto placement = hybrid_greedy(*t.system);
  const auto a = simulate(*t.system, placement, quick_sim());
  const auto b = simulate(*t.system, placement, quick_sim());
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_DOUBLE_EQ(a.mean_cost_hops, b.mean_cost_hops);
}

TEST(SimulatorTest, DifferentSeedsGiveCloseButNotIdenticalResults) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  auto cfg1 = quick_sim(500'000);
  auto cfg2 = cfg1;
  cfg2.seed = 991;
  const auto a = simulate(*t.system, placement, cfg1);
  const auto b = simulate(*t.system, placement, cfg2);
  EXPECT_NE(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_NEAR(a.mean_latency_ms / b.mean_latency_ms, 1.0, 0.05);
}

TEST(SimulatorTest, LambdaRefreshModeAddsRemoteTraffic) {
  auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  const auto clean = simulate(*t.system, placement, quick_sim(500'000));
  t.catalog->set_uncacheable_fraction(0.2);
  auto cfg = quick_sim(500'000);
  cfg.staleness = StalenessMode::kRefresh;
  const auto stale = simulate(*t.system, placement, cfg);
  EXPECT_GT(stale.mean_cost_hops, clean.mean_cost_hops);
  EXPECT_LT(stale.local_ratio, clean.local_ratio);
  t.catalog->set_uncacheable_fraction(0.0);
}

TEST(SimulatorTest, UncacheableModeAlsoHurtsButDiffersFromRefresh) {
  auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  t.catalog->set_uncacheable_fraction(0.2);
  auto refresh_cfg = quick_sim(500'000);
  refresh_cfg.staleness = StalenessMode::kRefresh;
  auto bypass_cfg = quick_sim(500'000);
  bypass_cfg.staleness = StalenessMode::kUncacheable;
  const auto refresh = simulate(*t.system, placement, refresh_cfg);
  const auto bypass = simulate(*t.system, placement, bypass_cfg);
  // Both modes redirect flagged requests; they differ in what stays cached,
  // so the hit ratios should not be identical.
  EXPECT_GT(refresh.mean_cost_hops, 0.0);
  EXPECT_GT(bypass.mean_cost_hops, 0.0);
  EXPECT_NE(refresh.cache_hit_ratio, bypass.cache_hit_ratio);
  t.catalog->set_uncacheable_fraction(0.0);
}

TEST(SimulatorTest, ReplicatedSitesServeFlaggedRequestsLocally) {
  // Full replication of everything: even lambda = 1 keeps service local.
  auto t = TestSystem::make(2, 2, 1, 50, 1.0);  // storage = 100% of bytes
  t.catalog->set_uncacheable_fraction(1.0);
  const auto placement = greedy_global(*t.system);
  // Greedy with 100% storage replicates every site everywhere.
  ASSERT_EQ(placement.replicas_created,
            t.system->server_count() * t.system->site_count());
  const auto report = simulate(*t.system, placement, quick_sim());
  EXPECT_DOUBLE_EQ(report.local_ratio, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_cost_hops, 0.0);
}

TEST(SimulatorTest, CachePolicyIsConfigurable) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  auto cfg = quick_sim(500'000);
  cfg.policy = cdn::cache::PolicyKind::kLfu;
  const auto lfu = simulate(*t.system, placement, cfg);
  cfg.policy = cdn::cache::PolicyKind::kLru;
  const auto lru = simulate(*t.system, placement, cfg);
  EXPECT_GT(lfu.cache_hit_ratio, 0.0);
  EXPECT_NE(lfu.cache_hit_ratio, lru.cache_hit_ratio);
}

TEST(SimulatorTest, WarmupShrinksMeasuredWindow) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  auto cfg = quick_sim();
  cfg.warmup_fraction = 0.9;
  const auto report = simulate(*t.system, placement, cfg);
  EXPECT_EQ(report.measured_requests, 20'000u);
}

TEST(SimulatorTest, InstrumentedRunMatchesUninstrumentedReport) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  const auto plain = simulate(*t.system, placement, quick_sim());
  cdn::obs::Registry registry;
  auto cfg = quick_sim();
  cfg.metrics = &registry;
  const auto instrumented = simulate(*t.system, placement, cfg);
  EXPECT_DOUBLE_EQ(plain.mean_latency_ms, instrumented.mean_latency_ms);
  EXPECT_DOUBLE_EQ(plain.mean_cost_hops, instrumented.mean_cost_hops);
  EXPECT_DOUBLE_EQ(plain.cache_hit_ratio, instrumented.cache_hit_ratio);
}

TEST(SimulatorTest, WindowSeriesSumBackToAggregates) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  cdn::obs::Registry registry;
  auto cfg = quick_sim();
  cfg.metrics = &registry;
  cfg.metrics_windows = 7;  // does not divide 140'000 evenly
  const auto report = simulate(*t.system, placement, cfg);

  const auto* requests = registry.find_series("sim/window/requests");
  const auto* local = registry.find_series("sim/window/local");
  const auto* eligible = registry.find_series("sim/window/eligible");
  const auto* hits = registry.find_series("sim/window/eligible_hits");
  const auto* hops = registry.find_series("sim/window/hops");
  ASSERT_NE(requests, nullptr);
  ASSERT_NE(local, nullptr);
  ASSERT_NE(eligible, nullptr);
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(hops, nullptr);
  EXPECT_EQ(requests->size(), 7u);

  EXPECT_DOUBLE_EQ(requests->sum(),
                   static_cast<double>(report.measured_requests));
  EXPECT_NEAR(local->sum(),
              report.local_ratio * static_cast<double>(
                                       report.measured_requests),
              1e-6);
  EXPECT_NEAR(hops->sum() / static_cast<double>(report.measured_requests),
              report.mean_cost_hops, 1e-9);
  ASSERT_GT(eligible->sum(), 0.0);
  EXPECT_NEAR(hits->sum() / eligible->sum(), report.cache_hit_ratio, 1e-12);
}

TEST(SimulatorTest, CauseCountersSumToMeasuredRequests) {
  const auto t = TestSystem::make();
  const auto placement = hybrid_greedy(*t.system);
  cdn::obs::Registry registry;
  auto cfg = quick_sim();
  cfg.metrics = &registry;
  const auto report = simulate(*t.system, placement, cfg);

  std::uint64_t causes = 0;
  for (const char* name :
       {"replica", "cache-hit", "cache-miss", "stale-refresh",
        "uncacheable"}) {
    const auto* c = registry.find_counter(std::string("sim/cause/") + name);
    ASSERT_NE(c, nullptr) << name;
    causes += c->value();
  }
  EXPECT_EQ(causes, report.measured_requests);
  // A hybrid placement serves some requests from replicas and some from
  // caches; both dominant causes must be present.
  EXPECT_GT(registry.find_counter("sim/cause/replica")->value(), 0u);
  EXPECT_GT(registry.find_counter("sim/cause/cache-hit")->value(), 0u);
}

TEST(SimulatorTest, PerServerHistogramsCoverEveryMeasuredRequest) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  cdn::obs::Registry registry;
  auto cfg = quick_sim();
  cfg.metrics = &registry;
  const auto report = simulate(*t.system, placement, cfg);
  std::uint64_t observed = 0;
  for (std::size_t i = 0; i < t.system->server_count(); ++i) {
    const auto* h = registry.find_histogram(
        "sim/server/" + std::to_string(i) + "/latency_ms");
    ASSERT_NE(h, nullptr);
    observed += h->count();
  }
  EXPECT_EQ(observed, report.measured_requests);

  cdn::obs::Registry lean;
  cfg.metrics = &lean;
  cfg.per_server_metrics = false;
  simulate(*t.system, placement, cfg);
  EXPECT_EQ(lean.find_histogram("sim/server/0/latency_ms"), nullptr);
}

TEST(SimulatorTest, FullRateTraceRecordsEveryRequest) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  cdn::obs::TraceSink sink(1.0, 7, /*max_events=*/300'000);
  auto cfg = quick_sim();
  cfg.trace_sink = &sink;
  const auto report = simulate(*t.system, placement, cfg);
  EXPECT_EQ(sink.recorded(), report.total_requests);
  std::uint64_t measured = 0;
  for (const auto& e : sink.events()) {
    if (e.measured) ++measured;
    if (e.cause == cdn::obs::EventCause::kCacheHit) {
      EXPECT_EQ(e.served_by, static_cast<std::int32_t>(e.server));
      EXPECT_DOUBLE_EQ(e.hops, 0.0);
    }
  }
  EXPECT_EQ(measured, report.measured_requests);
}

TEST(SimulatorTest, CacheTotalsMergeServerStats) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  const auto report = simulate(*t.system, placement, quick_sim());
  std::uint64_t hits = 0, evictions = 0, churned = 0;
  for (const auto& s : report.server_cache_stats) {
    hits += s.hits();
    evictions += s.evictions();
    churned += s.bytes_churned();
  }
  EXPECT_EQ(report.cache_totals.hits(), hits);
  EXPECT_EQ(report.cache_totals.evictions(), evictions);
  EXPECT_EQ(report.cache_totals.bytes_churned(), churned);
  EXPECT_GT(report.cache_totals.admissions(), 0u);
}

TEST(SimulatorTest, RejectsBadConfig) {
  const auto t = TestSystem::make();
  const auto placement = pure_caching(*t.system);
  auto cfg = quick_sim();
  cfg.total_requests = 0;
  EXPECT_THROW(simulate(*t.system, placement, cfg), cdn::PreconditionError);
  cfg = quick_sim();
  cfg.warmup_fraction = 1.0;
  EXPECT_THROW(simulate(*t.system, placement, cfg), cdn::PreconditionError);
}

}  // namespace
