// Unit tests for the thread pool and parallel_for.

#include <gtest/gtest.h>

#include "src/util/error.h"

#include <atomic>
#include <numeric>
#include <vector>

#include "src/util/thread_pool.h"

namespace {

using cdn::util::parallel_for;
using cdn::util::ThreadPool;

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ThreadCountMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPoolTest, RejectsNullTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), cdn::PreconditionError);
}

TEST(ParallelForTest, CoversExactRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  parallel_for(pool, 0, touched.size(),
               [&](std::size_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, NonZeroBeginOffset) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  parallel_for(pool, 10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10 + ... + 19
}

TEST(ParallelForTest, MatchesSequentialReduction) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<double> data(n);
  std::iota(data.begin(), data.end(), 0.0);
  std::vector<double> out(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { out[i] = data[i] * 2.0; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(out[i], 2.0 * data[i]);
}

TEST(ParallelForTest, GrainLargerThanRangeRunsInline) {
  ThreadPool pool(4);
  std::vector<int> touched(8, 0);
  parallel_for(pool, 0, touched.size(),
               [&](std::size_t i) { touched[i] = 1; },
               /*grain=*/100);
  for (int t : touched) EXPECT_EQ(t, 1);
}

TEST(ParallelForTest, SharedPoolOverloadWorks) {
  std::vector<std::atomic<int>> touched(64);
  parallel_for(0, touched.size(),
               [&](std::size_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForChunkedTest, ChunksTileTheRangeExactly) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(997);  // prime: uneven last chunk
  std::atomic<int> chunks{0};
  cdn::util::parallel_for_chunked(
      pool, 0, touched.size(), [&](std::size_t lo, std::size_t hi) {
        EXPECT_LT(lo, hi);
        chunks.fetch_add(1);
        for (std::size_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
      });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
  EXPECT_GE(chunks.load(), 1);
  EXPECT_LE(chunks.load(), 4);
}

TEST(ParallelForChunkedTest, GrainBoundsChunkCount) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  cdn::util::parallel_for_chunked(
      pool, 0, 100,
      [&](std::size_t, std::size_t) { chunks.fetch_add(1); },
      /*grain=*/50);
  // 100 indices at grain 50 permit at most two chunks.
  EXPECT_LE(chunks.load(), 2);
}

TEST(ParallelForChunkedTest, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  cdn::util::parallel_for_chunked(pool, 0, 10,
                                  [&](std::size_t lo, std::size_t hi) {
                                    for (std::size_t i = lo; i < hi; ++i) {
                                      order.push_back(static_cast<int>(i));
                                    }
                                  });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ParallelForTest, NestedSubmissionDoesNotDeadlock) {
  // parallel_for from within a pool task must not deadlock the shared pool
  // (tasks submit to the same queue but wait_idle is only called outside).
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  parallel_for(pool, 0, 4, [&](std::size_t) {
    for (int i = 0; i < 8; ++i) counter.fetch_add(1);
  });
  EXPECT_EQ(counter.load(), 32);
}

}  // namespace
