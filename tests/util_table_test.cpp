// Unit tests for the text/CSV table renderer.

#include <gtest/gtest.h>

#include "src/util/error.h"

#include <string>

#include "src/util/table.h"

namespace {

using cdn::util::format_double;
using cdn::util::TextTable;

TEST(TextTableTest, HeaderAndRowCount) {
  TextTable t({"a", "b"});
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TextTableTest, StrContainsAllCells) {
  TextTable t({"name", "value"});
  t.add_row({"latency", "12.5"});
  t.add_row({"hops", "3"});
  const std::string s = t.str();
  for (const char* needle : {"name", "value", "latency", "12.5", "hops"}) {
    EXPECT_NE(s.find(needle), std::string::npos) << needle;
  }
}

TEST(TextTableTest, ColumnsAlignToWidestCell) {
  TextTable t({"x", "y"});
  t.add_row({"longvalue", "1"});
  const std::string s = t.str();
  // Three lines: header, rule, row; all equal length.
  const auto first = s.find('\n');
  const auto second = s.find('\n', first + 1);
  const auto third = s.find('\n', second + 1);
  EXPECT_EQ(first, second - first - 1);
  EXPECT_EQ(first, third - second - 1);
}

TEST(TextTableTest, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), cdn::PreconditionError);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), cdn::PreconditionError);
}

TEST(TextTableTest, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), cdn::PreconditionError);
}

TEST(TextTableTest, AddRowValuesFormatsDoubles) {
  TextTable t({"a", "b"});
  t.add_row_values({1.23456, 2.0}, 2);
  const std::string s = t.str();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);
}

TEST(TextTableTest, CsvQuotesSpecialCharacters) {
  TextTable t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTableTest, CsvPlainFieldsUnquoted) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(FormatDoubleTest, RespectsPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

}  // namespace
