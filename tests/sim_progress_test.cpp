// SimulationProgress reporting (rate, ETA, checkpoint fields) from both
// engines, and span integration: spans never perturb a report, both
// engines emit their phase spans, checkpoint writes get spans.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/obs/span.h"
#include "src/placement/fixed_split.h"
#include "src/placement/hybrid_greedy.h"
#include "src/sim/sim_checkpoint.h"
#include "src/sim/simulator.h"
#include "tests/test_support.h"

namespace cdn::sim {
namespace {

placement::PlacementResult make_placement(const sys::CdnSystem& system) {
  return placement::pure_caching(system);
}

SimulationConfig base_config(std::uint64_t requests = 40'000) {
  SimulationConfig cfg;
  cfg.total_requests = requests;
  cfg.warmup_fraction = 0.25;
  cfg.seed = 7;
  return cfg;
}

std::set<std::string> span_names(const obs::SpanTracer& tracer) {
  std::set<std::string> names;
  for (const auto& event : tracer.events()) names.insert(event.name);
  return names;
}

TEST(SimProgressTest, SequentialEngineReportsRateEtaAndCadence) {
  const auto t = test::TestSystem::make();
  const auto placement = make_placement(*t.system);
  auto cfg = base_config();
  cfg.progress_every = 10'000;
  std::vector<SimulationProgress> snapshots;
  cfg.progress = [&](const SimulationProgress& p) {
    snapshots.push_back(p);
  };
  simulate(*t.system, placement, cfg);

  ASSERT_EQ(snapshots.size(), 4u);
  for (std::size_t k = 0; k < snapshots.size(); ++k) {
    const auto& p = snapshots[k];
    EXPECT_EQ(p.completed, (k + 1) * 10'000);
    EXPECT_EQ(p.total, cfg.total_requests);
    EXPECT_GT(p.requests_per_sec, 0.0);
    EXPECT_GE(p.eta_seconds, 0.0);
    EXPECT_EQ(p.checkpoints_written, 0u);
    EXPECT_EQ(p.last_checkpoint_request, 0u);
  }
  // The final snapshot has nothing left to do.
  EXPECT_EQ(snapshots.back().completed, cfg.total_requests);
  EXPECT_EQ(snapshots.back().eta_seconds, 0.0);
}

TEST(SimProgressTest, SequentialEngineReportsCheckpointActivity) {
  const auto t = test::TestSystem::make();
  const auto placement = make_placement(*t.system);
  auto cfg = base_config();
  cfg.progress_every = 10'000;
  cfg.checkpoint_path = testing::TempDir() + "/sim_progress_ckpt.bin";
  cfg.checkpoint_every_requests = 10'000;
  std::vector<SimulationProgress> snapshots;
  cfg.progress = [&](const SimulationProgress& p) {
    snapshots.push_back(p);
  };
  simulate(*t.system, placement, cfg);

  ASSERT_FALSE(snapshots.empty());
  const auto& last = snapshots.back();
  EXPECT_GT(last.checkpoints_written, 0u);
  EXPECT_GT(last.last_checkpoint_request, 0u);
  EXPECT_LE(last.last_checkpoint_request, cfg.total_requests);
}

TEST(SimProgressTest, ParallelEngineReportsProgressAtBarriers) {
  const auto t = test::TestSystem::make();
  const auto placement = make_placement(*t.system);
  auto cfg = base_config(60'000);
  cfg.threads = 2;
  cfg.shards = 4;
  cfg.progress_every = 15'000;
  std::vector<SimulationProgress> snapshots;
  cfg.progress = [&](const SimulationProgress& p) {
    snapshots.push_back(p);
  };
  const auto report = simulate(*t.system, placement, cfg);
  EXPECT_EQ(report.shards_used, 4u);

  ASSERT_FALSE(snapshots.empty());
  std::uint64_t prev = 0;
  for (const auto& p : snapshots) {
    EXPECT_GT(p.completed, prev);
    prev = p.completed;
    EXPECT_EQ(p.total, cfg.total_requests);
    EXPECT_GT(p.requests_per_sec, 0.0);
  }
  EXPECT_EQ(snapshots.back().completed, cfg.total_requests);
}

TEST(SimProgressTest, ProgressCallbacksDoNotChangeTheReport) {
  const auto t = test::TestSystem::make();
  const auto placement = make_placement(*t.system);
  const auto quiet = simulate(*t.system, placement, base_config());
  auto cfg = base_config();
  cfg.progress_every = 5'000;
  cfg.progress = [](const SimulationProgress&) {};
  const auto chatty = simulate(*t.system, placement, cfg);
  EXPECT_EQ(report_digest(quiet), report_digest(chatty));
}

TEST(SimSpanTest, SequentialEngineEmitsPhaseSpans) {
  const auto t = test::TestSystem::make();
  const auto placement = make_placement(*t.system);
  obs::SpanTracer tracer;
  auto cfg = base_config();
  cfg.spans = &tracer;
  const auto with_spans = simulate(*t.system, placement, cfg);

  const auto names = span_names(tracer);
  EXPECT_TRUE(names.count("sim/setup"));
  EXPECT_TRUE(names.count("sim/run"));
  EXPECT_TRUE(names.count("sim/report"));

  // Bit-identity: a tracer must never perturb the simulation.
  auto plain = base_config();
  const auto without_spans = simulate(*t.system, placement, plain);
  EXPECT_EQ(report_digest(with_spans), report_digest(without_spans));
}

TEST(SimSpanTest, SequentialEngineEmitsCheckpointSpans) {
  const auto t = test::TestSystem::make();
  const auto placement = make_placement(*t.system);
  obs::SpanTracer tracer;
  auto cfg = base_config();
  cfg.spans = &tracer;
  cfg.checkpoint_path = testing::TempDir() + "/sim_span_ckpt.bin";
  cfg.checkpoint_every_requests = 10'000;
  simulate(*t.system, placement, cfg);
  EXPECT_TRUE(span_names(tracer).count("sim/checkpoint/write"));
}

TEST(SimSpanTest, ParallelEngineEmitsShardAndMergeSpans) {
  const auto t = test::TestSystem::make();
  const auto placement = make_placement(*t.system);
  obs::SpanTracer tracer;
  auto cfg = base_config(60'000);
  cfg.threads = 2;
  cfg.shards = 4;
  cfg.spans = &tracer;
  const auto with_spans = simulate(*t.system, placement, cfg);

  const auto names = span_names(tracer);
  EXPECT_TRUE(names.count("sim/setup"));
  EXPECT_TRUE(names.count("sim/run"));
  EXPECT_TRUE(names.count("sim/shard/run"));
  EXPECT_TRUE(names.count("sim/merge"));
  EXPECT_TRUE(names.count("sim/report"));

  // Shard spans come from worker threads: more than one tid in the trace.
  std::set<std::uint32_t> tids;
  for (const auto& event : tracer.events()) tids.insert(event.tid);
  EXPECT_GT(tids.size(), 1u);

  auto plain = base_config(60'000);
  plain.threads = 2;
  plain.shards = 4;
  const auto without_spans = simulate(*t.system, placement, plain);
  EXPECT_EQ(report_digest(with_spans), report_digest(without_spans));
}

TEST(SimSpanTest, PlacementEnginesEmitSpans) {
  const auto t = test::TestSystem::make();
  obs::SpanTracer tracer;
  placement::HybridGreedyOptions options;
  options.spans = &tracer;
  const auto with_spans = placement::hybrid_greedy(*t.system, options);

  const auto names = span_names(tracer);
  EXPECT_TRUE(names.count("placement/hybrid/total"));
  EXPECT_TRUE(names.count("placement/hybrid/initial_eval"));
  EXPECT_TRUE(names.count("placement/hybrid/iteration"));
  EXPECT_TRUE(names.count("placement/hybrid/heap/size"));

  // Spans must not change a placement decision.
  const auto without_spans = placement::hybrid_greedy(*t.system, {});
  EXPECT_EQ(with_spans.cost_trajectory, without_spans.cost_trajectory);
  EXPECT_EQ(with_spans.replicas_created, without_spans.replicas_created);
}

}  // namespace
}  // namespace cdn::sim
