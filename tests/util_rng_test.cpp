// Unit tests for the xoshiro256** RNG wrapper.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

#include "src/util/rng.h"

namespace {

using cdn::util::Rng;

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(77);
  const auto first = a();
  a.reseed(77);
  EXPECT_EQ(a(), first);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 7.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 7.25);
  }
}

TEST(RngTest, UniformIndexCoversFullRange) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIndexIsUnbiasedForSmallN) {
  Rng rng(9);
  std::array<int, 3> counts{};
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(3)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 3.0, 0.005);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntRejectsInvertedBounds) {
  Rng rng(11);
  EXPECT_THROW(rng.uniform_int(3, 2), cdn::PreconditionError);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(12);
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerateProbabilities) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng base(42);
  Rng s1 = base.fork(1);
  Rng s2 = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s1() == s2()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng base1(42);
  Rng base2(42);
  Rng f1 = base1.fork(9);
  Rng f2 = base2.fork(9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(f1(), f2());
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  Rng rng(1);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // must compile and not crash
  EXPECT_EQ(v.size(), 5u);
}

TEST(RngTest, SplitMix64KnownValues) {
  // Reference values from the SplitMix64 reference implementation with
  // state 0: first output must be 0xE220A8397B1DCDAF.
  std::uint64_t state = 0;
  EXPECT_EQ(cdn::util::splitmix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(cdn::util::splitmix64(state), 0x6E789E6AA1B965F4ULL);
}

}  // namespace
