// Unit tests for the churn-extended cache statistics.

#include <gtest/gtest.h>

#include "src/cache/cache_factory.h"
#include "src/cache/cache_stats.h"
#include "src/cache/delayed_lru_cache.h"
#include "src/cache/lru_cache.h"

namespace {

using cdn::cache::CacheStats;
using cdn::cache::DelayedLruCache;
using cdn::cache::LruCache;
using cdn::cache::make_cache;
using cdn::cache::PolicyKind;

TEST(CacheStatsTest, RecordsChurnCounters) {
  CacheStats s;
  s.record_hit(10);
  s.record_miss(20);
  s.record_admission(20);
  s.record_eviction(5);
  EXPECT_EQ(s.admissions(), 1u);
  EXPECT_EQ(s.evictions(), 1u);
  EXPECT_EQ(s.admitted_bytes(), 20u);
  EXPECT_EQ(s.evicted_bytes(), 5u);
  EXPECT_EQ(s.bytes_churned(), 25u);
  EXPECT_DOUBLE_EQ(s.hit_ratio(), 0.5);
}

TEST(CacheStatsTest, MergeAddsEveryCounter) {
  CacheStats a, b;
  a.record_admission(10);
  a.record_eviction(4);
  b.record_admission(6);
  b.record_hit(1);
  a.merge(b);
  EXPECT_EQ(a.admissions(), 2u);
  EXPECT_EQ(a.evictions(), 1u);
  EXPECT_EQ(a.admitted_bytes(), 16u);
  EXPECT_EQ(a.bytes_churned(), 20u);
  EXPECT_EQ(a.hits(), 1u);
}

TEST(CacheStatsTest, ResetClearsEverything) {
  CacheStats s;
  s.record_hit(1);
  s.record_admission(8);
  s.record_eviction(8);
  s.reset();
  EXPECT_EQ(s.accesses(), 0u);
  EXPECT_EQ(s.admissions(), 0u);
  EXPECT_EQ(s.evictions(), 0u);
  EXPECT_EQ(s.bytes_churned(), 0u);
}

TEST(CacheStatsTest, LruRecordsAdmissionsAndEvictionBytes) {
  LruCache cache(30);
  cache.access(1, 10);  // miss + admit
  cache.access(2, 10);
  cache.access(3, 10);
  EXPECT_EQ(cache.stats().admissions(), 3u);
  EXPECT_EQ(cache.stats().evictions(), 0u);
  cache.access(4, 15);  // must evict keys 1 and 2 (20 bytes) to fit
  EXPECT_EQ(cache.stats().admissions(), 4u);
  EXPECT_EQ(cache.stats().evictions(), 2u);
  EXPECT_EQ(cache.stats().evicted_bytes(), 20u);
  EXPECT_EQ(cache.stats().admitted_bytes(), 45u);
}

TEST(CacheStatsTest, EveryPolicyCountsChurn) {
  for (const auto kind :
       {PolicyKind::kLru, PolicyKind::kFifo, PolicyKind::kLfu,
        PolicyKind::kClock, PolicyKind::kDelayedLru}) {
    const auto cache = make_cache(kind, 50);
    // Hammer a working set larger than the capacity; every policy must
    // admit and eventually evict.
    for (int round = 0; round < 4; ++round) {
      for (cdn::cache::ObjectKey k = 0; k < 10; ++k) {
        cache->access(k, 10);
      }
    }
    EXPECT_GT(cache->stats().admissions(), 0u)
        << "policy " << static_cast<int>(kind);
    EXPECT_GT(cache->stats().evictions(), 0u)
        << "policy " << static_cast<int>(kind);
    EXPECT_EQ(cache->stats().bytes_churned(),
              cache->stats().admitted_bytes() +
                  cache->stats().evicted_bytes());
  }
}

TEST(CacheStatsTest, DelayedLruFoldsInnerChurnIntoOneView) {
  DelayedLruCache cache(20, /*admission_threshold=*/2);
  cache.access(1, 10);  // miss, not admitted yet (threshold 2)
  EXPECT_EQ(cache.stats().admissions(), 0u);
  cache.access(1, 10);  // second miss: admitted by the inner LRU
  EXPECT_EQ(cache.stats().admissions(), 1u);
  cache.access(1, 10);  // hit, recorded at the wrapper level
  const CacheStats& merged = cache.stats();
  EXPECT_EQ(merged.hits(), 1u);
  EXPECT_EQ(merged.misses(), 2u);
  EXPECT_EQ(merged.admitted_bytes(), 10u);

  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses(), 0u);
  EXPECT_EQ(cache.stats().admissions(), 0u);
}

}  // namespace
