// Mock replica servers for the redirector integration suite.
//
// Each MockReplica is a tiny threaded TCP server whose fault mode maps
// onto one socket-level failure the daemon must survive:
//
//   kNormal      accept and greet immediately — a healthy replica;
//   kListenDelay port is reserved but nothing listens until `delay`
//                elapses — connects fail fast (ECONNREFUSED), the retry/
//                backoff path wins once the listener appears;
//   kForcedClose accept then close without greeting — the racer sees a
//                clean EOF and promotes the next candidate immediately;
//   kBlackHole   listen but never accept/greet — connects park in the
//                backlog and the greeting never arrives, so only the
//                attempt timeout can retire the attempt;
//   kSlowGreet   accept immediately, greet after `delay` — wins the race
//                only when the delay fits inside the attempt timeout.
//
// The greeting is the single byte 'R', matching what the race treats as
// success.  All servers bind ephemeral loopback ports; `port()` is stable
// from construction even in kListenDelay mode (the port is reserved, then
// re-bound after the delay — the standard harness trick, cf. the
// happy-eyeballs test servers in mongo-c-driver).

#pragma once

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/net/event_loop.h"
#include "src/net/socket.h"
#include "src/util/error.h"

namespace cdn::test {

class MockReplica {
 public:
  enum class Mode {
    kNormal,
    kListenDelay,
    kForcedClose,
    kBlackHole,
    kSlowGreet,
  };

  explicit MockReplica(Mode mode,
                       std::chrono::milliseconds delay =
                           std::chrono::milliseconds(0))
      : mode_(mode), delay_(delay) {
    listener_ = net::TcpListener::bind("127.0.0.1", 0);
    port_ = listener_.port();
    if (mode_ == Mode::kListenDelay) {
      // Reserve the port number, then come back for it after the delay.
      listener_.close();
    }
    thread_ = std::thread([this] { serve(); });
  }

  ~MockReplica() { stop(); }

  MockReplica(const MockReplica&) = delete;
  MockReplica& operator=(const MockReplica&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Connections accepted so far (never grows in kBlackHole mode).
  int accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }

  void stop() {
    if (!stop_.exchange(true) && thread_.joinable()) thread_.join();
  }

 private:
  struct Pending {
    net::Fd fd;
    std::chrono::steady_clock::time_point due;
  };

  void serve() {
    using std::chrono::steady_clock;
    if (mode_ == Mode::kListenDelay) {
      const auto until = steady_clock::now() + delay_;
      while (!stop_.load(std::memory_order_relaxed) &&
             steady_clock::now() < until) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      // The freed port can be transiently grabbed by another socket
      // (e.g. as an ephemeral source port); retry until it is ours again.
      bool bound = false;
      while (!bound && !stop_.load(std::memory_order_relaxed)) {
        try {
          listener_ = net::TcpListener::bind("127.0.0.1", port_);
          bound = true;
        } catch (const PreconditionError&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      }
      if (!bound) return;
    }
    std::vector<Pending> pending;
    std::vector<net::Fd> held;
    while (!stop_.load(std::memory_order_relaxed)) {
      if (mode_ != Mode::kBlackHole) {
        while (auto fd = listener_.accept()) {
          accepted_.fetch_add(1, std::memory_order_relaxed);
          switch (mode_) {
            case Mode::kForcedClose:
              fd->reset();  // EOF, never a greeting
              break;
            case Mode::kSlowGreet:
              pending.push_back({std::move(*fd),
                                 steady_clock::now() + delay_});
              break;
            default: {
              const char greeting = 'R';
              (void)net::write_some(fd->get(), &greeting, 1);
              held.push_back(std::move(*fd));
              break;
            }
          }
        }
      }
      const auto now = steady_clock::now();
      for (auto it = pending.begin(); it != pending.end();) {
        if (it->due <= now) {
          const char greeting = 'R';
          (void)net::write_some(it->fd.get(), &greeting, 1);
          held.push_back(std::move(it->fd));
          it = pending.erase(it);
        } else {
          ++it;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  Mode mode_;
  std::chrono::milliseconds delay_;
  net::TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int> accepted_{0};
};

}  // namespace cdn::test
