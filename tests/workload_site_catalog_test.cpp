// Unit tests for the SURGE-like site catalogue.

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/workload/site_catalog.h"

namespace {

using cdn::util::Rng;
using cdn::workload::default_popularity_classes;
using cdn::workload::PopularityClass;
using cdn::workload::SiteCatalog;
using cdn::workload::SurgeParams;

SiteCatalog small_catalog(std::uint64_t seed = 1) {
  SurgeParams params;
  params.objects_per_site = 50;
  const std::vector<PopularityClass> classes{{3, 1.0, "low"},
                                             {2, 4.0, "high"}};
  Rng rng(seed);
  return SiteCatalog::generate(params, classes, rng);
}

TEST(SiteCatalogTest, CountsMatchClasses) {
  const auto catalog = small_catalog();
  EXPECT_EQ(catalog.site_count(), 5u);
  EXPECT_EQ(catalog.objects_per_site(), 50u);
}

TEST(SiteCatalogTest, DefaultClassesMatchPaper) {
  const auto classes = default_popularity_classes();
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_EQ(classes[0].site_count, 50u);   // low
  EXPECT_EQ(classes[1].site_count, 100u);  // medium
  EXPECT_EQ(classes[2].site_count, 50u);   // high
  EXPECT_LT(classes[0].volume_weight, classes[1].volume_weight);
  EXPECT_LT(classes[1].volume_weight, classes[2].volume_weight);
}

TEST(SiteCatalogTest, SiteBytesIsSumOfObjects) {
  const auto catalog = small_catalog();
  for (cdn::workload::SiteId s = 0; s < catalog.site_count(); ++s) {
    std::uint64_t sum = 0;
    for (std::size_t k = 1; k <= catalog.objects_per_site(); ++k) {
      sum += catalog.object_bytes(s, k);
    }
    EXPECT_EQ(sum, catalog.site_bytes(s));
  }
}

TEST(SiteCatalogTest, TotalBytesIsSumOfSites) {
  const auto catalog = small_catalog();
  std::uint64_t sum = 0;
  for (cdn::workload::SiteId s = 0; s < catalog.site_count(); ++s) {
    sum += catalog.site_bytes(s);
  }
  EXPECT_EQ(sum, catalog.total_bytes());
}

TEST(SiteCatalogTest, MeanObjectBytesConsistent) {
  const auto catalog = small_catalog();
  const double expected =
      static_cast<double>(catalog.total_bytes()) /
      static_cast<double>(catalog.site_count() * catalog.objects_per_site());
  EXPECT_DOUBLE_EQ(catalog.mean_object_bytes(), expected);
}

TEST(SiteCatalogTest, ObjectSizesRespectFloor) {
  SurgeParams params;
  params.objects_per_site = 100;
  params.min_object_bytes = 512.0;
  const std::vector<PopularityClass> classes{{2, 1.0, "x"}};
  Rng rng(2);
  const auto catalog = SiteCatalog::generate(params, classes, rng);
  for (cdn::workload::SiteId s = 0; s < 2; ++s) {
    for (std::size_t k = 1; k <= 100; ++k) {
      EXPECT_GE(catalog.object_bytes(s, k), 512u);
    }
  }
}

TEST(SiteCatalogTest, VolumeWeightAndLabelFollowClassOrder) {
  const auto catalog = small_catalog();
  for (cdn::workload::SiteId s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(catalog.volume_weight(s), 1.0);
    EXPECT_STREQ(catalog.class_label(s), "low");
  }
  for (cdn::workload::SiteId s = 3; s < 5; ++s) {
    EXPECT_DOUBLE_EQ(catalog.volume_weight(s), 4.0);
    EXPECT_STREQ(catalog.class_label(s), "high");
  }
}

TEST(SiteCatalogTest, UncacheableFractionDefaultsToZeroAndIsSettable) {
  auto catalog = small_catalog();
  EXPECT_DOUBLE_EQ(catalog.uncacheable_fraction(0), 0.0);
  catalog.set_uncacheable_fraction(0.1);
  for (cdn::workload::SiteId s = 0; s < catalog.site_count(); ++s) {
    EXPECT_DOUBLE_EQ(catalog.uncacheable_fraction(s), 0.1);
  }
  catalog.set_uncacheable_fraction(2, 0.5);
  EXPECT_DOUBLE_EQ(catalog.uncacheable_fraction(2), 0.5);
  EXPECT_DOUBLE_EQ(catalog.uncacheable_fraction(1), 0.1);
}

TEST(SiteCatalogTest, ObjectIdsAreGloballyUnique) {
  const auto catalog = small_catalog();
  std::set<cdn::workload::ObjectId> ids;
  for (cdn::workload::SiteId s = 0; s < catalog.site_count(); ++s) {
    for (std::size_t k = 1; k <= catalog.objects_per_site(); ++k) {
      EXPECT_TRUE(ids.insert(catalog.object_id(s, k)).second);
    }
  }
  EXPECT_EQ(ids.size(),
            catalog.site_count() * catalog.objects_per_site());
}

TEST(SiteCatalogTest, SharedZipfLaw) {
  const auto catalog = small_catalog();
  EXPECT_EQ(catalog.object_popularity().size(), 50u);
  EXPECT_DOUBLE_EQ(catalog.object_popularity().theta(), 1.0);
}

TEST(SiteCatalogTest, TailFractionRaisesMeanSize) {
  SurgeParams no_tail;
  no_tail.objects_per_site = 400;
  no_tail.tail_fraction = 0.0;
  SurgeParams heavy_tail = no_tail;
  heavy_tail.tail_fraction = 0.3;
  const std::vector<PopularityClass> classes{{5, 1.0, "x"}};
  Rng r1(3), r2(3);
  const auto thin = SiteCatalog::generate(no_tail, classes, r1);
  const auto fat = SiteCatalog::generate(heavy_tail, classes, r2);
  EXPECT_GT(fat.mean_object_bytes(), thin.mean_object_bytes());
}

TEST(SiteCatalogTest, RejectsInvalidInputs) {
  Rng rng(4);
  SurgeParams params;
  const std::vector<PopularityClass> empty;
  EXPECT_THROW(SiteCatalog::generate(params, empty, rng),
               cdn::PreconditionError);
  const std::vector<PopularityClass> zero_weight{{2, 0.0, "x"}};
  EXPECT_THROW(SiteCatalog::generate(params, zero_weight, rng),
               cdn::PreconditionError);
  params.tail_fraction = 1.5;
  const std::vector<PopularityClass> ok{{1, 1.0, "x"}};
  EXPECT_THROW(SiteCatalog::generate(params, ok, rng),
               cdn::PreconditionError);
  auto catalog = small_catalog();
  EXPECT_THROW(catalog.object_bytes(99, 1), cdn::PreconditionError);
  EXPECT_THROW(catalog.object_bytes(0, 0), cdn::PreconditionError);
  EXPECT_THROW(catalog.set_uncacheable_fraction(-0.1),
               cdn::PreconditionError);
}

}  // namespace
