// Unit tests for the undirected graph substrate.

#include <gtest/gtest.h>

#include "src/topology/graph.h"
#include "src/util/error.h"

namespace {

using cdn::topology::Graph;

TEST(GraphTest, StartsWithIsolatedNodes) {
  Graph g(4);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 0u);
  for (cdn::topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(g.degree(v), 0u);
  }
}

TEST(GraphTest, AddEdgeIsUndirected) {
  Graph g(3);
  g.add_edge(0, 1, 2.5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.neighbors(0)[0].to, 1u);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].weight, 2.5);
}

TEST(GraphTest, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1), cdn::PreconditionError);
}

TEST(GraphTest, RejectsParallelEdge) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), cdn::PreconditionError);
  EXPECT_THROW(g.add_edge(1, 0), cdn::PreconditionError);
}

TEST(GraphTest, RejectsNonPositiveWeight) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 1, 0.0), cdn::PreconditionError);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), cdn::PreconditionError);
}

TEST(GraphTest, RejectsOutOfRangeNodes) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), cdn::PreconditionError);
  EXPECT_THROW(g.has_edge(2, 0), cdn::PreconditionError);
  EXPECT_THROW(g.neighbors(5), cdn::PreconditionError);
}

TEST(GraphTest, ConnectivityDetection) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_connected());
}

TEST(GraphTest, EmptyAndSingletonAreConnected) {
  EXPECT_TRUE(Graph(0).is_connected());
  EXPECT_TRUE(Graph(1).is_connected());
}

TEST(GraphTest, StarGraphDegrees) {
  Graph g(5);
  for (cdn::topology::NodeId leaf = 1; leaf < 5; ++leaf) {
    g.add_edge(0, leaf);
  }
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_TRUE(g.is_connected());
}

}  // namespace
