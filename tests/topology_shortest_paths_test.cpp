// Unit tests for BFS hop counts, Dijkstra, and the HopMatrix.

#include <gtest/gtest.h>

#include <vector>

#include "src/topology/shortest_paths.h"
#include "src/util/error.h"

namespace {

using cdn::topology::bfs_hops;
using cdn::topology::dijkstra;
using cdn::topology::Graph;
using cdn::topology::HopMatrix;
using cdn::topology::kUnreachableDistance;
using cdn::topology::kUnreachableHops;
using cdn::topology::NodeId;

/// Path 0-1-2-3 plus chord 0-3.
Graph diamond() {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  return g;
}

TEST(BfsTest, PathGraphDistances) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto d = bfs_hops(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[3], 3u);
}

TEST(BfsTest, ChordShortensPath) {
  const auto d = bfs_hops(diamond(), 0);
  EXPECT_EQ(d[3], 1u);  // via the chord, not the 3-hop path
  EXPECT_EQ(d[2], 2u);
}

TEST(BfsTest, UnreachableIsSentinel) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto d = bfs_hops(g, 0);
  EXPECT_EQ(d[2], kUnreachableHops);
}

TEST(BfsTest, SourceOutOfRangeThrows) {
  Graph g(2);
  EXPECT_THROW(bfs_hops(g, 2), cdn::PreconditionError);
}

TEST(DijkstraTest, WeightedShortestPathDiffersFromHops) {
  // 0-1 (10.0) vs 0-2-1 (1.0 + 1.0): Dijkstra must pick the 2-hop route.
  Graph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 1, 1.0);
  const auto d = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  EXPECT_DOUBLE_EQ(d[2], 1.0);
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[1], 1u);  // hop metric ignores weights
}

TEST(DijkstraTest, UnreachableIsInfinite) {
  Graph g(2);
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[1], kUnreachableDistance);
}

TEST(DijkstraTest, MatchesBfsOnUnitWeights) {
  const Graph g = diamond();
  const auto w = dijkstra(g, 1);
  const auto h = bfs_hops(g, 1);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(w[v], static_cast<double>(h[v]));
  }
}

TEST(HopMatrixTest, RowsMatchBfs) {
  const Graph g = diamond();
  const std::vector<NodeId> sources{0, 2};
  HopMatrix hm(g, sources);
  EXPECT_EQ(hm.source_count(), 2u);
  EXPECT_EQ(hm.node_count(), 4u);
  const auto d0 = bfs_hops(g, 0);
  const auto d2 = bfs_hops(g, 2);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(hm.hops(0, v), d0[v]);
    EXPECT_EQ(hm.hops(1, v), d2[v]);
  }
}

TEST(HopMatrixTest, CostConvertsSentinel) {
  Graph g(3);
  g.add_edge(0, 1);
  const std::vector<NodeId> sources{0};
  HopMatrix hm(g, sources);
  EXPECT_DOUBLE_EQ(hm.cost(0, 1), 1.0);
  EXPECT_EQ(hm.cost(0, 2), kUnreachableDistance);
}

TEST(HopMatrixTest, SourceNodeAccessor) {
  const Graph g = diamond();
  const std::vector<NodeId> sources{3, 1};
  HopMatrix hm(g, sources);
  EXPECT_EQ(hm.source_node(0), 3u);
  EXPECT_EQ(hm.source_node(1), 1u);
  EXPECT_THROW(hm.source_node(2), cdn::PreconditionError);
}

TEST(HopMatrixTest, ManySourcesParallelConstruction) {
  // A ring of 64 nodes, all of them sources: distance i->j is the ring
  // distance; exercises the parallel BFS fan-out.
  const std::size_t n = 64;
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % n));
  }
  std::vector<NodeId> sources(n);
  for (NodeId v = 0; v < n; ++v) sources[v] = v;
  HopMatrix hm(g, sources);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      const auto direct = static_cast<std::uint32_t>((j - i + n) % n);
      const std::uint32_t expected = std::min(direct, static_cast<std::uint32_t>(n) - direct);
      EXPECT_EQ(hm.hops(i, j), expected);
    }
  }
}

}  // namespace
